//! Transparent multi-temperature data management (Section 2, use case 1).
//!
//! A warehouse tracks access counts per key. Hot keys live in
//! high-performance replicated storage (`Rep(3)`, 3x memory); cold keys
//! in low-overhead erasure-coded storage (`SRS(3,2)`, 1.66x memory).
//! Temperature changes trigger `move` — fully transparent to readers,
//! which keep using plain `get(key)` throughout.
//!
//! ```text
//! cargo run --example multi_temperature --release
//! ```

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ring_kvs::{Cluster, ClusterSpec, Scheme};
use ring_workload::Zipfian;

const HOT: u32 = 2; // Rep(3).
const COLD: u32 = 6; // SRS(3,2).
const KEYS: u64 = 2_000;
const VALUE: usize = 1024;

fn main() {
    let cluster = Cluster::start(ClusterSpec::paper_evaluation());
    let mut client = cluster.client();

    // Load everything cold first.
    let value = vec![7u8; VALUE];
    for key in 0..KEYS {
        client.put_to(key, &value, COLD).unwrap();
    }
    println!("loaded {KEYS} keys into SRS(3,2) cold storage");

    // A Zipfian access stream: a few keys dominate.
    let zipf = Zipfian::new(KEYS);
    let mut rng = StdRng::seed_from_u64(42);
    let mut counts: HashMap<u64, u32> = HashMap::new();
    let mut placement: HashMap<u64, u32> = HashMap::new();
    let mut promotions = 0u32;
    let mut demote_round = 0;

    for epoch in 0..5 {
        counts.clear();
        for _ in 0..20_000 {
            let key = zipf.next(&mut rng);
            client.get(key).unwrap();
            *counts.entry(key).or_default() += 1;
        }
        // Standard temperature tracking: promote keys above a threshold,
        // demote previously hot keys that went quiet.
        for (&key, &hits) in &counts {
            let current = placement.get(&key).copied().unwrap_or(COLD);
            if hits >= 100 && current == COLD {
                client.move_key(key, HOT).unwrap();
                placement.insert(key, HOT);
                promotions += 1;
            }
        }
        let hot_keys: Vec<u64> = placement
            .iter()
            .filter(|&(_, &m)| m == HOT)
            .map(|(&k, _)| k)
            .collect();
        for key in hot_keys {
            if counts.get(&key).copied().unwrap_or(0) < 20 {
                client.move_key(key, COLD).unwrap();
                placement.insert(key, COLD);
                demote_round += 1;
            }
        }
        let hot_now = placement.values().filter(|&&m| m == HOT).count();
        println!("epoch {epoch}: {hot_now} hot keys (promoted so far: {promotions}, demoted: {demote_round})");
    }

    // Memory accounting: what did temperature management save compared
    // to keeping everything replicated?
    let hot_count = placement.values().filter(|&&m| m == HOT).count() as f64;
    let cold_count = KEYS as f64 - hot_count;
    let rep_overhead = Scheme::Rep { r: 3 }.storage_overhead(3);
    let srs_overhead = Scheme::Srs { k: 3, m: 2 }.storage_overhead(3);
    let all_hot = KEYS as f64 * VALUE as f64 * rep_overhead;
    let tiered = (hot_count * rep_overhead + cold_count * srs_overhead) * VALUE as f64;
    println!(
        "\nmemory: all-hot = {:.1} MiB, tiered = {:.1} MiB ({:.0}% saved), hot data still on Rep(3)",
        all_hot / (1 << 20) as f64,
        tiered / (1 << 20) as f64,
        100.0 * (1.0 - tiered / all_hot)
    );

    // Readers never noticed any of this:
    for key in 0..20 {
        assert_eq!(client.get(key).unwrap(), value);
    }
    println!("all keys still read back identically — moves were transparent");
    cluster.shutdown();
}
