//! Heavy updates (Section 2, use case 2): the last seconds of an online
//! auction.
//!
//! During the bidding surge the item is moved to the unreliable
//! high-performance memgest to absorb millions of updates; Ring keeps a
//! reliable backup version (versioning with `keep_old_versions`), so the
//! overall reliability is not reduced. After the hammer falls the final
//! price is moved back to reliable storage.
//!
//! ```text
//! cargo run --example auction_surge --release
//! ```

use std::time::{Duration, Instant};

use ring_kvs::{Cluster, ClusterSpec};

const RELIABLE: u32 = 6; // SRS(3,2).
const FAST: u32 = 0; // Rep(1), unreliable.
const ITEM: u64 = 4711;

fn bid_storm(client: &mut ring_kvs::RingClient, memgest: u32, duration: Duration) -> (u64, f64) {
    let start = Instant::now();
    let mut bids = 0u64;
    let mut price = 100u64;
    while start.elapsed() < duration {
        price += 1;
        client
            .put_to(ITEM, &price.to_le_bytes(), memgest)
            .expect("bid");
        bids += 1;
    }
    (price, bids as f64 / start.elapsed().as_secs_f64())
}

fn main() {
    let spec = ClusterSpec {
        keep_old_versions: true, // Preserve the reliable backup copy.
        ..ClusterSpec::paper_evaluation()
    };
    let cluster = Cluster::start(spec);
    let mut client = cluster.client();

    // Normal phase: the item lives in reliable erasure-coded storage.
    client
        .put_to(ITEM, &100u64.to_le_bytes(), RELIABLE)
        .unwrap();
    let (price, rate) = bid_storm(&mut client, RELIABLE, Duration::from_millis(500));
    println!("normal phase on SRS(3,2): {rate:.0} bids/s (price {price})");

    // Surge detected: move the item to the unreliable memgest. The
    // previous reliable version remains as a backup thanks to
    // versioning.
    client.move_key(ITEM, FAST).unwrap();
    let (final_price, surge_rate) = bid_storm(&mut client, FAST, Duration::from_millis(500));
    println!(
        "surge phase on Rep(1):   {surge_rate:.0} bids/s (price {final_price}) — {:.1}x speedup",
        surge_rate / rate
    );

    // Auction closed: persist the final price reliably again.
    client.move_key(ITEM, RELIABLE).unwrap();
    let stored = client.get(ITEM).unwrap();
    assert_eq!(stored, final_price.to_le_bytes());
    println!("final price {final_price} persisted back to SRS(3,2)");

    cluster.shutdown();
}
