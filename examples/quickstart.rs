//! Quickstart: boot an in-process Ring cluster, use the whole API.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use ring_kvs::{Cluster, ClusterSpec, MemgestDescriptor};

fn main() {
    // The paper's evaluation deployment: 5 nodes (3 coordinators + 2
    // redundant), seven memgests: REP1..REP4, SRS21, SRS31, SRS32.
    let cluster = Cluster::start(ClusterSpec::paper_evaluation());
    let mut client = cluster.client();

    // Plain puts go to the default memgest (REP1, unreliable).
    let v1 = client.put(1, b"hello ring").unwrap();
    println!("put key=1 -> version {v1}");
    assert_eq!(client.get(1).unwrap(), b"hello ring");

    // Per-key resilience: store important data erasure-coded...
    client.put_to(2, b"precious", 6).unwrap(); // SRS(3,2): tolerates 2 failures.
                                               // ...and hot data fully replicated.
    client.put_to(3, b"hot item", 2).unwrap(); // Rep(3).

    // The key feature: every key lives in ONE strongly consistent
    // namespace — a get never needs to know the storage scheme.
    for key in [1u64, 2, 3] {
        let (value, version) = client.get_versioned(key).unwrap();
        println!(
            "get key={key} -> {:?} (version {version})",
            String::from_utf8_lossy(&value)
        );
    }

    // Change a key's resilience in place: move is node-local thanks to
    // the shared SRS key-to-node mapping, no remapping or migration.
    let v = client.move_key(2, 2).unwrap(); // SRS(3,2) -> Rep(3).
    println!("moved key=2 to REP3 -> version {v}");
    assert_eq!(client.get(2).unwrap(), b"precious");

    // Manage memgests at runtime.
    let custom = client.create_memgest(MemgestDescriptor::srs(2, 2)).unwrap();
    println!("created SRS(2,2) memgest -> id {custom}");
    client.put_to(4, b"custom scheme", custom).unwrap();
    let desc = client.memgest_descriptor(custom).unwrap();
    println!("descriptor of {custom}: {:?}", desc.scheme);

    // Delete.
    client.delete(1).unwrap();
    assert!(client.get(1).is_err());
    println!("deleted key=1");

    cluster.shutdown();
    println!("done.");
}
