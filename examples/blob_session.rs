//! Temporary blob storage (Section 2, use case 4): the write-modify-
//! commit pattern of cloud blob stores.
//!
//! Users upload picture blobs, apply filters, and then either commit
//! (the blob moves to reliable storage) or let the session expire (the
//! blob is deleted). Uncommitted blobs live in the unreliable memgest:
//! the memory footprint before commit is `S * tau` instead of
//! `S * O * tau`, a `1/O` reduction (Section 6.2) for the price of one
//! ~µs move per committed blob.
//!
//! ```text
//! cargo run --example blob_session --release
//! ```

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ring_kvs::{Cluster, ClusterSpec, Scheme};

const STAGING: u32 = 0; // Rep(1).
const DURABLE: u32 = 2; // Rep(3).
const BLOB: usize = 2048;

fn main() {
    let cluster = Cluster::start(ClusterSpec::paper_evaluation());
    let mut client = cluster.client();
    let mut rng = StdRng::seed_from_u64(7);

    let mut sessions: HashMap<u64, Instant> = HashMap::new();
    let mut committed = 0u32;
    let mut expired = 0u32;
    let mut move_cost = std::time::Duration::ZERO;

    for blob_id in 0..500u64 {
        // Upload to staging (unreliable, fastest puts).
        let blob = vec![(blob_id % 251) as u8; BLOB];
        client.put_to(blob_id, &blob, STAGING).unwrap();
        sessions.insert(blob_id, Instant::now());

        // Apply a "filter": modify the staged blob a couple of times.
        for round in 0..2 {
            let mut edited = blob.clone();
            edited[0] = round;
            client.put_to(blob_id, &edited, STAGING).unwrap();
        }

        // The user decides: ~60% commit, the rest abandon the session.
        if rng.gen_bool(0.6) {
            let t0 = Instant::now();
            client.move_key(blob_id, DURABLE).unwrap();
            move_cost += t0.elapsed();
            committed += 1;
        } else {
            client.delete(blob_id).unwrap();
            expired += 1;
        }
        sessions.remove(&blob_id);
    }

    let overhead = Scheme::Rep { r: 3 }.storage_overhead(3);
    println!("{committed} blobs committed, {expired} sessions expired");
    println!(
        "staging memory per uncommitted blob: {BLOB} B instead of {} B ({}x saved while pending)",
        (BLOB as f64 * overhead) as usize,
        overhead
    );
    println!(
        "average commit cost (one move): {:.1} µs",
        move_cost.as_secs_f64() * 1e6 / committed.max(1) as f64
    );

    // Spot-check: committed blobs are durable and correctly versioned.
    let sample = 0u64;
    if client.get(sample).is_ok() {
        println!("blob {sample} readable from durable storage");
    }
    cluster.shutdown();
}
