//! Importance of the data (Section 2, use case 3): iterative algorithms
//! whose intermediate state grows more valuable over time.
//!
//! A toy PageRank runs on a small graph. Early iterations are cheap to
//! recompute, so their checkpoints go to the unreliable memgest; as the
//! computation progresses the recompute cost rises and the checkpoint's
//! resilience is dynamically increased (REP1 → SRS21 → SRS32 → REP3)
//! with `move` — no recomputation, no copies through the client.
//!
//! ```text
//! cargo run --example pagerank_checkpoint --release
//! ```

use ring_kvs::{Cluster, ClusterSpec};

const N: usize = 64; // Vertices.
const ITERS: usize = 20;
const DAMPING: f64 = 0.85;

/// Resilience schedule: iteration -> memgest.
fn memgest_for_iteration(i: usize) -> (u32, &'static str) {
    match i {
        0..=4 => (0, "REP1 (recompute is cheap)"),
        5..=9 => (4, "SRS21 (one failure)"),
        10..=14 => (6, "SRS32 (two failures)"),
        _ => (2, "REP3 (full replication near convergence)"),
    }
}

fn encode(ranks: &[f64]) -> Vec<u8> {
    ranks.iter().flat_map(|r| r.to_le_bytes()).collect()
}

fn decode(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

fn main() {
    let cluster = Cluster::start(ClusterSpec::paper_evaluation());
    let mut client = cluster.client();

    // A ring-of-cliques toy graph: vertex i links to i+1 and i/2.
    let edges: Vec<(usize, usize)> = (0..N)
        .flat_map(|i| [(i, (i + 1) % N), (i, i / 2)])
        .collect();
    let mut out_degree = vec![0usize; N];
    for &(src, _) in &edges {
        out_degree[src] += 1;
    }

    let mut ranks = vec![1.0 / N as f64; N];
    let checkpoint_key = 9000u64;
    let mut previous_memgest: Option<u32> = None;

    for iter in 0..ITERS {
        // One synchronous PageRank step.
        let mut next = vec![(1.0 - DAMPING) / N as f64; N];
        for &(src, dst) in &edges {
            next[dst] += DAMPING * ranks[src] / out_degree[src] as f64;
        }
        ranks = next;

        // Checkpoint with iteration-appropriate resilience.
        let (mid, label) = memgest_for_iteration(iter);
        match previous_memgest {
            Some(prev) if prev == mid => {
                client.put_to(checkpoint_key, &encode(&ranks), mid).unwrap();
            }
            Some(_) => {
                // Raise resilience in place, then overwrite with the new
                // iterate (higher version, same memgest).
                client.move_key(checkpoint_key, mid).unwrap();
                client.put_to(checkpoint_key, &encode(&ranks), mid).unwrap();
                println!("iteration {iter:2}: checkpoint escalated to {label}");
            }
            None => {
                client.put_to(checkpoint_key, &encode(&ranks), mid).unwrap();
                println!("iteration {iter:2}: checkpoint starts in {label}");
            }
        }
        previous_memgest = Some(mid);
    }

    // Restore from the final checkpoint and verify.
    let restored = decode(&client.get(checkpoint_key).unwrap());
    assert_eq!(restored.len(), N);
    let total: f64 = restored.iter().sum();
    println!(
        "\nrestored final checkpoint: {} ranks, sum = {total:.6} (should be ~1)",
        restored.len()
    );
    assert!((total - 1.0).abs() < 1e-6);
    let max = restored
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaNs"))
        .expect("non-empty");
    println!("highest-ranked vertex: {} (rank {:.4})", max.0, max.1);
    cluster.shutdown();
}
