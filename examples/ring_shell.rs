//! An interactive shell over an in-process Ring cluster: poke at the
//! per-key resilience API by hand.
//!
//! ```text
//! cargo run --example ring_shell --release
//! ring> put 1 hello 6        # put key 1 into memgest 6 (SRS32)
//! ring> get 1
//! ring> move 1 0             # move it to REP1
//! ring> stats 0              # node 0 introspection
//! ring> kill 2               # crash node 2 (spare takes over)
//! ring> help
//! ```

use std::io::{BufRead, Write};

use ring_kvs::{Cluster, ClusterSpec, MemgestDescriptor, Scheme};

const HELP: &str = "\
commands:
  put <key> <value> [memgest]   write a value (default memgest if omitted)
  get <key>                     read the highest committed version
  del <key>                     delete a key
  move <key> <memgest>          change the key's storage scheme
  mkmemgest rep <r>             create a Rep(r) memgest
  mkmemgest srs <k> <m>         create an SRS(k,m) memgest
  memgests                      list memgests
  stats <node>                  node introspection (ops, bytes)
  kill <node>                   crash a node
  help                          this text
  quit                          exit";

fn main() {
    let spec = ClusterSpec {
        spares: 1,
        ..ClusterSpec::paper_evaluation()
    };
    let cluster = Cluster::start(spec);
    let mut client = cluster.client();
    let mut memgests: Vec<(u32, String)> = vec![
        (0, "REP1 (unreliable)".into()),
        (1, "REP2".into()),
        (2, "REP3".into()),
        (3, "REP4".into()),
        (4, "SRS(2,1)".into()),
        (5, "SRS(3,1)".into()),
        (6, "SRS(3,2)".into()),
    ];

    println!("Ring shell — 5 nodes + 1 spare, 7 memgests. Type `help`.");
    let stdin = std::io::stdin();
    loop {
        print!("ring> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let outcome = match parts.as_slice() {
            [] => continue,
            ["quit"] | ["exit"] => break,
            ["help"] => {
                println!("{HELP}");
                continue;
            }
            ["memgests"] => {
                for (id, label) in &memgests {
                    println!("  {id}: {label}");
                }
                continue;
            }
            ["put", key, value] => parse_key(key).and_then(|k| {
                client
                    .put(k, value.as_bytes())
                    .map(|v| format!("ok (version {v})"))
                    .map_err(|e| e.to_string())
            }),
            ["put", key, value, mid] => parse_key(key).and_then(|k| {
                let mid: u32 = mid.parse().map_err(|_| "bad memgest id".to_string())?;
                client
                    .put_to(k, value.as_bytes(), mid)
                    .map(|v| format!("ok (version {v})"))
                    .map_err(|e| e.to_string())
            }),
            ["get", key] => parse_key(key).and_then(|k| {
                client
                    .get_versioned(k)
                    .map(|(v, ver)| {
                        format!("{:?} (version {ver})", String::from_utf8_lossy(&v))
                    })
                    .map_err(|e| e.to_string())
            }),
            ["del", key] => parse_key(key).and_then(|k| {
                client
                    .delete(k)
                    .map(|()| "deleted".to_string())
                    .map_err(|e| e.to_string())
            }),
            ["move", key, mid] => parse_key(key).and_then(|k| {
                let mid: u32 = mid.parse().map_err(|_| "bad memgest id".to_string())?;
                client
                    .move_key(k, mid)
                    .map(|v| format!("moved (version {v})"))
                    .map_err(|e| e.to_string())
            }),
            ["mkmemgest", "rep", r] => r
                .parse::<usize>()
                .map_err(|_| "bad r".to_string())
                .and_then(|r| {
                    client
                        .create_memgest(MemgestDescriptor::rep(r))
                        .map_err(|e| e.to_string())
                })
                .map(|id| {
                    memgests.push((id, format!("{}", Scheme::Rep { r: r.parse().unwrap_or(0) })));
                    format!("created memgest {id}")
                }),
            ["mkmemgest", "srs", k, m] => {
                let parsed = k
                    .parse::<usize>()
                    .and_then(|k| m.parse::<usize>().map(|m| (k, m)))
                    .map_err(|_| "bad k/m".to_string());
                parsed.and_then(|(k, m)| {
                    client
                        .create_memgest(MemgestDescriptor::srs(k, m))
                        .map(|id| {
                            memgests.push((id, format!("SRS({k},{m})")));
                            format!("created memgest {id}")
                        })
                        .map_err(|e| e.to_string())
                })
            }
            ["stats", node] => node
                .parse::<u32>()
                .map_err(|_| "bad node id".to_string())
                .and_then(|n| client.node_stats(n).map_err(|e| e.to_string()))
                .map(|s| {
                    format!(
                        "node {} epoch {} active={} | puts={} gets={} moves={} dels={} redundancy={} | data={}B redundancy={}B meta={}B",
                        s.node,
                        s.epoch,
                        s.active,
                        s.ops.puts,
                        s.ops.gets,
                        s.ops.moves,
                        s.ops.deletes,
                        s.ops.redundancy_updates,
                        s.data_bytes(),
                        s.redundancy_bytes(),
                        s.meta_bytes()
                    )
                }),
            ["kill", node] => node
                .parse::<u32>()
                .map_err(|_| "bad node id".to_string())
                .map(|n| {
                    cluster.kill(n);
                    format!("node {n} killed (spare will take over)")
                }),
            other => Err(format!("unknown command {other:?} — try `help`")),
        };
        match outcome {
            Ok(msg) => println!("{msg}"),
            Err(msg) => println!("error: {msg}"),
        }
    }
    cluster.shutdown();
}

fn parse_key(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad key '{s}'"))
}
