//! Storage Performance Council (SPC) trace records and synthetic
//! generators for the five traces priced in the paper's Figure 10.
//!
//! The original traces (OLTP at a large financial institution, and a
//! popular search engine's I/O) are distributed by the SPC and are not
//! redistributable; the pricing experiment only depends on each trace's
//! *aggregate* statistics — operation mix, request sizes, transferred
//! volume and footprint — so [`TraceProfile`] reproduces those from the
//! published trace characterisations and [`synthesize`] emits records in
//! the SPC trace file format (ASU, LBA, size, opcode, timestamp).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One SPC trace record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpcRecord {
    /// Application-specific unit (logical volume id).
    pub asu: u32,
    /// Logical block address (512-byte blocks).
    pub lba: u64,
    /// Request size in bytes.
    pub size: u32,
    /// `true` for reads, `false` for writes.
    pub is_read: bool,
    /// Seconds since trace start.
    pub timestamp: f64,
}

impl SpcRecord {
    /// Renders the record in the SPC trace file format:
    /// `ASU,LBA,size,opcode,timestamp`.
    pub fn to_line(&self) -> String {
        format!(
            "{},{},{},{},{:.6}",
            self.asu,
            self.lba,
            self.size,
            if self.is_read { 'R' } else { 'W' },
            self.timestamp
        )
    }

    /// Parses a record from the SPC trace file format.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn parse_line(line: &str) -> Result<SpcRecord, String> {
        let fields: Vec<&str> = line.trim().split(',').collect();
        if fields.len() < 5 {
            return Err(format!("expected 5 fields, got {}", fields.len()));
        }
        let asu = fields[0].parse().map_err(|e| format!("asu: {e}"))?;
        let lba = fields[1].parse().map_err(|e| format!("lba: {e}"))?;
        let size = fields[2].parse().map_err(|e| format!("size: {e}"))?;
        let is_read = match fields[3].trim() {
            "R" | "r" => true,
            "W" | "w" => false,
            other => return Err(format!("opcode: unknown '{other}'")),
        };
        let timestamp = fields[4].parse().map_err(|e| format!("timestamp: {e}"))?;
        Ok(SpcRecord {
            asu,
            lba,
            size,
            is_read,
            timestamp,
        })
    }
}

/// Aggregate profile of one of the paper's five traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceProfile {
    /// Trace name as used in Figure 10.
    pub name: &'static str,
    /// Total number of requests in the original trace.
    pub requests: u64,
    /// Fraction of requests that are writes.
    pub write_ratio: f64,
    /// Mean request size in bytes.
    pub mean_request_bytes: u32,
    /// Footprint (stored capacity the trace touches) in GiB.
    pub footprint_gib: f64,
    /// Trace duration in hours.
    pub duration_hours: f64,
}

/// The five traces of Figure 10, with aggregate statistics from the
/// published SPC trace characterisations (UMass trace repository).
pub const TRACES: [TraceProfile; 5] = [
    TraceProfile {
        name: "Financial1",
        requests: 5_334_987,
        write_ratio: 0.768, // Put-heavy OLTP.
        mean_request_bytes: 3_584,
        footprint_gib: 17.2,
        duration_hours: 12.1,
    },
    TraceProfile {
        name: "Financial2",
        requests: 3_699_194,
        write_ratio: 0.176, // OLTP, read-dominant but write-significant.
        mean_request_bytes: 2_560,
        footprint_gib: 8.4,
        duration_hours: 12.0,
    },
    TraceProfile {
        name: "WebSearch1",
        requests: 1_055_448,
        write_ratio: 0.0002,
        mean_request_bytes: 15_360,
        footprint_gib: 15.2,
        duration_hours: 2.5,
    },
    TraceProfile {
        name: "WebSearch2",
        requests: 4_579_809,
        write_ratio: 0.0002,
        mean_request_bytes: 15_360,
        footprint_gib: 15.8,
        duration_hours: 4.3,
    },
    TraceProfile {
        name: "WebSearch3",
        requests: 4_261_709,
        write_ratio: 0.0002,
        mean_request_bytes: 15_360,
        footprint_gib: 16.2,
        duration_hours: 4.5,
    },
];

/// Looks a trace profile up by name.
pub fn trace_by_name(name: &str) -> Option<&'static TraceProfile> {
    TRACES.iter().find(|t| t.name == name)
}

/// Aggregate I/O statistics of a trace (measured or synthesized) — the
/// inputs of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Footprint in GiB.
    pub footprint_gib: f64,
    /// Duration in hours.
    pub duration_hours: f64,
}

impl TraceStats {
    /// Accumulates one record.
    pub fn add(&mut self, r: &SpcRecord) {
        if r.is_read {
            self.reads += 1;
            self.read_bytes += r.size as u64;
        } else {
            self.writes += 1;
            self.write_bytes += r.size as u64;
        }
        self.duration_hours = self.duration_hours.max(r.timestamp / 3600.0);
    }

    /// Exact expected statistics of a profile (no sampling noise) — used
    /// when pricing full traces without materialising millions of
    /// records.
    pub fn from_profile(p: &TraceProfile) -> TraceStats {
        let writes = (p.requests as f64 * p.write_ratio).round() as u64;
        let reads = p.requests - writes;
        TraceStats {
            reads,
            writes,
            read_bytes: reads * p.mean_request_bytes as u64,
            write_bytes: writes * p.mean_request_bytes as u64,
            footprint_gib: p.footprint_gib,
            duration_hours: p.duration_hours,
        }
    }
}

/// Synthesizes `n` records statistically matching `profile`.
///
/// Request sizes are drawn from a geometric-ish mixture around the mean
/// (SPC sizes are multiples of 512); arrival times are uniform over the
/// trace duration and emitted in order.
pub fn synthesize(profile: &TraceProfile, n: usize, seed: u64) -> Vec<SpcRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let footprint_blocks = (profile.footprint_gib * (1u64 << 30) as f64 / 512.0) as u64;
    let mut out = Vec::with_capacity(n);
    let dt = profile.duration_hours * 3600.0 / n.max(1) as f64;
    for i in 0..n {
        let is_read = rng.gen::<f64>() >= profile.write_ratio;
        // Sizes: half mean, mean, or 2x mean (rounded to 512).
        let factor = match rng.gen_range(0..4) {
            0 => 0.5,
            1 | 2 => 1.0,
            _ => 1.5,
        };
        let size = ((profile.mean_request_bytes as f64 * factor) as u32).div_ceil(512) * 512;
        out.push(SpcRecord {
            asu: rng.gen_range(0..3),
            lba: rng.gen_range(0..footprint_blocks.max(1)),
            size,
            is_read,
            timestamp: dt * i as f64,
        });
    }
    out
}

/// Writes records to a file in the SPC trace format (one record per
/// line: `ASU,LBA,size,opcode,timestamp`).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace_file(path: &std::path::Path, records: &[SpcRecord]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for r in records {
        writeln!(f, "{}", r.to_line())?;
    }
    Ok(())
}

/// Reads an SPC-format trace file, skipping blank lines.
///
/// # Errors
///
/// Returns I/O errors, or `InvalidData` for malformed records.
pub fn read_trace_file(path: &std::path::Path) -> std::io::Result<Vec<SpcRecord>> {
    use std::io::BufRead;
    let f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (no, line) in f.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec = SpcRecord::parse_line(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", no + 1),
            )
        })?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_line_round_trip() {
        let r = SpcRecord {
            asu: 2,
            lba: 123456,
            size: 4096,
            is_read: true,
            timestamp: 12.5,
        };
        let parsed = SpcRecord::parse_line(&r.to_line()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(SpcRecord::parse_line("1,2,3").is_err());
        assert!(SpcRecord::parse_line("1,2,3,X,4").is_err());
        assert!(SpcRecord::parse_line("a,2,3,R,4").is_err());
    }

    #[test]
    fn five_traces_defined() {
        assert_eq!(TRACES.len(), 5);
        assert!(trace_by_name("Financial1").is_some());
        assert!(trace_by_name("WebSearch3").is_some());
        assert!(trace_by_name("Nope").is_none());
    }

    #[test]
    fn financial1_is_put_heavy_websearch_get_heavy() {
        let f1 = trace_by_name("Financial1").unwrap();
        assert!(f1.write_ratio > 0.5);
        for ws in ["WebSearch1", "WebSearch2", "WebSearch3"] {
            assert!(trace_by_name(ws).unwrap().write_ratio < 0.01, "{ws}");
        }
    }

    #[test]
    fn synthesized_trace_matches_profile() {
        let p = trace_by_name("Financial1").unwrap();
        let recs = synthesize(p, 50_000, 7);
        assert_eq!(recs.len(), 50_000);
        let mut stats = TraceStats::default();
        for r in &recs {
            stats.add(r);
        }
        let wr = stats.writes as f64 / (stats.reads + stats.writes) as f64;
        assert!((wr - p.write_ratio).abs() < 0.02, "write ratio {wr}");
        let mean = (stats.read_bytes + stats.write_bytes) / (stats.reads + stats.writes);
        let expect = p.mean_request_bytes as u64;
        assert!(
            mean > expect / 2 && mean < expect * 2,
            "mean size {mean} vs {expect}"
        );
        // Timestamps ordered, sizes 512-aligned.
        for w in recs.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert!(recs.iter().all(|r| r.size % 512 == 0 && r.size > 0));
    }

    #[test]
    fn trace_file_round_trip() {
        let dir = std::env::temp_dir().join("ring_spc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.spc");
        let records = synthesize(trace_by_name("Financial2").unwrap(), 500, 3);
        write_trace_file(&path, &records).unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(back.len(), records.len());
        for (a, b) in records.iter().zip(&back) {
            assert_eq!(a.asu, b.asu);
            assert_eq!(a.lba, b.lba);
            assert_eq!(a.size, b.size);
            assert_eq!(a.is_read, b.is_read);
            assert!((a.timestamp - b.timestamp).abs() < 1e-3);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_file_rejects_garbage() {
        let dir = std::env::temp_dir().join("ring_spc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.spc");
        std::fs::write(&path, "0,1,512,R,0.0\nnot a record\n").unwrap();
        let err = read_trace_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_from_profile_consistent() {
        let p = trace_by_name("WebSearch1").unwrap();
        let s = TraceStats::from_profile(p);
        assert_eq!(s.reads + s.writes, p.requests);
        assert!(s.reads > s.writes * 1000);
        assert_eq!(s.footprint_gib, p.footprint_gib);
    }
}
