//! YCSB-style key-value workload generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipfian::{ScrambledZipfian, Zipfian};

/// How keys are drawn from the key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// YCSB Zipfian: rank-0 key hottest.
    Zipfian,
    /// YCSB scrambled Zipfian: Zipfian popularity, hashed placement.
    ScrambledZipfian,
    /// YCSB "latest": Zipfian skew towards the most recently inserted
    /// keys (highest ids).
    Latest,
}

/// A single generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Read the value of a key.
    Get {
        /// The key, as an 8-byte YCSB-style identifier.
        key: u64,
    },
    /// Write `value_len` bytes to a key.
    Put {
        /// The key.
        key: u64,
        /// Value size in bytes.
        value_len: usize,
    },
}

impl Op {
    /// The key the operation touches.
    pub fn key(&self) -> u64 {
        match self {
            Op::Get { key } | Op::Put { key, .. } => *key,
        }
    }

    /// Returns true for get operations.
    pub fn is_get(&self) -> bool {
        matches!(self, Op::Get { .. })
    }
}

/// Workload parameters: the knobs of the paper's Figure 11 (get:put
/// ratios over a Zipfian key distribution with 8-byte keys and 1 KiB
/// values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of distinct keys.
    pub key_count: u64,
    /// Value size in bytes for puts.
    pub value_len: usize,
    /// Fraction of operations that are gets, in `[0, 1]`.
    pub get_ratio: f64,
    /// Key distribution.
    pub distribution: KeyDistribution,
}

impl WorkloadSpec {
    /// The paper's Figure 11 configuration with the given get ratio:
    /// Zipfian keys, 1 KiB values.
    pub fn figure11(get_ratio: f64) -> WorkloadSpec {
        WorkloadSpec {
            key_count: 100_000,
            value_len: 1024,
            get_ratio,
            distribution: KeyDistribution::ScrambledZipfian,
        }
    }

    fn ycsb(get_ratio: f64, distribution: KeyDistribution) -> WorkloadSpec {
        WorkloadSpec {
            key_count: 100_000,
            value_len: 1024,
            get_ratio,
            distribution,
        }
    }

    /// YCSB workload A: update heavy (50:50), Zipfian.
    pub fn ycsb_a() -> WorkloadSpec {
        Self::ycsb(0.5, KeyDistribution::ScrambledZipfian)
    }

    /// YCSB workload B: read mostly (95:5), Zipfian.
    pub fn ycsb_b() -> WorkloadSpec {
        Self::ycsb(0.95, KeyDistribution::ScrambledZipfian)
    }

    /// YCSB workload C: read only, Zipfian.
    pub fn ycsb_c() -> WorkloadSpec {
        Self::ycsb(1.0, KeyDistribution::ScrambledZipfian)
    }

    /// YCSB workload D: read latest (95:5 over the newest keys).
    pub fn ycsb_d() -> WorkloadSpec {
        Self::ycsb(0.95, KeyDistribution::Latest)
    }

    /// YCSB workload F approximation: read-modify-write dominant
    /// (every write paired with a read -> 50:50 mix), Zipfian.
    pub fn ycsb_f() -> WorkloadSpec {
        Self::ycsb(0.5, KeyDistribution::ScrambledZipfian)
    }
}

enum KeyGen {
    Uniform,
    Zipfian(Zipfian),
    Scrambled(ScrambledZipfian),
    Latest(Zipfian),
}

/// A deterministic, seedable stream of operations.
pub struct WorkloadGen {
    spec: WorkloadSpec,
    keys: KeyGen,
    rng: StdRng,
}

impl WorkloadGen {
    /// Creates a generator for `spec`, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `key_count == 0` or `get_ratio` is outside `[0, 1]`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> WorkloadGen {
        assert!(spec.key_count > 0, "need at least one key");
        assert!(
            (0.0..=1.0).contains(&spec.get_ratio),
            "get_ratio must be in [0, 1]"
        );
        let keys = match spec.distribution {
            KeyDistribution::Uniform => KeyGen::Uniform,
            KeyDistribution::Zipfian => KeyGen::Zipfian(Zipfian::new(spec.key_count)),
            KeyDistribution::ScrambledZipfian => {
                KeyGen::Scrambled(ScrambledZipfian::new(spec.key_count))
            }
            KeyDistribution::Latest => KeyGen::Latest(Zipfian::new(spec.key_count)),
        };
        WorkloadGen {
            spec,
            keys,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The workload parameters.
    pub fn spec(&self) -> WorkloadSpec {
        self.spec
    }

    /// Draws the next key.
    pub fn next_key(&mut self) -> u64 {
        match &self.keys {
            KeyGen::Uniform => self.rng.gen_range(0..self.spec.key_count),
            KeyGen::Zipfian(z) => z.next(&mut self.rng),
            KeyGen::Scrambled(z) => z.next(&mut self.rng),
            KeyGen::Latest(z) => {
                // Rank 0 = the newest key (highest id).
                self.spec.key_count - 1 - z.next(&mut self.rng)
            }
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.next_key();
        if self.rng.gen::<f64>() < self.spec.get_ratio {
            Op::Get { key }
        } else {
            Op::Put {
                key,
                value_len: self.spec.value_len,
            }
        }
    }

    /// Generates a batch of `n` operations.
    pub fn batch(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }

    /// Generates the keys needed to pre-load the store (every key once,
    /// in order), as puts.
    pub fn load_phase(&self) -> impl Iterator<Item = Op> + '_ {
        (0..self.spec.key_count).map(move |key| Op::Put {
            key,
            value_len: self.spec.value_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_respected() {
        for (ratio, lo, hi) in [
            (1.0, 1.0, 1.0),
            (0.95, 0.93, 0.97),
            (0.5, 0.47, 0.53),
            (0.0, 0.0, 0.0),
        ] {
            let mut gen = WorkloadGen::new(WorkloadSpec::figure11(ratio), 42);
            let ops = gen.batch(20_000);
            let gets = ops.iter().filter(|o| o.is_get()).count() as f64 / ops.len() as f64;
            assert!((lo..=hi).contains(&gets), "ratio {ratio}: observed {gets}");
        }
    }

    #[test]
    fn keys_in_range_for_all_distributions() {
        for dist in [
            KeyDistribution::Uniform,
            KeyDistribution::Zipfian,
            KeyDistribution::ScrambledZipfian,
        ] {
            let spec = WorkloadSpec {
                key_count: 37,
                value_len: 64,
                get_ratio: 0.5,
                distribution: dist,
            };
            let mut gen = WorkloadGen::new(spec, 1);
            for _ in 0..5_000 {
                assert!(gen.next_key() < 37, "{dist:?}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = WorkloadSpec::figure11(0.5);
        let mut a = WorkloadGen::new(spec, 9);
        let mut b = WorkloadGen::new(spec, 9);
        assert_eq!(a.batch(1000), b.batch(1000));
        let mut c = WorkloadGen::new(spec, 10);
        assert_ne!(a.batch(1000), c.batch(1000));
    }

    #[test]
    fn load_phase_covers_every_key_once() {
        let spec = WorkloadSpec {
            key_count: 100,
            value_len: 8,
            get_ratio: 0.5,
            distribution: KeyDistribution::Uniform,
        };
        let gen = WorkloadGen::new(spec, 0);
        let keys: Vec<u64> = gen.load_phase().map(|op| op.key()).collect();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
        assert!(gen.load_phase().all(|op| !op.is_get()));
    }

    #[test]
    fn put_value_len_matches_spec() {
        let mut gen = WorkloadGen::new(WorkloadSpec::figure11(0.0), 3);
        match gen.next_op() {
            Op::Put { value_len, .. } => assert_eq!(value_len, 1024),
            other => panic!("expected put, got {other:?}"),
        }
    }

    #[test]
    fn latest_distribution_prefers_new_keys() {
        let spec = WorkloadSpec {
            key_count: 1000,
            value_len: 8,
            get_ratio: 1.0,
            distribution: KeyDistribution::Latest,
        };
        let mut gen = WorkloadGen::new(spec, 6);
        let mut newest = 0u32;
        let mut oldest = 0u32;
        for _ in 0..10_000 {
            let k = gen.next_key();
            assert!(k < 1000);
            if k >= 900 {
                newest += 1;
            }
            if k < 100 {
                oldest += 1;
            }
        }
        assert!(newest > oldest * 5, "newest {newest} vs oldest {oldest}");
    }

    #[test]
    fn ycsb_presets_have_documented_mixes() {
        assert_eq!(WorkloadSpec::ycsb_a().get_ratio, 0.5);
        assert_eq!(WorkloadSpec::ycsb_b().get_ratio, 0.95);
        assert_eq!(WorkloadSpec::ycsb_c().get_ratio, 1.0);
        assert_eq!(WorkloadSpec::ycsb_d().distribution, KeyDistribution::Latest);
        assert_eq!(WorkloadSpec::ycsb_f().get_ratio, 0.5);
    }

    #[test]
    #[should_panic(expected = "get_ratio")]
    fn bad_ratio_rejected() {
        let mut spec = WorkloadSpec::figure11(0.5);
        spec.get_ratio = 1.5;
        let _ = WorkloadGen::new(spec, 0);
    }
}
