//! The storage pricing model of Figure 10.
//!
//! Operation and storage prices for the *hot* (`Rep(3)`) and *cold*
//! (`SRS(3,2,3)`) schemes come from Azure Blob Storage pricing for
//! Central US as of February 2018 (the paper's reference [18]). Azure
//! offers no unreplicated tier, so — exactly as the paper does — the
//! *simple* (`Rep(1)`) scheme reuses the hot price points with 3x
//! cheaper puts (writes are not replicated).

use serde::{Deserialize, Serialize};

use crate::spc::TraceStats;

const GIB: f64 = (1u64 << 30) as f64;
const HOURS_PER_MONTH: f64 = 730.0;

/// The three storage classes priced in Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeClass {
    /// High-performance replicated storage, `Rep(3)`.
    Hot,
    /// Low-overhead erasure-coded storage, `SRS(3,2,3)`.
    Cold,
    /// Unreplicated storage, `Rep(1)`.
    Simple,
}

impl SchemeClass {
    /// All classes in presentation order.
    pub const ALL: [SchemeClass; 3] = [SchemeClass::Hot, SchemeClass::Cold, SchemeClass::Simple];

    /// The label used in Figure 10.
    pub fn label(self) -> &'static str {
        match self {
            SchemeClass::Hot => "hot",
            SchemeClass::Cold => "cold",
            SchemeClass::Simple => "simple",
        }
    }
}

/// Price points in USD (Azure Blob Storage, Central US, Feb 2018).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricePoints {
    /// $/GiB/month of stored capacity.
    pub storage_per_gib_month: f64,
    /// $ per 10,000 write operations.
    pub write_per_10k: f64,
    /// $ per 10,000 read operations.
    pub read_per_10k: f64,
    /// $/GiB of data retrieval (cool-tier reads).
    pub retrieval_per_gib: f64,
    /// $/GiB of data write (cool-tier ingest).
    pub data_write_per_gib: f64,
    /// $/GiB outbound data transfer (applies to all tiers).
    pub egress_per_gib: f64,
}

/// The Feb-2018 price points for a scheme class.
pub fn price_points(class: SchemeClass) -> PricePoints {
    match class {
        SchemeClass::Hot => PricePoints {
            storage_per_gib_month: 0.0184,
            write_per_10k: 0.05,
            read_per_10k: 0.004,
            retrieval_per_gib: 0.0,
            data_write_per_gib: 0.0,
            egress_per_gib: 0.087,
        },
        SchemeClass::Cold => PricePoints {
            storage_per_gib_month: 0.01,
            write_per_10k: 0.10,
            read_per_10k: 0.01,
            retrieval_per_gib: 0.01,
            data_write_per_gib: 0.0025,
            egress_per_gib: 0.087,
        },
        // Simple: hot prices with writes not replicated (3x cheaper).
        SchemeClass::Simple => PricePoints {
            storage_per_gib_month: 0.0184,
            write_per_10k: 0.05 / 3.0,
            read_per_10k: 0.004,
            retrieval_per_gib: 0.0,
            data_write_per_gib: 0.0,
            egress_per_gib: 0.087,
        },
    }
}

/// Cost of running a trace under one scheme, split into the four
/// components shown in Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Write-operation cost (including cool-tier data-write charges).
    pub write: f64,
    /// Read-operation cost (including cool-tier retrieval charges).
    pub read: f64,
    /// Outbound data-transfer cost.
    pub transfer: f64,
    /// Stored-capacity cost over the trace duration.
    pub storage: f64,
}

impl CostBreakdown {
    /// Total cost in USD.
    pub fn total(&self) -> f64 {
        self.write + self.read + self.transfer + self.storage
    }
}

/// Prices a trace under one scheme class.
pub fn price(stats: &TraceStats, class: SchemeClass) -> CostBreakdown {
    let p = price_points(class);
    let write_gib = stats.write_bytes as f64 / GIB;
    let read_gib = stats.read_bytes as f64 / GIB;
    let months = stats.duration_hours / HOURS_PER_MONTH;
    CostBreakdown {
        write: stats.writes as f64 / 10_000.0 * p.write_per_10k + write_gib * p.data_write_per_gib,
        read: stats.reads as f64 / 10_000.0 * p.read_per_10k + read_gib * p.retrieval_per_gib,
        transfer: read_gib * p.egress_per_gib,
        storage: stats.footprint_gib * months * p.storage_per_gib_month,
    }
}

/// Prices a trace under all three classes and normalises to the simple
/// scheme's total — the y-axis of Figure 10.
pub fn normalized_prices(stats: &TraceStats) -> Vec<(SchemeClass, CostBreakdown, f64)> {
    let simple = price(stats, SchemeClass::Simple).total();
    SchemeClass::ALL
        .iter()
        .map(|&c| {
            let b = price(stats, c);
            let rel = if simple > 0.0 {
                b.total() / simple
            } else {
                0.0
            };
            (c, b, rel)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spc::{trace_by_name, TraceStats};

    fn stats(name: &str) -> TraceStats {
        TraceStats::from_profile(trace_by_name(name).unwrap())
    }

    #[test]
    fn simple_normalises_to_one() {
        for t in ["Financial1", "WebSearch1"] {
            let rows = normalized_prices(&stats(t));
            let simple = rows
                .iter()
                .find(|(c, _, _)| *c == SchemeClass::Simple)
                .unwrap();
            assert!((simple.2 - 1.0).abs() < 1e-12, "{t}");
        }
    }

    #[test]
    fn financial1_ordering_matches_figure10() {
        // Figure 10: for the put-heavy Financial1 trace, cold is the most
        // expensive (~5.5x simple) and roughly 2x hot.
        let rows = normalized_prices(&stats("Financial1"));
        let get = |c: SchemeClass| rows.iter().find(|(x, _, _)| *x == c).unwrap().2;
        let hot = get(SchemeClass::Hot);
        let cold = get(SchemeClass::Cold);
        assert!(hot > 1.5 && hot < 3.5, "hot = {hot}");
        assert!(cold > 3.5 && cold < 8.0, "cold = {cold}");
        assert!(
            cold / hot > 1.5 && cold / hot < 3.0,
            "cold/hot = {}",
            cold / hot
        );
    }

    #[test]
    fn websearch_prices_are_compressed() {
        // Get-dominant traces: write prices become irrelevant, so the
        // three schemes come out much closer than on Financial1.
        let rows = normalized_prices(&stats("WebSearch2"));
        let max = rows.iter().map(|r| r.2).fold(0.0, f64::max);
        assert!(max < 2.5, "max relative price {max}");
    }

    #[test]
    fn writes_dominate_financial1_costs() {
        let b = price(&stats("Financial1"), SchemeClass::Hot);
        assert!(b.write > b.read);
        assert!(b.write > b.storage);
    }

    #[test]
    fn transfer_equal_across_schemes() {
        let s = stats("WebSearch1");
        let hot = price(&s, SchemeClass::Hot).transfer;
        let cold = price(&s, SchemeClass::Cold).transfer;
        let simple = price(&s, SchemeClass::Simple).transfer;
        assert_eq!(hot, cold);
        assert_eq!(hot, simple);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = CostBreakdown {
            write: 1.0,
            read: 2.0,
            transfer: 3.0,
            storage: 4.0,
        };
        assert_eq!(b.total(), 10.0);
    }

    #[test]
    fn empty_stats_price_zero() {
        let b = price(&TraceStats::default(), SchemeClass::Hot);
        assert_eq!(b.total(), 0.0);
    }
}
