//! Workload generators and cost models for the Ring reproduction.
//!
//! Three families of inputs drive the paper's evaluation:
//!
//! - [`ycsb`]: YCSB-style key-value workloads (Cooper et al.) with
//!   Zipfian, uniform and latest key distributions and configurable
//!   get:put mixes — used by the throughput experiments (Figures 9/11).
//! - [`spc`]: Storage Performance Council trace records plus synthetic
//!   generators matching the published aggregate statistics of the five
//!   traces the paper prices (Financial1/2, WebSearch1/2/3) — used by
//!   the storage-pricing experiment (Figure 10). The real traces are
//!   proprietary; only their op mixes, request sizes and footprints
//!   matter for the cost model, and those are reproduced.
//! - [`cost`]: the Azure Blob Storage pricing model (Feb-2018 Central
//!   US price points) used to estimate the normalised cost of running a
//!   trace under the hot / cold / simple storage schemes.

pub mod cost;
pub mod spc;
pub mod ycsb;
mod zipfian;

pub use ycsb::{KeyDistribution, Op, WorkloadGen, WorkloadSpec};
pub use zipfian::{ScrambledZipfian, Zipfian};
