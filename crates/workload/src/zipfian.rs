//! Zipfian number generation, following the YCSB implementation of the
//! Gray et al. "Quickly generating billion-record synthetic databases"
//! algorithm.

use rand::Rng;

/// Default skew used by YCSB.
pub const YCSB_ZIPFIAN_CONSTANT: f64 = 0.99;

/// A Zipfian generator over `0..n`: item `i` is drawn with probability
/// proportional to `1 / (i + 1)^theta`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a generator over `0..items` with the YCSB default skew.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn new(items: u64) -> Zipfian {
        Zipfian::with_theta(items, YCSB_ZIPFIAN_CONSTANT)
    }

    /// Creates a generator with an explicit skew `theta` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `theta` is outside `(0, 1)`.
    pub fn with_theta(items: u64, theta: f64) -> Zipfian {
        assert!(items > 0, "need at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0, 1)");
        let zetan = Self::zeta(items, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            items,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Draws the next value in `0..items` (0 is the hottest key).
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        (v as u64).min(self.items - 1)
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// `zeta(2, theta)` — exposed for testing the constants.
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// FNV-1a 64-bit hash, as used by YCSB's scrambled Zipfian.
fn fnv1a(mut x: u64) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut hash: u64 = 0xcbf29ce484222325;
    for _ in 0..8 {
        let octet = x & 0xff;
        x >>= 8;
        hash ^= octet;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A scrambled Zipfian: Zipfian popularity ranks hashed over the key
/// space so that hot keys are spread rather than clustered at 0.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
    items: u64,
}

impl ScrambledZipfian {
    /// Creates a scrambled generator over `0..items`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn new(items: u64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::new(items),
            items,
        }
    }

    /// Draws the next key in `0..items`.
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        fnv1a(self.inner.next(rng)) % self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn values_stay_in_range() {
        let z = Zipfian::new(100);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 100);
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipfian::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(z.next(&mut rng), 0);
        }
    }

    #[test]
    fn distribution_is_skewed_toward_zero() {
        let z = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 1000];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // Item 0 should get roughly 1/zeta(1000, .99) ~ 12-13% of draws.
        let p0 = counts[0] as f64 / draws as f64;
        assert!(p0 > 0.08 && p0 < 0.20, "p0 = {p0}");
        // Head heavier than tail.
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[990..].iter().sum();
        assert!(head > tail * 20, "head {head} vs tail {tail}");
    }

    #[test]
    fn relative_frequencies_follow_power_law() {
        let z = Zipfian::with_theta(100, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0u64; 100];
        for _ in 0..500_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // count(0)/count(9) should be near (10/1)^0.99 ~ 9.77; allow slack.
        let ratio = counts[0] as f64 / counts[9] as f64;
        assert!(ratio > 5.0 && ratio < 16.0, "ratio = {ratio}");
    }

    #[test]
    fn scrambled_spreads_hot_keys() {
        let z = ScrambledZipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // The hottest key should not be key 0 specifically (scrambling),
        // but a clear hot key must exist somewhere.
        let max = counts.iter().copied().max().unwrap();
        assert!(max > 5_000, "hottest key only {max} hits");
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonzero > 300, "only {nonzero} distinct keys drawn");
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = Zipfian::new(0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_rejected() {
        let _ = Zipfian::with_theta(10, 1.5);
    }

    #[test]
    fn deterministic_with_seeded_rng() {
        let z = Zipfian::new(50);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.next(&mut a), z.next(&mut b));
        }
    }
}
