//! Property-based tests for workload generation and the cost model.

use proptest::prelude::*;
use ring_workload::cost::{normalized_prices, price, SchemeClass};
use ring_workload::spc::{SpcRecord, TraceStats};
use ring_workload::{KeyDistribution, WorkloadGen, WorkloadSpec, Zipfian};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zipfian_stays_in_range(items in 1u64..10_000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = Zipfian::new(items);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.next(&mut rng) < items);
        }
    }

    #[test]
    fn workload_ops_respect_spec(
        keys in 1u64..5_000,
        ratio in 0.0f64..=1.0,
        vlen in 1usize..4096,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec {
            key_count: keys,
            value_len: vlen,
            get_ratio: ratio,
            distribution: KeyDistribution::ScrambledZipfian,
        };
        let mut gen = WorkloadGen::new(spec, seed);
        for op in gen.batch(300) {
            prop_assert!(op.key() < keys);
            if let ring_workload::Op::Put { value_len, .. } = op {
                prop_assert_eq!(value_len, vlen);
            }
        }
    }

    #[test]
    fn spc_record_line_round_trips(
        asu in 0u32..10,
        lba in any::<u64>(),
        size in (1u32..1000).prop_map(|x| x * 512),
        is_read in any::<bool>(),
        ts in 0.0f64..1e6,
    ) {
        let r = SpcRecord { asu, lba, size, is_read, timestamp: ts };
        let parsed = SpcRecord::parse_line(&r.to_line()).unwrap();
        prop_assert_eq!(parsed.asu, r.asu);
        prop_assert_eq!(parsed.lba, r.lba);
        prop_assert_eq!(parsed.size, r.size);
        prop_assert_eq!(parsed.is_read, r.is_read);
        prop_assert!((parsed.timestamp - r.timestamp).abs() < 1e-3);
    }

    #[test]
    fn prices_scale_monotonically_with_ops(
        reads in 0u64..10_000_000,
        writes in 0u64..10_000_000,
        extra in 1u64..1_000_000,
    ) {
        let base = TraceStats {
            reads,
            writes,
            read_bytes: reads * 4096,
            write_bytes: writes * 4096,
            footprint_gib: 10.0,
            duration_hours: 12.0,
        };
        let mut more_writes = base;
        more_writes.writes += extra;
        more_writes.write_bytes += extra * 4096;
        for class in SchemeClass::ALL {
            let a = price(&base, class).total();
            let b = price(&more_writes, class).total();
            prop_assert!(b >= a, "{class:?}: {b} < {a}");
        }
    }

    #[test]
    fn simple_always_normalises_to_one(
        reads in 1u64..1_000_000,
        writes in 1u64..1_000_000,
    ) {
        let stats = TraceStats {
            reads,
            writes,
            read_bytes: reads * 1024,
            write_bytes: writes * 1024,
            footprint_gib: 5.0,
            duration_hours: 10.0,
        };
        let rows = normalized_prices(&stats);
        let simple = rows.iter().find(|(c, _, _)| *c == SchemeClass::Simple).unwrap();
        prop_assert!((simple.2 - 1.0).abs() < 1e-12);
        // Hot is never cheaper than simple (same prices, pricier puts).
        let hot = rows.iter().find(|(c, _, _)| *c == SchemeClass::Hot).unwrap();
        prop_assert!(hot.2 >= 1.0 - 1e-12);
    }
}
