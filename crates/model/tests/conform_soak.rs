//! End-to-end trace conformance: a real seeded soak's recorded history,
//! projected through the refinement mapping, must replay cleanly
//! against the abstract model — version numbers included.

use ring_chaos::{run_soak, SoakConfig};
use ring_model::conform::{check_conformance, Conformance};

#[test]
fn sequential_soak_history_conforms() {
    let report = run_soak(&SoakConfig::sequential(0xC0DE));
    assert!(report.passed(), "sequential soak must linearize");
    let verdict = check_conformance(&report.history);
    match &verdict {
        Conformance::Ok { keys, states } => {
            assert!(*keys > 0);
            assert!(*states > 0);
        }
        other => panic!("sequential history must conform, got: {other}"),
    }
}

#[test]
fn straggler_soak_history_conforms() {
    // Stragglers force client-level retries: timed-out attempts
    // re-execute under fresh request ids, landing one tag at several
    // versions. The execution split must absorb exactly that. Seed
    // matches the tier-1 straggler smoke (`soak_smoke.rs`).
    let report = run_soak(&SoakConfig::quick_straggler(0x57A6));
    // The seed reproduces the schedule, not the thread interleaving:
    // under heavy parallel test load the soak's own checker can go
    // Inconclusive on a contention-dense interleaving. The conformance
    // verdict is only meaningful for histories the baseline checker
    // accepts, so bow out rather than duplicate soak_smoke's
    // (isolation-run) linearizability assertion here.
    if !report.passed() {
        eprintln!(
            "skipping conformance assert: baseline checker reported {:?}",
            report.checker
        );
        return;
    }
    let verdict = check_conformance(&report.history);
    assert!(
        !matches!(verdict, Conformance::Violation { .. }),
        "straggler history must not violate conformance: {verdict}"
    );
}
