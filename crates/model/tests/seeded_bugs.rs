//! The model checker's teeth: each deliberately seeded protocol bug
//! must be caught by exactly the invariant it attacks, with a minimal
//! counterexample trace that names the TLA+ actions on the path.

use ring_model::explore::explore;
use ring_model::spec::{Bug, Config};

#[test]
fn all_faithful_configs_are_violation_free() {
    for cfg in [Config::rep2(), Config::rep3(), Config::srs21()] {
        let r = explore(&cfg);
        assert!(
            r.ok(),
            "{}: unexpected violation:\n{}",
            cfg.name,
            r.violation.unwrap()
        );
        assert!(r.states > 1_000, "{}: only {} states", cfg.name, r.states);
    }
}

#[test]
fn commit_before_quorum_is_a_torn_commit() {
    let r = explore(&Config::rep2().with_bug(Bug::CommitEarly));
    let trace = r.violation.expect("CommitEarly must violate NoTornCommit");
    assert_eq!(trace.invariant, "NoTornCommit");
    // Minimal: IssuePut then the buggy CoordPrepare. BFS guarantees no
    // shorter path exists.
    assert_eq!(trace.steps.len(), 2, "counterexample not minimal:\n{trace}");
    let rendered = trace.to_string();
    assert!(rendered.contains("IssuePut(c="), "{rendered}");
    assert!(rendered.contains("CoordPrepare(c="), "{rendered}");
}

#[test]
fn skipped_dedup_breaks_at_most_once() {
    let r = explore(&Config::rep2().with_bug(Bug::SkipDedup));
    let trace = r.violation.expect("SkipDedup must violate AtMostOnce");
    assert_eq!(trace.invariant, "AtMostOnce");
    // Minimal: issue, prepare (no dedup window), one re-delivery that
    // re-executes and assigns a duplicate version.
    assert_eq!(trace.steps.len(), 3, "counterexample not minimal:\n{trace}");
    assert!(trace.to_string().contains("RetryDeliver(c="));
}

#[test]
fn stale_binding_breaks_monotone_reads() {
    let r = explore(&Config::rep2().with_bug(Bug::StaleRead));
    let trace = r
        .violation
        .expect("StaleRead must violate CommittedReadsLatest");
    assert_eq!(trace.invariant, "CommittedReadsLatest");
    let rendered = trace.to_string();
    assert!(rendered.contains("GetBind(c="), "{rendered}");
    // The violating state shows a bound read below its floor.
    assert!(rendered.contains("get-bound"), "{rendered}");
}

#[test]
fn counterexample_display_walks_from_init() {
    let r = explore(&Config::srs21().with_bug(Bug::CommitEarly));
    let trace = r.violation.expect("seeded bug must be caught");
    let rendered = trace.to_string();
    assert!(
        rendered.starts_with("invariant NoTornCommit violated after 2 step(s):"),
        "{rendered}"
    );
    // Steps are numbered from 1 and each carries a state summary.
    assert!(rendered.contains("   1. "), "{rendered}");
    assert!(rendered.contains("   2. "), "{rendered}");
    assert!(rendered.contains("need1"), "{rendered}");
}
