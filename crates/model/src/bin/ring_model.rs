//! `ring-model`: explicit-state exploration and trace conformance.
//!
//! ```text
//! ring-model --exhaustive
//!     Exhaustively explore the RingWriteSemantics transition system
//!     for every built-in configuration (rep2, rep3, srs21); print
//!     state counts and exit non-zero on any invariant violation,
//!     with a minimal counterexample.
//!
//! ring-model --conform <preset> [--seed N] [--budget N]
//!     Run the named soak preset (sequential, sequential_straggler,
//!     quick, quick_straggler), project its recorded history onto the
//!     abstract model, and check conformance. Exits non-zero on a
//!     non-conformant history.
//! ```

use std::process::ExitCode;

use ring_chaos::{run_soak, SoakConfig};
use ring_model::conform::{check_conformance_with_budget, Conformance, DEFAULT_BUDGET};
use ring_model::explore::explore;
use ring_model::spec::Config;

/// Default seed for `--conform` runs; override with `--seed`.
const DEFAULT_SEED: u64 = 0xB10C_5EED;

/// Accepts both decimal and `0x`-prefixed hex.
fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ring-model --exhaustive\n       \
         ring-model --conform <sequential|sequential_straggler|quick|quick_straggler> \
         [--seed N] [--budget N]"
    );
    ExitCode::from(2)
}

fn run_exhaustive() -> ExitCode {
    let configs = [Config::rep2(), Config::rep3(), Config::srs21()];
    let mut failed = false;
    for cfg in configs {
        let report = explore(&cfg);
        match &report.violation {
            None => println!(
                "{:>6}: {} states, {} transitions, depth {}, 0 violations",
                cfg.name, report.states, report.transitions, report.depth
            ),
            Some(trace) => {
                failed = true;
                println!(
                    "{:>6}: {} states explored, VIOLATION",
                    cfg.name, report.states
                );
                println!("{trace}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_conform(preset: &str, seed: u64, budget: u64) -> ExitCode {
    let cfg = match preset {
        "sequential" => SoakConfig::sequential(seed),
        "sequential_straggler" => SoakConfig::sequential_straggler(seed),
        "quick" => SoakConfig::quick(seed),
        "quick_straggler" => SoakConfig::quick_straggler(seed),
        other => {
            eprintln!("unknown preset: {other}");
            return usage();
        }
    };
    println!("soaking preset {preset} (seed {seed:#x}) ...");
    let report = run_soak(&cfg);
    println!(
        "  {} ops, {} timeouts, {} failures, checker: {}",
        report.ops,
        report.timeouts,
        report.failures,
        if report.passed() { "ok" } else { "VIOLATION" }
    );
    let verdict = check_conformance_with_budget(&report.history, budget);
    println!("  conformance: {verdict}");
    match verdict {
        Conformance::Ok { .. } => ExitCode::SUCCESS,
        // Budget exhaustion is a capacity statement, not a verdict;
        // surface it without failing CI (mirrors the linearizability
        // checker's treatment of Inconclusive).
        Conformance::Inconclusive { .. } => ExitCode::SUCCESS,
        Conformance::Violation { .. } => ExitCode::FAILURE,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut preset: Option<String> = None;
    let mut seed = DEFAULT_SEED;
    let mut budget = DEFAULT_BUDGET;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exhaustive" => mode = Some("exhaustive"),
            "--conform" => {
                mode = Some("conform");
                i += 1;
                preset = args.get(i).cloned();
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| parse_u64(s)) {
                    Some(s) => seed = s,
                    None => return usage(),
                }
            }
            "--budget" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(b) => budget = b,
                    None => return usage(),
                }
            }
            _ => return usage(),
        }
        i += 1;
    }
    match (mode, preset) {
        (Some("exhaustive"), _) => run_exhaustive(),
        (Some("conform"), Some(p)) => run_conform(&p, seed, budget),
        _ => usage(),
    }
}
