//! Breadth-first explicit-state exploration of the
//! [`RingWriteSemantics`](crate::spec) transition system.
//!
//! BFS (not DFS) so the first invariant violation found is at minimum
//! depth — the printed counterexample is a shortest trace by
//! construction. States are deduplicated through a hash map keyed on
//! the full [`State`] value; the arena index doubles as the parent
//! pointer for trace reconstruction. Successor generation is
//! deterministic, so two runs over the same [`Config`] explore the
//! same states in the same order.

use std::collections::HashMap;
use std::fmt;

use crate::spec::{check_invariants, successors, Action, Config, Pend, State};

/// A minimal counterexample: the action path from `Init` to the first
/// state violating an invariant.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The violated invariant's TLA+ name.
    pub invariant: &'static str,
    /// Actions from the initial state, paired with the state each one
    /// produced; the last state is the violating one.
    pub steps: Vec<(Action, State)>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant {} violated after {} step(s):",
            self.invariant,
            self.steps.len()
        )?;
        for (i, (action, state)) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>2}. {}", i + 1, action)?;
            writeln!(f, "      {}", summarize(state))?;
        }
        Ok(())
    }
}

/// One-line state summary for counterexample printing.
fn summarize(s: &State) -> String {
    let mut keys = String::new();
    for (k, vers) in s.keys.iter().enumerate() {
        if vers.is_empty() {
            continue;
        }
        keys.push_str(&format!("k{k}=["));
        for (i, r) in vers.iter().enumerate() {
            if i > 0 {
                keys.push(' ');
            }
            keys.push_str(&format!(
                "v{}{}{}by({},{})need{}",
                r.ver,
                if r.committed { "C" } else { "u" },
                if r.recovered { "R" } else { "" },
                r.writer.0,
                r.writer.1,
                r.acks.needed
            ));
        }
        keys.push_str("] ");
    }
    let mut clients = String::new();
    for (c, cl) in s.clients.iter().enumerate() {
        clients.push_str(&format!("c{c}:{} ", pend_summary(&cl.pend)));
    }
    format!(
        "{}{}exposed={:?} crashes={}",
        keys, clients, s.exposed, s.crashes
    )
}

fn pend_summary(p: &Pend) -> String {
    match *p {
        Pend::Idle => "idle".into(),
        Pend::PutIssued => "put-issued".into(),
        Pend::PutPrepared { key, ver } => format!("put-prepared(k{key},v{ver})"),
        Pend::GetIssued { key, floor } => format!("get-issued(k{key},floor{floor})"),
        Pend::GetBound { key, floor, found } => {
            format!("get-bound(k{key},floor{floor},found{found})")
        }
    }
}

/// Result of one exhaustive exploration.
#[derive(Debug)]
pub struct Report {
    /// Distinct states discovered (initial state included).
    pub states: usize,
    /// Transitions taken (successor edges, including re-visits).
    pub transitions: usize,
    /// Maximum BFS depth reached.
    pub depth: usize,
    /// The minimal counterexample, if any invariant was violated.
    pub violation: Option<Trace>,
}

impl Report {
    /// True when every reachable state satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively explores `cfg`'s state space, checking the three
/// safety invariants on every discovered state. Stops at the first
/// violation (which BFS guarantees is at minimal depth).
pub fn explore(cfg: &Config) -> Report {
    // Arena of discovered states + parent pointers for reconstruction;
    // the map is only ever used point-wise (insert/get), never iterated,
    // so exploration order is fully determined by the arena.
    let mut arena: Vec<State> = Vec::new();
    let mut parent: Vec<Option<(usize, Action)>> = Vec::new();
    let mut depth_of: Vec<usize> = Vec::new();
    let mut ids: HashMap<State, usize> = HashMap::new();

    let init = State::init(cfg);
    ids.insert(init.clone(), 0);
    arena.push(init);
    parent.push(None);
    depth_of.push(0);

    if let Some(v) = check_invariants(&arena[0]) {
        return Report {
            states: 1,
            transitions: 0,
            depth: 0,
            violation: Some(Trace {
                invariant: v.name(),
                steps: Vec::new(),
            }),
        };
    }

    let mut transitions = 0usize;
    let mut max_depth = 0usize;
    let mut head = 0usize; // BFS frontier: arena order is discovery order.
    while head < arena.len() {
        let id = head;
        head += 1;
        let state = arena[id].clone();
        let d = depth_of[id] + 1;
        for (action, next) in successors(cfg, &state) {
            transitions += 1;
            if ids.contains_key(&next) {
                continue;
            }
            let nid = arena.len();
            ids.insert(next.clone(), nid);
            arena.push(next);
            parent.push(Some((id, action)));
            depth_of.push(d);
            if d > max_depth {
                max_depth = d;
            }
            if let Some(v) = check_invariants(&arena[nid]) {
                return Report {
                    states: arena.len(),
                    transitions,
                    depth: max_depth,
                    violation: Some(rebuild_trace(v.name(), nid, &arena, &parent)),
                };
            }
        }
    }

    Report {
        states: arena.len(),
        transitions,
        depth: max_depth,
        violation: None,
    }
}

/// Walks parent pointers from the violating state back to `Init`.
fn rebuild_trace(
    invariant: &'static str,
    mut id: usize,
    arena: &[State],
    parent: &[Option<(usize, Action)>],
) -> Trace {
    let mut steps = Vec::new();
    while let Some((pid, action)) = parent[id] {
        steps.push((action, arena[id].clone()));
        id = pid;
    }
    steps.reverse();
    Trace { invariant, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Bug;

    #[test]
    fn exploration_is_deterministic() {
        let cfg = Config::rep2();
        let a = explore(&cfg);
        let b = explore(&cfg);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.depth, b.depth);
    }

    #[test]
    fn state_spaces_are_nontrivial() {
        let r = explore(&Config::rep2());
        assert!(r.ok(), "rep2 must satisfy all invariants");
        assert!(r.states > 1_000, "rep2 explored only {} states", r.states);
        assert!(r.depth >= 8);
    }

    #[test]
    fn commit_early_counterexample_is_minimal() {
        let r = explore(&Config::rep2().with_bug(Bug::CommitEarly));
        let trace = r.violation.expect("seeded bug must be caught");
        assert_eq!(trace.invariant, "NoTornCommit");
        // The shortest path to a torn commit: issue, then prepare with
        // the buggy early flag. BFS must find exactly that.
        assert_eq!(trace.steps.len(), 2);
        let rendered = trace.to_string();
        assert!(rendered.contains("IssuePut"), "{rendered}");
        assert!(rendered.contains("CoordPrepare"), "{rendered}");
    }
}
