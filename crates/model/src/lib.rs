//! # ring-model: write-semantics model checking for Ring
//!
//! Three layers of assurance over the per-item commit protocol, all
//! anchored to the same TLA+ specification
//! (`specs/RingWriteSemantics.tla`):
//!
//! - [`spec`]: the spec's transition system in Rust. Each action
//!   carries the exact TLA+ action name and routes its protocol
//!   decisions through `ring_kvs::protocol::steps` — the functions the
//!   live node executes — so the model and the implementation cannot
//!   silently diverge (ring-lint's `model-drift` rule checks the
//!   `// tla:` markers against the spec text).
//! - [`explore`]: a hand-rolled breadth-first explicit-state checker.
//!   Exhaustively explores small configurations (REP2, REP3, SRS(2,1);
//!   two clients, two keys, crash + spare promotion) against the
//!   invariants `AtMostOnce`, `NoTornCommit` and
//!   `CommittedReadsLatest`, printing a minimal counterexample on
//!   violation. Deliberately seeded bugs ([`spec::Bug`]) prove the
//!   checker has teeth.
//! - [`conform`]: trace conformance. Every seeded chaos-soak history is
//!   projected through `ring_chaos::abstract_events` (the refinement
//!   mapping of DESIGN.md §11) and replayed against the model's
//!   abstract versioned register — cross-checking the version numbers
//!   the real cluster handed out, not just its values.
//!
//! The `ring-model` binary drives all three: `--exhaustive` for the
//! state-space sweep, `--conform <preset>` for soak conformance (the
//! CI `verify-model` job runs both).

pub mod conform;
pub mod explore;
pub mod spec;

pub use conform::{check_conformance, check_conformance_with_budget, Conformance};
pub use explore::{explore, Report, Trace};
pub use spec::{check_invariants, successors, Action, Bug, Config, State};
