//! Trace conformance: does a recorded chaos [`History`] refine the
//! `RingWriteSemantics` model?
//!
//! The refinement mapping (`ring_chaos::abstract_events`, DESIGN.md
//! §11) projects each concrete event onto an abstract versioned-register
//! operation. This module then searches, per key (P-compositionality,
//! like the linearizability checker), for an order of those operations
//! that (a) respects real-time precedence and (b) steps the abstract
//! register exactly as the model's write path allows.
//!
//! This is deliberately stronger than bare linearizability over
//! get/put: it cross-checks the *version numbers* the implementation
//! handed out against the model's `CoordPrepare`/`CommitFlag`
//! discipline:
//!
//! - **Version identity** (pre-pass): `(key, version)` names exactly
//!   one value — two different tags under one version is an immediate
//!   violation.
//! - **Real-time version floor**: once any response proves version `v`
//!   committed for a key, an operation *invoked after that response
//!   returned* can never observe a smaller version as the key's latest.
//! - **Monotone read versions**: in linearization order, the versions
//!   reads observe never decrease.
//! - **Monotone version assignment**: writes whose tag was only ever
//!   observed at one version must linearize in strictly increasing
//!   version order (the `next_version` discipline).
//!
//! One concrete wrinkle the model must absorb: a client whose attempt
//! times out retries with a fresh request id, so one *logical* op can
//! execute several times, placing the same tag at several versions
//! (each individually fresh — the at-most-once table only dedupes
//! re-deliveries of a single attempt). Each such execution can become
//! the key's committed-latest in its own right — even *after* an
//! intervening write by someone else. The replay therefore splits a
//! write into one pinned, definite execution per version its tag was
//! observed at: the response execution keeps the op's real-time window,
//! and every other observed version becomes a synthetic execution whose
//! commit may land arbitrarily late (a straggling first attempt can
//! outlive the retry's response). The register itself stays fully
//! strict — every known-version execution linearizes at exactly its
//! version.
//!
//! Indefinite operations (timed-out or errored writes, projected with
//! `returned_ns == u64::MAX`) may be placed anywhere after their
//! invocation or omitted entirely — "maybe happened" semantics.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

use ring_chaos::abstract_events::{abstract_ops, AbstractKind, AbstractOp};
use ring_chaos::history::{Invocation, Outcome};
use ring_chaos::{History, Tag};
use ring_kvs::Key;

/// Default per-key search budget (memoized states); generous for soak
/// histories, where per-key concurrency is bounded by the client count.
pub const DEFAULT_BUDGET: u64 = 2_000_000;

/// Verdict of a conformance check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Conformance {
    /// Every key's subhistory refines the model.
    Ok {
        /// Keys checked.
        keys: usize,
        /// Memoized search states visited in total.
        states: u64,
    },
    /// Some key's subhistory admits no conforming order.
    Violation {
        /// The offending key.
        key: Key,
        /// Human-readable evidence.
        detail: String,
    },
    /// The search budget ran out on some keys; every other key passed.
    Inconclusive {
        /// Keys whose search was cut short.
        keys: Vec<Key>,
        /// Memoized search states visited in total.
        states: u64,
    },
}

impl Conformance {
    /// True when the whole history conformed.
    pub fn is_ok(&self) -> bool {
        matches!(self, Conformance::Ok { .. })
    }
}

impl fmt::Display for Conformance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Conformance::Ok { keys, states } => {
                write!(f, "conforms: {keys} key(s), {states} search states")
            }
            Conformance::Violation { key, detail } => {
                write!(f, "NON-CONFORMANT at key {key}:\n{detail}")
            }
            Conformance::Inconclusive { keys, states } => write!(
                f,
                "inconclusive on {} key(s) {:?} after {} search states; all others conform",
                keys.len(),
                keys,
                states
            ),
        }
    }
}

/// The abstract versioned register: the model's view of one key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Reg {
    /// Current value's tag; `None` = absent (initial, or tombstoned).
    tag: Option<Tag>,
    /// Current value's version; `None` only when the last write's
    /// version was never learned (deletes, unobserved maybe-writes).
    version: Option<u64>,
    /// Highest version known (from pinned writes and read observations)
    /// to have been reached by the key's committed-latest so far.
    floor: u64,
}

impl Reg {
    fn initial() -> Reg {
        Reg {
            tag: None,
            version: None,
            floor: 0,
        }
    }
}

/// Fixed-width applied-set bitmap, hashable for memoization.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Applied(Vec<u64>);

impl Applied {
    fn new(n: usize) -> Applied {
        Applied(vec![0; n.div_ceil(64)])
    }
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] >> (i % 64) & 1 == 1
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
}

enum KeySearch {
    Conforms,
    Fails,
    OutOfBudget,
}

struct Search<'a> {
    ops: &'a [AbstractOp],
    /// Per op (index-aligned with `ops`), the highest version proven
    /// committed by responses that returned before this op was invoked.
    tfloor: &'a [u64],
    seen: HashSet<(Applied, Reg)>,
    budget: u64,
    visited: u64,
}

impl Search<'_> {
    /// All legal register steps for linearizing op `i` next (an apply,
    /// plus a skip for indefinite ops).
    fn apply_choices(&self, reg: &Reg, i: usize) -> Vec<Reg> {
        let op = &self.ops[i];
        let mut out = Vec::new();
        match &op.kind {
            AbstractKind::Write {
                tag,
                version,
                definite,
            } => {
                match *version {
                    // Pinned execution: the next_version discipline
                    // demands a fresh, larger version.
                    Some(v) => {
                        if v > reg.floor {
                            out.push(Reg {
                                tag: *tag,
                                version: Some(v),
                                floor: v,
                            });
                        }
                    }
                    // Version unknown (deletes, lost responses): the
                    // write happened at *some* fresh version nobody
                    // ever observed.
                    None => out.push(Reg {
                        tag: *tag,
                        version: None,
                        floor: reg.floor,
                    }),
                }
                if !definite {
                    out.push(reg.clone()); // May not have happened.
                }
            }
            AbstractKind::Rewrite { version, definite } => {
                // A move rewrites an existing value under a fresh
                // version. (A retried move's extra bumps surface as
                // extra observed versions of the *value's* tag, which
                // the execution split already turned into synthetic
                // writes.)
                if reg.tag.is_some() {
                    match *version {
                        Some(v) => {
                            if v > reg.floor {
                                out.push(Reg {
                                    tag: reg.tag,
                                    version: Some(v),
                                    floor: v,
                                });
                            }
                        }
                        None => out.push(Reg {
                            tag: reg.tag,
                            version: None,
                            floor: reg.floor,
                        }),
                    }
                }
                if !definite {
                    out.push(reg.clone());
                }
            }
            AbstractKind::Read { observed } => {
                let Some((tag, vo)) = observed else {
                    // Timed-out/errored read: observed nothing,
                    // constrains nothing.
                    out.push(reg.clone());
                    return out;
                };
                if *tag != reg.tag {
                    return out;
                }
                match *vo {
                    None => out.push(reg.clone()),
                    Some(vo) => {
                        // The observed version is the key's committed
                        // latest at bind time: it can never undercut
                        // the real-time floor, never decrease across
                        // linearized observations, and must agree with
                        // a pinned current version exactly.
                        if vo < self.tfloor[i] || vo < reg.floor {
                            return out;
                        }
                        if let Some(vr) = reg.version {
                            if vo != vr {
                                return out;
                            }
                        }
                        let mut r = reg.clone();
                        r.floor = vo;
                        out.push(r);
                    }
                }
            }
            AbstractKind::Noop => out.push(reg.clone()),
        }
        out
    }

    /// Depth-first search for a conforming order of the remaining ops.
    /// Real-time rule: an op may go next only if no *other* unapplied
    /// op returned before it was invoked.
    fn dfs(&mut self, applied: &mut Applied, reg: &Reg, remaining: usize) -> KeySearch {
        if remaining == 0 {
            return KeySearch::Conforms;
        }
        if self.visited >= self.budget {
            return KeySearch::OutOfBudget;
        }
        self.visited += 1;
        if !self.seen.insert((applied.clone(), reg.clone())) {
            return KeySearch::Fails; // Memoized dead end.
        }

        // Earliest return among unapplied ops bounds which may go next.
        let mut min_ret = u64::MAX;
        for (i, op) in self.ops.iter().enumerate() {
            if !applied.get(i) && op.returned_ns < min_ret {
                min_ret = op.returned_ns;
            }
        }
        for i in 0..self.ops.len() {
            if applied.get(i) || self.ops[i].invoked_ns > min_ret {
                continue;
            }
            for next in self.apply_choices(reg, i) {
                applied.set(i);
                match self.dfs(applied, &next, remaining - 1) {
                    KeySearch::Conforms => return KeySearch::Conforms,
                    KeySearch::Fails => {}
                    KeySearch::OutOfBudget => {
                        applied.clear(i);
                        return KeySearch::OutOfBudget;
                    }
                }
                applied.clear(i);
            }
        }
        KeySearch::Fails
    }
}

fn render_ops(ops: &[AbstractOp]) -> String {
    let mut s = String::new();
    for op in ops {
        s.push_str(&format!(
            "  client {} op {} [{} .. {}]: {:?}\n",
            op.client,
            op.op,
            op.invoked_ns,
            if op.returned_ns == u64::MAX {
                "∞".to_string()
            } else {
                op.returned_ns.to_string()
            },
            op.kind
        ));
    }
    s
}

/// The version an op's *response* proves committed (for floors and the
/// duplicate-evidence map).
fn proven_version(op: &AbstractOp) -> Option<u64> {
    match &op.kind {
        AbstractKind::Write { version, .. } | AbstractKind::Rewrite { version, .. } => *version,
        AbstractKind::Read { observed } => observed.and_then(|(_, v)| v),
        AbstractKind::Noop => None,
    }
}

/// Checks one key's abstract subhistory with a dedicated budget.
fn check_key(ops: &[AbstractOp], budget: u64) -> (KeySearch, u64, Vec<AbstractOp>) {
    // Every version each tag was observed at, from write responses and
    // read observations. More than one ⇒ the op executed more than once
    // (client retries under fresh request ids).
    let mut versions_of: BTreeMap<Tag, BTreeSet<u64>> = BTreeMap::new();
    for op in ops.iter() {
        let observed = match &op.kind {
            AbstractKind::Write {
                tag: Some(t),
                version: Some(v),
                ..
            } => Some((*t, *v)),
            AbstractKind::Read {
                observed: Some((Some(t), Some(v))),
            } => Some((*t, *v)),
            _ => None,
        };
        if let Some((t, v)) = observed {
            versions_of.entry(t).or_default().insert(v);
        }
    }

    // Versions a move's response accounts for: a read after a move
    // observes the moved value's tag at the move's version, which the
    // Rewrite op itself pins during the search — no synthetic needed.
    let move_versions: BTreeSet<u64> = ops
        .iter()
        .filter_map(|op| match op.kind {
            AbstractKind::Rewrite { version, .. } => version,
            _ => None,
        })
        .collect();

    // Execution split: one pinned, definite write per observed version
    // of each tag. The response execution keeps its real-time window;
    // the extra executions' commits may land arbitrarily late.
    let mut expanded: Vec<AbstractOp> = Vec::with_capacity(ops.len());
    for op in ops.iter() {
        expanded.push(*op);
        if let AbstractKind::Write {
            tag: Some(t),
            version,
            ..
        } = op.kind
        {
            let Some(vs) = versions_of.get(&t) else {
                continue;
            };
            for &v in vs {
                if Some(v) != version && !move_versions.contains(&v) {
                    expanded.push(AbstractOp {
                        returned_ns: u64::MAX,
                        kind: AbstractKind::Write {
                            tag: Some(t),
                            version: Some(v),
                            definite: true,
                        },
                        ..*op
                    });
                }
            }
        }
    }
    // Stable order by invocation keeps the search deterministic.
    expanded.sort_by_key(|op| (op.invoked_ns, op.client, op.op, op.returned_ns));

    // Real-time floor: responses carrying a version prove the key's
    // committed-latest reached it by their return time.
    let tfloor: Vec<u64> = expanded
        .iter()
        .map(|op| {
            expanded
                .iter()
                .filter(|p| p.returned_ns < op.invoked_ns)
                .filter_map(proven_version)
                .max()
                .unwrap_or(0)
        })
        .collect();

    let mut search = Search {
        ops: &expanded,
        tfloor: &tfloor,
        seen: HashSet::new(),
        budget,
        visited: 0,
    };
    let mut applied = Applied::new(expanded.len());
    let n = expanded.len();
    let verdict = search.dfs(&mut applied, &Reg::initial(), n);
    let visited = search.visited;
    (verdict, visited, expanded)
}

/// Pre-pass: `(key, version)` identifies exactly one write, so no two
/// tags may ever be observed under the same version (Section 5.2, and
/// the model's `AtMostOnce`/`CoordPrepare` discipline).
fn check_version_identity(h: &History) -> Option<(Key, String)> {
    let mut seen: BTreeMap<(Key, u64), Tag> = BTreeMap::new();
    for e in &h.events {
        let observed: Option<(u64, Tag)> = match (&e.call, &e.outcome) {
            (Invocation::Put { tag, .. }, Outcome::PutOk { version }) => Some((*version, *tag)),
            (
                Invocation::Get,
                Outcome::GetOk {
                    tag: Some(tag),
                    version: Some(version),
                },
            ) => Some((*version, *tag)),
            _ => None,
        };
        let Some((version, tag)) = observed else {
            continue;
        };
        match seen.get(&(e.key, version)) {
            Some(&prev) if prev != tag => {
                return Some((
                    e.key,
                    format!(
                        "version {version} observed with two different values: \
                         tags {prev:?} and {tag:?}"
                    ),
                ));
            }
            Some(_) => {}
            None => {
                seen.insert((e.key, version), tag);
            }
        }
    }
    None
}

/// Checks a whole history against the abstract model, per key, with a
/// per-key search `budget`. A hard violation outranks any budget
/// exhaustion elsewhere; budget exhaustion on one key never silences
/// the remaining keys.
pub fn check_conformance_with_budget(h: &History, budget: u64) -> Conformance {
    if let Some((key, detail)) = check_version_identity(h) {
        return Conformance::Violation { key, detail };
    }
    let by_key = abstract_ops(h);
    let mut total_states = 0u64;
    let mut inconclusive = Vec::new();
    let mut keys = 0usize;
    for (key, ops) in by_key.iter() {
        keys += 1;
        let (verdict, visited, expanded) = check_key(ops, budget);
        total_states += visited;
        match verdict {
            KeySearch::Conforms => {}
            KeySearch::Fails => {
                return Conformance::Violation {
                    key: *key,
                    detail: render_ops(&expanded),
                }
            }
            KeySearch::OutOfBudget => inconclusive.push(*key),
        }
    }
    if inconclusive.is_empty() {
        Conformance::Ok {
            keys,
            states: total_states,
        }
    } else {
        Conformance::Inconclusive {
            keys: inconclusive,
            states: total_states,
        }
    }
}

/// [`check_conformance_with_budget`] at [`DEFAULT_BUDGET`].
pub fn check_conformance(h: &History) -> Conformance {
    check_conformance_with_budget(h, DEFAULT_BUDGET)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_chaos::history::{Event, Invocation, Outcome};

    fn put(client: u32, op: u64, key: u64, t: u64, ver: Option<u64>) -> Event {
        Event {
            client,
            op,
            key,
            call: Invocation::Put {
                tag: (client, op),
                memgest: None,
            },
            invoked_ns: t,
            returned_ns: t + 10,
            outcome: match ver {
                Some(version) => Outcome::PutOk { version },
                None => Outcome::Maybe,
            },
        }
    }

    fn get(client: u32, op: u64, key: u64, t: u64, obs: Option<(u64, u64, u64)>) -> Event {
        Event {
            client,
            op,
            key,
            call: Invocation::Get,
            invoked_ns: t,
            returned_ns: t + 10,
            outcome: match obs {
                Some((tc, to, v)) => Outcome::GetOk {
                    tag: Some((tc as u32, to)),
                    version: Some(v),
                },
                None => Outcome::GetOk {
                    tag: None,
                    version: None,
                },
            },
        }
    }

    #[test]
    fn sequential_writes_and_reads_conform() {
        let h = History {
            events: vec![
                put(0, 0, 7, 0, Some(1)),
                get(0, 1, 7, 100, Some((0, 0, 1))),
                put(1, 0, 7, 200, Some(2)),
                get(1, 1, 7, 300, Some((1, 0, 2))),
            ],
        };
        assert!(check_conformance(&h).is_ok());
    }

    #[test]
    fn reused_version_number_is_non_conformant() {
        // Two different values both claiming version 1: CoordPrepare
        // can never assign the same version twice.
        let h = History {
            events: vec![put(0, 0, 7, 0, Some(1)), put(1, 0, 7, 100, Some(1))],
        };
        assert!(matches!(
            check_conformance(&h),
            Conformance::Violation { key: 7, .. }
        ));
    }

    #[test]
    fn stale_read_is_non_conformant() {
        // Version 2 returned before the read began, yet the read
        // observed version 1: no order satisfies both real time and the
        // monotone register.
        let h = History {
            events: vec![
                put(0, 0, 7, 0, Some(1)),
                put(0, 1, 7, 100, Some(2)),
                get(1, 0, 7, 200, Some((0, 0, 1))),
            ],
        };
        assert!(matches!(
            check_conformance(&h),
            Conformance::Violation { key: 7, .. }
        ));
    }

    #[test]
    fn inverted_version_assignment_is_non_conformant() {
        // Strictly ordered in real time, but the later write claims the
        // smaller version: next_version never goes backwards.
        let h = History {
            events: vec![put(0, 0, 7, 0, Some(2)), put(0, 1, 7, 100, Some(1))],
        };
        assert!(matches!(
            check_conformance(&h),
            Conformance::Violation { key: 7, .. }
        ));
    }

    #[test]
    fn maybe_write_may_have_happened_or_not() {
        // The dangling put may be omitted (read sees v1) in one run and
        // taken (read sees its tag at a learned version) in another;
        // both conform.
        let omitted = History {
            events: vec![
                put(0, 0, 7, 0, Some(1)),
                put(1, 0, 7, 50, None), // Maybe.
                get(0, 1, 7, 200, Some((0, 0, 1))),
            ],
        };
        assert!(check_conformance(&omitted).is_ok());
        let taken = History {
            events: vec![
                put(0, 0, 7, 0, Some(1)),
                put(1, 0, 7, 50, None), // Maybe; read observes it at v2.
                get(0, 1, 7, 200, Some((1, 0, 2))),
            ],
        };
        assert!(check_conformance(&taken).is_ok());
    }

    #[test]
    fn read_cannot_undercut_the_real_time_floor() {
        // Version 3's response returned long before the read began, so
        // the committed latest can never again be seen below 3 — yet
        // the read observed the maybe-write at version 1.
        let h = History {
            events: vec![
                put(0, 0, 7, 0, Some(3)),
                put(1, 0, 7, 50, None), // Maybe.
                get(0, 1, 7, 200, Some((1, 0, 1))),
            ],
        };
        assert!(matches!(
            check_conformance(&h),
            Conformance::Violation { key: 7, .. }
        ));
    }

    #[test]
    fn retry_duplicate_at_two_versions_conforms() {
        // A timed-out-then-retried put executes twice: its tag is
        // observed at version 1 first, the final response reports
        // version 3, and an interleaved writer took version 2. The
        // duplicate-tolerant rule must accept this.
        let mut dup = put(0, 0, 7, 0, Some(3));
        dup.returned_ns = 1_000;
        let h = History {
            events: vec![
                dup,
                get(1, 0, 7, 100, Some((0, 0, 1))),
                put(1, 1, 7, 200, Some(2)),
                get(1, 2, 7, 300, Some((1, 1, 2))),
                get(1, 3, 7, 2_000, Some((0, 0, 3))),
            ],
        };
        let verdict = check_conformance(&h);
        assert!(verdict.is_ok(), "{verdict}");
    }

    #[test]
    fn read_versions_never_decrease() {
        // Two reads of the same (duplicated) value: the second observes
        // a smaller version after the first returned — committed-latest
        // going backwards.
        let mut dup = put(0, 0, 7, 0, Some(9));
        dup.returned_ns = u64::MAX; // Dangling: placement unconstrained.
        let h = History {
            events: vec![
                dup,
                get(1, 0, 7, 100, Some((0, 0, 5))),
                get(1, 1, 7, 200, Some((0, 0, 3))),
            ],
        };
        assert!(matches!(
            check_conformance(&h),
            Conformance::Violation { key: 7, .. }
        ));
    }

    #[test]
    fn budget_exhaustion_is_per_key() {
        // A contended key with many overlapping maybe-writes blows a
        // tiny budget; an unrelated clean key still passes.
        let mut events = Vec::new();
        for i in 0..24u64 {
            let mut e = put(i as u32, 0, 7, 0, None);
            e.returned_ns = u64::MAX;
            events.push(e);
        }
        events.push(put(0, 1, 8, 0, Some(1)));
        events.push(get(0, 2, 8, 100, Some((0, 1, 1))));
        let h = History { events };
        // Budget below the op count: even one conforming order cannot
        // be completed within it.
        match check_conformance_with_budget(&h, 10) {
            Conformance::Inconclusive { keys, .. } => assert_eq!(keys, vec![7]),
            other => panic!("expected inconclusive, got {other:?}"),
        }
    }
}
