//! The `RingWriteSemantics` transition system in Rust.
//!
//! Every action here mirrors exactly one TLA+ action of
//! `specs/RingWriteSemantics.tla` — same name, same guard, same effect —
//! and the protocol decisions (version assignment, ack counting, dedup,
//! read binding, degraded-read feasibility) are made by calling the very
//! `ring_kvs::protocol::steps` functions the live node runs, so the
//! explored system cannot silently diverge from the implementation.
//!
//! [`Config::bug`] seeds a deliberate protocol mutation (commit flag
//! before the quorum, a skipped dedup insert, a stale read binding);
//! the explorer must then produce a minimal counterexample, which is how
//! the model checker's own teeth are tested.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use ring_kvs::protocol::steps::{
    self, AckOutcome, AckState, DedupDecision, DedupSlot, ReadDecision, ReadEntry,
};
use ring_kvs::Scheme;
use ring_net::NodeId;

/// Version 0 is "no version" (`NoVer` in the spec); real versions start
/// at 1, exactly as [`steps::next_version`] assigns them.
pub const NO_VER: u64 = 0;

/// Capacity of the modelled at-most-once table. Small so eviction is
/// reachable within tiny scripts (the live node uses 64k).
const MODEL_DEDUP_CAP: usize = 4;

/// One scripted client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Write the key.
    Put(u8),
    /// Read the key.
    Get(u8),
}

impl OpKind {
    fn key(self) -> u8 {
        match self {
            OpKind::Put(k) | OpKind::Get(k) => k,
        }
    }
}

/// A deliberately seeded protocol bug, for counterexample tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bug {
    /// Faithful protocol.
    None,
    /// The commit flag is published at prepare time, before any
    /// redundancy ack — a torn commit the moment `needed > 0`.
    CommitEarly,
    /// The coordinator never opens the at-most-once window, so a
    /// re-delivered request re-executes and assigns a second version.
    SkipDedup,
    /// A read may bind to *any* committed version instead of the
    /// latest, violating monotone read visibility.
    StaleRead,
}

/// A finite model configuration: the TLA+ `CONSTANTS`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Display name ("rep2", "srs21", ...).
    pub name: &'static str,
    /// The memgest scheme; feeds [`steps::acks_needed`].
    pub scheme: Scheme,
    /// Redundancy node identities (replica or parity targets).
    pub redundancy: Vec<NodeId>,
    /// Promotable spares.
    pub spares: u8,
    /// Crash budget across the execution.
    pub max_crashes: u8,
    /// Per-client op scripts; client count = `scripts.len()`.
    pub scripts: Vec<Vec<OpKind>>,
    /// Fabric re-delivery budget per in-flight request.
    pub max_retries: u8,
    /// Synchronous replication (the `r - 1` ack rule)?
    pub sync_replication: bool,
    /// Seeded protocol mutation.
    pub bug: Bug,
}

impl Config {
    /// REP2: one redundancy node, one spare, one crash.
    pub fn rep2() -> Config {
        Config {
            name: "rep2",
            scheme: Scheme::Rep { r: 2 },
            redundancy: vec![1],
            spares: 1,
            max_crashes: 1,
            scripts: Self::default_scripts(),
            max_retries: 1,
            sync_replication: false,
            bug: Bug::None,
        }
    }

    /// REP3 under synchronous replication: two redundancy nodes must
    /// both ack, one spare, one crash.
    pub fn rep3() -> Config {
        Config {
            name: "rep3",
            scheme: Scheme::Rep { r: 3 },
            redundancy: vec![1, 2],
            spares: 1,
            max_crashes: 1,
            sync_replication: true,
            ..Config::rep2()
        }
    }

    /// SRS(2,1): one parity node whose ack is mandatory.
    pub fn srs21() -> Config {
        Config {
            name: "srs21",
            scheme: Scheme::Srs { k: 2, m: 1 },
            redundancy: vec![1],
            spares: 1,
            max_crashes: 1,
            ..Config::rep2()
        }
    }

    /// The standard two-client, two-key script set: a writer/reader
    /// client racing a double-writer client. Small enough to explore
    /// exhaustively, rich enough to exercise every action.
    fn default_scripts() -> Vec<Vec<OpKind>> {
        vec![
            vec![OpKind::Put(0), OpKind::Get(0)],
            vec![OpKind::Put(0), OpKind::Put(1)],
        ]
    }

    /// Number of keys the scripts touch (keys are `0..keys`).
    pub fn keys(&self) -> usize {
        self.scripts
            .iter()
            .flat_map(|s| s.iter())
            .map(|op| usize::from(op.key()) + 1)
            .max()
            .unwrap_or(0)
    }

    /// This config with a seeded bug.
    pub fn with_bug(mut self, bug: Bug) -> Config {
        self.bug = bug;
        self
    }

    /// Acks required before commit, via the shared protocol step.
    pub fn acks_needed(&self) -> usize {
        steps::acks_needed(self.scheme, self.sync_replication)
    }
}

/// One version record of a key: the spec's `versions[k][i]` tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VerSt {
    /// The version number.
    pub ver: u64,
    /// `(client, pc)` of the originating request.
    pub writer: (u8, u8),
    /// Outstanding/needed redundancy acks ([`steps::AckState`]).
    pub acks: AckState,
    /// Commit flag published?
    pub committed: bool,
    /// Completed by crash recovery rather than the ack quorum?
    pub recovered: bool,
    /// Redundancy nodes holding this version's update.
    pub holders: BTreeSet<NodeId>,
    /// Coordinator-local bytes still present (false after a coordinator
    /// crash: metadata survived, the value must be read degraded)?
    pub coord_data: bool,
}

/// What a client is currently doing: the spec's `clients[c].pend`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pend {
    /// Between ops.
    Idle,
    /// A put submitted but not yet prepared.
    PutIssued,
    /// Prepared; waiting for the commit flag.
    PutPrepared {
        /// Key written.
        key: u8,
        /// Version assigned at prepare.
        ver: u64,
    },
    /// A get submitted; `floor` is the highest version exposed for the
    /// key when the read was issued (its real-time lower bound).
    GetIssued {
        /// Key read.
        key: u8,
        /// Visibility floor at issue time.
        floor: u64,
    },
    /// Bound to a version (`NO_VER` = observed absence), not yet
    /// returned.
    GetBound {
        /// Key read.
        key: u8,
        /// Visibility floor at issue time.
        floor: u64,
        /// Version served.
        found: u64,
    },
}

/// One client's state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientSt {
    /// Program counter into the client's script.
    pub pc: u8,
    /// In-flight operation.
    pub pend: Pend,
    /// Re-deliveries already spent on the in-flight request.
    pub retries: u8,
}

/// A global model state: the spec's `vars` tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State {
    /// Per key, its version records in assignment order.
    pub keys: Vec<Vec<VerSt>>,
    /// Per client.
    pub clients: Vec<ClientSt>,
    /// At-most-once table `(client, pc) -> slot`; the response payload
    /// is the version the write got (abstracting the wire body).
    pub dedup: BTreeMap<(u8, u8), DedupSlot<u64>>,
    /// Dedup settle order, for cap-eviction ([`steps::settle_dedup`]).
    pub dedup_order: VecDeque<(u8, u8)>,
    /// Liveness of each redundancy node (indexed as `config.redundancy`).
    pub up: Vec<bool>,
    /// Spares remaining.
    pub spares: u8,
    /// Crashes spent.
    pub crashes: u8,
    /// Per key, the highest version made visible to any client.
    pub exposed: Vec<u64>,
}

impl State {
    /// The spec's `Init`.
    pub fn init(cfg: &Config) -> State {
        State {
            keys: vec![Vec::new(); cfg.keys()],
            clients: vec![
                ClientSt {
                    pc: 0,
                    pend: Pend::Idle,
                    retries: 0,
                };
                cfg.scripts.len()
            ],
            dedup: BTreeMap::new(),
            dedup_order: VecDeque::new(),
            up: vec![true; cfg.redundancy.len()],
            spares: cfg.spares,
            crashes: 0,
            exposed: vec![NO_VER; cfg.keys()],
        }
    }

    fn highest(&self, key: u8) -> Option<u64> {
        self.keys[usize::from(key)].last().map(|r| r.ver)
    }

    fn script_op(cfg: &Config, c: usize, pc: u8) -> Option<OpKind> {
        cfg.scripts[c].get(usize::from(pc)).copied()
    }
}

/// One transition, named exactly as its TLA+ action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `IssuePut(c)`
    IssuePut { client: u8 },
    /// `IssueGet(c)`
    IssueGet { client: u8 },
    /// `CoordPrepare(c)`
    CoordPrepare { client: u8 },
    /// `RedundancyAck(k, i, n)`
    RedundancyAck { key: u8, idx: u8, node: NodeId },
    /// `CommitFlag(c)`
    CommitFlag { client: u8 },
    /// `RetryDeliver(c)`
    RetryDeliver { client: u8 },
    /// `GetBind(c)`
    GetBind { client: u8 },
    /// `DegradedBind(c)`
    DegradedBind { client: u8 },
    /// `GetReturn(c)`
    GetReturn { client: u8 },
    /// `CrashRedundancy(n)`
    CrashRedundancy { node: NodeId },
    /// `SparePromote(n)`
    SparePromote { node: NodeId },
    /// `CoordCrashRecover`
    CoordCrashRecover,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::IssuePut { client } => write!(f, "IssuePut(c={client})"),
            Action::IssueGet { client } => write!(f, "IssueGet(c={client})"),
            Action::CoordPrepare { client } => write!(f, "CoordPrepare(c={client})"),
            Action::RedundancyAck { key, idx, node } => {
                write!(f, "RedundancyAck(k={key}, i={idx}, n={node})")
            }
            Action::CommitFlag { client } => write!(f, "CommitFlag(c={client})"),
            Action::RetryDeliver { client } => write!(f, "RetryDeliver(c={client})"),
            Action::GetBind { client } => write!(f, "GetBind(c={client})"),
            Action::DegradedBind { client } => write!(f, "DegradedBind(c={client})"),
            Action::GetReturn { client } => write!(f, "GetReturn(c={client})"),
            Action::CrashRedundancy { node } => write!(f, "CrashRedundancy(n={node})"),
            Action::SparePromote { node } => write!(f, "SparePromote(n={node})"),
            Action::CoordCrashRecover => write!(f, "CoordCrashRecover"),
        }
    }
}

/// All enabled transitions from `s`, in a fixed deterministic order
/// (clients ascending, then acks, then failures) so exploration — and
/// therefore counterexamples — reproduce bit-for-bit.
pub fn successors(cfg: &Config, s: &State) -> Vec<(Action, State)> {
    let mut out = Vec::new();
    for c in 0..cfg.scripts.len() {
        issue_put(cfg, s, c, &mut out);
        issue_get(cfg, s, c, &mut out);
        coord_prepare(cfg, s, c, &mut out);
        commit_flag(cfg, s, c, &mut out);
        retry_deliver(cfg, s, c, &mut out);
        get_bind(cfg, s, c, &mut out);
        degraded_bind(cfg, s, c, &mut out);
        get_return(cfg, s, c, &mut out);
    }
    redundancy_acks(cfg, s, &mut out);
    for (ni, &node) in cfg.redundancy.iter().enumerate() {
        crash_redundancy(cfg, s, ni, node, &mut out);
        spare_promote(cfg, s, ni, node, &mut out);
    }
    coord_crash_recover(cfg, s, &mut out);
    out
}

// tla: IssuePut
fn issue_put(cfg: &Config, s: &State, c: usize, out: &mut Vec<(Action, State)>) {
    let cl = &s.clients[c];
    if cl.pend != Pend::Idle {
        return;
    }
    if let Some(OpKind::Put(_)) = State::script_op(cfg, c, cl.pc) {
        let mut t = s.clone();
        t.clients[c].pend = Pend::PutIssued;
        out.push((Action::IssuePut { client: c as u8 }, t));
    }
}

// tla: IssueGet
fn issue_get(cfg: &Config, s: &State, c: usize, out: &mut Vec<(Action, State)>) {
    let cl = &s.clients[c];
    if cl.pend != Pend::Idle {
        return;
    }
    if let Some(OpKind::Get(k)) = State::script_op(cfg, c, cl.pc) {
        let mut t = s.clone();
        t.clients[c].pend = Pend::GetIssued {
            key: k,
            floor: s.exposed[usize::from(k)],
        };
        out.push((Action::IssueGet { client: c as u8 }, t));
    }
}

/// The coordinator write-aheads a submitted put: next version via
/// [`steps::next_version`], ack tracking via [`steps::AckState::open`]
/// with [`steps::acks_needed`] acks required, and the at-most-once
/// window opened `InFlight` (skipped under [`Bug::SkipDedup`]; the
/// commit flag set immediately under [`Bug::CommitEarly`]).
// tla: CoordPrepare
fn coord_prepare(cfg: &Config, s: &State, c: usize, out: &mut Vec<(Action, State)>) {
    let cl = &s.clients[c];
    if cl.pend != Pend::PutIssued {
        return;
    }
    let Some(OpKind::Put(k)) = State::script_op(cfg, c, cl.pc) else {
        return;
    };
    let mut t = s.clone();
    let ver = steps::next_version(t.highest(k));
    let writer = (c as u8, cl.pc);
    t.keys[usize::from(k)].push(VerSt {
        ver,
        writer,
        acks: AckState::open(cfg.redundancy.iter().copied(), cfg.acks_needed()),
        committed: cfg.bug == Bug::CommitEarly,
        recovered: false,
        holders: BTreeSet::new(),
        coord_data: true,
    });
    if cfg.bug != Bug::SkipDedup {
        t.dedup.insert(writer, DedupSlot::InFlight);
    }
    t.clients[c].pend = Pend::PutPrepared { key: k, ver };
    out.push((Action::CoordPrepare { client: c as u8 }, t));
}

/// One redundancy node acknowledges a fanned-out write:
/// [`steps::AckState::apply_ack`] counts each node at most once and
/// reports `Commit` when the quorum completes (the flag itself is a
/// separate [`Action::CommitFlag`] step, as on the wire).
// tla: RedundancyAck
fn redundancy_acks(cfg: &Config, s: &State, out: &mut Vec<(Action, State)>) {
    for (ki, vers) in s.keys.iter().enumerate() {
        for (i, rec) in vers.iter().enumerate() {
            if rec.committed {
                continue;
            }
            for (ni, &node) in cfg.redundancy.iter().enumerate() {
                if !s.up[ni] || !rec.acks.outstanding.contains(&node) {
                    continue;
                }
                let mut t = s.clone();
                let r = &mut t.keys[ki][i];
                match r.acks.apply_ack(node) {
                    AckOutcome::Ignored => continue,
                    AckOutcome::Counted | AckOutcome::Commit => {}
                }
                r.holders.insert(node);
                out.push((
                    Action::RedundancyAck {
                        key: ki as u8,
                        idx: i as u8,
                        node,
                    },
                    t,
                ));
            }
        }
    }
}

/// With the quorum gathered (`acks.needed == 0`), the coordinator
/// publishes the commit flag, settles the at-most-once window to `Done`
/// via [`steps::settle_dedup`], exposes the version, and answers the
/// client. A superseded version may commit after a higher one
/// (Figure 5).
// tla: CommitFlag
fn commit_flag(_cfg: &Config, s: &State, c: usize, out: &mut Vec<(Action, State)>) {
    let cl = &s.clients[c];
    let Pend::PutPrepared { key, ver } = cl.pend else {
        return;
    };
    let ki = usize::from(key);
    let Some(i) = s.keys[ki].iter().position(|r| r.ver == ver) else {
        return;
    };
    if s.keys[ki][i].acks.needed != 0 || s.keys[ki][i].committed {
        return;
    }
    let mut t = s.clone();
    t.keys[ki][i].committed = true;
    let writer = (c as u8, cl.pc);
    steps::settle_dedup(
        &mut t.dedup,
        &mut t.dedup_order,
        writer,
        ver,
        MODEL_DEDUP_CAP,
    );
    if ver > t.exposed[ki] {
        t.exposed[ki] = ver;
    }
    t.clients[c] = ClientSt {
        pc: cl.pc + 1,
        pend: Pend::Idle,
        retries: 0,
    };
    out.push((Action::CommitFlag { client: c as u8 }, t));
}

/// The fabric re-delivers the client's in-flight put. The coordinator
/// consults [`steps::dedup_decision`]: `Drop` for an open window,
/// `Resend` for a settled one — only an absent slot (the seeded
/// [`Bug::SkipDedup`]) re-executes, assigning a duplicate version.
// tla: RetryDeliver
fn retry_deliver(cfg: &Config, s: &State, c: usize, out: &mut Vec<(Action, State)>) {
    let cl = &s.clients[c];
    let Pend::PutPrepared { key, .. } = cl.pend else {
        return;
    };
    if cl.retries >= cfg.max_retries {
        return;
    }
    let writer = (c as u8, cl.pc);
    let mut t = s.clone();
    t.clients[c].retries += 1;
    match steps::dedup_decision(s.dedup.get(&writer)) {
        // Duplicate suppressed (or cached response resent): no protocol
        // effect beyond spending the retry budget.
        DedupDecision::Drop | DedupDecision::Resend(_) => {}
        // No at-most-once window: the duplicate executes like a fresh
        // request and assigns a second version to the same writer.
        DedupDecision::Execute => {
            let ver = steps::next_version(t.highest(key));
            t.keys[usize::from(key)].push(VerSt {
                ver,
                writer,
                acks: AckState::open(cfg.redundancy.iter().copied(), cfg.acks_needed()),
                committed: cfg.bug == Bug::CommitEarly,
                recovered: false,
                holders: BTreeSet::new(),
                coord_data: true,
            });
        }
    }
    out.push((Action::RetryDeliver { client: c as u8 }, t));
}

/// A get binds to its key's highest version via
/// [`steps::read_decision`]: `Serve` binds, `Postpone` parks the read
/// behind an uncommitted latest version (no successor until its commit
/// flag is set — Figure 5), `Recover` defers to [`Action::DegradedBind`].
/// Under [`Bug::StaleRead`] the read may bind any committed version.
// tla: GetBind
fn get_bind(cfg: &Config, s: &State, c: usize, out: &mut Vec<(Action, State)>) {
    let cl = &s.clients[c];
    let Pend::GetIssued { key, floor } = cl.pend else {
        return;
    };
    let ki = usize::from(key);
    let bind = |found: u64| {
        let mut t = s.clone();
        t.clients[c].pend = Pend::GetBound { key, floor, found };
        (Action::GetBind { client: c as u8 }, t)
    };
    if cfg.bug == Bug::StaleRead {
        for rec in &s.keys[ki] {
            if rec.committed && rec.coord_data {
                out.push(bind(rec.ver));
            }
        }
        if s.keys[ki].is_empty() {
            out.push(bind(NO_VER));
        }
        return;
    }
    match s.keys[ki].last() {
        None => out.push(bind(NO_VER)),
        Some(rec) => {
            let decision = steps::read_decision(&ReadEntry {
                committed: rec.committed,
                tombstone: false,
                data_present: rec.coord_data,
            });
            match decision {
                ReadDecision::Serve => out.push(bind(rec.ver)),
                ReadDecision::Postpone | ReadDecision::Recover | ReadDecision::NotFound => {}
            }
        }
    }
}

/// Degraded read: the latest committed version's coordinator bytes were
/// lost, so the read binds late against surviving redundancy. The
/// feasibility gate is [`steps::spec_read_feasible`] with each live
/// holder contributing one distinct stripe row of a single segment —
/// the model's data-placement abstraction (DESIGN.md §11 gaps).
// tla: DegradedBind
fn degraded_bind(cfg: &Config, s: &State, c: usize, out: &mut Vec<(Action, State)>) {
    let cl = &s.clients[c];
    let Pend::GetIssued { key, floor } = cl.pend else {
        return;
    };
    let ki = usize::from(key);
    let Some(rec) = s.keys[ki].last() else {
        return;
    };
    if !rec.committed || rec.coord_data {
        return;
    }
    let live_parts: Vec<Vec<(usize, usize)>> = rec
        .holders
        .iter()
        .filter(|n| {
            cfg.redundancy
                .iter()
                .position(|rn| rn == *n)
                .is_some_and(|ni| s.up[ni])
        })
        .enumerate()
        .map(|(row, _)| vec![(0, row)])
        .collect();
    let refs: Vec<&[(usize, usize)]> = live_parts.iter().map(Vec::as_slice).collect();
    if !steps::spec_read_feasible(1, 1, &refs) {
        return;
    }
    let mut t = s.clone();
    t.clients[c].pend = Pend::GetBound {
        key,
        floor,
        found: rec.ver,
    };
    out.push((Action::DegradedBind { client: c as u8 }, t));
}

// tla: GetReturn
fn get_return(_cfg: &Config, s: &State, c: usize, out: &mut Vec<(Action, State)>) {
    let cl = &s.clients[c];
    let Pend::GetBound { key, found, .. } = cl.pend else {
        return;
    };
    let mut t = s.clone();
    let ki = usize::from(key);
    if found > t.exposed[ki] {
        t.exposed[ki] = found;
    }
    t.clients[c] = ClientSt {
        pc: cl.pc + 1,
        pend: Pend::Idle,
        retries: 0,
    };
    out.push((Action::GetReturn { client: c as u8 }, t));
}

// tla: CrashRedundancy
fn crash_redundancy(
    cfg: &Config,
    s: &State,
    ni: usize,
    node: NodeId,
    out: &mut Vec<(Action, State)>,
) {
    if s.crashes >= cfg.max_crashes || !s.up[ni] {
        return;
    }
    let mut t = s.clone();
    t.up[ni] = false;
    t.crashes += 1;
    out.push((Action::CrashRedundancy { node }, t));
}

/// The leader promotes a spare into the dead node's slot: the fresh
/// node holds no data (it leaves every `holders` set) and every
/// still-pending write re-targets it via [`steps::AckState::retarget`]
/// so its ack can complete the quorum.
// tla: SparePromote
fn spare_promote(
    _cfg: &Config,
    s: &State,
    ni: usize,
    node: NodeId,
    out: &mut Vec<(Action, State)>,
) {
    if s.up[ni] || s.spares == 0 {
        return;
    }
    let mut t = s.clone();
    t.up[ni] = true;
    t.spares -= 1;
    for vers in &mut t.keys {
        for rec in vers {
            rec.holders.remove(&node);
            if !rec.committed {
                rec.acks.retarget(node);
            }
        }
    }
    out.push((Action::SparePromote { node }, t));
}

/// The coordinator crashes and a spare recovers it metadata-first
/// (Section 6): committed versions survive with their local bytes lost;
/// an uncommitted version held by at least one redundancy node is
/// completed by recovery (`recovered`, exempt from `NoTornCommit`); one
/// held by nobody is discarded, freeing its version number. Writers
/// still waiting time out with an indeterminate outcome; their retry
/// budget is exhausted because the model does not carry the dedup table
/// across the crash (a documented gap — see DESIGN.md §11).
// tla: CoordCrashRecover
fn coord_crash_recover(cfg: &Config, s: &State, out: &mut Vec<(Action, State)>) {
    if s.crashes >= cfg.max_crashes {
        return;
    }
    let mut t = s.clone();
    t.crashes += 1;
    for vers in &mut t.keys {
        vers.retain_mut(|rec| {
            if rec.committed {
                rec.coord_data = false;
                true
            } else if !rec.holders.is_empty() {
                rec.committed = true;
                rec.recovered = true;
                rec.coord_data = false;
                true
            } else {
                false
            }
        });
    }
    for cl in &mut t.clients {
        if matches!(cl.pend, Pend::PutPrepared { .. }) {
            *cl = ClientSt {
                pc: cl.pc + 1,
                pend: Pend::Idle,
                retries: cfg.max_retries,
            };
        }
    }
    out.push((Action::CoordCrashRecover, t));
}

/// A violated safety invariant, named as in the TLA+ spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// `AtMostOnce`: one client op materialized as two versions.
    AtMostOnce,
    /// `NoTornCommit`: a commit flag published before its quorum.
    NoTornCommit,
    /// `CommittedReadsLatest`: a bound read served an uncommitted or
    /// non-monotone version.
    CommittedReadsLatest,
}

impl InvariantViolation {
    /// The TLA+ invariant name.
    pub fn name(self) -> &'static str {
        match self {
            InvariantViolation::AtMostOnce => "AtMostOnce",
            InvariantViolation::NoTornCommit => "NoTornCommit",
            InvariantViolation::CommittedReadsLatest => "CommittedReadsLatest",
        }
    }
}

/// Checks the spec's three safety invariants on one state. Returns the
/// first violated invariant in spec order.
pub fn check_invariants(s: &State) -> Option<InvariantViolation> {
    // AtMostOnce: all writers of a key's live versions are distinct.
    for vers in &s.keys {
        for (i, a) in vers.iter().enumerate() {
            for b in &vers[i + 1..] {
                if a.writer == b.writer {
                    return Some(InvariantViolation::AtMostOnce);
                }
            }
        }
    }
    // NoTornCommit: committed (and not recovery-completed) implies the
    // full ack quorum was gathered.
    for vers in &s.keys {
        for rec in vers {
            if rec.committed && !rec.recovered && rec.acks.needed != 0 {
                return Some(InvariantViolation::NoTornCommit);
            }
        }
    }
    // CommittedReadsLatest: a bound read is monotone past its floor and
    // serves a committed version.
    for cl in &s.clients {
        if let Pend::GetBound { key, floor, found } = cl.pend {
            if found < floor {
                return Some(InvariantViolation::CommittedReadsLatest);
            }
            if found != NO_VER
                && !s.keys[usize::from(key)]
                    .iter()
                    .any(|r| r.ver == found && r.committed)
            {
                return Some(InvariantViolation::CommittedReadsLatest);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_matches_config_shape() {
        let cfg = Config::rep3();
        let s = State::init(&cfg);
        assert_eq!(s.keys.len(), 2);
        assert_eq!(s.clients.len(), 2);
        assert_eq!(s.up, vec![true, true]);
        assert_eq!(s.spares, 1);
        assert!(check_invariants(&s).is_none());
    }

    #[test]
    fn ack_requirements_follow_schemes() {
        assert_eq!(Config::rep2().acks_needed(), 1);
        assert_eq!(Config::rep3().acks_needed(), 2); // sync: r - 1
        assert_eq!(Config::srs21().acks_needed(), 1); // all m parities
    }

    #[test]
    fn put_prepares_then_commits_after_quorum() {
        let cfg = Config::rep2();
        let s0 = State::init(&cfg);
        let (_, s1) = successors(&cfg, &s0)
            .into_iter()
            .find(|(a, _)| matches!(a, Action::IssuePut { client: 0 }))
            .unwrap();
        let (_, s2) = successors(&cfg, &s1)
            .into_iter()
            .find(|(a, _)| matches!(a, Action::CoordPrepare { client: 0 }))
            .unwrap();
        assert!(!s2.keys[0][0].committed);
        // No commit enabled before the ack.
        assert!(!successors(&cfg, &s2)
            .iter()
            .any(|(a, _)| matches!(a, Action::CommitFlag { .. })));
        let (_, s3) = successors(&cfg, &s2)
            .into_iter()
            .find(|(a, _)| matches!(a, Action::RedundancyAck { .. }))
            .unwrap();
        let (_, s4) = successors(&cfg, &s3)
            .into_iter()
            .find(|(a, _)| matches!(a, Action::CommitFlag { client: 0 }))
            .unwrap();
        assert!(s4.keys[0][0].committed);
        assert_eq!(s4.exposed[0], 1);
        assert!(matches!(s4.dedup.get(&(0, 0)), Some(DedupSlot::Done(1))));
    }

    #[test]
    fn reads_park_behind_uncommitted_latest() {
        let cfg = Config::rep2();
        let s0 = State::init(&cfg);
        // Client 1 prepares a put on key 0; client 0 issues a get.
        let (_, s1) = successors(&cfg, &s0)
            .into_iter()
            .find(|(a, _)| matches!(a, Action::IssuePut { client: 1 }))
            .unwrap();
        let (_, s2) = successors(&cfg, &s1)
            .into_iter()
            .find(|(a, _)| matches!(a, Action::CoordPrepare { client: 1 }))
            .unwrap();
        let (_, s3) = successors(&cfg, &s2)
            .into_iter()
            .find(|(a, _)| matches!(a, Action::IssuePut { client: 0 }))
            .unwrap();
        // Client 0's own put is still first in its script; force the
        // read path instead by checking no GetBind exists for the
        // uncommitted key (client 0 has no get pending yet, so none for
        // anyone).
        assert!(!successors(&cfg, &s3)
            .iter()
            .any(|(a, _)| matches!(a, Action::GetBind { .. })));
    }

    #[test]
    fn commit_early_bug_tears_immediately() {
        let cfg = Config::rep2().with_bug(Bug::CommitEarly);
        let s0 = State::init(&cfg);
        let (_, s1) = successors(&cfg, &s0)
            .into_iter()
            .find(|(a, _)| matches!(a, Action::IssuePut { client: 0 }))
            .unwrap();
        let (_, s2) = successors(&cfg, &s1)
            .into_iter()
            .find(|(a, _)| matches!(a, Action::CoordPrepare { client: 0 }))
            .unwrap();
        assert_eq!(
            check_invariants(&s2),
            Some(InvariantViolation::NoTornCommit)
        );
    }
}
