--------------------------- MODULE RingWriteSemantics ---------------------------
(***************************************************************************)
(* Write semantics of Ring's per-item commit protocol (EuroSys'18,        *)
(* Sections 5.1-5.3), as implemented by `crates/core`:                    *)
(*                                                                        *)
(*   PrepareMeta -> redundancy fan-out -> commit-flag publish ->          *)
(*   read visibility, plus at-most-once dedup of re-delivered client      *)
(*   requests, redundancy-node crash + spare promotion, coordinator       *)
(*   crash + metadata-led recovery, and late-binding degraded reads.      *)
(*                                                                        *)
(* The Rust explicit-state checker in `src/spec.rs` mirrors these actions *)
(* one-to-one (each transition carries a `// tla:` doc marker naming its  *)
(* action here; ring-lint's `model-drift` rule enforces the mapping for   *)
(* the shared `ring_kvs::protocol::steps` functions). TLC is not run in   *)
(* this offline environment -- the `ring-model` binary explores exactly   *)
(* this transition system instead.                                        *)
(***************************************************************************)
EXTENDS Naturals, Sequences, FiniteSets

CONSTANTS
    Clients,        \* client identities, each with a finite op script
    Keys,           \* keys under test
    Redundancy,     \* redundancy node identities (replicas or parities)
    Spares,         \* number of promotable spare nodes
    MaxCrashes,     \* crash budget across the execution
    Script,         \* [Clients -> Seq(ops)], op = [kind |-> "put"|"get", key |-> Keys]
    AcksNeeded      \* acks required before the commit flag may be set
                    \* (r-1 sync / quorum for Rep, all m parities for SRS)

VARIABLES
    versions,       \* [Keys -> Seq(version records)]: writer, acks, flags
    clients,        \* [Clients -> client record]: pc, pending op, retries
    dedup,          \* at-most-once table: (client, op) -> InFlight | Done(resp)
    up,             \* [Redundancy -> BOOLEAN]
    spares,         \* spares remaining
    crashes,        \* crashes spent
    exposed         \* [Keys -> Nat]: highest version made visible to any client

vars == <<versions, clients, dedup, up, spares, crashes, exposed>>

NoVer == 0

HighestVersion(k) ==
    IF versions[k] = <<>> THEN NoVer
    ELSE versions[k][Len(versions[k])].ver

(***************************************************************************)
(* Init                                                                   *)
(***************************************************************************)
Init ==
    /\ versions = [k \in Keys |-> <<>>]
    /\ clients = [c \in Clients |-> [pc |-> 1, pend |-> "idle", retries |-> 0]]
    /\ dedup = [x \in {} |-> {}]
    /\ up = [n \in Redundancy |-> TRUE]
    /\ spares = Spares
    /\ crashes = 0
    /\ exposed = [k \in Keys |-> NoVer]

(***************************************************************************)
(* Client issue actions                                                   *)
(***************************************************************************)

\* A client whose script's next op is a put submits it.
IssuePut(c) ==
    /\ clients[c].pend = "idle"
    /\ clients[c].pc <= Len(Script[c])
    /\ Script[c][clients[c].pc].kind = "put"
    /\ clients' = [clients EXCEPT ![c].pend = "put-issued"]
    /\ UNCHANGED <<versions, dedup, up, spares, crashes, exposed>>

\* A client whose script's next op is a get submits it; the read's
\* real-time floor is the highest version already exposed for the key.
IssueGet(c) ==
    /\ clients[c].pend = "idle"
    /\ clients[c].pc <= Len(Script[c])
    /\ Script[c][clients[c].pc].kind = "get"
    /\ clients' = [clients EXCEPT
         ![c].pend = [st |-> "get-issued",
                      floor |-> exposed[Script[c][clients[c].pc].key]]]
    /\ UNCHANGED <<versions, dedup, up, spares, crashes, exposed>>

(***************************************************************************)
(* Write path                                                             *)
(***************************************************************************)

\* The coordinator write-aheads a submitted put: assigns the next
\* version (steps::next_version), records the uncommitted entry before
\* any redundancy traffic, opens the at-most-once window
\* (DedupSlot::InFlight) and the ack tracker (steps::AckState::open with
\* steps::acks_needed acks required), and fans out to every redundancy
\* node.
CoordPrepare(c) ==
    /\ clients[c].pend = "put-issued"
    /\ LET k == Script[c][clients[c].pc].key
           v == HighestVersion(k) + 1
       IN /\ versions' = [versions EXCEPT ![k] = Append(@,
               [ver |-> v, writer |-> <<c, clients[c].pc>>,
                outstanding |-> Redundancy, needed |-> AcksNeeded,
                committed |-> FALSE, recovered |-> FALSE,
                holders |-> {}, coorddata |-> TRUE])]
          /\ dedup' = dedup @@ (<<c, clients[c].pc>> :> "inflight")
          /\ clients' = [clients EXCEPT ![c].pend = [st |-> "put-prepared",
                                                     key |-> k, ver |-> v]]
    /\ UNCHANGED <<up, spares, crashes, exposed>>

\* One redundancy node acknowledges a fanned-out write
\* (steps::AckState::apply_ack): each node counts at most once, and the
\* commit flag becomes publishable when `needed` reaches zero.
RedundancyAck(k, i, n) ==
    /\ i \in 1..Len(versions[k])
    /\ up[n]
    /\ n \in versions[k][i].outstanding
    /\ ~versions[k][i].committed
    /\ versions' = [versions EXCEPT
         ![k][i].outstanding = @ \ {n},
         ![k][i].needed = IF @ > 0 THEN @ - 1 ELSE 0,
         ![k][i].holders = @ \cup {n}]
    /\ UNCHANGED <<clients, dedup, up, spares, crashes, exposed>>

\* With every required ack gathered, the coordinator publishes the
\* commit flag, answers the client (settling its at-most-once window to
\* Done via steps::settle_dedup), and the version becomes readable.
\* A superseded version may commit after a higher one (Figure 5).
CommitFlag(c) ==
    /\ clients[c].pend # "idle" /\ clients[c].pend # "put-issued"
    /\ clients[c].pend.st = "put-prepared"
    /\ LET k == clients[c].pend.key
           v == clients[c].pend.ver
       IN \E i \in 1..Len(versions[k]) :
            /\ versions[k][i].ver = v
            /\ versions[k][i].needed = 0
            /\ ~versions[k][i].committed
            /\ versions' = [versions EXCEPT ![k][i].committed = TRUE]
            /\ dedup' = [dedup EXCEPT ![<<c, clients[c].pc>>] = "done"]
            /\ exposed' = [exposed EXCEPT ![k] =
                 IF v > @ THEN v ELSE @]
            /\ clients' = [clients EXCEPT ![c].pend = "idle",
                                          ![c].pc = @ + 1,
                                          ![c].retries = 0]
    /\ UNCHANGED <<up, spares, crashes>>

\* The fabric re-delivers a client's in-flight put request. The
\* coordinator consults the at-most-once table (steps::dedup_decision):
\* InFlight drops the duplicate, Done resends the cached response --
\* only an absent slot may execute, so a duplicate never assigns a
\* second version.
RetryDeliver(c) ==
    /\ clients[c].pend # "idle" /\ clients[c].pend # "put-issued"
    /\ clients[c].pend.st = "put-prepared"
    /\ clients[c].retries < 1
    /\ clients' = [clients EXCEPT ![c].retries = @ + 1]
    /\ UNCHANGED <<versions, dedup, up, spares, crashes, exposed>>

(***************************************************************************)
(* Read path                                                              *)
(***************************************************************************)

\* A get binds to the key's highest version (steps::read_decision): only
\* once that version's commit flag is set, and never to an older one --
\* an uncommitted latest version postpones the read (Figure 5).
GetBind(c) ==
    /\ clients[c].pend # "idle" /\ clients[c].pend # "put-issued"
    /\ clients[c].pend.st = "get-issued"
    /\ LET k == Script[c][clients[c].pc].key
       IN IF versions[k] = <<>>
          THEN clients' = [clients EXCEPT ![c].pend =
                 [st |-> "get-bound", key |-> k,
                  floor |-> clients[c].pend.floor, found |-> NoVer]]
          ELSE LET i == Len(versions[k])
               IN /\ versions[k][i].committed
                  /\ versions[k][i].coorddata
                  /\ clients' = [clients EXCEPT ![c].pend =
                       [st |-> "get-bound", key |-> k,
                        floor |-> clients[c].pend.floor,
                        found |-> versions[k][i].ver]]
    /\ UNCHANGED <<versions, dedup, up, spares, crashes, exposed>>

\* Degraded read: the bytes of the latest committed version were lost
\* with the coordinator, so the read binds late against the surviving
\* redundancy (steps::spec_read_feasible) -- it still serves the same
\* latest committed version, never an older copy.
DegradedBind(c) ==
    /\ clients[c].pend # "idle" /\ clients[c].pend # "put-issued"
    /\ clients[c].pend.st = "get-issued"
    /\ LET k == Script[c][clients[c].pc].key
       IN /\ versions[k] # <<>>
          /\ LET i == Len(versions[k])
             IN /\ versions[k][i].committed
                /\ ~versions[k][i].coorddata
                /\ \E n \in versions[k][i].holders : up[n]
                /\ clients' = [clients EXCEPT ![c].pend =
                     [st |-> "get-bound", key |-> k,
                      floor |-> clients[c].pend.floor,
                      found |-> versions[k][i].ver]]
    /\ UNCHANGED <<versions, dedup, up, spares, crashes, exposed>>

\* The bound read returns to the client, exposing the version it served.
GetReturn(c) ==
    /\ clients[c].pend # "idle" /\ clients[c].pend # "put-issued"
    /\ clients[c].pend.st = "get-bound"
    /\ exposed' = [exposed EXCEPT ![clients[c].pend.key] =
         IF clients[c].pend.found > @ THEN clients[c].pend.found ELSE @]
    /\ clients' = [clients EXCEPT ![c].pend = "idle", ![c].pc = @ + 1]
    /\ UNCHANGED <<versions, dedup, up, spares, crashes>>

(***************************************************************************)
(* Failures                                                               *)
(***************************************************************************)

\* A redundancy node dies; its pending acks never arrive.
CrashRedundancy(n) ==
    /\ crashes < MaxCrashes
    /\ up[n]
    /\ up' = [up EXCEPT ![n] = FALSE]
    /\ crashes' = crashes + 1
    /\ UNCHANGED <<versions, clients, dedup, spares, exposed>>

\* The leader promotes a spare into the dead node's slot: the fresh node
\* holds no data, and every still-pending write re-targets it
\* (steps::AckState::retarget) so its ack can complete the quorum.
SparePromote(n) ==
    /\ ~up[n]
    /\ spares > 0
    /\ up' = [up EXCEPT ![n] = TRUE]
    /\ spares' = spares - 1
    /\ versions' = [k \in Keys |->
         [i \in 1..Len(versions[k]) |->
            LET rec == versions[k][i]
            IN IF rec.committed
               THEN [rec EXCEPT !.holders = @ \ {n}]
               ELSE [rec EXCEPT !.holders = @ \ {n},
                                !.outstanding = @ \cup {n}]]]
    /\ UNCHANGED <<clients, dedup, crashes, exposed>>

\* The coordinator crashes and a spare recovers it metadata-first
\* (Section 6): committed versions survive with their local bytes lost;
\* an uncommitted version seen by at least one redundancy node is
\* completed by recovery (recovered-committed); one seen by nobody is
\* discarded, freeing its version number. Writers still waiting time
\* out with an indeterminate ("maybe") outcome.
CoordCrashRecover ==
    /\ crashes < MaxCrashes
    /\ versions' = [k \in Keys |->
         SelectSeq([i \in 1..Len(versions[k]) |->
                      LET rec == versions[k][i]
                      IN IF rec.committed
                         THEN [rec EXCEPT !.coorddata = FALSE]
                         ELSE IF rec.holders # {}
                              THEN [rec EXCEPT !.committed = TRUE,
                                               !.recovered = TRUE,
                                               !.coorddata = FALSE]
                              ELSE rec],
                   LAMBDA rec : rec.committed \/ rec.holders # {})]
    /\ clients' = [c \in Clients |->
         IF /\ clients[c].pend # "idle" /\ clients[c].pend # "put-issued"
            /\ clients[c].pend.st = "put-prepared"
         THEN [clients[c] EXCEPT !.pend = "idle", !.pc = @ + 1,
                                 !.retries = 1]
         ELSE clients[c]]
    /\ crashes' = crashes + 1
    /\ UNCHANGED <<dedup, up, spares, exposed>>

(***************************************************************************)
(* Next / Spec                                                            *)
(***************************************************************************)
Next ==
    \/ \E c \in Clients :
         IssuePut(c) \/ IssueGet(c) \/ CoordPrepare(c) \/ CommitFlag(c)
         \/ RetryDeliver(c) \/ GetBind(c) \/ DegradedBind(c) \/ GetReturn(c)
    \/ \E k \in Keys : \E i \in Nat : \E n \in Redundancy :
         RedundancyAck(k, i, n)
    \/ \E n \in Redundancy : CrashRedundancy(n) \/ SparePromote(n)
    \/ CoordCrashRecover

Spec == Init /\ [][Next]_vars

(***************************************************************************)
(* Safety invariants                                                      *)
(***************************************************************************)

\* At-most-once: a client op never materializes as two live versions --
\* the dedup table stops a re-delivered request from re-executing.
AtMostOnce ==
    \A k \in Keys :
        \A i, j \in 1..Len(versions[k]) :
            (i # j) => versions[k][i].writer # versions[k][j].writer

\* The commit flag is only ever published after every required
\* redundancy ack (recovery-committed versions are exempt: they were
\* completed from the redundancy itself).
NoTornCommit ==
    \A k \in Keys :
        \A i \in 1..Len(versions[k]) :
            (versions[k][i].committed /\ ~versions[k][i].recovered)
                => versions[k][i].needed = 0

\* Read visibility is monotone and commit-gated: a bound read serves a
\* committed version at least as new as every version exposed before
\* the read was issued.
CommittedReadsLatest ==
    \A c \in Clients :
        LET p == clients[c].pend
        IN (p # "idle" /\ p # "put-issued" /\ p.st = "get-bound")
           => /\ p.found >= p.floor
              /\ (p.found # NoVer =>
                    \E i \in 1..Len(versions[p.key]) :
                        /\ versions[p.key][i].ver = p.found
                        /\ versions[p.key][i].committed)

===============================================================================
