//! Property-based tests for GF(2^8) field axioms, region ops and matrices.

use proptest::prelude::*;
use ring_gf::{region, Gf256, Matrix};

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256)
}

/// Scalar reference for `c * b`, built only from the public field ops —
/// independent of both the table and SWAR region kernels.
fn scalar_mul(c: u8, b: u8) -> u8 {
    (Gf256(c) * Gf256(b)).0
}

/// Region lengths that exercise both kernels (table below the dispatch
/// threshold, SWAR above) plus word-boundary edge cases.
fn region_len() -> impl Strategy<Value = usize> {
    const EDGES: [usize; 8] = [0, 1, 7, 8, 9, 63, 64, 65];
    any::<u16>().prop_map(|v| {
        if v % 3 == 0 {
            EDGES[(v as usize / 3) % EDGES.len()]
        } else {
            v as usize % 300
        }
    })
}

fn nonzero_gf() -> impl Strategy<Value = Gf256> {
    (1u8..=255).prop_map(Gf256)
}

proptest! {
    #[test]
    fn addition_commutes(a in gf(), b in gf()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associates(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_commutes(a in gf(), b in gf()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_associates(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributive_law(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse_is_self(a in gf()) {
        prop_assert_eq!(a + a, Gf256::ZERO);
        prop_assert_eq!(-a, a);
    }

    #[test]
    fn multiplicative_inverse(a in nonzero_gf()) {
        prop_assert_eq!(a * a.inv(), Gf256::ONE);
        prop_assert_eq!(a / a, Gf256::ONE);
    }

    #[test]
    fn pow_adds_exponents(a in nonzero_gf(), n in 0usize..50, m in 0usize..50) {
        prop_assert_eq!(a.pow(n) * a.pow(m), a.pow(n + m));
    }

    #[test]
    fn log_exp_round_trip(a in nonzero_gf()) {
        let l = a.log().unwrap() as usize;
        prop_assert_eq!(Gf256::exp(l), a);
    }

    #[test]
    fn region_mul_acc_equals_scalar_loop(
        src in proptest::collection::vec(any::<u8>(), 0..200),
        seed in any::<u8>(),
        c in any::<u8>(),
    ) {
        let mut dst = vec![seed; src.len()];
        region::mul_acc(&mut dst, &src, Gf256(c));
        for (i, &b) in dst.iter().enumerate() {
            prop_assert_eq!(Gf256(b), Gf256(seed) + Gf256(c) * Gf256(src[i]));
        }
    }

    #[test]
    fn region_xor_then_xor_is_identity(
        a in proptest::collection::vec(any::<u8>(), 0..200),
        b_seed in any::<u8>(),
    ) {
        let b = vec![b_seed; a.len()];
        let mut x = a.clone();
        region::xor_into(&mut x, &b);
        region::xor_into(&mut x, &b);
        prop_assert_eq!(x, a);
    }

    #[test]
    fn region_delta_applies(
        old in proptest::collection::vec(any::<u8>(), 1..100),
        new_seed in any::<u8>(),
    ) {
        let new: Vec<u8> = old.iter().map(|b| b ^ new_seed).collect();
        let d = region::delta(&old, &new);
        let mut patched = old.clone();
        region::xor_into(&mut patched, &d);
        prop_assert_eq!(patched, new);
    }

    #[test]
    fn mul_acc_kernels_match_scalar_reference(
        len in region_len(),
        align in 0usize..8,
        c in any::<u8>(),
        fill in any::<u64>(),
    ) {
        // Carve unaligned windows out of larger buffers so the SWAR
        // word loop sees every possible start alignment.
        let mut state = fill | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let src_buf: Vec<u8> = (0..len + align).map(|_| next()).collect();
        let mut dst_buf: Vec<u8> = (0..len + align).map(|_| next()).collect();
        let src = &src_buf[align..];
        let dst = &mut dst_buf[align..];
        let expect: Vec<u8> = dst
            .iter()
            .zip(src)
            .map(|(d, s)| d ^ scalar_mul(c, *s))
            .collect();
        region::mul_acc(dst, src, Gf256(c));
        prop_assert_eq!(&dst[..], &expect[..]);
    }

    #[test]
    fn mul_into_kernels_match_scalar_reference(
        len in region_len(),
        align in 0usize..8,
        c in any::<u8>(),
        fill in any::<u64>(),
    ) {
        let mut state = fill | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let src_buf: Vec<u8> = (0..len + align).map(|_| next()).collect();
        let src = &src_buf[align..];
        let mut dst = vec![0xA5u8; len];
        let expect: Vec<u8> = src.iter().map(|s| scalar_mul(c, *s)).collect();
        region::mul_into(&mut dst, src, Gf256(c));
        prop_assert_eq!(&dst[..], &expect[..]);
    }

    #[test]
    fn mul_in_place_kernels_match_scalar_reference(
        len in region_len(),
        align in 0usize..8,
        c in any::<u8>(),
        fill in any::<u64>(),
    ) {
        let mut state = fill | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let mut buf: Vec<u8> = (0..len + align).map(|_| next()).collect();
        let data = &mut buf[align..];
        let expect: Vec<u8> = data.iter().map(|b| scalar_mul(c, *b)).collect();
        region::mul_in_place(data, Gf256(c));
        prop_assert_eq!(&data[..], &expect[..]);
    }

    #[test]
    fn delta_matches_bytewise_xor(
        len in region_len(),
        fill in any::<u64>(),
    ) {
        let mut state = fill | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let old: Vec<u8> = (0..len).map(|_| next()).collect();
        let new: Vec<u8> = (0..len).map(|_| next()).collect();
        let expect: Vec<u8> = old.iter().zip(&new).map(|(a, b)| a ^ b).collect();
        prop_assert_eq!(region::delta(&old, &new), expect);
    }

    #[test]
    fn matrix_inverse_round_trip(n in 1usize..7, pick in any::<u64>()) {
        // Build a random-ish invertible matrix by perturbing the identity
        // with a Vandermonde product; skip singular draws.
        let mut m = Matrix::vandermonde(n, n);
        let bytes = pick.to_le_bytes();
        for i in 0..n {
            m[(i, i)] += Gf256(bytes[i % 8] | 1);
        }
        if let Ok(inv) = m.invert() {
            prop_assert_eq!(m.mul(&inv).unwrap(), Matrix::identity(n));
        }
    }

    #[test]
    fn systematic_any_k_rows_invertible(k in 1usize..6, m in 0usize..4, pick in any::<u64>()) {
        // Randomly pick k rows out of k+m and verify invertibility
        // (sampled MDS check; the exhaustive one runs in unit tests).
        let h = Matrix::systematic(k, m);
        let total = k + m;
        let mut rows: Vec<usize> = (0..total).collect();
        // Deterministic shuffle from the seed.
        let mut state = pick | 1;
        for i in (1..rows.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            rows.swap(i, j);
        }
        rows.truncate(k);
        prop_assert!(h.select_rows(&rows).invert().is_ok());
    }
}
