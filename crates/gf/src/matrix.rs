//! Small dense matrices over GF(2^8).
//!
//! Erasure-code matrices are tiny (at most a few dozen rows), so a simple
//! row-major `Vec<Gf256>` with O(n^3) Gaussian elimination is both clear
//! and plenty fast; the bulk data work happens in [`crate::region`].

use std::fmt;

use crate::Gf256;

/// Errors from matrix construction and linear algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix is singular and cannot be inverted.
    Singular,
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Rows/cols of the left operand.
        left: (usize, usize),
        /// Rows/cols of the right operand.
        right: (usize, usize),
    },
    /// A non-square matrix was passed where a square one is required.
    NotSquare,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates the n-by-n identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major slice of raw field bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[u8]) -> Matrix {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Matrix {
            rows,
            cols,
            data: data.iter().map(|&b| Gf256(b)).collect(),
        }
    }

    /// Creates the `rows`-by-`cols` Vandermonde matrix `V[i][j] = x_i^j`
    /// with distinct evaluation points `x_i = i`.
    ///
    /// Any `cols` rows form a square Vandermonde matrix with distinct
    /// points and are therefore linearly independent — the property RS
    /// generator construction relies on.
    ///
    /// # Panics
    ///
    /// Panics if `rows > 256` (the field has only 256 distinct points).
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
        assert!(rows <= 256, "at most 256 distinct evaluation points");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = Gf256(i as u8).pow(j);
            }
        }
        m
    }

    /// Builds the systematic `(k + m) x k` coding matrix `H = [I; G]` of
    /// the paper's Eqn. (1).
    ///
    /// Starting from a `(k + m) x k` Vandermonde matrix `V` (any `k` of
    /// whose rows are independent), right-multiplying by the inverse of
    /// its top `k x k` block yields `H = V * (V_top)^-1`. The top block
    /// becomes the identity, and since right-multiplication by an
    /// invertible matrix preserves row independence, every `k x k`
    /// submatrix of `H` stays invertible — the MDS property.
    ///
    /// The generator block `G` is then normalised so its first row and
    /// first column are all ones. Scaling a parity row by a non-zero
    /// constant, or scaling column `j` of `G` alone (any chosen `k x k`
    /// submatrix's determinant merely picks up non-zero factors), both
    /// preserve the MDS property. The normalisation makes the first
    /// parity of every code a plain XOR of the data blocks — the
    /// convention of the paper's Eqn. (4) and of RAID-5-style codes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k + m > 256` (field size limit).
    pub fn systematic(k: usize, m: usize) -> Matrix {
        assert!(k > 0, "k must be positive");
        assert!(k + m <= 256, "k + m must fit the field (<= 256)");
        let v = Matrix::vandermonde(k + m, k);
        let top_rows: Vec<usize> = (0..k).collect();
        let top_inv = v
            .select_rows(&top_rows)
            .invert()
            .expect("square Vandermonde with distinct points is invertible");
        let mut h = v.mul(&top_inv).expect("dimensions match by construction");
        if m > 0 {
            // MDS implies every entry of G is non-zero (each is a 1x1
            // minor of some k x k submatrix), so the inverses exist.
            for j in 0..k {
                let scale = h[(k, j)].inv();
                for p in 0..m {
                    h[(k + p, j)] *= scale;
                }
            }
            for p in 1..m {
                let scale = h[(k + p, 0)].inv();
                for j in 0..k {
                    h[(k + p, j)] *= scale;
                }
            }
        }
        h
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns a view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[Gf256] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Swaps two columns.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + a, r * self.cols + b);
        }
    }

    /// Returns a new matrix containing the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "must select at least one row");
        let mut m = Matrix::zero(indices.len(), self.cols);
        for (out, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "row {src} out of bounds");
            for c in 0..self.cols {
                m[(out, c)] = self[(src, c)];
            }
        }
        m
    }

    /// Matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self[(i, l)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let add = a * rhs[(l, j)];
                    out[(i, j)] += add;
                }
            }
        }
        Ok(out)
    }

    /// Inverts a square matrix by Gauss-Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NotSquare`] for non-square input and
    /// [`MatrixError::Singular`] if no inverse exists.
    pub fn invert(&self) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::NotSquare);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            let pivot = (col..n)
                .find(|&r| !a[(r, col)].is_zero())
                .ok_or(MatrixError::Singular)?;
            a.swap_rows(col, pivot);
            inv.swap_rows(col, pivot);
            let scale = a[(col, col)].inv();
            for c in 0..n {
                a[(col, c)] *= scale;
                inv[(col, c)] *= scale;
            }
            for r in 0..n {
                if r != col && !a[(r, col)].is_zero() {
                    let factor = a[(r, col)];
                    for c in 0..n {
                        let asub = a[(col, c)] * factor;
                        a[(r, c)] += asub;
                        let isub = inv[(col, c)] * factor;
                        inv[(r, c)] += isub;
                    }
                }
            }
        }
        Ok(inv)
    }

    /// Returns the rank of the matrix (via row echelon reduction of a copy).
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        for col in 0..a.cols {
            if rank == a.rows {
                break;
            }
            if let Some(pivot) = (rank..a.rows).find(|&r| !a[(r, col)].is_zero()) {
                a.swap_rows(rank, pivot);
                let scale = a[(rank, col)].inv();
                for c in 0..a.cols {
                    a[(rank, c)] *= scale;
                }
                for r in 0..a.rows {
                    if r != rank && !a[(r, col)].is_zero() {
                        let factor = a[(r, col)];
                        for c in 0..a.cols {
                            let sub = a[(rank, c)] * factor;
                            a[(r, c)] += sub;
                        }
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// Returns true if every `cols x cols` submatrix formed from distinct
    /// rows is invertible — the MDS check, feasible for the small shapes
    /// used in tests.
    pub fn is_mds(&self) -> bool {
        let k = self.cols;
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            if self.select_rows(&combo).invert().is_err() {
                return false;
            }
            // Advance to the next k-combination of rows.
            let mut i = k;
            loop {
                if i == 0 {
                    return true;
                }
                i -= 1;
                if combo[i] != i + self.rows - k {
                    combo[i] += 1;
                    for j in i + 1..k {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_neutral() {
        let m = Matrix::vandermonde(4, 4);
        let i = Matrix::identity(4);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn invert_round_trips() {
        for n in 1..=8 {
            let m = Matrix::vandermonde(n, n);
            let inv = m.invert().expect("vandermonde invertible");
            assert_eq!(m.mul(&inv).unwrap(), Matrix::identity(n));
            assert_eq!(inv.mul(&m).unwrap(), Matrix::identity(n));
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut m = Matrix::zero(2, 2);
        m[(0, 0)] = Gf256::ONE;
        m[(0, 1)] = Gf256(2);
        m[(1, 0)] = Gf256::ONE;
        m[(1, 1)] = Gf256(2);
        assert_eq!(m.invert().unwrap_err(), MatrixError::Singular);
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn non_square_invert_rejected() {
        let m = Matrix::zero(2, 3);
        assert_eq!(m.invert().unwrap_err(), MatrixError::NotSquare);
    }

    #[test]
    fn mul_dimension_mismatch_rejected() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        assert!(matches!(
            a.mul(&b),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn systematic_top_block_is_identity() {
        for (k, m) in [(2, 1), (3, 1), (3, 2), (4, 2), (5, 4), (7, 5)] {
            let h = Matrix::systematic(k, m);
            assert_eq!(h.rows(), k + m);
            assert_eq!(h.cols(), k);
            for i in 0..k {
                for j in 0..k {
                    let expect = if i == j { Gf256::ONE } else { Gf256::ZERO };
                    assert_eq!(h[(i, j)], expect, "H[{i}][{j}] for RS({k},{m})");
                }
            }
        }
    }

    #[test]
    fn systematic_matrices_are_mds() {
        for (k, m) in [(2, 1), (3, 2), (4, 3), (5, 2), (6, 3)] {
            let h = Matrix::systematic(k, m);
            assert!(h.is_mds(), "RS({k},{m}) coding matrix must be MDS");
        }
    }

    #[test]
    fn select_rows_extracts_in_order() {
        let m = Matrix::vandermonde(4, 2);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.row(0), m.row(3));
        assert_eq!(s.row(1), m.row(1));
    }

    #[test]
    fn rank_of_vandermonde_is_full() {
        let m = Matrix::vandermonde(6, 3);
        assert_eq!(m.rank(), 3);
    }

    #[test]
    fn xor_of_rows_is_linear() {
        // Multiplying by a sum of basis vectors equals summing columns.
        let h = Matrix::systematic(3, 2);
        let mut v = Matrix::zero(3, 1);
        v[(0, 0)] = Gf256(5);
        v[(1, 0)] = Gf256(9);
        v[(2, 0)] = Gf256(17);
        let out = h.mul(&v).unwrap();
        // Systematic: first 3 outputs echo the inputs.
        assert_eq!(out[(0, 0)], Gf256(5));
        assert_eq!(out[(1, 0)], Gf256(9));
        assert_eq!(out[(2, 0)], Gf256(17));
    }
}
