//! Bulk ("region") operations over byte slices.
//!
//! These are the hot loops of erasure coding: every encode, decode and
//! parity-delta update is a sequence of `dst ^= c * src` operations over
//! whole blocks. Two kernels sit behind each public entry point:
//!
//! - **Table** (short regions): the constant's 256-entry multiplication
//!   table is fetched once per call and the per-byte work is a single
//!   lookup plus XOR — GF-Complete's "table" mode.
//! - **SWAR** (long regions): eight bytes per step in a `u64`, using the
//!   bit-decomposition trick from GF-Complete's word-wide modes. For a
//!   constant `c`, precompute `tab[i] = c·2^i`; a source word `w` then
//!   satisfies `c·w = XOR_i broadcast(bit_i(w)) * tab[i]`, where the
//!   broadcast isolates bit `i` of every byte lane
//!   (`(w >> i) & 0x0101…01`) and the multiply places `tab[i]` into each
//!   selected lane. `tab[i] < 256` and the mask bytes are 0/1, so lane
//!   products never carry across byte boundaries.
//!
//! Kernel selection is by region length at runtime; the public API is
//! unchanged.

use crate::tables::MUL;
use crate::Gf256;

/// Regions at least this long use the word-wide SWAR kernel; shorter
/// ones stay on the table kernel (the SWAR setup cost — building the
/// 8-entry `tab` — only amortises over a few words).
const SWAR_THRESHOLD: usize = 64;

/// The least-significant bit of every byte lane in a `u64`.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// Per-bit multiplier table for the SWAR kernel: `tab[i] = c · 2^i`.
#[inline]
fn swar_tab(c: Gf256) -> [u64; 8] {
    let row = &MUL[c.0 as usize];
    let mut tab = [0u64; 8];
    for (i, t) in tab.iter_mut().enumerate() {
        *t = row[1usize << i] as u64;
    }
    tab
}

/// Multiplies all eight byte lanes of `w` by the constant encoded in
/// `tab`, in one pass of shifts/masks/multiplies.
#[inline]
fn swar_mul_word(w: u64, tab: &[u64; 8]) -> u64 {
    let mut r = (w & LANE_LSB).wrapping_mul(tab[0]);
    r ^= ((w >> 1) & LANE_LSB).wrapping_mul(tab[1]);
    r ^= ((w >> 2) & LANE_LSB).wrapping_mul(tab[2]);
    r ^= ((w >> 3) & LANE_LSB).wrapping_mul(tab[3]);
    r ^= ((w >> 4) & LANE_LSB).wrapping_mul(tab[4]);
    r ^= ((w >> 5) & LANE_LSB).wrapping_mul(tab[5]);
    r ^= ((w >> 6) & LANE_LSB).wrapping_mul(tab[6]);
    r ^= ((w >> 7) & LANE_LSB).wrapping_mul(tab[7]);
    r
}

#[inline]
fn load_word(b: &[u8]) -> u64 {
    u64::from_ne_bytes(b.try_into().expect("chunk of 8"))
}

/// XORs `src` into `dst`: `dst[i] ^= src[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "region length mismatch");
    // Process in u64 words for throughput; tail bytes one by one.
    let mut chunks_d = dst.chunks_exact_mut(8);
    let mut chunks_s = src.chunks_exact(8);
    for (d, s) in chunks_d.by_ref().zip(chunks_s.by_ref()) {
        let dv = u64::from_ne_bytes(d.try_into().expect("chunk of 8"));
        let sv = u64::from_ne_bytes(s.try_into().expect("chunk of 8"));
        d.copy_from_slice(&(dv ^ sv).to_ne_bytes());
    }
    for (d, s) in chunks_d
        .into_remainder()
        .iter_mut()
        .zip(chunks_s.remainder())
    {
        *d ^= s;
    }
}

/// Multiplies a region by a constant in place: `data[i] = c * data[i]`.
pub fn mul_in_place(data: &mut [u8], c: Gf256) {
    match c {
        Gf256::ZERO => data.fill(0),
        Gf256::ONE => {}
        _ if data.len() >= SWAR_THRESHOLD => {
            let tab = swar_tab(c);
            let table = &MUL[c.0 as usize];
            let mut chunks = data.chunks_exact_mut(8);
            for d in chunks.by_ref() {
                let w = swar_mul_word(load_word(d), &tab);
                d.copy_from_slice(&w.to_ne_bytes());
            }
            for b in chunks.into_remainder() {
                *b = table[*b as usize];
            }
        }
        _ => {
            let table = &MUL[c.0 as usize];
            for b in data.iter_mut() {
                *b = table[*b as usize];
            }
        }
    }
}

/// Multiply-accumulate: `dst[i] ^= c * src[i]`.
///
/// This single primitive implements both RS encoding (accumulate rows of
/// the generator matrix) and the paper's parity-delta update rule
/// (`parity ^= g_ij * (new ^ old)`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "region length mismatch");
    match c {
        Gf256::ZERO => {}
        Gf256::ONE => xor_into(dst, src),
        _ if dst.len() >= SWAR_THRESHOLD => {
            let tab = swar_tab(c);
            let table = &MUL[c.0 as usize];
            let mut cd = dst.chunks_exact_mut(8);
            let mut cs = src.chunks_exact(8);
            for (d, s) in cd.by_ref().zip(cs.by_ref()) {
                let w = load_word(d) ^ swar_mul_word(load_word(s), &tab);
                d.copy_from_slice(&w.to_ne_bytes());
            }
            for (d, s) in cd.into_remainder().iter_mut().zip(cs.remainder()) {
                *d ^= table[*s as usize];
            }
        }
        _ => {
            let table = &MUL[c.0 as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= table[*s as usize];
            }
        }
    }
}

/// Copies `c * src` into `dst`, overwriting it.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_into(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "region length mismatch");
    match c {
        Gf256::ZERO => dst.fill(0),
        Gf256::ONE => dst.copy_from_slice(src),
        _ if dst.len() >= SWAR_THRESHOLD => {
            let tab = swar_tab(c);
            let table = &MUL[c.0 as usize];
            let mut cd = dst.chunks_exact_mut(8);
            let mut cs = src.chunks_exact(8);
            for (d, s) in cd.by_ref().zip(cs.by_ref()) {
                let w = swar_mul_word(load_word(s), &tab);
                d.copy_from_slice(&w.to_ne_bytes());
            }
            for (d, s) in cd.into_remainder().iter_mut().zip(cs.remainder()) {
                *d = table[*s as usize];
            }
        }
        _ => {
            let table = &MUL[c.0 as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = table[*s as usize];
            }
        }
    }
}

/// Computes the XOR difference `new ^ old` used by parity-delta updates.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn delta(old: &[u8], new: &[u8]) -> Vec<u8> {
    assert_eq!(old.len(), new.len(), "region length mismatch");
    // One allocation, then the word-wide XOR kernel.
    let mut out = new.to_vec();
    xor_into(&mut out, old);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic_and_unaligned_lengths() {
        for len in [0usize, 1, 7, 8, 9, 64, 100] {
            let mut dst: Vec<u8> = (0..len as u32).map(|i| (i * 7) as u8).collect();
            let src: Vec<u8> = (0..len as u32).map(|i| (i * 13 + 1) as u8).collect();
            let expect: Vec<u8> = dst.iter().zip(&src).map(|(a, b)| a ^ b).collect();
            xor_into(&mut dst, &src);
            assert_eq!(dst, expect, "len {len}");
        }
    }

    #[test]
    fn xor_into_self_inverse() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0xA5u8; 256];
        let orig = dst.clone();
        xor_into(&mut dst, &src);
        xor_into(&mut dst, &src);
        assert_eq!(dst, orig);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_into_length_mismatch_panics() {
        xor_into(&mut [0u8; 3], &[0u8; 4]);
    }

    #[test]
    fn mul_in_place_matches_scalar() {
        let data: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x53, 0xFF] {
            let mut region = data.clone();
            mul_in_place(&mut region, Gf256(c));
            for (i, &b) in region.iter().enumerate() {
                assert_eq!(Gf256(b), Gf256(c) * Gf256(i as u8));
            }
        }
    }

    #[test]
    fn mul_acc_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x53, 0xFF] {
            let mut dst = vec![0x5Au8; 256];
            mul_acc(&mut dst, &src, Gf256(c));
            for (i, &b) in dst.iter().enumerate() {
                assert_eq!(Gf256(b), Gf256(0x5A) + Gf256(c) * Gf256(i as u8));
            }
        }
    }

    #[test]
    fn mul_into_overwrites() {
        let src = [1u8, 2, 3];
        let mut dst = [9u8, 9, 9];
        mul_into(&mut dst, &src, Gf256(2));
        assert_eq!(dst, [2, 4, 6]);
        mul_into(&mut dst, &src, Gf256::ZERO);
        assert_eq!(dst, [0, 0, 0]);
        mul_into(&mut dst, &src, Gf256::ONE);
        assert_eq!(dst, src);
    }

    #[test]
    fn delta_xor_relation() {
        let old = [1u8, 2, 3, 4];
        let new = [5u8, 6, 7, 0];
        let d = delta(&old, &new);
        let mut recovered = old;
        xor_into(&mut recovered, &d);
        assert_eq!(recovered, new);
    }

    #[test]
    fn region_ops_distribute_like_field_ops() {
        // (a + b) * c == a*c + b*c applied region-wise.
        let a: Vec<u8> = (0..128).map(|i| (i * 3) as u8).collect();
        let b: Vec<u8> = (0..128).map(|i| (i * 5 + 1) as u8).collect();
        let c = Gf256(0x1D);
        let mut sum = a.clone();
        xor_into(&mut sum, &b);
        mul_in_place(&mut sum, c);
        let mut parts = vec![0u8; 128];
        mul_acc(&mut parts, &a, c);
        mul_acc(&mut parts, &b, c);
        assert_eq!(sum, parts);
    }
}
