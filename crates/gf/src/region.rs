//! Bulk ("region") operations over byte slices.
//!
//! These are the hot loops of erasure coding: every encode, decode and
//! parity-delta update is a sequence of `dst ^= c * src` operations over
//! whole blocks. The constant's 256-entry multiplication table is fetched
//! once per call, so the per-byte work is a single lookup plus XOR, the
//! same structure GF-Complete's "table" mode uses.

use crate::tables::MUL;
use crate::Gf256;

/// XORs `src` into `dst`: `dst[i] ^= src[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "region length mismatch");
    // Process in u64 words for throughput; tail bytes one by one.
    let mut chunks_d = dst.chunks_exact_mut(8);
    let mut chunks_s = src.chunks_exact(8);
    for (d, s) in chunks_d.by_ref().zip(chunks_s.by_ref()) {
        let dv = u64::from_ne_bytes(d.try_into().expect("chunk of 8"));
        let sv = u64::from_ne_bytes(s.try_into().expect("chunk of 8"));
        d.copy_from_slice(&(dv ^ sv).to_ne_bytes());
    }
    for (d, s) in chunks_d
        .into_remainder()
        .iter_mut()
        .zip(chunks_s.remainder())
    {
        *d ^= s;
    }
}

/// Multiplies a region by a constant in place: `data[i] = c * data[i]`.
pub fn mul_in_place(data: &mut [u8], c: Gf256) {
    match c {
        Gf256::ZERO => data.fill(0),
        Gf256::ONE => {}
        _ => {
            let table = &MUL[c.0 as usize];
            for b in data.iter_mut() {
                *b = table[*b as usize];
            }
        }
    }
}

/// Multiply-accumulate: `dst[i] ^= c * src[i]`.
///
/// This single primitive implements both RS encoding (accumulate rows of
/// the generator matrix) and the paper's parity-delta update rule
/// (`parity ^= g_ij * (new ^ old)`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "region length mismatch");
    match c {
        Gf256::ZERO => {}
        Gf256::ONE => xor_into(dst, src),
        _ => {
            let table = &MUL[c.0 as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= table[*s as usize];
            }
        }
    }
}

/// Copies `c * src` into `dst`, overwriting it.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_into(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "region length mismatch");
    match c {
        Gf256::ZERO => dst.fill(0),
        Gf256::ONE => dst.copy_from_slice(src),
        _ => {
            let table = &MUL[c.0 as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = table[*s as usize];
            }
        }
    }
}

/// Computes the XOR difference `new ^ old` used by parity-delta updates.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn delta(old: &[u8], new: &[u8]) -> Vec<u8> {
    assert_eq!(old.len(), new.len(), "region length mismatch");
    old.iter().zip(new).map(|(a, b)| a ^ b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic_and_unaligned_lengths() {
        for len in [0usize, 1, 7, 8, 9, 64, 100] {
            let mut dst: Vec<u8> = (0..len as u32).map(|i| (i * 7) as u8).collect();
            let src: Vec<u8> = (0..len as u32).map(|i| (i * 13 + 1) as u8).collect();
            let expect: Vec<u8> = dst.iter().zip(&src).map(|(a, b)| a ^ b).collect();
            xor_into(&mut dst, &src);
            assert_eq!(dst, expect, "len {len}");
        }
    }

    #[test]
    fn xor_into_self_inverse() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0xA5u8; 256];
        let orig = dst.clone();
        xor_into(&mut dst, &src);
        xor_into(&mut dst, &src);
        assert_eq!(dst, orig);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_into_length_mismatch_panics() {
        xor_into(&mut [0u8; 3], &[0u8; 4]);
    }

    #[test]
    fn mul_in_place_matches_scalar() {
        let data: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x53, 0xFF] {
            let mut region = data.clone();
            mul_in_place(&mut region, Gf256(c));
            for (i, &b) in region.iter().enumerate() {
                assert_eq!(Gf256(b), Gf256(c) * Gf256(i as u8));
            }
        }
    }

    #[test]
    fn mul_acc_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x53, 0xFF] {
            let mut dst = vec![0x5Au8; 256];
            mul_acc(&mut dst, &src, Gf256(c));
            for (i, &b) in dst.iter().enumerate() {
                assert_eq!(Gf256(b), Gf256(0x5A) + Gf256(c) * Gf256(i as u8));
            }
        }
    }

    #[test]
    fn mul_into_overwrites() {
        let src = [1u8, 2, 3];
        let mut dst = [9u8, 9, 9];
        mul_into(&mut dst, &src, Gf256(2));
        assert_eq!(dst, [2, 4, 6]);
        mul_into(&mut dst, &src, Gf256::ZERO);
        assert_eq!(dst, [0, 0, 0]);
        mul_into(&mut dst, &src, Gf256::ONE);
        assert_eq!(dst, src);
    }

    #[test]
    fn delta_xor_relation() {
        let old = [1u8, 2, 3, 4];
        let new = [5u8, 6, 7, 0];
        let d = delta(&old, &new);
        let mut recovered = old;
        xor_into(&mut recovered, &d);
        assert_eq!(recovered, new);
    }

    #[test]
    fn region_ops_distribute_like_field_ops() {
        // (a + b) * c == a*c + b*c applied region-wise.
        let a: Vec<u8> = (0..128).map(|i| (i * 3) as u8).collect();
        let b: Vec<u8> = (0..128).map(|i| (i * 5 + 1) as u8).collect();
        let c = Gf256(0x1D);
        let mut sum = a.clone();
        xor_into(&mut sum, &b);
        mul_in_place(&mut sum, c);
        let mut parts = vec![0u8; 128];
        mul_acc(&mut parts, &a, c);
        mul_acc(&mut parts, &b, c);
        assert_eq!(sum, parts);
    }
}
