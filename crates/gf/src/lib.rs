//! Galois-field arithmetic for Reed-Solomon style erasure coding.
//!
//! This crate is the reproduction's stand-in for the GF-Complete library
//! used by the Ring paper (Taranov et al., EuroSys'18). It provides:
//!
//! - [`Gf256`]: scalar arithmetic in GF(2^8) with the standard `0x11D`
//!   reduction polynomial, implemented with compile-time exp/log tables.
//! - [`region`]: bulk operations over byte slices (XOR, multiply by a
//!   constant, multiply-accumulate) — the inner loops of encoding,
//!   decoding and parity-delta updates.
//! - [`Matrix`]: small dense matrices over GF(2^8) with multiplication,
//!   Gaussian-elimination inversion, and Vandermonde-derived systematic
//!   generator construction (the `H = [I; G]` matrix of Eqn. (1) in the
//!   paper).
//!
//! # Examples
//!
//! ```
//! use ring_gf::Gf256;
//!
//! let a = Gf256(0x02);
//! let b = Gf256(0x8E);
//! assert_eq!(a * b, Gf256(0x01)); // 0x02 and 0x8E are inverses mod 0x11D.
//! assert_eq!(a + b, Gf256(0x02 ^ 0x8E));
//! ```

mod field;
mod matrix;
pub mod region;
mod tables;

pub use field::Gf256;
pub use matrix::{Matrix, MatrixError};
