//! Scalar arithmetic in GF(2^8).

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables::{EXP, LOG, MUL};

/// An element of GF(2^8) with reduction polynomial `0x11D`.
///
/// Addition and subtraction are both XOR; multiplication and division go
/// through exp/log tables. Division by zero panics, mirroring integer
/// division (see [`Gf256::checked_inv`] for the fallible form).
///
/// # Examples
///
/// ```
/// use ring_gf::Gf256;
///
/// let a = Gf256(7);
/// assert_eq!(a - a, Gf256::ZERO);
/// assert_eq!(a * a.inv(), Gf256::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The generator `x` of the multiplicative group.
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Returns `2^i` (the generator raised to `i`), wrapping every 255.
    #[inline]
    pub fn exp(i: usize) -> Gf256 {
        Gf256(EXP[i % 255])
    }

    /// Returns the discrete logarithm base 2.
    ///
    /// Returns `None` for zero, which has no logarithm.
    #[inline]
    pub fn log(self) -> Option<u16> {
        if self.0 == 0 {
            None
        } else {
            Some(LOG[self.0 as usize])
        }
    }

    /// Raises `self` to the power `n`.
    ///
    /// `0^0` is defined as `1`, matching the usual erasure-coding
    /// convention for Vandermonde matrices.
    pub fn pow(self, n: usize) -> Gf256 {
        if n == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let log = LOG[self.0 as usize] as usize;
        Gf256(EXP[(log * n) % 255])
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[inline]
    pub fn inv(self) -> Gf256 {
        self.checked_inv().expect("inverse of zero in GF(2^8)")
    }

    /// Returns the multiplicative inverse, or `None` for zero.
    #[inline]
    pub fn checked_inv(self) -> Option<Gf256> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf256(EXP[255 - LOG[self.0 as usize] as usize]))
        }
    }

    /// Returns true if this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

// In GF(2^8), addition/subtraction are XOR and division is inverse
// multiplication — clippy's suspicion is the field's definition.
#[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

// In GF(2^8), addition/subtraction are XOR and division is inverse
// multiplication — clippy's suspicion is the field's definition.
#[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

// In GF(2^8), addition/subtraction are XOR and division is inverse
// multiplication — clippy's suspicion is the field's definition.
#[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction is addition.
        Gf256(self.0 ^ rhs.0)
    }
}

// In GF(2^8), addition/subtraction are XOR and division is inverse
// multiplication — clippy's suspicion is the field's definition.
#[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
impl SubAssign for Gf256 {
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(MUL[self.0 as usize][rhs.0 as usize])
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

// In GF(2^8), addition/subtraction are XOR and division is inverse
// multiplication — clippy's suspicion is the field's definition.
#[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        self * rhs.inv()
    }
}

// In GF(2^8), addition/subtraction are XOR and division is inverse
// multiplication — clippy's suspicion is the field's definition.
#[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02X})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02X}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Gf256 {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    fn from(v: Gf256) -> u8 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256(0b1010) + Gf256(0b0110), Gf256(0b1100));
        assert_eq!(Gf256(0xFF) + Gf256(0xFF), Gf256::ZERO);
    }

    #[test]
    fn multiplicative_identity_and_zero() {
        for v in 0..=255u8 {
            let x = Gf256(v);
            assert_eq!(x * Gf256::ONE, x);
            assert_eq!(x * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for v in 1..=255u8 {
            let x = Gf256(v);
            assert_eq!(x * x.inv(), Gf256::ONE);
        }
    }

    #[test]
    fn checked_inv_of_zero_is_none() {
        assert_eq!(Gf256::ZERO.checked_inv(), None);
        assert_eq!(Gf256::ZERO.log(), None);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inv_of_zero_panics() {
        let _ = Gf256::ZERO.inv();
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for v in [0u8, 1, 2, 3, 0x1D, 0x80, 0xFF] {
            let x = Gf256(v);
            let mut acc = Gf256::ONE;
            for n in 0..20 {
                assert_eq!(x.pow(n), acc, "base {v} exponent {n}");
                acc *= x;
            }
        }
    }

    #[test]
    fn pow_zero_conventions() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
    }

    #[test]
    fn generator_has_full_order() {
        let mut x = Gf256::ONE;
        for i in 1..=255 {
            x *= Gf256::GENERATOR;
            if i < 255 {
                assert_ne!(x, Gf256::ONE, "order divides {i}");
            }
        }
        assert_eq!(x, Gf256::ONE);
    }

    #[test]
    fn division_round_trips() {
        for a in 1..=255u8 {
            for b in [1u8, 2, 7, 0x53, 0xFF] {
                let q = Gf256(a) / Gf256(b);
                assert_eq!(q * Gf256(b), Gf256(a));
            }
        }
    }
}
