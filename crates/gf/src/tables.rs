//! Compile-time exp/log tables for GF(2^8).
//!
//! The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), i.e. the reduction
//! polynomial `0x11D` that Jerasure, GF-Complete, and most storage systems
//! use. `0x02` (the polynomial `x`) is a generator of the multiplicative
//! group, so `EXP[i] = 2^i` and `LOG[EXP[i]] = i` for `i` in `0..255`.

/// The reduction polynomial of the field (degree-8 term included).
pub const POLY: u16 = 0x11D;

/// `EXP[i] = 2^i` in GF(2^8), doubled in length so that
/// `EXP[LOG[a] + LOG[b]]` never needs a modulo reduction.
pub static EXP: [u8; 512] = build_exp();

/// `LOG[a]` = discrete logarithm of `a` base 2; `LOG[0]` is a sentinel
/// (never read by correct code — multiplication checks for zero first).
pub static LOG: [u16; 256] = build_log();

/// Per-constant multiplication tables: `MUL[c][x] = c * x` in GF(2^8).
///
/// 64 KiB total; this is the table layout GF-Complete calls "table"
/// mode and what makes region multiply-accumulate a pure lookup loop.
pub static MUL: [[u8; 256]; 256] = build_mul();

const fn build_exp() -> [u8; 512] {
    let mut table = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 512 {
        table[i] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    table
}

const fn build_log() -> [u16; 256] {
    let exp = build_exp();
    let mut table = [0u16; 256];
    // `LOG[0]` stays 0 as a sentinel; callers must special-case zero.
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u16;
        i += 1;
    }
    table
}

const fn mul_slow(a: u8, b: u8) -> u8 {
    // Carry-less multiply with reduction; used only at compile time.
    let mut acc: u16 = 0;
    let mut a16 = a as u16;
    let mut b16 = b as u16;
    while b16 != 0 {
        if b16 & 1 != 0 {
            acc ^= a16;
        }
        a16 <<= 1;
        if a16 & 0x100 != 0 {
            a16 ^= POLY;
        }
        b16 >>= 1;
    }
    acc as u8
}

const fn build_mul() -> [[u8; 256]; 256] {
    let mut table = [[0u8; 256]; 256];
    let mut c = 0;
    while c < 256 {
        let mut x = 0;
        while x < 256 {
            table[c][x] = mul_slow(c as u8, x as u8);
            x += 1;
        }
        c += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_table_wraps_at_255() {
        assert_eq!(EXP[0], 1);
        assert_eq!(EXP[255], EXP[0]);
        assert_eq!(EXP[256], EXP[1]);
    }

    #[test]
    fn exp_values_are_distinct_over_one_period() {
        let mut seen = [false; 256];
        for i in 0..255 {
            assert!(!seen[EXP[i] as usize], "duplicate at {i}");
            seen[EXP[i] as usize] = true;
        }
        assert!(!seen[0], "zero is not a power of the generator");
    }

    #[test]
    fn log_inverts_exp() {
        for i in 0..255u16 {
            assert_eq!(LOG[EXP[i as usize] as usize], i);
        }
    }

    #[test]
    fn mul_table_matches_slow_multiply() {
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 0x53, 0xCA, 0xFF] {
                assert_eq!(MUL[a as usize][b as usize], mul_slow(a, b));
            }
        }
    }

    #[test]
    fn mul_slow_known_values() {
        // Test vectors for polynomial 0x11D.
        assert_eq!(mul_slow(2, 0x8E), 0x01); // 0x8E is the inverse of 2.
        assert_eq!(mul_slow(2, 0x80), 0x1D);
        assert_eq!(mul_slow(0, 0xFF), 0);
        assert_eq!(mul_slow(1, 0xAB), 0xAB);
    }
}
