//! Codec properties: encode→decode is the identity for every message
//! variant, and the decoder rejects malformed frames with errors —
//! never panics — on truncated, oversized, tampered, or random input.

use proptest::prelude::*;
use ring_kvs::config::ClusterConfig;
use ring_kvs::proto::{ClientReq, ClientResp, MetaEntry, Msg, ParitySeg};
use ring_kvs::stats::{GroupStats, MemgestStats, NodeStats, OpCounters};
use ring_kvs::types::{MemgestDescriptor, Scheme};
use ring_kvs::RingError;
use ring_net::frame::{FrameKind, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use ring_net::{NetError, Payload};
use ring_wire::{decode_frame, decode_msg, encode_frame, frame_header};

/// Number of distinct `Msg` variants ([`arb_msg_variant`] covers all).
const MSG_VARIANTS: u64 = 24;

fn arb_payload(rng: &mut TestRng) -> Payload {
    let len = rng.below(64) as usize;
    Payload::from((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<_>>())
}

fn arb_opt_payload(rng: &mut TestRng) -> Option<Payload> {
    if rng.next_u64() & 1 == 0 {
        None
    } else {
        Some(arb_payload(rng))
    }
}

fn arb_string(rng: &mut TestRng) -> String {
    let len = rng.below(24) as usize;
    (0..len)
        .map(|_| char::from(b'a' + rng.below(26) as u8))
        .collect()
}

fn arb_opt_usize(rng: &mut TestRng) -> Option<usize> {
    if rng.next_u64() & 1 == 0 {
        None
    } else {
        Some(rng.next_u64() as usize)
    }
}

fn arb_scheme(rng: &mut TestRng) -> Scheme {
    if rng.next_u64() & 1 == 0 {
        Scheme::Rep {
            r: 1 + rng.below(4) as usize,
        }
    } else {
        Scheme::Srs {
            k: 1 + rng.below(6) as usize,
            m: 1 + rng.below(3) as usize,
        }
    }
}

fn arb_descriptor(rng: &mut TestRng) -> MemgestDescriptor {
    MemgestDescriptor {
        scheme: arb_scheme(rng),
        block_size: 1 << rng.below(12),
    }
}

fn arb_meta_entry(rng: &mut TestRng) -> MetaEntry {
    MetaEntry {
        key: rng.next_u64(),
        version: rng.next_u64(),
        len: rng.below(1 << 20) as usize,
        addr: rng.next_u64() as usize,
        tombstone: rng.next_u64() & 1 == 1,
    }
}

fn arb_meta_entries(rng: &mut TestRng) -> Vec<MetaEntry> {
    let n = rng.below(5) as usize;
    (0..n).map(|_| arb_meta_entry(rng)).collect()
}

fn arb_config(rng: &mut TestRng) -> ClusterConfig {
    let n_nodes = rng.below(8) as usize;
    let n_spares = rng.below(3) as usize;
    ClusterConfig {
        epoch: rng.next_u64(),
        s: 1 + rng.below(4) as usize,
        d: rng.below(3) as usize,
        groups: 1 + rng.below(3) as usize,
        nodes: (0..n_nodes).map(|_| rng.next_u64() as u32).collect(),
        spares: (0..n_spares).map(|_| rng.next_u64() as u32).collect(),
    }
}

fn arb_error(rng: &mut TestRng) -> RingError {
    match rng.below(8) {
        0 => RingError::KeyNotFound,
        1 => RingError::UnknownMemgest(rng.next_u64() as u32),
        2 => RingError::InvalidDescriptor(arb_string(rng)),
        3 => RingError::Timeout,
        4 => RingError::NotCoordinator,
        5 => RingError::Unavailable(arb_string(rng)),
        6 => RingError::Net(arb_string(rng)),
        _ => RingError::Internal(arb_string(rng)),
    }
}

fn arb_node_stats(rng: &mut TestRng) -> NodeStats {
    let n_groups = rng.below(3) as usize;
    NodeStats {
        node: rng.next_u64() as u32,
        epoch: rng.next_u64(),
        active: rng.next_u64() & 1 == 1,
        ops: OpCounters {
            puts: rng.next_u64(),
            gets: rng.next_u64(),
            deletes: rng.next_u64(),
            moves: rng.next_u64(),
            redundancy_updates: rng.next_u64(),
        },
        groups: (0..n_groups)
            .map(|_| {
                let n_memgests = rng.below(3) as usize;
                GroupStats {
                    group: rng.next_u64() as u8,
                    shard: arb_opt_usize(rng),
                    redundant_index: arb_opt_usize(rng),
                    volatile_keys: rng.below(100) as usize,
                    memgests: (0..n_memgests)
                        .map(|_| MemgestStats {
                            id: rng.next_u64() as u32,
                            scheme: arb_string(rng),
                            coord_meta_entries: rng.below(1000) as usize,
                            missing_entries: rng.below(1000) as usize,
                            coord_meta_bytes: rng.below(1 << 20) as usize,
                            data_bytes: rng.below(1 << 20) as usize,
                            redundant_meta_entries: rng.below(1000) as usize,
                            replica_bytes: rng.below(1 << 20) as usize,
                            parity_bytes: rng.below(1 << 20) as usize,
                        })
                        .collect(),
                }
            })
            .collect(),
    }
}

fn arb_client_req(rng: &mut TestRng) -> ClientReq {
    match rng.below(9) {
        0 => ClientReq::Put {
            key: rng.next_u64(),
            value: arb_payload(rng),
            memgest: if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(rng.next_u64() as u32)
            },
        },
        1 => ClientReq::Get {
            key: rng.next_u64(),
        },
        2 => ClientReq::Delete {
            key: rng.next_u64(),
        },
        3 => ClientReq::Move {
            key: rng.next_u64(),
            dst: rng.next_u64() as u32,
        },
        4 => ClientReq::CreateMemgest {
            desc: arb_descriptor(rng),
        },
        5 => ClientReq::DeleteMemgest {
            id: rng.next_u64() as u32,
        },
        6 => ClientReq::SetDefaultMemgest {
            id: rng.next_u64() as u32,
        },
        7 => ClientReq::GetMemgestDescriptor {
            id: rng.next_u64() as u32,
        },
        _ => ClientReq::Stats,
    }
}

fn arb_client_resp(rng: &mut TestRng) -> ClientResp {
    match rng.below(10) {
        0 => ClientResp::PutOk {
            version: rng.next_u64(),
        },
        1 => ClientResp::GetOk {
            value: arb_payload(rng),
            version: rng.next_u64(),
        },
        2 => ClientResp::DeleteOk,
        3 => ClientResp::MoveOk {
            version: rng.next_u64(),
        },
        4 => ClientResp::MemgestCreated {
            id: rng.next_u64() as u32,
        },
        5 => ClientResp::MemgestDeleted,
        6 => ClientResp::DefaultSet,
        7 => ClientResp::Descriptor {
            desc: arb_descriptor(rng),
        },
        8 => ClientResp::Stats(Box::new(arb_node_stats(rng))),
        _ => ClientResp::Error(arb_error(rng)),
    }
}

/// One arbitrary message of the variant selected by `idx` (`0..22`).
fn arb_msg_variant(idx: u64, rng: &mut TestRng) -> Msg {
    match idx {
        0 => Msg::Request {
            req: rng.next_u64(),
            body: arb_client_req(rng),
        },
        1 => Msg::Response {
            req: rng.next_u64(),
            body: arb_client_resp(rng),
        },
        2 => Msg::Replicate {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            key: rng.next_u64(),
            version: rng.next_u64(),
            value: arb_payload(rng),
            tombstone: rng.next_u64() & 1 == 1,
        },
        3 => Msg::ReplicateAck {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            key: rng.next_u64(),
            version: rng.next_u64(),
        },
        4 => {
            let n = rng.below(4) as usize;
            Msg::ParityUpdate {
                group: rng.next_u64() as u8,
                memgest: rng.next_u64() as u32,
                shard: rng.below(8) as usize,
                meta: arb_meta_entry(rng),
                segs: (0..n)
                    .map(|_| ParitySeg {
                        parity_addr: rng.next_u64() as usize,
                        delta: arb_payload(rng),
                    })
                    .collect(),
            }
        }
        5 => Msg::ParityAck {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            key: rng.next_u64(),
            version: rng.next_u64(),
        },
        6 => Msg::MetaRemove {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            key: rng.next_u64(),
            below: rng.next_u64(),
        },
        7 => Msg::Heartbeat,
        8 => {
            let n = rng.below(4) as usize;
            Msg::ConfigUpdate {
                config: arb_config(rng),
                memgests: (0..n)
                    .map(|_| (rng.next_u64() as u32, arb_descriptor(rng)))
                    .collect(),
                default: rng.next_u64() as u32,
            }
        }
        9 => Msg::MemgestCreate {
            token: rng.next_u64(),
            id: rng.next_u64() as u32,
            desc: arb_descriptor(rng),
        },
        10 => Msg::MemgestDrop {
            token: rng.next_u64(),
            id: rng.next_u64() as u32,
        },
        11 => Msg::SetDefault {
            token: rng.next_u64(),
            id: rng.next_u64() as u32,
        },
        12 => Msg::CtrlAck {
            token: rng.next_u64(),
        },
        13 => Msg::MetaFetch {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            shard: rng.below(8) as usize,
        },
        14 => {
            let entries = arb_meta_entries(rng);
            let values = (0..entries.len()).map(|_| arb_opt_payload(rng)).collect();
            Msg::MetaFetchResp {
                group: rng.next_u64() as u8,
                memgest: rng.next_u64() as u32,
                shard: rng.below(8) as usize,
                entries,
                values,
            }
        }
        15 => Msg::FetchValue {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            key: rng.next_u64(),
            version: rng.next_u64(),
        },
        16 => Msg::FetchValueResp {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            key: rng.next_u64(),
            version: rng.next_u64(),
            value: arb_opt_payload(rng),
        },
        17 => Msg::RecoverBlock {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            shard: rng.below(8) as usize,
            addr: rng.next_u64() as usize,
            len: rng.below(1 << 20) as usize,
        },
        18 => Msg::RecoverBlockResp {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            addr: rng.next_u64() as usize,
            bytes: arb_opt_payload(rng),
        },
        19 => Msg::ParityRebuildStart {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
        },
        20 => Msg::ParityRebuildInfo {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            shard: rng.below(8) as usize,
            heap_len: rng.next_u64() as usize,
            data_valid: rng.next_u64() & 1 == 1,
            entries: arb_meta_entries(rng),
        },
        21 => Msg::ParityRebuildDone {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
        },
        22 => {
            let n = rng.below(5) as usize;
            Msg::ShardRead {
                group: rng.next_u64() as u8,
                memgest: rng.next_u64() as u32,
                token: rng.next_u64(),
                parity: rng.next_u64() & 1 == 1,
                ranges: (0..n)
                    .map(|_| (rng.next_u64() as usize, rng.below(1 << 20) as usize))
                    .collect(),
            }
        }
        _ => Msg::ShardReadResp {
            group: rng.next_u64() as u8,
            memgest: rng.next_u64() as u32,
            token: rng.next_u64(),
            bytes: arb_opt_payload(rng),
        },
    }
}

/// Strategy yielding an arbitrary [`Msg`] of any variant.
struct AnyMsg;

impl Strategy for AnyMsg {
    type Value = Msg;
    fn generate(&self, rng: &mut TestRng) -> Msg {
        let idx = rng.below(MSG_VARIANTS);
        arb_msg_variant(idx, rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_identity(msg in AnyMsg) {
        let frame = encode_frame(&msg);
        let back = decode_frame(&frame);
        prop_assert_eq!(back.as_ref().ok(), Some(&msg), "frame = {:?}", frame);
    }

    #[test]
    fn truncated_frames_error(msg in AnyMsg, frac in 0u64..1000) {
        let frame = encode_frame(&msg);
        // Any strict prefix must fail cleanly — header-level prefixes and
        // body-level prefixes alike.
        let cut = (frame.len() as u64 * frac / 1000) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_frame(&frame[..cut]).is_err(), "cut at {}", cut);
    }

    #[test]
    fn trailing_bytes_rejected(msg in AnyMsg, junk in 1u64..16) {
        // Extend the body and patch the header length so the frame is
        // self-consistent; the decoder must still reject the surplus.
        let mut frame = encode_frame(&msg);
        frame.extend(std::iter::repeat_n(0xA5u8, junk as usize));
        let body_len = frame.len() - FRAME_HEADER_LEN;
        frame[4..8].copy_from_slice(&(body_len as u32).to_le_bytes());
        prop_assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn bad_version_rejected(msg in AnyMsg, version in 0u64..=255) {
        let mut frame = encode_frame(&msg);
        if version as u8 != ring_net::frame::FRAME_VERSION {
            frame[2] = version as u8;
            prop_assert!(decode_frame(&frame).is_err());
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..256)) {
        // Whatever comes back, it must come back — no panics, no aborts.
        let _ = decode_frame(&bytes);
        let _ = decode_msg(&bytes);
    }

    #[test]
    fn bitflips_never_panic(msg in AnyMsg, pos_seed in any::<u64>(), bit in 0u64..8) {
        let mut frame = encode_frame(&msg);
        let pos = (pos_seed % frame.len() as u64) as usize;
        frame[pos] ^= 1 << bit;
        // A flipped bit may still decode (e.g. inside a key) — it must
        // just never panic, and never decode to a *different length*
        // understanding of the frame.
        let _ = decode_frame(&frame);
    }
}

#[test]
fn every_variant_round_trips() {
    // The proptest above draws variants randomly; this loop guarantees
    // all 24 are exercised even with few cases, several seeds each.
    for idx in 0..MSG_VARIANTS {
        for seed in 0..16u64 {
            let mut rng = TestRng::new(0xC0DEC ^ (seed << 8) ^ idx);
            let msg = arb_msg_variant(idx, &mut rng);
            let frame = encode_frame(&msg);
            let back =
                decode_frame(&frame).unwrap_or_else(|e| panic!("variant {idx} seed {seed}: {e}"));
            assert_eq!(back, msg, "variant {idx} seed {seed}");
        }
    }
}

#[test]
fn oversized_length_rejected() {
    // A header declaring more than MAX_FRAME_LEN body bytes fails at the
    // header check, before any allocation.
    let mut frame = frame_header(FrameKind::App, 0).to_vec();
    frame[4..8].copy_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
    match decode_frame(&frame) {
        Err(NetError::BadFrame(why)) => assert!(why.contains("cap"), "{why}"),
        other => panic!("expected BadFrame, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_kind_rejected() {
    let frame = encode_frame(&Msg::Heartbeat);
    let mut bad = frame.clone();
    bad[0] = b'X';
    assert!(matches!(decode_frame(&bad), Err(NetError::BadFrame(_))));
    // Non-App kinds are transport-internal; the codec rejects them.
    let mut bad = frame.clone();
    bad[3] = FrameKind::Hello as u8;
    assert!(matches!(decode_frame(&bad), Err(NetError::BadFrame(_))));
    let mut bad = frame;
    bad[3] = 200;
    assert!(matches!(decode_frame(&bad), Err(NetError::BadFrame(_))));
}

#[test]
fn corrupt_count_fields_cannot_allocate() {
    // MetaFetchResp with a huge entry count: the decoder must fail on
    // missing bytes, not attempt a giant Vec reservation.
    let mut rng = TestRng::new(42);
    let msg = arb_msg_variant(14, &mut rng);
    let mut frame = encode_frame(&msg);
    // Body layout: tag u8, group u8, memgest u32, shard u64, count u32.
    let count_off = FRAME_HEADER_LEN + 1 + 1 + 4 + 8;
    frame[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(decode_frame(&frame), Err(NetError::BadFrame(_))));
}
