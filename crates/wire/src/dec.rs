//! Bytes → message. Every read is bounds-checked; arbitrary input
//! produces [`NetError::BadFrame`], never a panic. Collection counts
//! are decoded incrementally (capacity is bounded), so a corrupt count
//! field cannot trigger a giant allocation — the reads fail first.

use ring_kvs::config::ClusterConfig;
use ring_kvs::proto::{ClientReq, ClientResp, MetaEntry, Msg, ParitySeg};
use ring_kvs::stats::{GroupStats, MemgestStats, NodeStats, OpCounters};
use ring_kvs::types::{MemgestDescriptor, Scheme};
use ring_kvs::RingError;
use ring_net::{NetError, Payload, WireReader};

use crate::tags::*;

/// Pre-allocation cap for decoded collections: trust the bytes, not the
/// count field.
const MAX_PREALLOC: usize = 1024;

fn bad(what: &str, value: impl std::fmt::Display) -> NetError {
    NetError::BadFrame(format!("unknown {what} {value}"))
}

fn get_bool(r: &mut WireReader) -> Result<bool, NetError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(bad("bool byte", b)),
    }
}

fn get_usize(r: &mut WireReader) -> Result<usize, NetError> {
    Ok(r.u64()? as usize)
}

fn get_payload(r: &mut WireReader) -> Result<Payload, NetError> {
    let n = r.u32()? as usize;
    Ok(Payload::from(r.bytes(n)?.to_vec()))
}

fn get_opt_payload(r: &mut WireReader) -> Result<Option<Payload>, NetError> {
    Ok(if get_bool(r)? {
        Some(get_payload(r)?)
    } else {
        None
    })
}

fn get_str(r: &mut WireReader) -> Result<String, NetError> {
    let n = r.u32()? as usize;
    String::from_utf8(r.bytes(n)?.to_vec())
        .map_err(|_| NetError::BadFrame("non-UTF-8 string".into()))
}

fn get_opt_usize(r: &mut WireReader) -> Result<Option<usize>, NetError> {
    Ok(if get_bool(r)? {
        Some(get_usize(r)?)
    } else {
        None
    })
}

fn get_scheme(r: &mut WireReader) -> Result<Scheme, NetError> {
    match r.u8()? {
        SCHEME_REP => Ok(Scheme::Rep { r: get_usize(r)? }),
        SCHEME_SRS => Ok(Scheme::Srs {
            k: get_usize(r)?,
            m: get_usize(r)?,
        }),
        t => Err(bad("scheme tag", t)),
    }
}

fn get_descriptor(r: &mut WireReader) -> Result<MemgestDescriptor, NetError> {
    Ok(MemgestDescriptor {
        scheme: get_scheme(r)?,
        block_size: get_usize(r)?,
    })
}

fn get_meta_entry(r: &mut WireReader) -> Result<MetaEntry, NetError> {
    Ok(MetaEntry {
        key: r.u64()?,
        version: r.u64()?,
        len: get_usize(r)?,
        addr: get_usize(r)?,
        tombstone: get_bool(r)?,
    })
}

fn get_meta_entries(r: &mut WireReader) -> Result<Vec<MetaEntry>, NetError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(MAX_PREALLOC));
    for _ in 0..n {
        out.push(get_meta_entry(r)?);
    }
    Ok(out)
}

fn get_config(r: &mut WireReader) -> Result<ClusterConfig, NetError> {
    let epoch = r.u64()?;
    let s = get_usize(r)?;
    let d = get_usize(r)?;
    let groups = get_usize(r)?;
    let n_nodes = r.u32()? as usize;
    let mut nodes = Vec::with_capacity(n_nodes.min(MAX_PREALLOC));
    for _ in 0..n_nodes {
        nodes.push(r.u32()?);
    }
    let n_spares = r.u32()? as usize;
    let mut spares = Vec::with_capacity(n_spares.min(MAX_PREALLOC));
    for _ in 0..n_spares {
        spares.push(r.u32()?);
    }
    Ok(ClusterConfig {
        epoch,
        s,
        d,
        groups,
        nodes,
        spares,
    })
}

fn get_error(r: &mut WireReader) -> Result<RingError, NetError> {
    Ok(match r.u8()? {
        ERR_KEY_NOT_FOUND => RingError::KeyNotFound,
        ERR_UNKNOWN_MEMGEST => RingError::UnknownMemgest(r.u32()?),
        ERR_INVALID_DESCRIPTOR => RingError::InvalidDescriptor(get_str(r)?),
        ERR_TIMEOUT => RingError::Timeout,
        ERR_NOT_COORDINATOR => RingError::NotCoordinator,
        ERR_UNAVAILABLE => RingError::Unavailable(get_str(r)?),
        ERR_NET => RingError::Net(get_str(r)?),
        ERR_INTERNAL => RingError::Internal(get_str(r)?),
        t => return Err(bad("error tag", t)),
    })
}

fn get_op_counters(r: &mut WireReader) -> Result<OpCounters, NetError> {
    Ok(OpCounters {
        puts: r.u64()?,
        gets: r.u64()?,
        deletes: r.u64()?,
        moves: r.u64()?,
        redundancy_updates: r.u64()?,
    })
}

fn get_memgest_stats(r: &mut WireReader) -> Result<MemgestStats, NetError> {
    Ok(MemgestStats {
        id: r.u32()?,
        scheme: get_str(r)?,
        coord_meta_entries: get_usize(r)?,
        missing_entries: get_usize(r)?,
        coord_meta_bytes: get_usize(r)?,
        data_bytes: get_usize(r)?,
        redundant_meta_entries: get_usize(r)?,
        replica_bytes: get_usize(r)?,
        parity_bytes: get_usize(r)?,
    })
}

fn get_group_stats(r: &mut WireReader) -> Result<GroupStats, NetError> {
    let group = r.u8()?;
    let shard = get_opt_usize(r)?;
    let redundant_index = get_opt_usize(r)?;
    let volatile_keys = get_usize(r)?;
    let n = r.u32()? as usize;
    let mut memgests = Vec::with_capacity(n.min(MAX_PREALLOC));
    for _ in 0..n {
        memgests.push(get_memgest_stats(r)?);
    }
    Ok(GroupStats {
        group,
        shard,
        redundant_index,
        volatile_keys,
        memgests,
    })
}

fn get_node_stats(r: &mut WireReader) -> Result<NodeStats, NetError> {
    let node = r.u32()?;
    let epoch = r.u64()?;
    let active = get_bool(r)?;
    let ops = get_op_counters(r)?;
    let n = r.u32()? as usize;
    let mut groups = Vec::with_capacity(n.min(MAX_PREALLOC));
    for _ in 0..n {
        groups.push(get_group_stats(r)?);
    }
    Ok(NodeStats {
        node,
        epoch,
        active,
        ops,
        groups,
    })
}

fn get_client_req(r: &mut WireReader) -> Result<ClientReq, NetError> {
    Ok(match r.u8()? {
        REQ_PUT => {
            let key = r.u64()?;
            let memgest = if get_bool(r)? { Some(r.u32()?) } else { None };
            let value = get_payload(r)?;
            ClientReq::Put {
                key,
                value,
                memgest,
            }
        }
        REQ_GET => ClientReq::Get { key: r.u64()? },
        REQ_DELETE => ClientReq::Delete { key: r.u64()? },
        REQ_MOVE => ClientReq::Move {
            key: r.u64()?,
            dst: r.u32()?,
        },
        REQ_CREATE_MEMGEST => ClientReq::CreateMemgest {
            desc: get_descriptor(r)?,
        },
        REQ_DELETE_MEMGEST => ClientReq::DeleteMemgest { id: r.u32()? },
        REQ_SET_DEFAULT_MEMGEST => ClientReq::SetDefaultMemgest { id: r.u32()? },
        REQ_GET_MEMGEST_DESCRIPTOR => ClientReq::GetMemgestDescriptor { id: r.u32()? },
        REQ_STATS => ClientReq::Stats,
        t => return Err(bad("client request tag", t)),
    })
}

fn get_client_resp(r: &mut WireReader) -> Result<ClientResp, NetError> {
    Ok(match r.u8()? {
        RESP_PUT_OK => ClientResp::PutOk { version: r.u64()? },
        RESP_GET_OK => {
            let version = r.u64()?;
            let value = get_payload(r)?;
            ClientResp::GetOk { value, version }
        }
        RESP_DELETE_OK => ClientResp::DeleteOk,
        RESP_MOVE_OK => ClientResp::MoveOk { version: r.u64()? },
        RESP_MEMGEST_CREATED => ClientResp::MemgestCreated { id: r.u32()? },
        RESP_MEMGEST_DELETED => ClientResp::MemgestDeleted,
        RESP_DEFAULT_SET => ClientResp::DefaultSet,
        RESP_DESCRIPTOR => ClientResp::Descriptor {
            desc: get_descriptor(r)?,
        },
        RESP_STATS => ClientResp::Stats(Box::new(get_node_stats(r)?)),
        RESP_ERROR => ClientResp::Error(get_error(r)?),
        t => return Err(bad("client response tag", t)),
    })
}

/// Decodes one frame body back into a protocol message.
///
/// # Errors
///
/// [`NetError::BadFrame`] on any truncated field, unknown tag,
/// malformed string, or trailing bytes.
pub fn decode_msg(body: &[u8]) -> Result<Msg, NetError> {
    let mut rd = WireReader::new(body);
    let r = &mut rd;
    let msg = match r.u8()? {
        MSG_REQUEST => Msg::Request {
            req: r.u64()?,
            body: get_client_req(r)?,
        },
        MSG_RESPONSE => Msg::Response {
            req: r.u64()?,
            body: get_client_resp(r)?,
        },
        MSG_REPLICATE => {
            let group = r.u8()?;
            let memgest = r.u32()?;
            let key = r.u64()?;
            let version = r.u64()?;
            let tombstone = get_bool(r)?;
            let value = get_payload(r)?;
            Msg::Replicate {
                group,
                memgest,
                key,
                version,
                value,
                tombstone,
            }
        }
        MSG_REPLICATE_ACK => Msg::ReplicateAck {
            group: r.u8()?,
            memgest: r.u32()?,
            key: r.u64()?,
            version: r.u64()?,
        },
        MSG_PARITY_UPDATE => {
            let group = r.u8()?;
            let memgest = r.u32()?;
            let shard = get_usize(r)?;
            let meta = get_meta_entry(r)?;
            let n = r.u32()? as usize;
            let mut segs = Vec::with_capacity(n.min(MAX_PREALLOC));
            for _ in 0..n {
                segs.push(ParitySeg {
                    parity_addr: get_usize(r)?,
                    delta: get_payload(r)?,
                });
            }
            Msg::ParityUpdate {
                group,
                memgest,
                shard,
                meta,
                segs,
            }
        }
        MSG_PARITY_ACK => Msg::ParityAck {
            group: r.u8()?,
            memgest: r.u32()?,
            key: r.u64()?,
            version: r.u64()?,
        },
        MSG_META_REMOVE => Msg::MetaRemove {
            group: r.u8()?,
            memgest: r.u32()?,
            key: r.u64()?,
            below: r.u64()?,
        },
        MSG_HEARTBEAT => Msg::Heartbeat,
        MSG_CONFIG_UPDATE => {
            let config = get_config(r)?;
            let n = r.u32()? as usize;
            let mut memgests = Vec::with_capacity(n.min(MAX_PREALLOC));
            for _ in 0..n {
                let id = r.u32()?;
                memgests.push((id, get_descriptor(r)?));
            }
            let default = r.u32()?;
            Msg::ConfigUpdate {
                config,
                memgests,
                default,
            }
        }
        MSG_MEMGEST_CREATE => Msg::MemgestCreate {
            token: r.u64()?,
            id: r.u32()?,
            desc: get_descriptor(r)?,
        },
        MSG_MEMGEST_DROP => Msg::MemgestDrop {
            token: r.u64()?,
            id: r.u32()?,
        },
        MSG_SET_DEFAULT => Msg::SetDefault {
            token: r.u64()?,
            id: r.u32()?,
        },
        MSG_CTRL_ACK => Msg::CtrlAck { token: r.u64()? },
        MSG_META_FETCH => Msg::MetaFetch {
            group: r.u8()?,
            memgest: r.u32()?,
            shard: get_usize(r)?,
        },
        MSG_META_FETCH_RESP => {
            let group = r.u8()?;
            let memgest = r.u32()?;
            let shard = get_usize(r)?;
            let entries = get_meta_entries(r)?;
            let n = r.u32()? as usize;
            let mut values = Vec::with_capacity(n.min(MAX_PREALLOC));
            for _ in 0..n {
                values.push(get_opt_payload(r)?);
            }
            Msg::MetaFetchResp {
                group,
                memgest,
                shard,
                entries,
                values,
            }
        }
        MSG_FETCH_VALUE => Msg::FetchValue {
            group: r.u8()?,
            memgest: r.u32()?,
            key: r.u64()?,
            version: r.u64()?,
        },
        MSG_FETCH_VALUE_RESP => {
            let group = r.u8()?;
            let memgest = r.u32()?;
            let key = r.u64()?;
            let version = r.u64()?;
            let value = get_opt_payload(r)?;
            Msg::FetchValueResp {
                group,
                memgest,
                key,
                version,
                value,
            }
        }
        MSG_RECOVER_BLOCK => Msg::RecoverBlock {
            group: r.u8()?,
            memgest: r.u32()?,
            shard: get_usize(r)?,
            addr: get_usize(r)?,
            len: get_usize(r)?,
        },
        MSG_RECOVER_BLOCK_RESP => {
            let group = r.u8()?;
            let memgest = r.u32()?;
            let addr = get_usize(r)?;
            let bytes = get_opt_payload(r)?;
            Msg::RecoverBlockResp {
                group,
                memgest,
                addr,
                bytes,
            }
        }
        MSG_SHARD_READ => {
            let group = r.u8()?;
            let memgest = r.u32()?;
            let token = r.u64()?;
            let parity = get_bool(r)?;
            let n = r.u32()? as usize;
            let mut ranges = Vec::with_capacity(n.min(MAX_PREALLOC));
            for _ in 0..n {
                ranges.push((get_usize(r)?, get_usize(r)?));
            }
            Msg::ShardRead {
                group,
                memgest,
                token,
                parity,
                ranges,
            }
        }
        MSG_SHARD_READ_RESP => {
            let group = r.u8()?;
            let memgest = r.u32()?;
            let token = r.u64()?;
            let bytes = get_opt_payload(r)?;
            Msg::ShardReadResp {
                group,
                memgest,
                token,
                bytes,
            }
        }
        MSG_PARITY_REBUILD_START => Msg::ParityRebuildStart {
            group: r.u8()?,
            memgest: r.u32()?,
        },
        MSG_PARITY_REBUILD_INFO => {
            let group = r.u8()?;
            let memgest = r.u32()?;
            let shard = get_usize(r)?;
            let heap_len = get_usize(r)?;
            let data_valid = get_bool(r)?;
            let entries = get_meta_entries(r)?;
            Msg::ParityRebuildInfo {
                group,
                memgest,
                shard,
                heap_len,
                data_valid,
                entries,
            }
        }
        MSG_PARITY_REBUILD_DONE => Msg::ParityRebuildDone {
            group: r.u8()?,
            memgest: r.u32()?,
        },
        t => return Err(bad("message tag", t)),
    };
    rd.finish()?;
    Ok(msg)
}
