//! Wire tags, shared by the encoder and decoder. Tag values are part
//! of the protocol: never renumber an existing tag, only append.

// Msg variants.
pub const MSG_REQUEST: u8 = 0;
pub const MSG_RESPONSE: u8 = 1;
pub const MSG_REPLICATE: u8 = 2;
pub const MSG_REPLICATE_ACK: u8 = 3;
pub const MSG_PARITY_UPDATE: u8 = 4;
pub const MSG_PARITY_ACK: u8 = 5;
pub const MSG_META_REMOVE: u8 = 6;
pub const MSG_HEARTBEAT: u8 = 7;
pub const MSG_CONFIG_UPDATE: u8 = 8;
pub const MSG_MEMGEST_CREATE: u8 = 9;
pub const MSG_MEMGEST_DROP: u8 = 10;
pub const MSG_SET_DEFAULT: u8 = 11;
pub const MSG_CTRL_ACK: u8 = 12;
pub const MSG_META_FETCH: u8 = 13;
pub const MSG_META_FETCH_RESP: u8 = 14;
pub const MSG_FETCH_VALUE: u8 = 15;
pub const MSG_FETCH_VALUE_RESP: u8 = 16;
pub const MSG_RECOVER_BLOCK: u8 = 17;
pub const MSG_RECOVER_BLOCK_RESP: u8 = 18;
pub const MSG_PARITY_REBUILD_START: u8 = 19;
pub const MSG_PARITY_REBUILD_INFO: u8 = 20;
pub const MSG_PARITY_REBUILD_DONE: u8 = 21;
pub const MSG_SHARD_READ: u8 = 22;
pub const MSG_SHARD_READ_RESP: u8 = 23;

// ClientReq variants.
pub const REQ_PUT: u8 = 0;
pub const REQ_GET: u8 = 1;
pub const REQ_DELETE: u8 = 2;
pub const REQ_MOVE: u8 = 3;
pub const REQ_CREATE_MEMGEST: u8 = 4;
pub const REQ_DELETE_MEMGEST: u8 = 5;
pub const REQ_SET_DEFAULT_MEMGEST: u8 = 6;
pub const REQ_GET_MEMGEST_DESCRIPTOR: u8 = 7;
pub const REQ_STATS: u8 = 8;

// ClientResp variants.
pub const RESP_PUT_OK: u8 = 0;
pub const RESP_GET_OK: u8 = 1;
pub const RESP_DELETE_OK: u8 = 2;
pub const RESP_MOVE_OK: u8 = 3;
pub const RESP_MEMGEST_CREATED: u8 = 4;
pub const RESP_MEMGEST_DELETED: u8 = 5;
pub const RESP_DEFAULT_SET: u8 = 6;
pub const RESP_DESCRIPTOR: u8 = 7;
pub const RESP_STATS: u8 = 8;
pub const RESP_ERROR: u8 = 9;

// RingError variants.
pub const ERR_KEY_NOT_FOUND: u8 = 0;
pub const ERR_UNKNOWN_MEMGEST: u8 = 1;
pub const ERR_INVALID_DESCRIPTOR: u8 = 2;
pub const ERR_TIMEOUT: u8 = 3;
pub const ERR_NOT_COORDINATOR: u8 = 4;
pub const ERR_UNAVAILABLE: u8 = 5;
pub const ERR_NET: u8 = 6;
pub const ERR_INTERNAL: u8 = 7;

// Scheme variants.
pub const SCHEME_REP: u8 = 0;
pub const SCHEME_SRS: u8 = 1;
