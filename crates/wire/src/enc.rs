//! Message → bytes. The encoder is infallible: every in-memory message
//! has exactly one wire form. Payload bytes travel as shared
//! [`FrameBuf`] segments (zero-copy).

use ring_kvs::config::ClusterConfig;
use ring_kvs::proto::{ClientReq, ClientResp, MetaEntry, Msg, ParitySeg};
use ring_kvs::stats::{GroupStats, MemgestStats, NodeStats, OpCounters};
use ring_kvs::types::{MemgestDescriptor, Scheme};
use ring_kvs::RingError;
use ring_net::{FrameBuf, Payload};

use crate::tags::*;

fn put_bool(out: &mut FrameBuf, v: bool) {
    out.put_u8(v as u8);
}

fn put_payload(out: &mut FrameBuf, p: &Payload) {
    out.put_u32(p.len() as u32);
    out.put_payload(p);
}

fn put_opt_payload(out: &mut FrameBuf, p: &Option<Payload>) {
    match p {
        Some(p) => {
            put_bool(out, true);
            put_payload(out, p);
        }
        None => put_bool(out, false),
    }
}

fn put_str(out: &mut FrameBuf, s: &str) {
    out.put_u32(s.len() as u32);
    out.put_bytes(s.as_bytes());
}

fn put_opt_usize(out: &mut FrameBuf, v: Option<usize>) {
    match v {
        Some(v) => {
            put_bool(out, true);
            out.put_u64(v as u64);
        }
        None => put_bool(out, false),
    }
}

fn put_scheme(out: &mut FrameBuf, s: Scheme) {
    match s {
        Scheme::Rep { r } => {
            out.put_u8(SCHEME_REP);
            out.put_u64(r as u64);
        }
        Scheme::Srs { k, m } => {
            out.put_u8(SCHEME_SRS);
            out.put_u64(k as u64);
            out.put_u64(m as u64);
        }
    }
}

fn put_descriptor(out: &mut FrameBuf, d: &MemgestDescriptor) {
    put_scheme(out, d.scheme);
    out.put_u64(d.block_size as u64);
}

fn put_meta_entry(out: &mut FrameBuf, e: &MetaEntry) {
    out.put_u64(e.key);
    out.put_u64(e.version);
    out.put_u64(e.len as u64);
    out.put_u64(e.addr as u64);
    put_bool(out, e.tombstone);
}

fn put_meta_entries(out: &mut FrameBuf, entries: &[MetaEntry]) {
    out.put_u32(entries.len() as u32);
    for e in entries {
        put_meta_entry(out, e);
    }
}

fn put_parity_seg(out: &mut FrameBuf, s: &ParitySeg) {
    out.put_u64(s.parity_addr as u64);
    put_payload(out, &s.delta);
}

fn put_config(out: &mut FrameBuf, c: &ClusterConfig) {
    out.put_u64(c.epoch);
    out.put_u64(c.s as u64);
    out.put_u64(c.d as u64);
    out.put_u64(c.groups as u64);
    out.put_u32(c.nodes.len() as u32);
    for &n in &c.nodes {
        out.put_u32(n);
    }
    out.put_u32(c.spares.len() as u32);
    for &n in &c.spares {
        out.put_u32(n);
    }
}

fn put_error(out: &mut FrameBuf, e: &RingError) {
    match e {
        RingError::KeyNotFound => out.put_u8(ERR_KEY_NOT_FOUND),
        RingError::UnknownMemgest(id) => {
            out.put_u8(ERR_UNKNOWN_MEMGEST);
            out.put_u32(*id);
        }
        RingError::InvalidDescriptor(msg) => {
            out.put_u8(ERR_INVALID_DESCRIPTOR);
            put_str(out, msg);
        }
        RingError::Timeout => out.put_u8(ERR_TIMEOUT),
        RingError::NotCoordinator => out.put_u8(ERR_NOT_COORDINATOR),
        RingError::Unavailable(msg) => {
            out.put_u8(ERR_UNAVAILABLE);
            put_str(out, msg);
        }
        RingError::Net(msg) => {
            out.put_u8(ERR_NET);
            put_str(out, msg);
        }
        RingError::Internal(msg) => {
            out.put_u8(ERR_INTERNAL);
            put_str(out, msg);
        }
    }
}

fn put_op_counters(out: &mut FrameBuf, o: &OpCounters) {
    out.put_u64(o.puts);
    out.put_u64(o.gets);
    out.put_u64(o.deletes);
    out.put_u64(o.moves);
    out.put_u64(o.redundancy_updates);
}

fn put_memgest_stats(out: &mut FrameBuf, m: &MemgestStats) {
    out.put_u32(m.id);
    put_str(out, &m.scheme);
    out.put_u64(m.coord_meta_entries as u64);
    out.put_u64(m.missing_entries as u64);
    out.put_u64(m.coord_meta_bytes as u64);
    out.put_u64(m.data_bytes as u64);
    out.put_u64(m.redundant_meta_entries as u64);
    out.put_u64(m.replica_bytes as u64);
    out.put_u64(m.parity_bytes as u64);
}

fn put_group_stats(out: &mut FrameBuf, g: &GroupStats) {
    out.put_u8(g.group);
    put_opt_usize(out, g.shard);
    put_opt_usize(out, g.redundant_index);
    out.put_u64(g.volatile_keys as u64);
    out.put_u32(g.memgests.len() as u32);
    for m in &g.memgests {
        put_memgest_stats(out, m);
    }
}

fn put_node_stats(out: &mut FrameBuf, s: &NodeStats) {
    out.put_u32(s.node);
    out.put_u64(s.epoch);
    put_bool(out, s.active);
    put_op_counters(out, &s.ops);
    out.put_u32(s.groups.len() as u32);
    for g in &s.groups {
        put_group_stats(out, g);
    }
}

fn put_client_req(out: &mut FrameBuf, req: &ClientReq) {
    match req {
        ClientReq::Put {
            key,
            value,
            memgest,
        } => {
            out.put_u8(REQ_PUT);
            out.put_u64(*key);
            match memgest {
                Some(id) => {
                    put_bool(out, true);
                    out.put_u32(*id);
                }
                None => put_bool(out, false),
            }
            put_payload(out, value);
        }
        ClientReq::Get { key } => {
            out.put_u8(REQ_GET);
            out.put_u64(*key);
        }
        ClientReq::Delete { key } => {
            out.put_u8(REQ_DELETE);
            out.put_u64(*key);
        }
        ClientReq::Move { key, dst } => {
            out.put_u8(REQ_MOVE);
            out.put_u64(*key);
            out.put_u32(*dst);
        }
        ClientReq::CreateMemgest { desc } => {
            out.put_u8(REQ_CREATE_MEMGEST);
            put_descriptor(out, desc);
        }
        ClientReq::DeleteMemgest { id } => {
            out.put_u8(REQ_DELETE_MEMGEST);
            out.put_u32(*id);
        }
        ClientReq::SetDefaultMemgest { id } => {
            out.put_u8(REQ_SET_DEFAULT_MEMGEST);
            out.put_u32(*id);
        }
        ClientReq::GetMemgestDescriptor { id } => {
            out.put_u8(REQ_GET_MEMGEST_DESCRIPTOR);
            out.put_u32(*id);
        }
        ClientReq::Stats => out.put_u8(REQ_STATS),
    }
}

fn put_client_resp(out: &mut FrameBuf, resp: &ClientResp) {
    match resp {
        ClientResp::PutOk { version } => {
            out.put_u8(RESP_PUT_OK);
            out.put_u64(*version);
        }
        ClientResp::GetOk { value, version } => {
            out.put_u8(RESP_GET_OK);
            out.put_u64(*version);
            put_payload(out, value);
        }
        ClientResp::DeleteOk => out.put_u8(RESP_DELETE_OK),
        ClientResp::MoveOk { version } => {
            out.put_u8(RESP_MOVE_OK);
            out.put_u64(*version);
        }
        ClientResp::MemgestCreated { id } => {
            out.put_u8(RESP_MEMGEST_CREATED);
            out.put_u32(*id);
        }
        ClientResp::MemgestDeleted => out.put_u8(RESP_MEMGEST_DELETED),
        ClientResp::DefaultSet => out.put_u8(RESP_DEFAULT_SET),
        ClientResp::Descriptor { desc } => {
            out.put_u8(RESP_DESCRIPTOR);
            put_descriptor(out, desc);
        }
        ClientResp::Stats(stats) => {
            out.put_u8(RESP_STATS);
            put_node_stats(out, stats);
        }
        ClientResp::Error(e) => {
            out.put_u8(RESP_ERROR);
            put_error(out, e);
        }
    }
}

/// Encodes one protocol message into a frame body.
pub fn encode_msg(msg: &Msg, out: &mut FrameBuf) {
    match msg {
        Msg::Request { req, body } => {
            out.put_u8(MSG_REQUEST);
            out.put_u64(*req);
            put_client_req(out, body);
        }
        Msg::Response { req, body } => {
            out.put_u8(MSG_RESPONSE);
            out.put_u64(*req);
            put_client_resp(out, body);
        }
        Msg::Replicate {
            group,
            memgest,
            key,
            version,
            value,
            tombstone,
        } => {
            out.put_u8(MSG_REPLICATE);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*key);
            out.put_u64(*version);
            put_bool(out, *tombstone);
            put_payload(out, value);
        }
        Msg::ReplicateAck {
            group,
            memgest,
            key,
            version,
        } => {
            out.put_u8(MSG_REPLICATE_ACK);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*key);
            out.put_u64(*version);
        }
        Msg::ParityUpdate {
            group,
            memgest,
            shard,
            meta,
            segs,
        } => {
            out.put_u8(MSG_PARITY_UPDATE);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*shard as u64);
            put_meta_entry(out, meta);
            out.put_u32(segs.len() as u32);
            for s in segs {
                put_parity_seg(out, s);
            }
        }
        Msg::ParityAck {
            group,
            memgest,
            key,
            version,
        } => {
            out.put_u8(MSG_PARITY_ACK);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*key);
            out.put_u64(*version);
        }
        Msg::MetaRemove {
            group,
            memgest,
            key,
            below,
        } => {
            out.put_u8(MSG_META_REMOVE);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*key);
            out.put_u64(*below);
        }
        Msg::Heartbeat => out.put_u8(MSG_HEARTBEAT),
        Msg::ConfigUpdate {
            config,
            memgests,
            default,
        } => {
            out.put_u8(MSG_CONFIG_UPDATE);
            put_config(out, config);
            out.put_u32(memgests.len() as u32);
            for (id, desc) in memgests {
                out.put_u32(*id);
                put_descriptor(out, desc);
            }
            out.put_u32(*default);
        }
        Msg::MemgestCreate { token, id, desc } => {
            out.put_u8(MSG_MEMGEST_CREATE);
            out.put_u64(*token);
            out.put_u32(*id);
            put_descriptor(out, desc);
        }
        Msg::MemgestDrop { token, id } => {
            out.put_u8(MSG_MEMGEST_DROP);
            out.put_u64(*token);
            out.put_u32(*id);
        }
        Msg::SetDefault { token, id } => {
            out.put_u8(MSG_SET_DEFAULT);
            out.put_u64(*token);
            out.put_u32(*id);
        }
        Msg::CtrlAck { token } => {
            out.put_u8(MSG_CTRL_ACK);
            out.put_u64(*token);
        }
        Msg::MetaFetch {
            group,
            memgest,
            shard,
        } => {
            out.put_u8(MSG_META_FETCH);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*shard as u64);
        }
        Msg::MetaFetchResp {
            group,
            memgest,
            shard,
            entries,
            values,
        } => {
            out.put_u8(MSG_META_FETCH_RESP);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*shard as u64);
            put_meta_entries(out, entries);
            out.put_u32(values.len() as u32);
            for v in values {
                put_opt_payload(out, v);
            }
        }
        Msg::FetchValue {
            group,
            memgest,
            key,
            version,
        } => {
            out.put_u8(MSG_FETCH_VALUE);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*key);
            out.put_u64(*version);
        }
        Msg::FetchValueResp {
            group,
            memgest,
            key,
            version,
            value,
        } => {
            out.put_u8(MSG_FETCH_VALUE_RESP);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*key);
            out.put_u64(*version);
            put_opt_payload(out, value);
        }
        Msg::RecoverBlock {
            group,
            memgest,
            shard,
            addr,
            len,
        } => {
            out.put_u8(MSG_RECOVER_BLOCK);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*shard as u64);
            out.put_u64(*addr as u64);
            out.put_u64(*len as u64);
        }
        Msg::RecoverBlockResp {
            group,
            memgest,
            addr,
            bytes,
        } => {
            out.put_u8(MSG_RECOVER_BLOCK_RESP);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*addr as u64);
            put_opt_payload(out, bytes);
        }
        Msg::ShardRead {
            group,
            memgest,
            token,
            parity,
            ranges,
        } => {
            out.put_u8(MSG_SHARD_READ);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*token);
            put_bool(out, *parity);
            out.put_u32(ranges.len() as u32);
            for &(addr, len) in ranges {
                out.put_u64(addr as u64);
                out.put_u64(len as u64);
            }
        }
        Msg::ShardReadResp {
            group,
            memgest,
            token,
            bytes,
        } => {
            out.put_u8(MSG_SHARD_READ_RESP);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*token);
            put_opt_payload(out, bytes);
        }
        Msg::ParityRebuildStart { group, memgest } => {
            out.put_u8(MSG_PARITY_REBUILD_START);
            out.put_u8(*group);
            out.put_u32(*memgest);
        }
        Msg::ParityRebuildInfo {
            group,
            memgest,
            shard,
            heap_len,
            data_valid,
            entries,
        } => {
            out.put_u8(MSG_PARITY_REBUILD_INFO);
            out.put_u8(*group);
            out.put_u32(*memgest);
            out.put_u64(*shard as u64);
            out.put_u64(*heap_len as u64);
            put_bool(out, *data_valid);
            put_meta_entries(out, entries);
        }
        Msg::ParityRebuildDone { group, memgest } => {
            out.put_u8(MSG_PARITY_REBUILD_DONE);
            out.put_u8(*group);
            out.put_u32(*memgest);
        }
    }
}
