//! The binary wire codec for the Ring protocol.
//!
//! `ring-wire` serialises every [`Msg`] variant to the length-prefixed,
//! versioned frame format defined in `ring_net::frame` — the encoding
//! spoken between `ring-server` processes and by `ring-cli`. The codec
//! is hand-rolled (no external serialisation dependency) with three
//! properties the transport relies on:
//!
//! - **Zero-copy payloads on encode.** Value bytes ([`Payload`]) are
//!   appended to the [`FrameBuf`] as shared segments: encoding a 1 MiB
//!   put clones an `Arc`, never the megabyte.
//! - **Panic-free decode.** Every field read is bounds-checked through
//!   [`WireReader`]; truncated, oversized, or bad-version input returns
//!   [`NetError::BadFrame`], never panics. Trailing bytes after a
//!   message are rejected too.
//! - **Versioned framing.** The frame header carries the protocol
//!   version, so incompatible peers fail fast instead of desyncing.
//!
//! All integers are little-endian and fixed-width: `u8` tags, `u32`
//! lengths/ids, `u64` keys/versions/addresses (`usize` fields travel as
//! `u64`).

mod dec;
mod enc;
mod tags;

use ring_kvs::proto::Msg;
use ring_net::frame::{pack_header, parse_header, FrameKind, FRAME_HEADER_LEN};
use ring_net::{Codec, FrameBuf, NetError};

pub use dec::decode_msg;
pub use enc::encode_msg;

/// The Ring protocol's [`Codec`], injected into `TcpTransport`.
#[derive(Debug, Default, Clone, Copy)]
pub struct MsgCodec;

impl Codec<Msg> for MsgCodec {
    fn encode(&self, msg: &Msg, out: &mut FrameBuf) {
        encode_msg(msg, out);
    }

    fn decode(&self, body: &[u8]) -> Result<Msg, NetError> {
        decode_msg(body)
    }
}

/// Encodes `msg` as one complete `App` frame (header + body).
///
/// Flattens the zero-copy segments into one buffer — use
/// [`encode_msg`] + [`FrameBuf::write_to`] on the hot path; this is for
/// tests and tools.
pub fn encode_frame(msg: &Msg) -> Vec<u8> {
    let mut body = FrameBuf::new();
    encode_msg(msg, &mut body);
    body.to_frame_bytes(FrameKind::App)
}

/// Decodes one complete frame (header + body) back into a [`Msg`].
///
/// # Errors
///
/// [`NetError::BadFrame`] if the header is malformed (magic, version,
/// kind, length cap), the declared length disagrees with the bytes
/// provided, or the body fails to decode.
pub fn decode_frame(bytes: &[u8]) -> Result<Msg, NetError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(NetError::BadFrame(format!(
            "frame of {} bytes is shorter than the {FRAME_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header.copy_from_slice(&bytes[..FRAME_HEADER_LEN]);
    let (kind, len) = parse_header(&header)?;
    if kind != FrameKind::App {
        return Err(NetError::BadFrame(format!(
            "expected an App frame, got {kind:?}"
        )));
    }
    let body = &bytes[FRAME_HEADER_LEN..];
    if body.len() != len {
        return Err(NetError::BadFrame(format!(
            "header declares {len} body bytes, {} provided",
            body.len()
        )));
    }
    decode_msg(body)
}

/// Re-packs a frame's header (test helper for version/kind tampering).
pub fn frame_header(kind: FrameKind, len: usize) -> [u8; FRAME_HEADER_LEN] {
    pack_header(kind, len)
}
