//! Continuous-time Markov chains: transient solutions and time averages.

use crate::expm::Matrixf;

/// A finite CTMC described by its generator matrix `Q` (`q_ij` is the
/// rate from state `i` to `j`; rows sum to zero) and an initial
/// distribution.
///
/// Solves the Kolmogorov forward problem of the paper's Eqn. (7):
/// `P(t) = P(0) e^{Qt}` (row-vector convention).
#[derive(Debug, Clone)]
pub struct Ctmc {
    q: Matrixf,
    p0: Vec<f64>,
}

impl Ctmc {
    /// Creates a chain from a generator and an initial distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not square, dimensions mismatch, a row of `q`
    /// does not sum to ~0, or `p0` does not sum to ~1.
    pub fn new(q: Matrixf, p0: Vec<f64>) -> Ctmc {
        assert_eq!(q.rows(), q.cols(), "generator must be square");
        assert_eq!(q.rows(), p0.len(), "initial distribution size mismatch");
        for i in 0..q.rows() {
            let row_sum: f64 = (0..q.cols()).map(|j| q[(i, j)]).sum();
            assert!(
                row_sum.abs() < 1e-6 * (1.0 + q.norm_inf()),
                "generator row {i} sums to {row_sum}, not 0"
            );
        }
        let total: f64 = p0.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "initial distribution sums to {total}"
        );
        Ctmc { q, p0 }
    }

    /// A chain that starts deterministically in state 0.
    ///
    /// # Panics
    ///
    /// Same as [`Ctmc::new`].
    pub fn from_state0(q: Matrixf) -> Ctmc {
        let n = q.rows();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        Ctmc::new(q, p0)
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.p0.len()
    }

    /// The generator matrix.
    pub fn generator(&self) -> &Matrixf {
        &self.q
    }

    /// State probabilities at time `t`: `P(t) = P(0) e^{Qt}`.
    pub fn transient(&self, t: f64) -> Vec<f64> {
        let e = self.q.scale(t).expm();
        self.apply(&e)
    }

    /// Time-averaged state probabilities over `[0, tau]`:
    /// `(1/tau) ∫ P(t) dt`, computed with Van Loan's block-matrix trick:
    /// `expm([[Q, I], [0, 0]] * tau)` has `∫ e^{Qt} dt` in its upper-right
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `tau <= 0`.
    pub fn time_average(&self, tau: f64) -> Vec<f64> {
        assert!(tau > 0.0, "tau must be positive");
        let n = self.states();
        let mut block = Matrixf::zero(2 * n, 2 * n);
        for i in 0..n {
            for j in 0..n {
                block[(i, j)] = self.q[(i, j)] * tau;
            }
            block[(i, n + i)] = tau;
        }
        let e = block.expm();
        // Extract the upper-right block = ∫_0^tau e^{Qt} dt.
        let mut integral = Matrixf::zero(n, n);
        for i in 0..n {
            for j in 0..n {
                integral[(i, j)] = e[(i, n + j)] / tau;
            }
        }
        self.apply(&integral)
    }

    fn apply(&self, m: &Matrixf) -> Vec<f64> {
        let n = self.states();
        let mut out = vec![0.0; n];
        for (i, &p) in self.p0.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            for (j, o) in out.iter_mut().enumerate() {
                *o += p * m[(i, j)];
            }
        }
        // Clamp tiny numerical noise.
        for o in out.iter_mut() {
            *o = o.clamp(0.0, 1.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        // 0 <-> 1 birth-death.
        let mut q = Matrixf::zero(2, 2);
        q[(0, 0)] = -lambda;
        q[(0, 1)] = lambda;
        q[(1, 0)] = mu;
        q[(1, 1)] = -mu;
        Ctmc::from_state0(q)
    }

    #[test]
    fn probabilities_sum_to_one() {
        let c = two_state(2.0, 5.0);
        for t in [0.0, 0.1, 1.0, 10.0, 1000.0] {
            let p = c.transient(t);
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "t = {t}: sum = {total}");
        }
    }

    #[test]
    fn two_state_analytic_solution() {
        // P0(t) = mu/(l+mu) + l/(l+mu) e^{-(l+mu)t}.
        let (l, mu) = (2.0, 5.0);
        let c = two_state(l, mu);
        for t in [0.0, 0.3, 1.0, 4.0] {
            let p = c.transient(t);
            let expect = mu / (l + mu) + l / (l + mu) * (-(l + mu) * t).exp();
            assert!((p[0] - expect).abs() < 1e-10, "t = {t}");
        }
    }

    #[test]
    fn absorbing_state_drains_probability() {
        // 0 -> 1 absorbing with rate 3: P1(t) = 1 - e^{-3t}.
        let mut q = Matrixf::zero(2, 2);
        q[(0, 0)] = -3.0;
        q[(0, 1)] = 3.0;
        let c = Ctmc::from_state0(q);
        let p = c.transient(1.0);
        assert!((p[1] - (1.0 - (-3.0f64).exp())).abs() < 1e-10);
    }

    #[test]
    fn time_average_of_absorbing_chain() {
        // A(t) = P0(t) = e^{-lt}; avg over tau = (1 - e^{-l tau})/(l tau).
        let l = 2.0;
        let mut q = Matrixf::zero(2, 2);
        q[(0, 0)] = -l;
        q[(0, 1)] = l;
        let c = Ctmc::from_state0(q);
        let tau = 1.5;
        let avg = c.time_average(tau);
        let expect = (1.0 - (-l * tau).exp()) / (l * tau);
        assert!((avg[0] - expect).abs() < 1e-9, "avg = {}", avg[0]);
    }

    #[test]
    fn stationary_limit_reached() {
        let (l, mu) = (1.0, 100.0);
        let c = two_state(l, mu);
        let p = c.transient(1e4);
        assert!((p[0] - mu / (l + mu)).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "row 0 sums")]
    fn bad_generator_rejected() {
        let mut q = Matrixf::zero(2, 2);
        q[(0, 0)] = 1.0; // Rows must sum to zero.
        let _ = Ctmc::from_state0(q);
    }
}
