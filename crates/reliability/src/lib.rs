//! CTMC reliability and availability models for RS and SRS codes.
//!
//! This crate reproduces Appendix A of the Ring paper (Taranov et al.,
//! EuroSys'18): continuous-time Markov chain models that estimate the
//! annual reliability (probability of not losing data within a year) and
//! interval availability of `RS(k, m)` and `SRS(k, m, s)` storage
//! schemes, expressed in "nines".
//!
//! - [`Ctmc`]: a small dense CTMC with transient solutions `P(t) = P(0)
//!   e^{Qt}` (scaling-and-squaring matrix exponential) and Van Loan
//!   integrals for interval availability.
//! - [`rs_chain`]: the birth-death chain of the paper's Figure 14.
//! - [`srs_chain`]: the generalised chain of Figure 15, with the
//!   failure-tolerance probabilities `f_i` obtained by total enumeration
//!   of failure patterns (via [`ring_erasure::SrsCode::survivable_fraction`]),
//!   hypergeometric data/parity failure mixes `p_ij`, and mixed recovery
//!   rates `µ_ij`.
//!
//! # A note on the paper's `µ_D`
//!
//! Appendix A.2 states that a data node stores `s/k` times *less* data
//! than a parity node but then writes `µ_D = (k/s) µ`. Less data must
//! recover *faster*, i.e. `µ_D = (s/k) µ` — and only that reading
//! reproduces the paper's own observation that stretching can *increase*
//! reliability (Section 3.3: "faster recovery increases reliability").
//! We therefore implement `µ_D = (s/k) µ` and record the discrepancy in
//! EXPERIMENTS.md.
//!
//! # Examples
//!
//! ```
//! use ring_reliability::{srs_chain, ModelParams, nines};
//!
//! let params = ModelParams::default();
//! let rs = srs_chain(3, 1, 3, &params).annual_reliability();
//! let srs = srs_chain(3, 1, 6, &params).annual_reliability();
//! // Stretching RS(3,1) over 6 nodes keeps reliability in the same band.
//! assert!((nines(rs) - nines(srs)).abs() < 1.0);
//! ```

mod ctmc;
mod expm;
mod model;

pub use ctmc::Ctmc;
pub use expm::Matrixf;
pub use model::{rs_chain, srs_chain, ModelParams, SchemeChain};

/// Converts a probability `p` into "number of nines": `-log10(1 - p)`.
///
/// Returns `f64::INFINITY` for `p >= 1` and `0.0` for `p <= 0`.
pub fn nines(p: f64) -> f64 {
    if p >= 1.0 {
        f64::INFINITY
    } else if p <= 0.0 {
        0.0
    } else {
        -(1.0 - p).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nines_known_values() {
        assert!((nines(0.9) - 1.0).abs() < 1e-12);
        assert!((nines(0.99) - 2.0).abs() < 1e-12);
        assert!((nines(0.9999) - 4.0).abs() < 1e-9);
        assert_eq!(nines(1.0), f64::INFINITY);
        assert_eq!(nines(0.0), 0.0);
        assert_eq!(nines(-0.5), 0.0);
    }
}
