//! The RS and SRS reliability chains of Appendix A.

use ring_erasure::SrsCode;

use crate::ctmc::Ctmc;
use crate::expm::Matrixf;

/// Physical parameters of the reliability model.
///
/// Rates are expressed per year. The rebuild rate follows Eqn. (6):
/// `µ = 1 / (C/B_N + T_comp(C))` where `C` is the dataset size, `B_N`
/// the recovery network bandwidth and `T_comp` the decode time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Failure rate of a single node, per year (1.0 ≈ one failure per
    /// node-year, a deliberately pessimistic commodity-server figure).
    pub lambda_per_year: f64,
    /// Full size of the dataset in GiB (`C` in Eqn. (6)).
    pub dataset_gib: f64,
    /// Recovery network bandwidth in GiB/s (`B_N`).
    pub net_bandwidth_gib_s: f64,
    /// Erasure decode throughput in GiB/s (defines `T_comp`).
    pub compute_gib_s: f64,
}

/// Seconds per year (Julian year).
const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

impl Default for ModelParams {
    fn default() -> ModelParams {
        ModelParams {
            lambda_per_year: 1.0,
            dataset_gib: 600.0,
            net_bandwidth_gib_s: 0.125, // ~1 Gb/s effective recovery rate.
            compute_gib_s: 1.0,
        }
    }
}

impl ModelParams {
    /// The rebuild rate `µ` per year, from Eqn. (6).
    pub fn mu_per_year(&self) -> f64 {
        let t_net = self.dataset_gib / self.net_bandwidth_gib_s;
        let t_comp = self.dataset_gib / self.compute_gib_s;
        SECONDS_PER_YEAR / (t_net + t_comp)
    }
}

/// A storage scheme's reliability chain: the CTMC plus labels.
///
/// State `i < fail_state` means "`i` nodes down, data intact";
/// `fail_state` is the absorbing data-loss state FS.
#[derive(Debug, Clone)]
pub struct SchemeChain {
    /// Human-readable scheme label (e.g. `SRS(3,2,6)`).
    pub label: String,
    chain: Ctmc,
    fail_state: usize,
}

impl SchemeChain {
    /// The underlying CTMC.
    pub fn ctmc(&self) -> &Ctmc {
        &self.chain
    }

    /// Index of the absorbing fail state.
    pub fn fail_state(&self) -> usize {
        self.fail_state
    }

    /// Probability that no data is lost within `t` years.
    pub fn reliability(&self, t_years: f64) -> f64 {
        1.0 - self.chain.transient(t_years)[self.fail_state]
    }

    /// Annual reliability, `R(1 year)`.
    pub fn annual_reliability(&self) -> f64 {
        self.reliability(1.0)
    }

    /// Point availability at time `t`: probability of being in state 0
    /// (all nodes healthy — the only state with no data under recovery).
    pub fn availability(&self, t_years: f64) -> f64 {
        self.chain.transient(t_years)[0]
    }

    /// Interval availability over `[0, tau]` years (Appendix A.3).
    pub fn interval_availability(&self, tau_years: f64) -> f64 {
        self.chain.time_average(tau_years)[0]
    }

    /// Annual interval availability, `A_av(1 year)`.
    pub fn annual_availability(&self) -> f64 {
        self.interval_availability(1.0)
    }
}

/// Builds the `RS(k, m)` chain of Figure 14: states `0..=m` plus FS,
/// failure rate `(k + m - i)λ` from state `i`, constant repair rate `µ`.
///
/// Replication `Rep(r)` is the special case `rs_chain(1, r - 1, ..)`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn rs_chain(k: usize, m: usize, params: &ModelParams) -> SchemeChain {
    assert!(k > 0, "k must be positive");
    let lambda = params.lambda_per_year;
    let mu = params.mu_per_year();
    let n = m + 2; // States 0..=m and FS.
    let fs = m + 1;
    let mut q = Matrixf::zero(n, n);
    for i in 0..=m {
        let rate = (k + m - i) as f64 * lambda;
        let next = if i == m { fs } else { i + 1 };
        q[(i, next)] += rate;
        q[(i, i)] -= rate;
        if i > 0 {
            q[(i, i - 1)] += mu;
            q[(i, i)] -= mu;
        }
    }
    SchemeChain {
        label: format!("RS({k},{m})"),
        chain: Ctmc::from_state0(q),
        fail_state: fs,
    }
}

/// Binomial coefficient as `f64`.
fn binom(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut out = 1.0;
    for i in 0..k {
        out = out * (n - i) as f64 / (i + 1) as f64;
    }
    out
}

/// Builds the `SRS(k, m, s)` chain of Figure 15.
///
/// - `f_i`: probability that the code survives `i` simultaneous node
///   failures, by total enumeration of failure patterns.
/// - From state `i`, the failure rate `(s + m - i)λ` branches to state
///   `i + 1` with probability `p_i = f_{i+1} / f_i` and to FS otherwise.
/// - The repair rate `µ_i` mixes data-node and parity-node rebuild rates
///   with the hypergeometric probability `p_ij` of `j` of the `i` failed
///   nodes being data nodes; data nodes hold `k/s` of a parity node's
///   data and therefore rebuild at `(s/k)µ` (see the crate-level note on
///   the paper's `µ_D` sign).
///
/// # Panics
///
/// Panics if the SRS parameters are invalid (`s < k`, `k == 0`, ...).
pub fn srs_chain(k: usize, m: usize, s: usize, params: &ModelParams) -> SchemeChain {
    let code = SrsCode::new(k, m, s).unwrap_or_else(|e| panic!("invalid SRS params: {e}"));
    let lambda = params.lambda_per_year;
    let mu = params.mu_per_year();

    // f_i for i = 0..=s+m; u = first i with f_i == 0.
    let mut f = Vec::with_capacity(s + m + 1);
    for i in 0..=(s + m) {
        f.push(code.survivable_fraction(i));
        if *f.last().expect("just pushed") == 0.0 {
            break;
        }
    }
    let u = f.len() - 1; // f[u] == 0 (total failure count s+m always dies).

    // States 0..u-1 are functional, state u... careful: functional
    // states are 0..=u-1; FS is the last index.
    let n = u + 1;
    let fs = u;
    let mut q = Matrixf::zero(n, n);
    for i in 0..u {
        let rate = (s + m - i) as f64 * lambda;
        let p_survive = if i + 1 < f.len() && f[i] > 0.0 {
            f[i + 1] / f[i]
        } else {
            0.0
        };
        if i + 1 < u && p_survive > 0.0 {
            q[(i, i + 1)] += rate * p_survive;
            q[(i, fs)] += rate * (1.0 - p_survive);
        } else {
            q[(i, fs)] += rate;
        }
        q[(i, i)] -= rate;

        if i > 0 {
            // µ_i = Σ_j µ_ij p_ij.
            let mut denom = 0.0;
            for j in 0..=i {
                if i - j <= m && j <= s {
                    denom += binom(s, j) * binom(m, i - j);
                }
            }
            let mut mu_i = 0.0;
            for j in 0..=i {
                if i - j <= m && j <= s {
                    let p_ij = binom(s, j) * binom(m, i - j) / denom;
                    let mu_ij = (j as f64 / i as f64) * (s as f64 / k as f64) * mu
                        + ((i - j) as f64 / i as f64) * mu;
                    mu_i += mu_ij * p_ij;
                }
            }
            q[(i, i - 1)] += mu_i;
            q[(i, i)] -= mu_i;
        }
    }
    SchemeChain {
        label: format!("SRS({k},{m},{s})"),
        chain: Ctmc::from_state0(q),
        fail_state: fs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nines;

    fn p() -> ModelParams {
        ModelParams::default()
    }

    #[test]
    fn mu_matches_eqn6() {
        let params = ModelParams {
            lambda_per_year: 1.0,
            dataset_gib: 600.0,
            net_bandwidth_gib_s: 0.125,
            compute_gib_s: 1.0,
        };
        // T = 600/0.125 + 600/1 = 5400 s.
        let expect = SECONDS_PER_YEAR / 5400.0;
        assert!((params.mu_per_year() - expect).abs() < 1e-9);
    }

    #[test]
    fn rs32_transition_matrix_structure() {
        // The worked example in Appendix A.1 for RS(3,2).
        let params = p();
        let c = rs_chain(3, 2, &params);
        let q = c.ctmc().generator();
        let l = params.lambda_per_year;
        let mu = params.mu_per_year();
        assert_eq!(c.ctmc().states(), 4);
        assert!((q[(0, 1)] - 5.0 * l).abs() < 1e-12);
        assert!((q[(0, 0)] + 5.0 * l).abs() < 1e-12);
        assert!((q[(1, 0)] - mu).abs() < 1e-9);
        assert!((q[(1, 2)] - 4.0 * l).abs() < 1e-12);
        assert!((q[(2, 3)] - 3.0 * l).abs() < 1e-12);
        // FS absorbing.
        for j in 0..4 {
            assert_eq!(q[(3, j)], 0.0);
        }
    }

    #[test]
    fn srs214_matches_papers_example_matrix() {
        // Appendix A.2: SRS(2,1,4) has 4 states; from state 1 the next
        // failure is survived with probability 2/5. We follow the
        // paper's *formula* λ_i = (s + m - i)λ with s + m = 5 nodes; the
        // example matrix printed in the paper shows 6λ/5λ/4λ, an
        // off-by-one against its own formula (recorded in
        // EXPERIMENTS.md).
        let params = p();
        let c = srs_chain(2, 1, 4, &params);
        assert_eq!(c.ctmc().states(), 4);
        let q = c.ctmc().generator();
        let l = params.lambda_per_year;
        assert!((q[(0, 1)] - 5.0 * l).abs() < 1e-12);
        assert!((q[(1, 2)] - 4.0 * l * (2.0 / 5.0)).abs() < 1e-9);
        assert!((q[(1, 3)] - 4.0 * l * (3.0 / 5.0)).abs() < 1e-9);
        assert!((q[(2, 3)] - 3.0 * l).abs() < 1e-12);
    }

    #[test]
    fn srs_kmk_equals_rs() {
        let params = p();
        let a = rs_chain(3, 2, &params).annual_reliability();
        let b = srs_chain(3, 2, 3, &params).annual_reliability();
        assert!((a - b).abs() < 1e-12, "rs {a} vs srs {b}");
    }

    #[test]
    fn more_parity_is_more_reliable() {
        let params = p();
        let r1 = rs_chain(3, 1, &params).annual_reliability();
        let r2 = rs_chain(3, 2, &params).annual_reliability();
        let r3 = rs_chain(3, 3, &params).annual_reliability();
        assert!(r1 < r2 && r2 < r3, "{r1} {r2} {r3}");
    }

    #[test]
    fn reliability_band_matches_figure2() {
        // Figure 2: RS(2,1) sits between 2 and 4 nines; RS(7,5) above 10.
        let params = p();
        let low = nines(rs_chain(2, 1, &params).annual_reliability());
        let high = nines(rs_chain(7, 5, &params).annual_reliability());
        assert!((2.0..4.5).contains(&low), "RS(2,1) nines = {low}");
        assert!(high > 9.0, "RS(7,5) nines = {high}");
    }

    #[test]
    fn stretching_stays_in_reliability_band() {
        // Figure 2: SRS(3,1,s) for s in 3..=7 stays within ~1 nine.
        let params = p();
        let base = nines(srs_chain(3, 1, 3, &params).annual_reliability());
        for s in 4..=7 {
            let stretched = nines(srs_chain(3, 1, s, &params).annual_reliability());
            assert!(
                (stretched - base).abs() < 1.0,
                "s = {s}: {stretched} vs base {base}"
            );
        }
    }

    #[test]
    fn srs326_more_reliable_than_rs32() {
        // The paper's explicit example: SRS(3,2,6) beats RS(3,2) thanks
        // to faster per-node recovery and extra tolerable patterns.
        let params = p();
        let rs = srs_chain(3, 2, 3, &params).annual_reliability();
        let srs = srs_chain(3, 2, 6, &params).annual_reliability();
        assert!(srs > rs, "SRS(3,2,6) {srs} <= RS(3,2) {rs}");
    }

    #[test]
    fn availability_at_most_reliability_pointwise() {
        // At any instant, state 0 is a subset of the functional states,
        // so A(t) <= R(t).
        let params = p();
        for (k, m, s) in [(2, 1, 3), (3, 2, 6), (4, 1, 4)] {
            let c = srs_chain(k, m, s, &params);
            for t in [0.1, 0.5, 1.0, 3.0] {
                assert!(
                    c.availability(t) <= c.reliability(t) + 1e-12,
                    "SRS({k},{m},{s}) at t = {t}"
                );
            }
        }
    }

    #[test]
    fn availability_band_matches_figure16() {
        // Figure 16: availabilities sit around 2.8..3.4 nines, maximal
        // for the SRS(2,1,s) family.
        let params = p();
        let a = nines(srs_chain(2, 1, 3, &params).annual_availability());
        assert!(
            (2.0..4.5).contains(&a),
            "SRS(2,1,3) availability nines = {a}"
        );
        let worse = nines(srs_chain(5, 4, 5, &params).annual_availability());
        assert!(
            worse < a,
            "bigger stripes are less available: {worse} vs {a}"
        );
    }

    #[test]
    fn binom_values() {
        assert_eq!(binom(5, 0), 1.0);
        assert_eq!(binom(5, 2), 10.0);
        assert_eq!(binom(5, 5), 1.0);
        assert_eq!(binom(3, 4), 0.0);
    }

    #[test]
    fn reliability_decreases_with_time() {
        let params = p();
        let c = rs_chain(3, 2, &params);
        let r1 = c.reliability(0.5);
        let r2 = c.reliability(1.0);
        let r3 = c.reliability(2.0);
        assert!(r1 > r2 && r2 > r3);
    }
}
