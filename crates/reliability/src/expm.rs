//! Small dense real matrices and the matrix exponential.
//!
//! The chains in this crate have at most a dozen states, so a plain
//! row-major `Vec<f64>` with O(n^3) routines is appropriate. The matrix
//! exponential uses scaling-and-squaring with a Padé(6,6) approximant —
//! accurate to near machine precision after the norm is scaled below 1/2
//! (Higham's method with a fixed, conservative approximant order).

use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrixf {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrixf {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Matrixf {
        assert!(rows > 0 && cols > 0, "dimensions must be non-zero");
        Matrixf {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix.
    pub fn identity(n: usize) -> Matrixf {
        let mut m = Matrixf::zero(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &Matrixf) -> Matrixf {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrixf::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self[(i, l)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(l, j)];
                }
            }
        }
        out
    }

    /// `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, rhs: &Matrixf) -> Matrixf {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        out
    }

    /// `self * c` (scalar).
    pub fn scale(&self, c: f64) -> Matrixf {
        let mut out = self.clone();
        for a in out.data.iter_mut() {
            *a *= c;
        }
        out
    }

    /// Maximum absolute row sum (the infinity norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Solves `self * X = B` by LU with partial pivoting.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is singular or dimensions mismatch.
    pub fn solve(&self, b: &Matrixf) -> Matrixf {
        assert_eq!(self.rows, self.cols, "must be square");
        assert_eq!(self.rows, b.rows, "rhs rows mismatch");
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Pivot.
            let mut pivot = col;
            for r in col + 1..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            assert!(a[(pivot, col)].abs() > 1e-300, "singular matrix in solve");
            if pivot != col {
                for j in 0..n {
                    a.data.swap(col * n + j, pivot * n + j);
                }
                for j in 0..x.cols {
                    x.data.swap(col * x.cols + j, pivot * x.cols + j);
                }
            }
            let d = a[(col, col)];
            for r in col + 1..n {
                let f = a[(r, col)] / d;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[(r, j)] -= f * a[(col, j)];
                }
                for j in 0..x.cols {
                    x[(r, j)] -= f * x[(col, j)];
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let d = a[(col, col)];
            for j in 0..x.cols {
                x[(col, j)] /= d;
            }
            for r in 0..col {
                let f = a[(r, col)];
                if f == 0.0 {
                    continue;
                }
                for j in 0..x.cols {
                    x[(r, j)] -= f * x[(col, j)];
                }
            }
        }
        x
    }

    /// The matrix exponential `e^self` via scaling-and-squaring with a
    /// Padé(6,6) approximant.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn expm(&self) -> Matrixf {
        assert_eq!(self.rows, self.cols, "expm requires a square matrix");
        let n = self.rows;
        let norm = self.norm_inf();
        // Scale so the norm is below 0.5.
        let mut squarings = 0u32;
        let mut scaled = self.clone();
        if norm > 0.5 {
            squarings = (norm / 0.5).log2().ceil() as u32;
            scaled = self.scale(1.0 / f64::powi(2.0, squarings as i32));
        }

        // Padé(6,6): N = sum c_j A^j, D = sum (-1)^j c_j A^j.
        const C: [f64; 7] = [
            1.0,
            0.5,
            // c_j = c_{j-1} * (q - j + 1) / (j * (2q - j + 1)), q = 6.
            5.0 / 44.0,
            1.0 / 66.0,
            1.0 / 792.0,
            1.0 / 15840.0,
            1.0 / 665280.0,
        ];
        let mut num = Matrixf::identity(n).scale(C[0]);
        let mut den = Matrixf::identity(n).scale(C[0]);
        let mut power = Matrixf::identity(n);
        for (j, &c) in C.iter().enumerate().skip(1) {
            power = power.mul(&scaled);
            num = num.add(&power.scale(c));
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            den = den.add(&power.scale(sign * c));
        }
        let mut result = den.solve(&num);
        for _ in 0..squarings {
            result = result.mul(&result);
        }
        result
    }
}

impl Index<(usize, usize)> for Matrixf {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrixf {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = Matrixf::zero(3, 3);
        let e = z.expm();
        assert_eq!(e, Matrixf::identity(3));
    }

    #[test]
    fn expm_of_diagonal() {
        let mut d = Matrixf::zero(2, 2);
        d[(0, 0)] = 1.0;
        d[(1, 1)] = -2.0;
        let e = d.expm();
        assert_close(e[(0, 0)], 1.0f64.exp(), 1e-12);
        assert_close(e[(1, 1)], (-2.0f64).exp(), 1e-12);
        assert_close(e[(0, 1)], 0.0, 1e-14);
    }

    #[test]
    fn expm_nilpotent() {
        // A = [[0, 1], [0, 0]]: e^A = I + A exactly.
        let mut a = Matrixf::zero(2, 2);
        a[(0, 1)] = 1.0;
        let e = a.expm();
        assert_close(e[(0, 0)], 1.0, 1e-14);
        assert_close(e[(0, 1)], 1.0, 1e-14);
        assert_close(e[(1, 1)], 1.0, 1e-14);
    }

    #[test]
    fn expm_large_norm_via_squaring() {
        // e^(aI) = e^a I even for large a.
        let a = Matrixf::identity(2).scale(30.0);
        let e = a.expm();
        assert_close(e[(0, 0)] / 30.0f64.exp(), 1.0, 1e-9);
        assert_close(e[(0, 1)], 0.0, 1e-3); // Off-diagonal stays ~0.
    }

    #[test]
    fn expm_rotation_block() {
        // A = [[0, -t], [t, 0]]: e^A = rotation by t.
        let t = 1.3f64;
        let mut a = Matrixf::zero(2, 2);
        a[(0, 1)] = -t;
        a[(1, 0)] = t;
        let e = a.expm();
        assert_close(e[(0, 0)], t.cos(), 1e-12);
        assert_close(e[(0, 1)], -t.sin(), 1e-12);
        assert_close(e[(1, 0)], t.sin(), 1e-12);
    }

    #[test]
    fn solve_round_trip() {
        let mut a = Matrixf::zero(3, 3);
        let vals = [4.0, 1.0, 2.0, 1.0, 5.0, 1.0, 2.0, 1.0, 6.0];
        for (i, &v) in vals.iter().enumerate() {
            a.data[i] = v;
        }
        let mut b = Matrixf::zero(3, 1);
        b[(0, 0)] = 1.0;
        b[(1, 0)] = 2.0;
        b[(2, 0)] = 3.0;
        let x = a.solve(&b);
        let back = a.mul(&x);
        for i in 0..3 {
            assert_close(back[(i, 0)], b[(i, 0)], 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn solve_singular_panics() {
        let a = Matrixf::zero(2, 2);
        let b = Matrixf::identity(2);
        let _ = a.solve(&b);
    }

    #[test]
    fn norm_inf_is_max_row_sum() {
        let mut a = Matrixf::zero(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = -3.0;
        a[(1, 0)] = 2.0;
        assert_eq!(a.norm_inf(), 4.0);
    }
}
