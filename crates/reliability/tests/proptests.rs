//! Property-based tests for the CTMC reliability models.

use proptest::prelude::*;
use ring_reliability::{nines, rs_chain, srs_chain, ModelParams};

fn small_params() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=5, 1usize..=3, 0usize..=3).prop_map(|(k, m, extra)| (k, m, k + extra))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reliability_is_a_probability((k, m, s) in small_params(), t in 0.01f64..5.0) {
        let chain = srs_chain(k, m, s, &ModelParams::default());
        let r = chain.reliability(t);
        prop_assert!((0.0..=1.0).contains(&r), "R({t}) = {r}");
        let a = chain.availability(t);
        prop_assert!((0.0..=1.0).contains(&a), "A({t}) = {a}");
        prop_assert!(a <= r + 1e-9, "availability exceeds reliability");
    }

    #[test]
    fn reliability_decreases_in_time((k, m, s) in small_params()) {
        let chain = srs_chain(k, m, s, &ModelParams::default());
        let mut prev = 1.0f64;
        for t in [0.1f64, 0.5, 1.0, 2.0, 4.0] {
            let r = chain.reliability(t);
            prop_assert!(r <= prev + 1e-9, "R({t}) = {r} > {prev}");
            prev = r;
        }
    }

    #[test]
    fn srs_without_stretch_equals_rs(k in 1usize..=5, m in 1usize..=3) {
        let p = ModelParams::default();
        let a = rs_chain(k, m, &p).annual_reliability();
        let b = srs_chain(k, m, k, &p).annual_reliability();
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn faster_repair_is_more_reliable((k, m, s) in small_params()) {
        let slow = ModelParams {
            net_bandwidth_gib_s: 0.05,
            ..ModelParams::default()
        };
        let fast = ModelParams {
            net_bandwidth_gib_s: 1.0,
            ..ModelParams::default()
        };
        let r_slow = srs_chain(k, m, s, &slow).annual_reliability();
        let r_fast = srs_chain(k, m, s, &fast).annual_reliability();
        prop_assert!(r_fast >= r_slow - 1e-12, "{r_fast} < {r_slow}");
    }

    #[test]
    fn higher_failure_rate_is_less_reliable((k, m, s) in small_params()) {
        let calm = ModelParams { lambda_per_year: 0.5, ..ModelParams::default() };
        let hectic = ModelParams { lambda_per_year: 4.0, ..ModelParams::default() };
        let r_calm = srs_chain(k, m, s, &calm).annual_reliability();
        let r_hectic = srs_chain(k, m, s, &hectic).annual_reliability();
        prop_assert!(r_calm >= r_hectic - 1e-12);
    }

    #[test]
    fn nines_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(nines(lo) <= nines(hi) + 1e-12);
    }
}
