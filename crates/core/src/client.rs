//! The Ring client library: the paper's API (Section 5) over the
//! fabric, with timeout-and-multicast failover (Section 5.5).
//!
//! Two request styles share one failover engine:
//!
//! - **Synchronous** ([`RingClient::put`], [`RingClient::get`], …): one
//!   request in flight, the call blocks until its response (or the
//!   attempt budget is exhausted).
//! - **Pipelined** ([`RingClient::put_nb`], [`RingClient::get_nb`] +
//!   [`RingClient::poll`] / [`RingClient::drain`]): up to
//!   [`ClientOptions::window`] requests in flight, each with the same
//!   per-request timeout and multicast failover as the sync path.
//!   Pipelining writes is safe because the coordinator's RIFL-style
//!   dedup table makes re-delivered `(client, req)` pairs idempotent —
//!   a retry can never commit a second version.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use ring_net::{NodeId, Payload, Transport};

use crate::config::{ClusterConfig, LEADER_NODE};
use crate::error::RingError;
use crate::proto::{ClientReq, ClientResp, Msg, RingEndpoint};
use crate::types::{GroupId, Key, MemgestDescriptor, MemgestId, ReqId, Version};

/// Client tunables.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// Per-attempt response timeout.
    pub timeout: Duration,
    /// Attempts before giving up (the first is unicast; subsequent
    /// attempts multicast to every active node).
    pub attempts: u32,
    /// Maximum in-flight requests for the pipelined (`*_nb`) API. The
    /// sync API always uses an effective window of one.
    pub window: usize,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            timeout: Duration::from_millis(100),
            attempts: 10,
            window: 32,
        }
    }
}

/// One outstanding pipelined request.
struct InFlight {
    /// The key, when coordinator learning applies.
    key: Option<Key>,
    /// The request body, kept for retries (value bytes are Arc-backed,
    /// so this is a cheap handle, not a copy).
    body: ClientReq,
    /// Current attempt's response deadline.
    deadline: Instant,
    /// Attempts used so far.
    attempt: u32,
}

/// The result of one completed pipelined request.
pub type Completion = (ReqId, Result<ClientResp, RingError>);

/// A Ring client.
///
/// Clients map keys to coordinators with the shared `h(key) mod s`
/// mapping (no name node, no extra hop). After a node failure the cached
/// mapping goes stale; requests then time out, get multicast to all
/// nodes, and the answering node is learned as the new coordinator —
/// the protocol of Section 5.5.
pub struct RingClient<T: Transport<Msg> = RingEndpoint> {
    ep: T,
    config: ClusterConfig,
    overrides: std::collections::HashMap<(GroupId, usize), NodeId>,
    next_req: ReqId,
    opts: ClientOptions,
    /// All data nodes plus spares — the multicast failover target set,
    /// built once instead of per attempt.
    all_nodes: Vec<NodeId>,
    /// Outstanding pipelined requests by id.
    inflight: BTreeMap<ReqId, InFlight>,
    /// Completed pipelined requests not yet handed to the caller.
    completed: VecDeque<Completion>,
    /// Lower bound on the earliest in-flight deadline: `retry_expired`
    /// is a no-op before this instant, so the O(window) expiry scan
    /// runs only when something can actually have expired. May be stale
    /// (too early) after completions — the scan then just finds nothing
    /// and tightens it.
    next_deadline: Option<Instant>,
}

impl<T: Transport<Msg>> RingClient<T> {
    /// Creates a client from its own endpoint and the bootstrap config.
    pub fn new(ep: T, config: ClusterConfig, opts: ClientOptions) -> RingClient<T> {
        let all_nodes: Vec<NodeId> = config
            .nodes
            .iter()
            .chain(config.spares.iter())
            .copied()
            .collect();
        RingClient {
            ep,
            config,
            overrides: std::collections::HashMap::new(),
            next_req: 1,
            opts,
            all_nodes,
            inflight: BTreeMap::new(),
            completed: VecDeque::new(),
            next_deadline: None,
        }
    }

    /// The client's node id on the fabric.
    pub fn id(&self) -> NodeId {
        self.ep.id()
    }

    /// Changes the per-attempt timeout (e.g. for fine-grained recovery
    /// probing).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.opts.timeout = timeout;
    }

    /// Changes the pipelined-API window.
    pub fn set_window(&mut self, window: usize) {
        self.opts.window = window.max(1);
    }

    /// Number of pipelined requests currently outstanding.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    fn coordinator_for(&self, key: Key) -> NodeId {
        let loc = self.config.locate(key);
        self.overrides
            .get(&loc)
            .copied()
            .unwrap_or_else(|| self.config.coordinator_of_key(key))
    }

    // ---- Shared request engine ----

    /// Registers and unicasts a request; failover happens in [`Self::pump`].
    fn submit(
        &mut self,
        target: NodeId,
        key: Option<Key>,
        body: ClientReq,
    ) -> Result<ReqId, RingError> {
        let req = self.next_req;
        self.next_req += 1;
        self.ep.send(
            target,
            Msg::Request {
                req,
                body: body.clone(),
            },
        )?;
        let deadline = ring_net::clock::now() + self.opts.timeout;
        self.next_deadline = Some(match self.next_deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
        self.inflight.insert(
            req,
            InFlight {
                key,
                body,
                deadline,
                attempt: 1,
            },
        );
        Ok(req)
    }

    /// Learns (or forgets) a coordinator override from a response.
    fn learn(&mut self, key: Option<Key>, from: NodeId) {
        if let Some(key) = key {
            let loc = self.config.locate(key);
            if self.config.coordinator_of_key(key) != from {
                self.overrides.insert(loc, from);
            } else {
                self.overrides.remove(&loc);
            }
        }
    }

    /// Drains due responses, retries expired requests (multicast
    /// failover), and appends completions. With `wait`, blocks up to
    /// that long for the first response when nothing is immediately due.
    fn pump(&mut self, wait: Option<Duration>) {
        // Fast path: drain whatever is already deliverable.
        while let Ok(Some((from, msg))) = self.ep.try_recv() {
            self.absorb(from, msg);
        }
        if let Some(wait) = wait {
            if self.completed.is_empty() && !self.inflight.is_empty() {
                // Nothing done yet: block until mail, the earliest
                // retry deadline, or the caller's budget.
                let now = ring_net::clock::now();
                let until = match self.next_deadline {
                    Some(d) => (now + wait).min(d),
                    None => now + wait,
                };
                if until > now {
                    if let Ok((from, msg)) = self.ep.recv_timeout(until - now) {
                        self.absorb(from, msg);
                        while let Ok(Some((from, msg))) = self.ep.try_recv() {
                            self.absorb(from, msg);
                        }
                    }
                }
            }
        }
        self.retry_expired();
    }

    /// Routes one incoming message into the in-flight table.
    fn absorb(&mut self, from: NodeId, msg: Msg) {
        if let Msg::Response { req, body } = msg {
            if let Some(f) = self.inflight.remove(&req) {
                self.learn(f.key, from);
                self.completed.push_back((req, Ok(body)));
            }
            // Responses to forgotten requests (duplicates, late answers
            // after a timeout completion) are dropped.
        }
    }

    /// Multicasts expired requests to every node (the answering node is
    /// learned as the new coordinator), failing those out of attempts.
    fn retry_expired(&mut self) {
        if self.inflight.is_empty() {
            self.next_deadline = None;
            return;
        }
        let now = ring_net::clock::now();
        // Fast path: nothing can have expired yet.
        if let Some(d) = self.next_deadline {
            if now < d {
                return;
            }
        }
        let expired: Vec<ReqId> = self
            .inflight
            .iter()
            .filter(|(_, f)| now >= f.deadline)
            .map(|(&r, _)| r)
            .collect();
        for req in expired {
            let f = self.inflight.get_mut(&req).expect("just listed");
            if f.attempt >= self.opts.attempts {
                self.inflight.remove(&req);
                self.completed.push_back((req, Err(RingError::Timeout)));
                continue;
            }
            f.attempt += 1;
            f.deadline = now + self.opts.timeout;
            let body = f.body.clone();
            self.ep.stats().record_retransmit();
            // Re-send through multicast; only the responsible node will
            // answer (Section 5.5). Spares are included — one of them
            // may have been promoted to the failed role.
            if let Err(e) = self
                .ep
                .multicast(&self.all_nodes, Msg::Request { req, body })
            {
                self.inflight.remove(&req);
                self.completed.push_back((req, Err(e.into())));
            }
        }
        self.next_deadline = self.inflight.values().map(|f| f.deadline).min();
    }

    /// Blocks until `req` completes, pumping the engine. Completions of
    /// other (pipelined) requests accumulate for a later [`Self::poll`].
    fn wait_for(&mut self, req: ReqId) -> Result<ClientResp, RingError> {
        loop {
            if let Some(pos) = self.completed.iter().position(|(r, _)| *r == req) {
                return self.completed.remove(pos).expect("position valid").1;
            }
            if !self.inflight.contains_key(&req) {
                // Completed and consumed elsewhere — cannot happen via
                // public API; treat as a lost request.
                return Err(RingError::Timeout);
            }
            self.pump(Some(self.opts.timeout));
        }
    }

    /// Issues one request and awaits its response, failing over to
    /// multicast after a timeout. `key` enables coordinator learning.
    fn call(
        &mut self,
        target: NodeId,
        key: Option<Key>,
        body: ClientReq,
    ) -> Result<ClientResp, RingError> {
        let req = self.submit(target, key, body)?;
        self.wait_for(req)
    }

    fn keyed(&mut self, key: Key, body: ClientReq) -> Result<ClientResp, RingError> {
        let target = self.coordinator_for(key);
        self.call(target, Some(key), body)
    }

    fn expect_error(resp: ClientResp) -> RingError {
        match resp {
            ClientResp::Error(e) => e,
            other => RingError::Internal(format!("unexpected response {other:?}")),
        }
    }

    // ---- Synchronous API ----

    /// `put(key, object)` into the default memgest.
    pub fn put(&mut self, key: Key, value: &[u8]) -> Result<Version, RingError> {
        self.put_in(key, value, None)
    }

    /// `put(key, object, memgestID)`.
    pub fn put_to(
        &mut self,
        key: Key,
        value: &[u8],
        memgest: MemgestId,
    ) -> Result<Version, RingError> {
        self.put_in(key, value, Some(memgest))
    }

    fn put_in(
        &mut self,
        key: Key,
        value: &[u8],
        memgest: Option<MemgestId>,
    ) -> Result<Version, RingError> {
        match self.keyed(
            key,
            ClientReq::Put {
                key,
                value: Payload::from(value),
                memgest,
            },
        )? {
            ClientResp::PutOk { version } => Ok(version),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `get(key)`: the value of the highest version.
    pub fn get(&mut self, key: Key) -> Result<Vec<u8>, RingError> {
        self.get_versioned(key).map(|(v, _)| v)
    }

    /// `get(key)` returning the version as well.
    pub fn get_versioned(&mut self, key: Key) -> Result<(Vec<u8>, Version), RingError> {
        match self.keyed(key, ClientReq::Get { key })? {
            // The public API hands the caller an owned Vec<u8>; this is
            // the one place a copy is the contract, not a regression.
            // ring-lint: allow(payload-copy)
            ClientResp::GetOk { value, version } => Ok((value.to_vec(), version)),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `delete(key)`.
    pub fn delete(&mut self, key: Key) -> Result<(), RingError> {
        match self.keyed(key, ClientReq::Delete { key })? {
            ClientResp::DeleteOk => Ok(()),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `move(key, memgestID)`: change the key's storage scheme.
    pub fn move_key(&mut self, key: Key, dst: MemgestId) -> Result<Version, RingError> {
        match self.keyed(key, ClientReq::Move { key, dst })? {
            ClientResp::MoveOk { version } => Ok(version),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `createMemgest(descriptor)` — a leader operation.
    pub fn create_memgest(&mut self, desc: MemgestDescriptor) -> Result<MemgestId, RingError> {
        match self.call(LEADER_NODE, None, ClientReq::CreateMemgest { desc })? {
            ClientResp::MemgestCreated { id } => Ok(id),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `deleteMemgest(id)`.
    pub fn delete_memgest(&mut self, id: MemgestId) -> Result<(), RingError> {
        match self.call(LEADER_NODE, None, ClientReq::DeleteMemgest { id })? {
            ClientResp::MemgestDeleted => Ok(()),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `setDefaultMemgest(id)`.
    pub fn set_default_memgest(&mut self, id: MemgestId) -> Result<(), RingError> {
        match self.call(LEADER_NODE, None, ClientReq::SetDefaultMemgest { id })? {
            ClientResp::DefaultSet => Ok(()),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `getMemgestDescriptor(id)`.
    pub fn memgest_descriptor(&mut self, id: MemgestId) -> Result<MemgestDescriptor, RingError> {
        match self.call(LEADER_NODE, None, ClientReq::GetMemgestDescriptor { id })? {
            ClientResp::Descriptor { desc } => Ok(desc),
            other => Err(Self::expect_error(other)),
        }
    }

    // ---- Pipelined (windowed non-blocking) API ----

    /// Pipelined `put`: registers the request and returns its id without
    /// waiting for the response. If the window is full, blocks until a
    /// slot frees (completions accumulate for [`Self::poll`]). Retries
    /// and multicast failover run inside [`Self::poll`] / [`Self::drain`];
    /// coordinator dedup makes those retries idempotent, so pipelined
    /// puts keep at-most-once semantics.
    pub fn put_nb(
        &mut self,
        key: Key,
        value: &[u8],
        memgest: Option<MemgestId>,
    ) -> Result<ReqId, RingError> {
        self.await_window()?;
        let target = self.coordinator_for(key);
        self.submit(
            target,
            Some(key),
            ClientReq::Put {
                key,
                value: Payload::from(value),
                memgest,
            },
        )
    }

    /// Pipelined `get`. Same windowing contract as [`Self::put_nb`].
    pub fn get_nb(&mut self, key: Key) -> Result<ReqId, RingError> {
        self.await_window()?;
        let target = self.coordinator_for(key);
        self.submit(target, Some(key), ClientReq::Get { key })
    }

    /// Pipelined `delete`. Same windowing contract as [`Self::put_nb`].
    pub fn delete_nb(&mut self, key: Key) -> Result<ReqId, RingError> {
        self.await_window()?;
        let target = self.coordinator_for(key);
        self.submit(target, Some(key), ClientReq::Delete { key })
    }

    /// Pipelined `move`. Same windowing contract as [`Self::put_nb`].
    pub fn move_nb(&mut self, key: Key, dst: MemgestId) -> Result<ReqId, RingError> {
        self.await_window()?;
        let target = self.coordinator_for(key);
        self.submit(target, Some(key), ClientReq::Move { key, dst })
    }

    /// Blocks while the window is full, pumping completions.
    fn await_window(&mut self) -> Result<(), RingError> {
        while self.inflight.len() >= self.opts.window.max(1) {
            self.pump(Some(self.opts.timeout));
        }
        Ok(())
    }

    /// Collects finished pipelined requests without blocking: drains due
    /// responses, runs timeout/failover retries, and returns every
    /// completion gathered so far.
    pub fn poll(&mut self) -> Vec<Completion> {
        self.pump(None);
        self.completed.drain(..).collect()
    }

    /// Blocks until every in-flight pipelined request completes (with a
    /// response or a final timeout error) and returns all completions.
    pub fn drain(&mut self) -> Vec<Completion> {
        while !self.inflight.is_empty() {
            self.pump(Some(self.opts.timeout));
        }
        self.completed.drain(..).collect()
    }

    // ---- Fire-and-forget API (no failover; open-loop harnesses) ----

    /// Fire-and-forget put: sends the request without tracking it (used
    /// by open-loop measurements that want no retry traffic). Responses
    /// are drained with [`RingClient::poll_responses`].
    pub fn put_async(
        &mut self,
        key: Key,
        value: &[u8],
        memgest: Option<MemgestId>,
    ) -> Result<ReqId, RingError> {
        let req = self.next_req;
        self.next_req += 1;
        let target = self.coordinator_for(key);
        self.ep.send(
            target,
            Msg::Request {
                req,
                body: ClientReq::Put {
                    key,
                    value: Payload::from(value),
                    memgest,
                },
            },
        )?;
        Ok(req)
    }

    /// Fire-and-forget move (scenario tests and open-loop harness).
    pub fn move_async(&mut self, key: Key, dst: MemgestId) -> Result<ReqId, RingError> {
        let req = self.next_req;
        self.next_req += 1;
        let target = self.coordinator_for(key);
        self.ep.send(
            target,
            Msg::Request {
                req,
                body: ClientReq::Move { key, dst },
            },
        )?;
        Ok(req)
    }

    /// Fire-and-forget get (open-loop harness).
    pub fn get_async(&mut self, key: Key) -> Result<ReqId, RingError> {
        let req = self.next_req;
        self.next_req += 1;
        let target = self.coordinator_for(key);
        self.ep.send(
            target,
            Msg::Request {
                req,
                body: ClientReq::Get { key },
            },
        )?;
        Ok(req)
    }

    /// Drains every response currently queued, returning the completed
    /// request ids (fire-and-forget harness). Do not mix with the
    /// pipelined API on the same client — this bypasses its tracking.
    pub fn poll_responses(&mut self) -> Vec<(ReqId, ClientResp)> {
        let mut out = Vec::new();
        while let Ok(Some((_, msg))) = self.ep.try_recv() {
            if let Msg::Response { req, body } = msg {
                out.push((req, body));
            }
        }
        out
    }

    /// Fetches a node's introspection report (op counters, storage
    /// accounting).
    pub fn node_stats(&mut self, node: NodeId) -> Result<crate::stats::NodeStats, RingError> {
        match self.call(node, None, ClientReq::Stats)? {
            ClientResp::Stats(stats) => Ok(*stats),
            other => Err(Self::expect_error(other)),
        }
    }

    /// The bootstrap configuration this client uses for routing.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }
}

impl<T: Transport<Msg>> std::fmt::Debug for RingClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingClient")
            .field("id", &self.id())
            .finish()
    }
}
