//! The Ring client library: the paper's API (Section 5) over the
//! fabric, with timeout-and-multicast failover (Section 5.5).

use std::time::{Duration, Instant};

use ring_net::NodeId;

use crate::config::{ClusterConfig, LEADER_NODE};
use crate::error::RingError;
use crate::proto::{ClientReq, ClientResp, Msg, RingEndpoint};
use crate::types::{GroupId, Key, MemgestDescriptor, MemgestId, ReqId, Version};

/// Client tunables.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// Per-attempt response timeout.
    pub timeout: Duration,
    /// Attempts before giving up (the first is unicast; subsequent
    /// attempts multicast to every active node).
    pub attempts: u32,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            timeout: Duration::from_millis(100),
            attempts: 10,
        }
    }
}

/// A synchronous Ring client.
///
/// Clients map keys to coordinators with the shared `h(key) mod s`
/// mapping (no name node, no extra hop). After a node failure the cached
/// mapping goes stale; requests then time out, get multicast to all
/// nodes, and the answering node is learned as the new coordinator —
/// the protocol of Section 5.5.
pub struct RingClient {
    ep: RingEndpoint,
    config: ClusterConfig,
    overrides: std::collections::HashMap<(GroupId, usize), NodeId>,
    next_req: ReqId,
    opts: ClientOptions,
}

impl RingClient {
    /// Creates a client from its own endpoint and the bootstrap config.
    pub fn new(ep: RingEndpoint, config: ClusterConfig, opts: ClientOptions) -> RingClient {
        RingClient {
            ep,
            config,
            overrides: std::collections::HashMap::new(),
            next_req: 1,
            opts,
        }
    }

    /// The client's node id on the fabric.
    pub fn id(&self) -> NodeId {
        self.ep.id()
    }

    /// Changes the per-attempt timeout (e.g. for fine-grained recovery
    /// probing).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.opts.timeout = timeout;
    }

    fn coordinator_for(&self, key: Key) -> NodeId {
        let loc = self.config.locate(key);
        self.overrides
            .get(&loc)
            .copied()
            .unwrap_or_else(|| self.config.coordinator_of_key(key))
    }

    /// Issues one request and awaits its response, failing over to
    /// multicast after a timeout. `key` enables coordinator learning.
    fn call(
        &mut self,
        target: NodeId,
        key: Option<Key>,
        body: ClientReq,
    ) -> Result<ClientResp, RingError> {
        let req = self.next_req;
        self.next_req += 1;
        for attempt in 0..self.opts.attempts {
            if attempt == 0 {
                self.ep.send(
                    target,
                    Msg::Request {
                        req,
                        body: body.clone(),
                    },
                )?;
            } else {
                // Re-send through multicast; only the responsible node
                // will answer (Section 5.5). Spares are included — one
                // of them may have been promoted to the failed role.
                let nodes: Vec<NodeId> = self
                    .config
                    .nodes
                    .iter()
                    .chain(self.config.spares.iter())
                    .copied()
                    .collect();
                self.ep.multicast(
                    &nodes,
                    Msg::Request {
                        req,
                        body: body.clone(),
                    },
                )?;
            }
            let deadline = Instant::now() + self.opts.timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match self.ep.recv_timeout(deadline - now) {
                    Ok((from, Msg::Response { req: r, body })) if r == req => {
                        if let Some(key) = key {
                            let loc = self.config.locate(key);
                            if self.config.coordinator_of_key(key) != from {
                                self.overrides.insert(loc, from);
                            } else {
                                self.overrides.remove(&loc);
                            }
                        }
                        return Ok(body);
                    }
                    Ok(_) => continue, // Stale response to an older attempt.
                    Err(ring_net::NetError::Timeout) => break,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Err(RingError::Timeout)
    }

    fn keyed(&mut self, key: Key, body: ClientReq) -> Result<ClientResp, RingError> {
        let target = self.coordinator_for(key);
        self.call(target, Some(key), body)
    }

    fn expect_error(resp: ClientResp) -> RingError {
        match resp {
            ClientResp::Error(e) => e,
            other => RingError::Internal(format!("unexpected response {other:?}")),
        }
    }

    /// `put(key, object)` into the default memgest.
    pub fn put(&mut self, key: Key, value: &[u8]) -> Result<Version, RingError> {
        self.put_in(key, value, None)
    }

    /// `put(key, object, memgestID)`.
    pub fn put_to(
        &mut self,
        key: Key,
        value: &[u8],
        memgest: MemgestId,
    ) -> Result<Version, RingError> {
        self.put_in(key, value, Some(memgest))
    }

    fn put_in(
        &mut self,
        key: Key,
        value: &[u8],
        memgest: Option<MemgestId>,
    ) -> Result<Version, RingError> {
        match self.keyed(
            key,
            ClientReq::Put {
                key,
                value: value.to_vec(),
                memgest,
            },
        )? {
            ClientResp::PutOk { version } => Ok(version),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `get(key)`: the value of the highest version.
    pub fn get(&mut self, key: Key) -> Result<Vec<u8>, RingError> {
        self.get_versioned(key).map(|(v, _)| v)
    }

    /// `get(key)` returning the version as well.
    pub fn get_versioned(&mut self, key: Key) -> Result<(Vec<u8>, Version), RingError> {
        match self.keyed(key, ClientReq::Get { key })? {
            ClientResp::GetOk { value, version } => Ok((value, version)),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `delete(key)`.
    pub fn delete(&mut self, key: Key) -> Result<(), RingError> {
        match self.keyed(key, ClientReq::Delete { key })? {
            ClientResp::DeleteOk => Ok(()),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `move(key, memgestID)`: change the key's storage scheme.
    pub fn move_key(&mut self, key: Key, dst: MemgestId) -> Result<Version, RingError> {
        match self.keyed(key, ClientReq::Move { key, dst })? {
            ClientResp::MoveOk { version } => Ok(version),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `createMemgest(descriptor)` — a leader operation.
    pub fn create_memgest(&mut self, desc: MemgestDescriptor) -> Result<MemgestId, RingError> {
        match self.call(LEADER_NODE, None, ClientReq::CreateMemgest { desc })? {
            ClientResp::MemgestCreated { id } => Ok(id),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `deleteMemgest(id)`.
    pub fn delete_memgest(&mut self, id: MemgestId) -> Result<(), RingError> {
        match self.call(LEADER_NODE, None, ClientReq::DeleteMemgest { id })? {
            ClientResp::MemgestDeleted => Ok(()),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `setDefaultMemgest(id)`.
    pub fn set_default_memgest(&mut self, id: MemgestId) -> Result<(), RingError> {
        match self.call(LEADER_NODE, None, ClientReq::SetDefaultMemgest { id })? {
            ClientResp::DefaultSet => Ok(()),
            other => Err(Self::expect_error(other)),
        }
    }

    /// `getMemgestDescriptor(id)`.
    pub fn memgest_descriptor(&mut self, id: MemgestId) -> Result<MemgestDescriptor, RingError> {
        match self.call(LEADER_NODE, None, ClientReq::GetMemgestDescriptor { id })? {
            ClientResp::Descriptor { desc } => Ok(desc),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Fire-and-forget put: sends the request without waiting for the
    /// response (used by the open-loop throughput harness). Returns the
    /// request id; responses are drained with [`RingClient::poll_responses`].
    pub fn put_async(
        &mut self,
        key: Key,
        value: &[u8],
        memgest: Option<MemgestId>,
    ) -> Result<ReqId, RingError> {
        let req = self.next_req;
        self.next_req += 1;
        let target = self.coordinator_for(key);
        self.ep.send(
            target,
            Msg::Request {
                req,
                body: ClientReq::Put {
                    key,
                    value: value.to_vec(),
                    memgest,
                },
            },
        )?;
        Ok(req)
    }

    /// Fire-and-forget move (scenario tests and open-loop harness).
    pub fn move_async(&mut self, key: Key, dst: MemgestId) -> Result<ReqId, RingError> {
        let req = self.next_req;
        self.next_req += 1;
        let target = self.coordinator_for(key);
        self.ep.send(
            target,
            Msg::Request {
                req,
                body: ClientReq::Move { key, dst },
            },
        )?;
        Ok(req)
    }

    /// Fire-and-forget get (open-loop harness).
    pub fn get_async(&mut self, key: Key) -> Result<ReqId, RingError> {
        let req = self.next_req;
        self.next_req += 1;
        let target = self.coordinator_for(key);
        self.ep.send(
            target,
            Msg::Request {
                req,
                body: ClientReq::Get { key },
            },
        )?;
        Ok(req)
    }

    /// Drains every response currently queued, returning the completed
    /// request ids (open-loop harness).
    pub fn poll_responses(&mut self) -> Vec<(ReqId, ClientResp)> {
        let mut out = Vec::new();
        while let Ok(Some((_, msg))) = self.ep.try_recv() {
            if let Msg::Response { req, body } = msg {
                out.push((req, body));
            }
        }
        out
    }

    /// Fetches a node's introspection report (op counters, storage
    /// accounting).
    pub fn node_stats(&mut self, node: NodeId) -> Result<crate::stats::NodeStats, RingError> {
        match self.call(node, None, ClientReq::Stats)? {
            ClientResp::Stats(stats) => Ok(*stats),
            other => Err(Self::expect_error(other)),
        }
    }

    /// The bootstrap configuration this client uses for routing.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }
}

impl std::fmt::Debug for RingClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingClient")
            .field("id", &self.id())
            .finish()
    }
}
