//! Baseline system models for the paper's comparisons (Figures 7c, 9).
//!
//! The paper compares Ring against memcached, Dare, RAMCloud and
//! Cocytus. None of those systems can run here (they need real NICs,
//! disks and their own codebases), so — per the substitution rule of
//! this reproduction — each baseline is modelled by configuring *this*
//! stack to match the property the paper's comparison isolates:
//!
//! | Baseline | What the paper attributes its performance to | Model |
//! |---|---|---|
//! | memcached | kernel TCP transport, no replication | `Rep(1)` over the TCP latency model |
//! | Dare | RDMA + in-memory majority replication | `Rep(3)` over the RDMA latency model |
//! | RAMCloud | RDMA + disk-backed backups | `Rep(3)` over RDMA with a 40µs backup-commit delay |
//! | Cocytus | kernel TCP + RS(3,2) erasure coding | `SRS(3,2,3)` over the TCP latency model |

use std::time::Duration;

use ring_net::LatencyModel;

use crate::cluster::ClusterSpec;
use crate::types::MemgestDescriptor;

/// A named baseline configuration.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Display name matching the paper's figures.
    pub name: &'static str,
    /// The cluster spec implementing the model.
    pub spec: ClusterSpec,
    /// The memgest id to direct the workload at.
    pub memgest: u32,
}

/// memcached: single-copy caching KVS over kernel TCP.
pub fn memcached_like() -> Baseline {
    Baseline {
        name: "memcached",
        spec: ClusterSpec {
            latency: LatencyModel::tcp_kernel(),
            memgests: vec![MemgestDescriptor::rep(1)],
            ..ClusterSpec::default()
        },
        memgest: 0,
    }
}

/// Dare: strongly consistent in-memory replication over RDMA.
pub fn dare_like() -> Baseline {
    Baseline {
        name: "Dare",
        spec: ClusterSpec {
            latency: LatencyModel::rdma(),
            memgests: vec![MemgestDescriptor::rep(3)],
            ..ClusterSpec::default()
        },
        memgest: 0,
    }
}

/// RAMCloud: RDMA front end, disk-backed replication (2 backups).
pub fn ramcloud_like() -> Baseline {
    Baseline {
        name: "RAMCloud",
        spec: ClusterSpec {
            latency: LatencyModel::rdma(),
            memgests: vec![MemgestDescriptor::rep(3)],
            replica_ack_delay: Duration::from_micros(40),
            ..ClusterSpec::default()
        },
        memgest: 0,
    }
}

/// Cocytus: erasure-coded in-memory KVS over kernel TCP.
pub fn cocytus_like() -> Baseline {
    Baseline {
        name: "Cocytus",
        spec: ClusterSpec {
            latency: LatencyModel::tcp_kernel(),
            memgests: vec![MemgestDescriptor::srs(3, 2)],
            ..ClusterSpec::default()
        },
        memgest: 0,
    }
}

/// All four baselines in the paper's presentation order.
pub fn all_baselines() -> Vec<Baseline> {
    vec![
        memcached_like(),
        dare_like(),
        ramcloud_like(),
        cocytus_like(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_configs_are_consistent() {
        for b in all_baselines() {
            assert!(!b.spec.memgests.is_empty(), "{}", b.name);
            assert!((b.memgest as usize) < b.spec.memgests.len(), "{}", b.name);
        }
    }

    #[test]
    fn transport_choices_match_the_paper() {
        assert_eq!(memcached_like().spec.latency, LatencyModel::tcp_kernel());
        assert_eq!(dare_like().spec.latency, LatencyModel::rdma());
        assert_eq!(cocytus_like().spec.latency, LatencyModel::tcp_kernel());
        assert!(ramcloud_like().spec.replica_ack_delay > Duration::ZERO);
    }
}
