//! # Ring: a strongly consistent KVS with per-item resilience
//!
//! A from-scratch Rust reproduction of *"Fast and strongly-consistent
//! per-item resilience in key-value stores"* (Taranov, Alonso, Hoefler —
//! EuroSys 2018).
//!
//! Ring lets every key choose its own storage scheme ("memgest"):
//! `r`-fold replication (including the unreliable `Rep(1)`), or the
//! paper's novel **Stretched Reed-Solomon** erasure codes `SRS(k, m, s)`
//! which share one key-to-node mapping across all schemes — so a key's
//! scheme can change (`move`) without remapping, extra hops, or
//! distributed transactions, while the whole store stays strongly
//! consistent through write-ahead metadata, per-key versioning, and
//! commit-gated reads.
//!
//! The crate contains the full system: coordinator/redundant/spare node
//! roles, quorum replication, delta-based parity updates, leader-driven
//! membership with spare promotion, metadata-first recovery and
//! on-demand block decode, plus an in-process [`Cluster`] harness that
//! stands in for the paper's InfiniBand testbed (the fabric is simulated
//! — see `ring-net`).
//!
//! # Examples
//!
//! ```
//! use ring_kvs::{Cluster, ClusterSpec, MemgestDescriptor};
//! use ring_net::LatencyModel;
//!
//! let mut spec = ClusterSpec::paper_evaluation();
//! spec.latency = LatencyModel::instant(); // Fast doc test.
//! let cluster = Cluster::start(spec);
//! let mut client = cluster.client();
//!
//! // Memgest 6 is SRS(3,2); memgest 0 is the unreliable default.
//! client.put_to(42, b"hello", 6).unwrap();
//! assert_eq!(client.get(42).unwrap(), b"hello");
//!
//! // Change the key's resilience in place.
//! client.move_key(42, 2).unwrap(); // To REP3.
//! assert_eq!(client.get(42).unwrap(), b"hello");
//! cluster.shutdown();
//! ```

pub mod balance;
pub mod baseline;
pub mod client;
pub mod cluster;
pub mod config;
mod error;
pub mod leader;
pub mod node;
pub mod proto;
pub mod protocol;
pub mod stats;
pub mod storage;
pub mod types;

pub use client::{ClientOptions, Completion, RingClient};
pub use cluster::{Cluster, ClusterSpec};
pub use config::{ClusterConfig, Role, CLIENT_BASE, LEADER_NODE};
pub use error::RingError;
pub use node::{Node, NodeOptions};
pub use proto::ClientResp;
pub use stats::NodeStats;
pub use types::{Key, MemgestDescriptor, MemgestId, ReqId, Scheme, Version};
