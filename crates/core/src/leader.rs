//! The membership leader (Section 5.5).
//!
//! A distinguished node tracks heartbeats, replaces failed nodes with
//! spares by broadcasting new configurations, and serves the memgest
//! management API (`createMemgest` / `deleteMemgest` /
//! `setDefaultMemgest` are leader operations in the paper). The leader
//! stands in for the replicated state machine of the paper's design; its
//! own fault tolerance (leader election) is out of scope here, exactly
//! as it is in the paper's evaluation.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Duration, Instant};

use ring_net::NodeId;

use crate::config::ClusterConfig;
use crate::error::RingError;
use ring_net::Transport;

use crate::proto::{ClientReq, ClientResp, Msg, RingEndpoint};
use crate::types::{MemgestDescriptor, MemgestId, ReqId, Scheme};

/// Leader tunables.
#[derive(Debug, Clone)]
pub struct LeaderOptions {
    /// Silence threshold after which a node is declared dead.
    pub fail_timeout: Duration,
    /// Event-loop poll timeout.
    pub poll_timeout: Duration,
    /// Grace period before watching a node (covers startup).
    pub startup_grace: Duration,
    /// Deadline for control-plane ack collection.
    pub ctrl_timeout: Duration,
}

impl Default for LeaderOptions {
    fn default() -> LeaderOptions {
        LeaderOptions {
            fail_timeout: Duration::from_millis(50),
            poll_timeout: Duration::from_micros(500),
            startup_grace: Duration::from_millis(200),
            ctrl_timeout: Duration::from_millis(100),
        }
    }
}

struct CtrlOp {
    client: (NodeId, ReqId),
    resp: ClientResp,
    awaiting: HashSet<NodeId>,
    deadline: Instant,
}

/// The membership leader node.
pub struct Leader<T: Transport<Msg> = RingEndpoint> {
    ep: T,
    config: ClusterConfig,
    catalog: BTreeMap<MemgestId, MemgestDescriptor>,
    default_memgest: MemgestId,
    last_seen: HashMap<NodeId, Instant>,
    dead: HashSet<NodeId>,
    ctrl: BTreeMap<u64, CtrlOp>,
    next_token: u64,
    next_memgest: MemgestId,
    opts: LeaderOptions,
}

impl<T: Transport<Msg>> Leader<T> {
    /// Creates a leader with the initial config and memgest catalog.
    pub fn new(
        ep: T,
        config: ClusterConfig,
        catalog: Vec<(MemgestId, MemgestDescriptor)>,
        default_memgest: MemgestId,
        opts: LeaderOptions,
    ) -> Leader<T> {
        let now = ring_net::clock::now() + opts.startup_grace;
        let mut last_seen = HashMap::new();
        for &n in config.nodes.iter().chain(config.spares.iter()) {
            last_seen.insert(n, now);
        }
        let next_memgest = catalog.iter().map(|&(id, _)| id + 1).max().unwrap_or(0);
        Leader {
            ep,
            config,
            catalog: catalog.into_iter().collect(),
            default_memgest,
            last_seen,
            dead: HashSet::new(),
            ctrl: BTreeMap::new(),
            next_token: 1,
            next_memgest,
            opts,
        }
    }

    /// Runs the leader loop until the endpoint is killed.
    pub fn run(&mut self) {
        self.run_until(|| false);
    }

    /// Runs the leader loop until the endpoint is killed or `stop`
    /// returns true (graceful shutdown — the leader holds no in-flight
    /// client state to drain).
    pub fn run_until(&mut self, stop: impl Fn() -> bool) {
        loop {
            if stop() {
                return;
            }
            match self.ep.recv_timeout(self.opts.poll_timeout) {
                Ok((from, msg)) => self.dispatch(from, msg),
                Err(ring_net::NetError::Timeout) => {}
                Err(_) => break,
            }
            self.tick();
        }
    }

    fn dispatch(&mut self, from: NodeId, msg: Msg) {
        match msg {
            Msg::Heartbeat if !self.dead.contains(&from) => {
                self.last_seen.insert(from, ring_net::clock::now());
            }
            Msg::Heartbeat => {}
            Msg::CtrlAck { token } => {
                let done = if let Some(op) = self.ctrl.get_mut(&token) {
                    op.awaiting.remove(&from);
                    op.awaiting.is_empty()
                } else {
                    false
                };
                if done {
                    let op = self.ctrl.remove(&token).expect("present");
                    let _ = self.ep.send(
                        op.client.0,
                        Msg::Response {
                            req: op.client.1,
                            body: op.resp,
                        },
                    );
                }
            }
            Msg::Request { req, body } => self.handle_request(from, req, body),
            // The leader is control-plane only: data-plane traffic
            // (replication, parity, recovery, shard reads) never
            // addresses it. Dropping these is deliberate — enumerated
            // rather than `_` so adding a `Msg` variant forces a
            // routing decision here instead of vanishing silently.
            Msg::Response { .. }
            | Msg::Replicate { .. }
            | Msg::ReplicateAck { .. }
            | Msg::ParityUpdate { .. }
            | Msg::ParityAck { .. }
            | Msg::MetaRemove { .. }
            | Msg::ConfigUpdate { .. }
            | Msg::MemgestCreate { .. }
            | Msg::MemgestDrop { .. }
            | Msg::SetDefault { .. }
            | Msg::MetaFetch { .. }
            | Msg::MetaFetchResp { .. }
            | Msg::FetchValue { .. }
            | Msg::FetchValueResp { .. }
            | Msg::RecoverBlock { .. }
            | Msg::RecoverBlockResp { .. }
            | Msg::ShardRead { .. }
            | Msg::ShardReadResp { .. }
            | Msg::ParityRebuildStart { .. }
            | Msg::ParityRebuildInfo { .. }
            | Msg::ParityRebuildDone { .. } => {}
        }
    }

    fn respond(&self, to: NodeId, req: ReqId, body: ClientResp) {
        let _ = self.ep.send(to, Msg::Response { req, body });
    }

    fn handle_request(&mut self, from: NodeId, req: ReqId, body: ClientReq) {
        match body {
            ClientReq::CreateMemgest { desc } => {
                if let Err(e) = self.validate(&desc) {
                    self.respond(from, req, ClientResp::Error(e));
                    return;
                }
                let id = self.next_memgest;
                self.next_memgest += 1;
                self.catalog.insert(id, desc);
                self.broadcast_ctrl((from, req), ClientResp::MemgestCreated { id }, |token| {
                    Msg::MemgestCreate { token, id, desc }
                });
            }
            ClientReq::DeleteMemgest { id } => {
                if self.catalog.remove(&id).is_none() {
                    self.respond(from, req, ClientResp::Error(RingError::UnknownMemgest(id)));
                    return;
                }
                if self.default_memgest == id {
                    self.default_memgest = self.catalog.keys().next().copied().unwrap_or(0);
                }
                self.broadcast_ctrl((from, req), ClientResp::MemgestDeleted, |token| {
                    Msg::MemgestDrop { token, id }
                });
            }
            ClientReq::SetDefaultMemgest { id } => {
                if !self.catalog.contains_key(&id) {
                    self.respond(from, req, ClientResp::Error(RingError::UnknownMemgest(id)));
                    return;
                }
                self.default_memgest = id;
                self.broadcast_ctrl((from, req), ClientResp::DefaultSet, |token| {
                    Msg::SetDefault { token, id }
                });
            }
            ClientReq::GetMemgestDescriptor { id } => match self.catalog.get(&id) {
                Some(&desc) => self.respond(from, req, ClientResp::Descriptor { desc }),
                None => self.respond(from, req, ClientResp::Error(RingError::UnknownMemgest(id))),
            },
            // Data-plane requests sent to the leader (e.g. via client
            // multicast) are not the leader's to answer.
            _ => {}
        }
    }

    fn validate(&self, desc: &MemgestDescriptor) -> Result<(), RingError> {
        if desc.block_size == 0 {
            return Err(RingError::InvalidDescriptor(
                "block_size must be > 0".into(),
            ));
        }
        match desc.scheme {
            Scheme::Rep { r } => {
                if r == 0 || r > self.config.s + self.config.d {
                    return Err(RingError::InvalidDescriptor(format!(
                        "replication factor {r} outside 1..={}",
                        self.config.s + self.config.d
                    )));
                }
            }
            Scheme::Srs { k, m } => {
                if k == 0 || k > self.config.s {
                    return Err(RingError::InvalidDescriptor(format!(
                        "k = {k} outside 1..={}",
                        self.config.s
                    )));
                }
                if m == 0 || m > self.config.d {
                    return Err(RingError::InvalidDescriptor(format!(
                        "m = {m} outside 1..={}",
                        self.config.d
                    )));
                }
            }
        }
        Ok(())
    }

    fn broadcast_ctrl(
        &mut self,
        client: (NodeId, ReqId),
        resp: ClientResp,
        make: impl Fn(u64) -> Msg,
    ) {
        let token = self.next_token;
        self.next_token += 1;
        let mut awaiting = HashSet::new();
        for &n in &self.config.nodes {
            if !self.dead.contains(&n) {
                awaiting.insert(n);
                let _ = self.ep.send(n, make(token));
            }
        }
        if awaiting.is_empty() {
            let _ = self.ep.send(
                client.0,
                Msg::Response {
                    req: client.1,
                    body: resp,
                },
            );
            return;
        }
        self.ctrl.insert(
            token,
            CtrlOp {
                client,
                resp,
                awaiting,
                deadline: ring_net::clock::now() + self.opts.ctrl_timeout,
            },
        );
    }

    fn tick(&mut self) {
        let now = ring_net::clock::now();

        // Flush expired control ops (a node died mid-broadcast).
        let expired: Vec<u64> = self
            .ctrl
            .iter()
            .filter(|(_, op)| op.deadline <= now)
            .map(|(&t, _)| t)
            .collect();
        for t in expired {
            let op = self.ctrl.remove(&t).expect("present");
            let _ = self.ep.send(
                op.client.0,
                Msg::Response {
                    req: op.client.1,
                    body: op.resp,
                },
            );
        }

        // Failure detection.
        let suspects: Vec<NodeId> = self
            .config
            .nodes
            .iter()
            .copied()
            .filter(|n| {
                !self.dead.contains(n)
                    && self
                        .last_seen
                        .get(n)
                        .map(|&t| now.duration_since(t) > self.opts.fail_timeout)
                        .unwrap_or(false)
            })
            .collect();
        for dead in suspects {
            self.dead.insert(dead);
            // Never promote a spare that has itself gone silent: drop
            // dead spares from the pool first.
            while let Some(&candidate) = self.config.spares.first() {
                let silent = self
                    .last_seen
                    .get(&candidate)
                    .map(|&t| now.duration_since(t) > self.opts.fail_timeout)
                    .unwrap_or(true);
                if silent {
                    self.dead.insert(candidate);
                    self.config.spares.remove(0);
                } else {
                    break;
                }
            }
            if let Some(next) = self.config.promote_spare(dead) {
                self.config = next;
                let catalog: Vec<(MemgestId, MemgestDescriptor)> =
                    self.catalog.iter().map(|(&i, &d)| (i, d)).collect();
                let targets: Vec<NodeId> = self
                    .config
                    .nodes
                    .iter()
                    .chain(self.config.spares.iter())
                    .copied()
                    .filter(|n| !self.dead.contains(n))
                    .collect();
                for t in targets {
                    let _ = self.ep.send(
                        t,
                        Msg::ConfigUpdate {
                            config: self.config.clone(),
                            memgests: catalog.clone(),
                            default: self.default_memgest,
                        },
                    );
                }
            }
            // Without spares the cluster keeps running degraded; the
            // remaining quorums and parities still serve requests.
        }
    }

    /// The current configuration (for tests).
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The transport the leader runs on (net counters, shutdown).
    pub fn transport(&self) -> &T {
        &self.ep
    }
}

impl<T: Transport<Msg>> std::fmt::Debug for Leader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Leader")
            .field("epoch", &self.config.epoch)
            .field("memgests", &self.catalog.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LEADER_NODE;
    use crate::proto::RingFabric;
    use ring_net::LatencyModel;

    fn harness(fail_timeout: Duration) -> (RingFabric, std::thread::JoinHandle<()>, ClusterConfig) {
        let fabric: RingFabric = ring_net::Fabric::new(LatencyModel::instant());
        let config = ClusterConfig::initial(2, 1, 1, vec![0, 1, 2], vec![3]);
        let ep = fabric.register(LEADER_NODE).unwrap();
        let cfg = config.clone();
        let handle = std::thread::spawn(move || {
            Leader::new(
                ep,
                cfg,
                vec![(0, MemgestDescriptor::rep(1))],
                0,
                LeaderOptions {
                    fail_timeout,
                    startup_grace: Duration::from_millis(50),
                    ..LeaderOptions::default()
                },
            )
            .run();
        });
        (fabric, handle, config)
    }

    #[test]
    fn leader_promotes_on_silence_and_broadcasts() {
        let (fabric, handle, _cfg) = harness(Duration::from_millis(60));
        // Node 1 beacons; nodes 0, 2 and spare 3 stay silent past the
        // grace period -> they all get declared dead; node 0's slot goes
        // to... no spare is alive, so no promotion can complete. Instead
        // keep everyone but node 0 beaconing.
        let n1 = fabric.register(1).unwrap();
        let n2 = fabric.register(2).unwrap();
        let n3 = fabric.register(3).unwrap();
        let beat = |ep: &crate::proto::RingEndpoint| {
            let _ = ep.send(LEADER_NODE, Msg::Heartbeat);
        };
        // Beacon everyone (including 0's replacement candidates) for a
        // while, then let node 0 fall silent.
        let n0 = fabric.register(0).unwrap();
        for _ in 0..10 {
            beat(&n0);
            beat(&n1);
            beat(&n2);
            beat(&n3);
            std::thread::sleep(Duration::from_millis(10));
        }
        fabric.kill(0);
        // Keep the survivors beaconing until the config update arrives.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut promoted = None;
        while std::time::Instant::now() < deadline && promoted.is_none() {
            beat(&n1);
            beat(&n2);
            beat(&n3);
            while let Ok(Some((_, msg))) = n3.try_recv() {
                if let Msg::ConfigUpdate { config, .. } = msg {
                    promoted = Some(config);
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let config = promoted.expect("spare received a config update");
        assert_eq!(config.epoch, 1);
        assert_eq!(config.nodes, vec![3, 1, 2]);
        assert!(config.spares.is_empty());
        fabric.kill(LEADER_NODE);
        handle.join().unwrap();
    }

    #[test]
    fn leader_answers_descriptor_queries_and_validates() {
        let (fabric, handle, _cfg) = harness(Duration::from_secs(60));
        let client = fabric.register(20_500).unwrap();
        // Valid lookup.
        client
            .send(
                LEADER_NODE,
                Msg::Request {
                    req: 1,
                    body: ClientReq::GetMemgestDescriptor { id: 0 },
                },
            )
            .unwrap();
        match client.recv_timeout(Duration::from_secs(2)).unwrap().1 {
            Msg::Response {
                req: 1,
                body: ClientResp::Descriptor { desc },
            } => assert_eq!(desc, MemgestDescriptor::rep(1)),
            other => panic!("unexpected {other:?}"),
        }
        // Invalid create: k exceeds s = 2.
        client
            .send(
                LEADER_NODE,
                Msg::Request {
                    req: 2,
                    body: ClientReq::CreateMemgest {
                        desc: MemgestDescriptor::srs(3, 1),
                    },
                },
            )
            .unwrap();
        match client.recv_timeout(Duration::from_secs(2)).unwrap().1 {
            Msg::Response {
                req: 2,
                body: ClientResp::Error(RingError::InvalidDescriptor(_)),
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        fabric.kill(LEADER_NODE);
        handle.join().unwrap();
    }

    #[test]
    fn create_memgest_waits_for_acks_with_deadline() {
        // Nodes never ack; the leader must still answer the client after
        // the control timeout instead of hanging.
        let (fabric, handle, _cfg) = harness(Duration::from_secs(60));
        let client = fabric.register(20_501).unwrap();
        // Register node endpoints so the broadcast has somewhere to go
        // (but nobody acks).
        let _n0 = fabric.register(0).unwrap();
        let _n1 = fabric.register(1).unwrap();
        let _n2 = fabric.register(2).unwrap();
        client
            .send(
                LEADER_NODE,
                Msg::Request {
                    req: 9,
                    body: ClientReq::CreateMemgest {
                        desc: MemgestDescriptor::rep(2),
                    },
                },
            )
            .unwrap();
        match client.recv_timeout(Duration::from_secs(2)).unwrap().1 {
            Msg::Response {
                req: 9,
                body: ClientResp::MemgestCreated { id },
            } => assert_eq!(id, 1),
            other => panic!("unexpected {other:?}"),
        }
        fabric.kill(LEADER_NODE);
        handle.join().unwrap();
    }
}
