//! The wire protocol of the Ring cluster.
//!
//! All node-to-node and client-to-node communication is a single [`Msg`]
//! enum carried by the simulated RDMA fabric. Messages report an
//! approximate on-wire size (payload plus a fixed header) so the fabric
//! can charge transmission time.

use ring_net::{NodeId, Payload, WireSize};

use crate::config::ClusterConfig;
use crate::error::RingError;
use crate::types::{Epoch, GroupId, Key, MemgestDescriptor, MemgestId, ReqId, Version};

/// Fixed per-message header estimate (ids, opcodes, lengths).
const HEADER: usize = 32;

/// A client-originated request body.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientReq {
    /// `put(key, object[, memgestID])`.
    Put {
        /// The key.
        key: Key,
        /// The value bytes.
        value: Payload,
        /// Target memgest; `None` selects the cluster default.
        memgest: Option<MemgestId>,
    },
    /// `get(key)`.
    Get {
        /// The key.
        key: Key,
    },
    /// `delete(key)`.
    Delete {
        /// The key.
        key: Key,
    },
    /// `move(key, memgestID)`.
    Move {
        /// The key.
        key: Key,
        /// Destination memgest.
        dst: MemgestId,
    },
    /// `createMemgest(descriptor)` — addressed to the leader.
    CreateMemgest {
        /// The scheme descriptor.
        desc: MemgestDescriptor,
    },
    /// `deleteMemgest(id)` — addressed to the leader.
    DeleteMemgest {
        /// The memgest to remove.
        id: MemgestId,
    },
    /// `setDefaultMemgest(id)` — addressed to the leader.
    SetDefaultMemgest {
        /// The new default.
        id: MemgestId,
    },
    /// `getMemgestDescriptor(id)`.
    GetMemgestDescriptor {
        /// The memgest to describe.
        id: MemgestId,
    },
    /// Introspection: report the contacted node's [`crate::stats::NodeStats`]
    /// (answered by any node, not only coordinators).
    Stats,
}

impl ClientReq {
    fn wire_size(&self) -> usize {
        match self {
            ClientReq::Put { value, .. } => 8 + value.len(),
            _ => 16,
        }
    }
}

/// A response to a client request.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientResp {
    /// Put committed at this version.
    PutOk {
        /// Version assigned to the write.
        version: Version,
    },
    /// Get result.
    GetOk {
        /// The value bytes.
        value: Payload,
        /// The version returned.
        version: Version,
    },
    /// Delete committed.
    DeleteOk,
    /// Move committed; the object now lives at this version in the
    /// destination memgest.
    MoveOk {
        /// New version in the destination memgest.
        version: Version,
    },
    /// Memgest created.
    MemgestCreated {
        /// Its id.
        id: MemgestId,
    },
    /// Memgest deleted.
    MemgestDeleted,
    /// Default memgest updated.
    DefaultSet,
    /// Descriptor lookup result.
    Descriptor {
        /// The descriptor.
        desc: MemgestDescriptor,
    },
    /// Introspection report.
    Stats(Box<crate::stats::NodeStats>),
    /// The request failed.
    Error(RingError),
}

impl ClientResp {
    fn wire_size(&self) -> usize {
        match self {
            ClientResp::GetOk { value, .. } => 16 + value.len(),
            _ => 16,
        }
    }
}

/// One parity-heap delta segment of an SRS put, already multiplied by
/// the destination parity node's generator coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct ParitySeg {
    /// Address in the parity node's heap for this memgest.
    pub parity_addr: usize,
    /// `g_{p,source} * (new ^ old)` bytes to XOR in.
    pub delta: Payload,
}

/// Metadata of one object version, as exchanged during replication and
/// recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaEntry {
    /// The key.
    pub key: Key,
    /// The version.
    pub version: Version,
    /// Value length in bytes.
    pub len: usize,
    /// Heap address (SRS memgests) — `usize::MAX` for replicated ones.
    pub addr: usize,
    /// True if this version is a delete marker.
    pub tombstone: bool,
}

/// Every message on the fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ---- Client plane ----
    /// A client request.
    Request {
        /// Client-unique request id, echoed in the response.
        req: ReqId,
        /// The request body.
        body: ClientReq,
    },
    /// The response to a request.
    Response {
        /// Echoed request id.
        req: ReqId,
        /// The response body.
        body: ClientResp,
    },

    // ---- Replication plane ----
    /// Coordinator -> replica: store a copy of `(key, version)`.
    Replicate {
        /// Memgest group.
        group: GroupId,
        /// Target memgest.
        memgest: MemgestId,
        /// The key.
        key: Key,
        /// The version.
        version: Version,
        /// Full value bytes (empty for tombstones).
        value: Payload,
        /// Delete marker.
        tombstone: bool,
    },
    /// Replica -> coordinator: copy stored.
    ReplicateAck {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// The key.
        key: Key,
        /// The version.
        version: Version,
    },
    /// Coordinator -> parity node: apply parity deltas and record the
    /// metadata replica (the "special parity update" of Section 5.3).
    ParityUpdate {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// Shard of the originating coordinator.
        shard: usize,
        /// Object metadata to replicate.
        meta: MetaEntry,
        /// Coefficient-multiplied heap deltas.
        segs: Vec<ParitySeg>,
    },
    /// Parity node -> coordinator: update applied.
    ParityAck {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// The key.
        key: Key,
        /// The version.
        version: Version,
    },
    /// Coordinator -> redundancy: prune an obsolete version's metadata
    /// (fire-and-forget garbage collection).
    MetaRemove {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// The key.
        key: Key,
        /// Versions strictly below this are pruned.
        below: Version,
    },

    // ---- Membership plane ----
    /// Node -> leader: liveness beacon.
    Heartbeat,
    /// Leader -> everyone: the new configuration after a role change,
    /// including the memgest catalog so promoted spares can instantiate
    /// their state.
    ConfigUpdate {
        /// The full configuration (epoch inside).
        config: ClusterConfig,
        /// All memgests: `(id, descriptor)`.
        memgests: Vec<(MemgestId, MemgestDescriptor)>,
        /// The cluster-wide default memgest.
        default: MemgestId,
    },
    /// Leader -> nodes: instantiate a memgest.
    MemgestCreate {
        /// Leader-chosen token echoed in the ack.
        token: u64,
        /// Its id.
        id: MemgestId,
        /// Its descriptor.
        desc: MemgestDescriptor,
    },
    /// Leader -> nodes: drop a memgest.
    MemgestDrop {
        /// Leader-chosen token echoed in the ack.
        token: u64,
        /// The memgest to drop.
        id: MemgestId,
    },
    /// Leader -> nodes: change the default memgest for new keys.
    SetDefault {
        /// Leader-chosen token echoed in the ack.
        token: u64,
        /// The new default memgest.
        id: MemgestId,
    },
    /// Node -> leader: control-plane op applied.
    CtrlAck {
        /// Which control message (leader-chosen token).
        token: u64,
    },

    // ---- Recovery plane ----
    /// New node -> survivor: send me the metadata you hold for
    /// `(group, memgest, shard)`.
    MetaFetch {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// Shard whose metadata is requested.
        shard: usize,
    },
    /// Survivor -> new node: the requested metadata.
    MetaFetchResp {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// Shard the entries belong to.
        shard: usize,
        /// All metadata entries held for that shard.
        entries: Vec<MetaEntry>,
        /// Value bytes parallel to `entries` — populated when the
        /// requester also needs data copies (replicated memgests),
        /// `None` entries otherwise.
        values: Vec<Option<Payload>>,
    },
    /// Coordinator -> replica: fetch a value copy (replicated memgests,
    /// on-demand data recovery).
    FetchValue {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// The key.
        key: Key,
        /// The version.
        version: Version,
    },
    /// Replica -> coordinator: the value copy (empty if unknown).
    FetchValueResp {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// The key.
        key: Key,
        /// The version.
        version: Version,
        /// The bytes, or `None` if this replica does not hold them.
        value: Option<Payload>,
    },
    /// New data node -> parity node: decode my lost heap range
    /// (on-the-fly block recovery, Section 5.5).
    RecoverBlock {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// Shard (data-node index) of the requester.
        shard: usize,
        /// Heap address of the lost range.
        addr: usize,
        /// Length of the lost range.
        len: usize,
    },
    /// Parity node -> data node: the decoded bytes.
    RecoverBlockResp {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// Heap address.
        addr: usize,
        /// Decoded bytes (`None` if reconstruction failed).
        bytes: Option<Payload>,
    },
    /// Speculative reader -> shard holder: late-binding shard read.
    /// Return the concatenated bytes of `ranges` from your heap for
    /// this memgest — the data heap when `parity == false` (addressed
    /// to a coordinator), the parity heap when `parity == true`
    /// (addressed to a redundancy node).
    ShardRead {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// Requester-chosen token echoed in the response; responses for
        /// forgotten tokens are dropped (straggler cancellation).
        token: u64,
        /// Read the parity heap instead of the data heap.
        parity: bool,
        /// `(addr, len)` byte ranges, concatenated in order.
        ranges: Vec<(usize, usize)>,
    },
    /// Shard holder -> speculative reader: the requested bytes.
    ShardReadResp {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// Echoed requester token.
        token: u64,
        /// Concatenated range bytes, or `None` if the holder declined
        /// (it is itself recovering or mid-rebuild).
        bytes: Option<Payload>,
    },
    /// New parity node -> coordinators: stall SRS puts for this memgest
    /// while I rebuild the parity heap.
    ParityRebuildStart {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
    },
    /// Coordinator -> new parity node: stalled; my heap extends to
    /// `heap_len` and here is my shard's metadata.
    ParityRebuildInfo {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
        /// Responding shard.
        shard: usize,
        /// Current heap length of that coordinator.
        heap_len: usize,
        /// True if the coordinator's heap bytes are fully materialised;
        /// false while the coordinator is itself recovering (its heap
        /// still has holes), in which case the rebuilding parity must
        /// reconstruct this shard's contribution from a surviving
        /// parity instead of re-encoding from the heap.
        data_valid: bool,
        /// The shard's metadata entries.
        entries: Vec<MetaEntry>,
    },
    /// New parity node -> coordinators: rebuild complete, resume puts.
    ParityRebuildDone {
        /// Memgest group.
        group: GroupId,
        /// The memgest.
        memgest: MemgestId,
    },
}

/// Epoch accessor used in tests and tracing.
impl Msg {
    /// The epoch carried by configuration messages.
    pub fn epoch(&self) -> Option<Epoch> {
        match self {
            Msg::ConfigUpdate { config, .. } => Some(config.epoch),
            _ => None,
        }
    }

    /// Returns `(destination hint)` — purely a debugging aid.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Request { .. } => "Request",
            Msg::Response { .. } => "Response",
            Msg::Replicate { .. } => "Replicate",
            Msg::ReplicateAck { .. } => "ReplicateAck",
            Msg::ParityUpdate { .. } => "ParityUpdate",
            Msg::ParityAck { .. } => "ParityAck",
            Msg::MetaRemove { .. } => "MetaRemove",
            Msg::Heartbeat => "Heartbeat",
            Msg::ConfigUpdate { .. } => "ConfigUpdate",
            Msg::MemgestCreate { .. } => "MemgestCreate",
            Msg::MemgestDrop { .. } => "MemgestDrop",
            Msg::SetDefault { .. } => "SetDefault",
            Msg::CtrlAck { .. } => "CtrlAck",
            Msg::MetaFetch { .. } => "MetaFetch",
            Msg::MetaFetchResp { .. } => "MetaFetchResp",
            Msg::FetchValue { .. } => "FetchValue",
            Msg::FetchValueResp { .. } => "FetchValueResp",
            Msg::RecoverBlock { .. } => "RecoverBlock",
            Msg::RecoverBlockResp { .. } => "RecoverBlockResp",
            Msg::ShardRead { .. } => "ShardRead",
            Msg::ShardReadResp { .. } => "ShardReadResp",
            Msg::ParityRebuildStart { .. } => "ParityRebuildStart",
            Msg::ParityRebuildInfo { .. } => "ParityRebuildInfo",
            Msg::ParityRebuildDone { .. } => "ParityRebuildDone",
        }
    }
}

/// Size of a metadata entry on the wire.
const META_ENTRY_SIZE: usize = 8 + 8 + 8 + 8 + 1;

impl WireSize for Msg {
    fn wire_size(&self) -> usize {
        HEADER
            + match self {
                Msg::Request { body, .. } => body.wire_size(),
                Msg::Response { body, .. } => body.wire_size(),
                Msg::Replicate { value, .. } => 24 + value.len(),
                Msg::ParityUpdate { segs, meta, .. } => {
                    let _ = meta;
                    META_ENTRY_SIZE + segs.iter().map(|s| 8 + s.delta.len()).sum::<usize>()
                }
                Msg::MetaFetchResp {
                    entries, values, ..
                } => {
                    16 + entries.len() * META_ENTRY_SIZE
                        // This `values` is a Vec; the name collides with the
                        // Rep store's HashMap field in node/coord.rs.
                        // ring-lint: allow(hashmap-iteration)
                        + values
                            .iter()
                            .map(|v| v.as_ref().map(|b| b.len()).unwrap_or(0))
                            .sum::<usize>()
                }
                Msg::FetchValueResp { value, .. } => {
                    24 + value.as_ref().map(|v| v.len()).unwrap_or(0)
                }
                Msg::RecoverBlockResp { bytes, .. } => {
                    16 + bytes.as_ref().map(|b| b.len()).unwrap_or(0)
                }
                Msg::ShardRead { ranges, .. } => 24 + ranges.len() * 16,
                Msg::ShardReadResp { bytes, .. } => {
                    24 + bytes.as_ref().map(|b| b.len()).unwrap_or(0)
                }
                Msg::ParityRebuildInfo { entries, .. } => 24 + entries.len() * META_ENTRY_SIZE,
                Msg::ConfigUpdate {
                    config, memgests, ..
                } => 32 + config.nodes.len() * 4 + memgests.len() * 16,
                // Beacons and acks are a few ids at most.
                Msg::Heartbeat | Msg::CtrlAck { .. } => 8,
                // Fixed-size control messages: ids, keys, versions —
                // enumerated so a new variant must pick a size here.
                Msg::ReplicateAck { .. }
                | Msg::ParityAck { .. }
                | Msg::MetaRemove { .. }
                | Msg::MemgestCreate { .. }
                | Msg::MemgestDrop { .. }
                | Msg::SetDefault { .. }
                | Msg::MetaFetch { .. }
                | Msg::FetchValue { .. }
                | Msg::RecoverBlock { .. }
                | Msg::ParityRebuildStart { .. }
                | Msg::ParityRebuildDone { .. } => 24,
            }
    }
}

/// Convenience alias for the fabric instantiated with [`Msg`].
pub type RingFabric = ring_net::Fabric<Msg>;

/// Convenience alias for an endpoint carrying [`Msg`].
pub type RingEndpoint = ring_net::Endpoint<Msg>;

/// A `(node, request id)` pair identifying an outstanding client call.
pub type ClientTag = (NodeId, ReqId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_scales_with_payload() {
        let small = Msg::Request {
            req: 1,
            body: ClientReq::Put {
                key: 1,
                value: Payload::from(vec![0; 16]),
                memgest: None,
            },
        };
        let big = Msg::Request {
            req: 1,
            body: ClientReq::Put {
                key: 1,
                value: Payload::from(vec![0; 1024]),
                memgest: None,
            },
        };
        assert!(big.wire_size() - small.wire_size() == 1008);
        assert!(small.wire_size() >= 16 + HEADER);
    }

    #[test]
    fn parity_update_counts_all_segments() {
        let m = Msg::ParityUpdate {
            group: 0,
            memgest: 1,
            shard: 0,
            meta: MetaEntry {
                key: 1,
                version: 1,
                len: 20,
                addr: 0,
                tombstone: false,
            },
            segs: vec![
                ParitySeg {
                    parity_addr: 0,
                    delta: Payload::from(vec![0; 10]),
                },
                ParitySeg {
                    parity_addr: 64,
                    delta: Payload::from(vec![0; 10]),
                },
            ],
        };
        assert!(m.wire_size() > HEADER + 20);
    }

    #[test]
    fn epoch_extraction() {
        let cfg = crate::config::ClusterConfig::initial(1, 0, 1, vec![0], vec![]);
        let m = Msg::ConfigUpdate {
            config: cfg,
            memgests: vec![],
            default: 0,
        };
        assert_eq!(m.epoch(), Some(0));
        assert_eq!(Msg::Heartbeat.epoch(), None);
        assert_eq!(Msg::Heartbeat.kind(), "Heartbeat");
    }
}
