//! The error type of the Ring KVS.

use std::fmt;

use crate::types::MemgestId;

/// Errors surfaced to Ring clients and internal callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The key does not exist (or its latest version is a tombstone).
    KeyNotFound,
    /// The referenced memgest id does not exist.
    UnknownMemgest(MemgestId),
    /// A memgest with conflicting parameters or an invalid descriptor.
    InvalidDescriptor(String),
    /// The request timed out (node failure or overload).
    Timeout,
    /// The contacted node is not the coordinator for the key (stale
    /// client mapping); the client should refresh and retry.
    NotCoordinator,
    /// The cluster rejected the request (e.g. during recovery).
    Unavailable(String),
    /// A network-level failure.
    Net(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::KeyNotFound => write!(f, "key not found"),
            RingError::UnknownMemgest(id) => write!(f, "unknown memgest {id}"),
            RingError::InvalidDescriptor(msg) => write!(f, "invalid descriptor: {msg}"),
            RingError::Timeout => write!(f, "request timed out"),
            RingError::NotCoordinator => write!(f, "not the coordinator for this key"),
            RingError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            RingError::Net(msg) => write!(f, "network error: {msg}"),
            RingError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for RingError {}

impl From<ring_net::NetError> for RingError {
    fn from(e: ring_net::NetError) -> RingError {
        match e {
            ring_net::NetError::Timeout => RingError::Timeout,
            other => RingError::Net(other.to_string()),
        }
    }
}
