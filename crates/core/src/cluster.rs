//! The in-process cluster harness: spawns node threads, the leader, and
//! clients on one simulated fabric.
//!
//! This is the reproduction's stand-in for the paper's 12-node
//! InfiniBand testbed: every protocol component runs unchanged, only the
//! process boundaries are collapsed (see DESIGN.md §2).

use std::sync::atomic::{AtomicU32, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

use ring_net::{LatencyModel, NodeId};

use crate::client::{ClientOptions, RingClient};
use crate::config::{ClusterConfig, CLIENT_BASE, LEADER_NODE};
use crate::leader::{Leader, LeaderOptions};
use crate::node::{Node, NodeOptions};
use crate::proto::RingFabric;
use crate::types::{Key, MemgestDescriptor, MemgestId};

/// Everything needed to start a cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Shards (coordinator nodes per group).
    pub s: usize,
    /// Redundant nodes per group.
    pub d: usize,
    /// Spare nodes.
    pub spares: usize,
    /// Memgest groups (Section 5.4; 1 reproduces the paper's main
    /// experiments, `s + d` balances memory and load).
    pub groups: usize,
    /// The fabric latency model.
    pub latency: LatencyModel,
    /// Memgests created at startup, ids `0..n` in order.
    pub memgests: Vec<MemgestDescriptor>,
    /// Default memgest for untargeted puts.
    pub default_memgest: MemgestId,
    /// Keep superseded versions instead of pruning at commit.
    pub keep_old_versions: bool,
    /// Node heartbeat period.
    pub heartbeat_interval: Duration,
    /// Leader failure-detection threshold.
    pub fail_timeout: Duration,
    /// Client per-attempt timeout.
    pub client_timeout: Duration,
    /// Delay replicas insert before acking copies (disk-backed backup
    /// model; zero for in-memory replication).
    pub replica_ack_delay: Duration,
    /// Commit `Rep(r)` puts only after all copies ack (fully synchronous
    /// replication) instead of a majority quorum.
    pub sync_replication: bool,
    /// Proactive background data recovery after promotions (Section
    /// 5.5); off by default so Figure 13 measures cold on-demand decode.
    pub background_recovery: bool,
    /// Δ of the speculative `k + Δ` degraded-read fan-out (extra
    /// redundancy targets contacted per recovery read; the decode binds
    /// to the first `k` stripe rows that arrive).
    pub read_fanout_extra: usize,
    /// Master randomness seed. The protocol itself uses no randomness;
    /// workload generators and chaos harnesses derive their streams
    /// from this one value (see [`ClusterSpec::derived_seed`]) so that
    /// any cluster run is reproducible from one printed number.
    pub seed: u64,
}

impl Default for ClusterSpec {
    fn default() -> ClusterSpec {
        ClusterSpec {
            s: 3,
            d: 2,
            spares: 0,
            groups: 1,
            latency: LatencyModel::rdma(),
            memgests: vec![MemgestDescriptor::rep(1)],
            default_memgest: 0,
            keep_old_versions: false,
            heartbeat_interval: Duration::from_millis(5),
            fail_timeout: Duration::from_millis(50),
            client_timeout: Duration::from_millis(100),
            replica_ack_delay: Duration::ZERO,
            sync_replication: false,
            background_recovery: false,
            read_fanout_extra: 1,
            seed: 0x52_49_4E_47, // "RING"
        }
    }
}

impl ClusterSpec {
    /// The paper's 5-node evaluation deployment (Figure 3): `s = 3`,
    /// `d = 2`, with the seven memgests of Section 6.1 created as ids
    /// 0..=6: REP1, REP2, REP3, REP4, SRS21, SRS31, SRS32.
    pub fn paper_evaluation() -> ClusterSpec {
        ClusterSpec {
            memgests: vec![
                MemgestDescriptor::rep(1),
                MemgestDescriptor::rep(2),
                MemgestDescriptor::rep(3),
                MemgestDescriptor::rep(4),
                MemgestDescriptor::srs(2, 1),
                MemgestDescriptor::srs(3, 1),
                MemgestDescriptor::srs(3, 2),
            ],
            ..ClusterSpec::default()
        }
    }

    /// Derives a named sub-seed from the master seed, so independent
    /// consumers (workload generator, fault plan, nemesis timeline, one
    /// stream per client thread) get decorrelated but reproducible
    /// streams. FNV-1a over the label, splitmix64-finalized.
    pub fn derived_seed(&self, label: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in label.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        let mut z = self.seed ^ h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A running cluster.
pub struct Cluster {
    fabric: RingFabric,
    config: ClusterConfig,
    spec: ClusterSpec,
    threads: Vec<JoinHandle<()>>,
    next_client: AtomicU32,
}

impl Cluster {
    /// Boots the cluster: registers and spawns `s + d` nodes, `spares`
    /// spare nodes, and the leader.
    ///
    /// # Panics
    ///
    /// Panics on invalid spec (no memgests, bad default id).
    pub fn start(spec: ClusterSpec) -> Cluster {
        assert!(!spec.memgests.is_empty(), "need at least one memgest");
        assert!(
            (spec.default_memgest as usize) < spec.memgests.len(),
            "default memgest out of range"
        );
        let fabric: RingFabric = ring_net::Fabric::new(spec.latency);
        let active: Vec<NodeId> = (0..(spec.s + spec.d) as NodeId).collect();
        let spares: Vec<NodeId> =
            ((spec.s + spec.d) as NodeId..(spec.s + spec.d + spec.spares) as NodeId).collect();
        let config =
            ClusterConfig::initial(spec.s, spec.d, spec.groups, active.clone(), spares.clone());
        let catalog: Vec<(MemgestId, MemgestDescriptor)> = spec
            .memgests
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as MemgestId, d))
            .collect();

        let mut threads = Vec::new();
        for &id in active.iter().chain(spares.iter()) {
            let ep = fabric.register(id).expect("fresh fabric");
            let opts = NodeOptions {
                heartbeat_interval: spec.heartbeat_interval,
                keep_old_versions: spec.keep_old_versions,
                initial_memgests: catalog.clone(),
                default_memgest: spec.default_memgest,
                replica_ack_delay: spec.replica_ack_delay,
                sync_replication: spec.sync_replication,
                background_recovery: spec.background_recovery,
                read_fanout_extra: spec.read_fanout_extra,
                ..NodeOptions::default()
            };
            let cfg = config.clone();
            threads.push(std::thread::spawn(move || {
                Node::new(ep, cfg, opts).run();
            }));
        }

        let leader_ep = fabric.register(LEADER_NODE).expect("fresh fabric");
        let leader_cfg = config.clone();
        let leader_catalog = catalog;
        let default = spec.default_memgest;
        let fail_timeout = spec.fail_timeout;
        threads.push(std::thread::spawn(move || {
            Leader::new(
                leader_ep,
                leader_cfg,
                leader_catalog,
                default,
                LeaderOptions {
                    fail_timeout,
                    ..LeaderOptions::default()
                },
            )
            .run();
        }));

        Cluster {
            fabric,
            config,
            spec,
            threads,
            next_client: AtomicU32::new(CLIENT_BASE),
        }
    }

    /// Creates a new client.
    pub fn client(&self) -> RingClient {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let ep = self.fabric.register(id).expect("client ids are unique");
        RingClient::new(
            ep,
            self.config.clone(),
            ClientOptions {
                timeout: self.spec.client_timeout,
                ..ClientOptions::default()
            },
        )
    }

    /// The bootstrap configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The spec the cluster was started with.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The underlying fabric (failure injection, stats).
    pub fn fabric(&self) -> &RingFabric {
        &self.fabric
    }

    /// Crash a node (the paper's "manually killing processes").
    pub fn kill(&self, node: NodeId) {
        self.fabric.kill(node);
    }

    /// The node currently... initially coordinating `key` (bootstrap
    /// mapping; after failures consult a client's learned overrides).
    pub fn coordinator_of(&self, key: Key) -> NodeId {
        self.config.coordinator_of_key(key)
    }

    /// Stops every node and joins the threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for id in self.fabric.live_nodes() {
            self.fabric.kill(id);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("s", &self.spec.s)
            .field("d", &self.spec.d)
            .field("spares", &self.spec.spares)
            .finish()
    }
}
