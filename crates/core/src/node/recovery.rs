//! Role changes and recovery: adopting a new configuration, rebuilding
//! metadata on a promoted spare, and the parity-rebuild protocol
//! (Section 5.5 and Figure 12's six recovery steps).

use ring_net::{NodeId, Transport};

use crate::config::Role;
use crate::proto::{MetaEntry, Msg};
use crate::storage::{data_mr_key, parity_mr_key, CoordStore, ObjectEntry, RedundantStore};
use crate::types::{GroupId, MemgestDescriptor, MemgestId, Scheme};

use super::{Node, RebuildState};

impl<T: Transport<Msg>> Node<T> {
    /// Adopts a newer configuration. A freshly activated spare
    /// instantiates its role state and starts metadata recovery;
    /// survivors re-target uncommitted replication traffic.
    pub(crate) fn handle_config_update(
        &mut self,
        config: crate::config::ClusterConfig,
        memgests: Vec<(MemgestId, MemgestDescriptor)>,
        default: MemgestId,
    ) {
        if config.epoch <= self.config.epoch {
            return;
        }
        let was_active = self.active;
        self.config = config;
        for (id, desc) in memgests {
            self.catalog.entry(id).or_insert(desc);
        }
        self.default_memgest = default;
        self.active = self.config.nodes.contains(&self.id);
        // Speculative shard reads in flight addressed the old epoch's
        // role assignment; drop them (the survivor path below clears the
        // `fetching` flags, so the next get re-issues the fan-out).
        self.spec_reads.clear();

        if self.active && !was_active {
            // Step 3-4 of the recovery sequence: assume the role, create
            // the empty memgests, connect, and fetch metadata.
            self.setup_roles();
            self.start_recovery();
        } else if self.active {
            // Survivor: in-flight fetches may have targeted the dead
            // node; clear the flags so the next get retries against the
            // new target.
            for gs in self.groups.values_mut() {
                for coord in gs.coord.values_mut() {
                    let stuck: Vec<_> = coord
                        .meta
                        .iter()
                        .filter(|(_, _, e)| e.fetching)
                        .map(|(k, v, _)| (k, v))
                        .collect();
                    for (k, v) in stuck {
                        if let Some(e) = coord.meta.get_mut(k, v) {
                            e.fetching = false;
                        }
                    }
                }
            }
            self.resend_uncommitted();
        }
    }

    /// Re-sends uncommitted replica writes to the current target set, so
    /// that quorums can still form after a replica died (the new replica
    /// receives the copy it missed).
    fn resend_uncommitted(&mut self) {
        let pending_keys: Vec<super::PendingKey> = self.pending.keys().copied().collect();
        for (g, mid, key, version) in pending_keys {
            let Some(gs) = self.groups.get(&g) else {
                continue;
            };
            let Some(shard) = gs.shard else { continue };
            let Some(coord) = gs.coord.get(&mid) else {
                continue;
            };
            let Scheme::Rep { r } = coord.desc.scheme else {
                // SRS pendings are satisfied by the parity-rebuild
                // protocol (`ParityRebuildDone` counts as the ack).
                continue;
            };
            let (value, tombstone) = match coord.meta.get(key, version) {
                Some(e) if e.tombstone => (ring_net::Payload::empty(), true),
                Some(_) => match &coord.store {
                    CoordStore::Rep { values } => (
                        values
                            .get(&(key, version))
                            .cloned()
                            .unwrap_or_else(ring_net::Payload::empty),
                        false,
                    ),
                    CoordStore::Srs { .. } => continue,
                },
                None => continue,
            };
            let targets = self.config.replica_targets(g, shard, r);
            let p = self.pending.get_mut(&(g, mid, key, version)).expect("key");
            for t in targets {
                if p.acks.retarget(t) {
                    let msg = Msg::Replicate {
                        group: g,
                        memgest: mid,
                        key,
                        version,
                        value: value.clone(),
                        tombstone,
                    };
                    let _ = self.ep.send(t, msg.clone());
                    p.msgs.push((t, msg));
                }
            }
        }
    }

    /// Step 5: request metadata (and, for parity roles, heap rebuilds)
    /// from the surviving nodes. Client requests are ignored until every
    /// fetch completes — serving earlier could return stale data, since
    /// the highest version of a key may live in a not-yet-recovered
    /// memgest (Section 6.4).
    pub(crate) fn start_recovery(&mut self) {
        let catalog: Vec<(MemgestId, MemgestDescriptor)> =
            self.catalog.iter().map(|(&i, &d)| (i, d)).collect();
        for g in 0..self.config.groups as GroupId {
            let role = self.config.role_of(g, self.id);
            match role {
                Some(Role::Coordinator(shard)) => {
                    for &(mid, desc) in &catalog {
                        let targets = match desc.scheme {
                            Scheme::Rep { r } if r > 1 => self.config.replica_targets(g, shard, r),
                            Scheme::Rep { .. } => Vec::new(), // Unreliable: data is simply lost.
                            Scheme::Srs { m, .. } => self.config.parity_targets(g, m),
                        };
                        if !targets.is_empty() {
                            self.start_fetch(g, mid, shard, targets);
                        }
                    }
                }
                Some(Role::Redundant(idx)) => {
                    for &(mid, desc) in &catalog {
                        match desc.scheme {
                            Scheme::Rep { r } if r > 1 => {
                                for shard in 0..self.config.s {
                                    let involved =
                                        self.config.replica_targets(g, shard, r).contains(&self.id);
                                    if involved {
                                        // The coordinator has the copy; the
                                        // other replicas are fallbacks.
                                        let mut targets = vec![self.config.coordinator(g, shard)];
                                        for t in self.config.replica_targets(g, shard, r) {
                                            if t != self.id {
                                                targets.push(t);
                                            }
                                        }
                                        self.start_fetch(g, mid, shard, targets);
                                    }
                                }
                            }
                            Scheme::Srs { m, .. } if idx < m => {
                                // Parity heaps cannot be rebuilt from
                                // deltas: stall the coordinators and
                                // re-encode from their heaps.
                                self.recovering += 1;
                                self.rebuilds.insert(
                                    (g, mid),
                                    RebuildState {
                                        infos: Default::default(),
                                        expected: self.config.s,
                                        sent_at: ring_net::clock::now(),
                                    },
                                );
                                for shard in 0..self.config.s {
                                    let _ = self.ep.send(
                                        self.config.coordinator(g, shard),
                                        Msg::ParityRebuildStart {
                                            group: g,
                                            memgest: mid,
                                        },
                                    );
                                }
                            }
                            _ => {}
                        }
                    }
                }
                None => {}
            }
        }
    }

    /// Registers and sends a metadata fetch; `retry_fetches` rotates
    /// through `targets` until a response arrives.
    fn start_fetch(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        shard: usize,
        targets: Vec<ring_net::NodeId>,
    ) {
        debug_assert!(!targets.is_empty());
        let first = targets[0];
        self.recovering += 1;
        self.fetches.insert(
            (g, mid, shard),
            super::PendingFetch {
                targets,
                next_idx: 1,
                sent_at: ring_net::clock::now(),
            },
        );
        let _ = self.ep.send(
            first,
            Msg::MetaFetch {
                group: g,
                memgest: mid,
                shard,
            },
        );
    }

    /// Installs fetched metadata. A new coordinator rebuilds its
    /// metadata tables and volatile hashtable (step 6); a new replica
    /// installs metadata plus value copies.
    pub(crate) fn handle_meta_fetch_resp(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        shard: usize,
        entries: Vec<MetaEntry>,
        values: Vec<Option<ring_net::Payload>>,
    ) {
        if self.fetches.remove(&(g, mid, shard)).is_none() {
            return; // Duplicate answer from a retried fetch.
        }
        self.instantiate_memgest(g, mid);
        let Some(gs) = self.groups.get_mut(&g) else {
            return;
        };
        if gs.shard == Some(shard) {
            if let Some(coord) = gs.coord.get_mut(&mid) {
                let mut frontier = 0usize;
                for e in &entries {
                    coord.meta.insert(
                        e.key,
                        e.version,
                        ObjectEntry::recovered(e.len, e.addr, e.tombstone),
                    );
                    gs.volatile.record(e.key, e.version, mid);
                    if e.addr != usize::MAX {
                        frontier = frontier.max(e.addr + e.len);
                    }
                }
                if let CoordStore::Srs { heap, .. } = &mut coord.store {
                    heap.reserve_upto(frontier);
                }
            }
        } else if let Some(red) = gs.redundant.get_mut(&mid) {
            for (e, v) in entries.iter().zip(values) {
                let mut entry = ObjectEntry::new(e.len, e.addr, e.tombstone);
                entry.committed = true;
                red.meta.insert(e.key, e.version, entry);
                if let (RedundantStore::Rep { values }, Some(bytes)) = (&mut red.store, v) {
                    values.insert((e.key, e.version), bytes);
                }
            }
        }
        self.recovering = self.recovering.saturating_sub(1);
    }

    /// A new parity node asked this coordinator to stall SRS puts and
    /// report its heap extent and metadata.
    pub(crate) fn handle_parity_rebuild_start(&mut self, from: NodeId, g: GroupId, mid: MemgestId) {
        let Some(gs) = self.groups.get_mut(&g) else {
            return;
        };
        let Some(shard) = gs.shard else { return };
        let Some(coord) = gs.coord.get_mut(&mid) else {
            return;
        };
        coord.stalled = true;
        if self.recovering > 0 {
            // Our own metadata recovery is still running, so the heap
            // frontier below would be wrong. Stall puts now but answer
            // only once recovery drains — the rebuilding parity re-asks
            // every 150ms.
            return;
        }
        let mut data_valid = true;
        let entries: Vec<MetaEntry> = coord
            .meta
            .iter()
            .map(|(key, version, e)| {
                if !e.data_present && !e.tombstone {
                    // A hole from our own recovery: the heap bytes are
                    // not trustworthy for re-encoding.
                    data_valid = false;
                }
                MetaEntry {
                    key,
                    version,
                    len: e.len,
                    addr: e.addr,
                    tombstone: e.tombstone,
                }
            })
            .collect();
        let heap_len = match &coord.store {
            CoordStore::Srs { heap, .. } => heap.len(),
            CoordStore::Rep { .. } => 0,
        };
        let _ = self.ep.send(
            from,
            Msg::ParityRebuildInfo {
                group: g,
                memgest: mid,
                shard,
                heap_len,
                data_valid,
                entries,
            },
        );
    }

    /// Collects coordinator answers; once all `s` shards reported, the
    /// parity heap is re-encoded from one-sided reads of their heaps.
    pub(crate) fn handle_parity_rebuild_info(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        shard: usize,
        heap_len: usize,
        data_valid: bool,
        entries: Vec<MetaEntry>,
    ) {
        let Some(rb) = self.rebuilds.get_mut(&(g, mid)) else {
            return;
        };
        rb.infos.insert(
            shard,
            super::RebuildInfo {
                heap_len,
                data_valid,
                entries,
            },
        );
        if rb.infos.len() < rb.expected {
            return;
        }
        let rb = self.rebuilds.remove(&(g, mid)).expect("present");
        self.perform_parity_rebuild(g, mid, rb);
    }

    fn perform_parity_rebuild(&mut self, g: GroupId, mid: MemgestId, rb: RebuildState) {
        self.instantiate_memgest(g, mid);
        let my_idx = self
            .groups
            .get(&g)
            .and_then(|gs| gs.red_idx)
            .unwrap_or(usize::MAX);

        // Read every *valid* coordinator heap (one-sided) for re-encode.
        // Shards whose coordinator is itself recovering (holey heap) are
        // reconstructed from a surviving parity instead.
        let s = self.config.s;
        let mut reads: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut invalid: Vec<(usize, usize)> = Vec::new();
        let mut max_heap = 0usize;
        for shard in 0..s {
            let Some(info) = rb.infos.get(&shard) else {
                continue;
            };
            max_heap = max_heap.max(info.heap_len);
            if info.heap_len == 0 {
                continue;
            }
            if info.data_valid {
                let node = self.config.coordinator(g, shard);
                if let Ok(bytes) = self
                    .ep
                    .rdma_read(node, data_mr_key(g, mid), 0, info.heap_len)
                {
                    reads.push((shard, bytes));
                } else {
                    invalid.push((shard, info.heap_len));
                }
            } else {
                invalid.push((shard, info.heap_len));
            }
        }

        // For a single invalid shard, fetch a surviving parity heap: its
        // bytes minus the valid shards' contributions isolate the
        // missing shard's coded contribution.
        let m = self
            .catalog
            .get(&mid)
            .map(|d| match d.scheme {
                Scheme::Srs { m, .. } => m,
                Scheme::Rep { .. } => 0,
            })
            .unwrap_or(0);
        let mut donor: Option<(usize, Vec<u8>)> = None;
        if invalid.len() == 1 {
            let tmp_len = {
                // parity_len_for needs the layout; compute below once the
                // store is borrowed. Use a conservative bound here.
                max_heap * 2
            };
            for q in 0..m {
                if q == my_idx {
                    continue;
                }
                let node = self.config.redundant(g, q);
                if let Ok(bytes) = self
                    .ep
                    .rdma_read_padded(node, parity_mr_key(g, mid), 0, tmp_len)
                {
                    donor = Some((q, bytes));
                    break;
                }
            }
        }

        let Some(gs) = self.groups.get_mut(&g) else {
            return;
        };
        let Some(red) = gs.redundant.get_mut(&mid) else {
            return;
        };
        if let RedundantStore::Parity {
            region,
            len,
            layout,
        } = &mut red.store
        {
            for (shard, bytes) in &reads {
                for seg in layout.split_range(*shard, 0, bytes.len()) {
                    let c = layout.code().rs().coefficient(my_idx, seg.source);
                    let mut piece = bytes[seg.data_addr..seg.data_addr + seg.len].to_vec();
                    super::redundant::scale_in_place(&mut piece, c);
                    let end = seg.parity_addr + seg.len;
                    if end > region.len() {
                        region.grow(end.next_power_of_two());
                    }
                    region
                        .xor(seg.parity_addr, &piece)
                        .expect("region grown to cover the segment");
                    *len = (*len).max(end);
                }
            }

            if let (Some((q, q_bytes)), [(miss_shard, miss_len)]) = (donor, invalid.as_slice()) {
                // tmp = P_q XOR sum_valid g_q,j D_j = g_q,src * D_missing
                // on the missing shard's parity ranges, zero elsewhere.
                let mut tmp = q_bytes;
                for (shard, bytes) in &reads {
                    for seg in layout.split_range(*shard, 0, bytes.len()) {
                        let c = layout.code().rs().coefficient(q, seg.source);
                        let mut piece = bytes[seg.data_addr..seg.data_addr + seg.len].to_vec();
                        super::redundant::scale_in_place(&mut piece, c);
                        let end = (seg.parity_addr + seg.len).min(tmp.len());
                        if seg.parity_addr < end {
                            for (dst, src) in tmp[seg.parity_addr..end]
                                .iter_mut()
                                .zip(&piece[..end - seg.parity_addr])
                            {
                                *dst ^= src;
                            }
                        }
                    }
                }
                // My parity over the missing ranges:
                // P_me = g_me,src * inv(g_q,src) * tmp.
                for seg in layout.split_range(*miss_shard, 0, *miss_len) {
                    let g_me = layout.code().rs().coefficient(my_idx, seg.source);
                    let g_q = layout.code().rs().coefficient(q, seg.source);
                    let Some(inv) = g_q.checked_inv() else {
                        continue;
                    };
                    let factor = g_me * inv;
                    let end = (seg.parity_addr + seg.len).min(tmp.len());
                    if seg.parity_addr >= end {
                        continue;
                    }
                    let mut piece = tmp[seg.parity_addr..end].to_vec();
                    super::redundant::scale_in_place(&mut piece, factor);
                    if seg.parity_addr + piece.len() > region.len() {
                        region.grow((seg.parity_addr + piece.len()).next_power_of_two());
                    }
                    region
                        .xor(seg.parity_addr, &piece)
                        .expect("region grown to cover the segment");
                    *len = (*len).max(seg.parity_addr + piece.len());
                }
            }

            for info in rb.infos.values() {
                for e in &info.entries {
                    let mut entry = ObjectEntry::new(e.len, e.addr, e.tombstone);
                    entry.committed = true;
                    red.meta.insert(e.key, e.version, entry);
                }
            }
        }

        for shard in 0..s {
            let _ = self.ep.send(
                self.config.coordinator(g, shard),
                Msg::ParityRebuildDone {
                    group: g,
                    memgest: mid,
                },
            );
        }
        self.recovering = self.recovering.saturating_sub(1);
    }

    /// A rebuilt parity node is consistent with this coordinator's heap,
    /// so it implicitly acknowledges every in-flight SRS put of the
    /// memgest; afterwards the stalled queue drains.
    pub(crate) fn handle_parity_rebuild_done(&mut self, from: NodeId, g: GroupId, mid: MemgestId) {
        let keys: Vec<super::PendingKey> = self
            .pending
            .keys()
            .filter(|(pg, pm, _, _)| *pg == g && *pm == mid)
            .copied()
            .collect();
        for (pg, pm, key, version) in keys {
            self.handle_ack(from, pg, pm, key, version);
        }
        self.flush_stalled(g, mid);
    }
}
