//! The Ring server: a single-threaded event loop per node, exactly as in
//! the paper's implementation (Section 6: "each server is
//! single-threaded").
//!
//! A node plays one role per memgest group (coordinator of a shard or
//! redundant node; spares play none) and multiplexes every plane over
//! one mailbox: client requests, replication and parity traffic,
//! heartbeats, membership updates and recovery.

mod coord;
mod recovery;
mod redundant;

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::{Duration, Instant};

use ring_net::NodeId;

use crate::config::{ClusterConfig, Role, LEADER_NODE};
use ring_net::Transport;

use crate::proto::{ClientResp, ClientTag, Msg, RingEndpoint};
use crate::storage::{data_mr_key, parity_mr_key, VolatileTable};
use crate::storage::{CoordMemgest, CoordStore, Heap, RedundantMemgest, RedundantStore};
use crate::types::{GroupId, Key, MemgestDescriptor, MemgestId, ReqId, Scheme, Version};

/// Tunables of a node.
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// How often to beacon the leader.
    pub heartbeat_interval: Duration,
    /// Mailbox poll timeout of the event loop.
    pub poll_timeout: Duration,
    /// Keep superseded versions instead of pruning them at commit
    /// (Section 5.2: versioning can retain reliable backup copies).
    pub keep_old_versions: bool,
    /// Retransmission period for unacknowledged redundancy messages.
    pub retransmit_interval: Duration,
    /// Extra delay a replica inserts before acknowledging a copy —
    /// models disk-backed backups (the RAMCloud-like baseline).
    pub replica_ack_delay: Duration,
    /// Fully synchronous replication: a `Rep(r)` put commits only after
    /// all `r - 1` copies acknowledge, instead of a majority quorum
    /// (the paper's §3.1 contrast: tolerates `r - 1` failures but is
    /// less available under them).
    pub sync_replication: bool,
    /// Proactively recover missing data in the background after a
    /// promotion (Section 5.5: the new node "starts providing services
    /// while performing data recovery in the background"). Off by
    /// default so the on-demand recovery experiments (Figure 13) measure
    /// cold decodes.
    pub background_recovery: bool,
    /// Memgests instantiated at startup: `(id, descriptor)`.
    pub initial_memgests: Vec<(MemgestId, MemgestDescriptor)>,
    /// The default memgest for `put(key, value)` without an explicit id.
    pub default_memgest: MemgestId,
    /// Δ of the speculative `k + Δ` read fan-out: how many redundancy
    /// targets beyond the minimum a degraded read contacts. The
    /// coordinator decodes from whichever responses arrive first and
    /// ignores the stragglers (Hydra-style late binding), so higher Δ
    /// trades fabric traffic for tail latency under slow nodes.
    pub read_fanout_extra: usize,
}

impl Default for NodeOptions {
    fn default() -> NodeOptions {
        NodeOptions {
            heartbeat_interval: Duration::from_millis(5),
            poll_timeout: Duration::from_micros(500),
            keep_old_versions: false,
            retransmit_interval: Duration::from_millis(25),
            replica_ack_delay: Duration::ZERO,
            sync_replication: false,
            background_recovery: false,
            initial_memgests: vec![(0, MemgestDescriptor::rep(1))],
            default_memgest: 0,
            read_fanout_extra: 1,
        }
    }
}

/// At-most-once bookkeeping for one client write request (RIFL-style).
///
/// The paper's RDMA RC transport delivers each request exactly once, so
/// the real system never sees a request twice. The simulated fabric —
/// and any chaos injector layered on it — may duplicate or re-deliver a
/// client `Request`, and re-executing a write after its response was
/// already delivered assigns a fresh version *outside* the client's
/// linearization window (e.g. resurrecting an overwritten value). The
/// coordinator therefore deduplicates by `(client, req)`. The slot
/// state machine itself lives in [`crate::protocol::steps`] so the
/// model checker explores the same transitions.
pub(crate) type Dedup = crate::protocol::steps::DedupSlot<ClientResp>;

/// Completed [`Dedup`] entries retained per node before the oldest are
/// pruned. A duplicate is delayed by at most a few hundred microseconds,
/// while 64k completions take seconds — pruned entries cannot see a
/// late duplicate.
pub(crate) const DEDUP_CAP: usize = 64 * 1024;

/// What to do when a write-ahead entry commits.
// The `Reply` prefix is deliberate: each variant names the client call
// being answered.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum OnCommit {
    /// Answer a client put.
    ReplyPut(ClientTag),
    /// Answer a client delete.
    ReplyDelete(ClientTag),
    /// Answer a client move (the destination write committed).
    ReplyMove(ClientTag),
}

/// An uncommitted write awaiting redundancy acknowledgements.
#[derive(Debug)]
pub(crate) struct PendingPut {
    /// Ack progress toward the commit flag (see
    /// [`crate::protocol::steps::AckState`]).
    pub acks: crate::protocol::steps::AckState,
    /// Completion action.
    pub on_commit: OnCommit,
    /// The redundancy messages, kept for retransmission. Receivers
    /// deduplicate by `(key, version)`, so parity deltas are applied at
    /// most once.
    pub msgs: Vec<(NodeId, Msg)>,
    /// Last (re)transmission time.
    pub last_send: Instant,
    /// Number of retransmissions so far (drives exponential backoff —
    /// without it, overload-induced queueing turns retransmissions into
    /// a self-amplifying storm).
    pub retries: u32,
}

pub(crate) type PendingKey = (GroupId, MemgestId, Key, Version);

/// A put postponed while a new parity node rebuilds its heap.
#[derive(Debug)]
pub(crate) struct StalledPut {
    pub key: Key,
    pub version: Version,
    pub value: ring_net::Payload,
    pub tombstone: bool,
    pub on_commit: OnCommit,
}

/// One coordinator's answer during a parity rebuild.
#[derive(Debug)]
pub(crate) struct RebuildInfo {
    pub heap_len: usize,
    pub data_valid: bool,
    pub entries: Vec<crate::proto::MetaEntry>,
}

/// Parity-rebuild progress on a freshly promoted redundant node.
#[derive(Debug)]
pub(crate) struct RebuildState {
    /// Coordinator shards that have answered `ParityRebuildInfo`.
    pub infos: BTreeMap<usize, RebuildInfo>,
    /// Shards expected to answer.
    pub expected: usize,
    /// Last time `ParityRebuildStart` was (re)broadcast to unanswered
    /// coordinators (they may themselves be mid-promotion).
    pub sent_at: Instant,
}

/// An outstanding metadata fetch of a recovering node, retried with
/// target rotation so a concurrently dead survivor cannot wedge
/// recovery.
#[derive(Debug)]
pub(crate) struct PendingFetch {
    pub targets: Vec<NodeId>,
    pub next_idx: usize,
    pub sent_at: Instant,
}

/// One contacted peer of a speculative shard read: which stripe rows it
/// serves and the exact byte ranges requested (its response is the
/// concatenation of those ranges, in order).
#[derive(Debug)]
pub(crate) struct SpecPeer {
    /// `(segment index, stripe row)` per requested range. Rows `< k` are
    /// data sources; row `k + p` is parity node `p`.
    pub parts: Vec<(usize, usize)>,
    /// Requested `(addr, len)` ranges, parallel to `parts`.
    pub ranges: Vec<(usize, usize)>,
    /// Whether the ranges address the peer's parity region (vs. its
    /// data heap).
    pub parity: bool,
}

/// An in-flight speculative `k + Δ` shard read: a degraded get fans out
/// to the surviving data peers plus `1 + Δ` parity nodes and decodes
/// from whichever `k` stripe rows arrive first, late-binding past
/// stragglers (§"late-binding reads").
#[derive(Debug)]
pub(crate) struct SpecRead {
    pub group: GroupId,
    pub memgest: MemgestId,
    /// Lost range in this coordinator's heap.
    pub addr: usize,
    pub len: usize,
    /// SRS segments covering the lost range.
    pub segs: Vec<ring_erasure::Segment>,
    /// Stripe width `k`: rows needed per segment to decode.
    pub k: usize,
    /// Peers contacted, with their expected response layout.
    pub peers: BTreeMap<NodeId, SpecPeer>,
    /// Responses received so far (raw concatenated range bytes).
    pub responses: BTreeMap<NodeId, ring_net::Payload>,
    /// Peers that declined (rebuilding / holes) or answered garbage.
    pub declined: BTreeSet<NodeId>,
    /// Parity nodes held in reserve as `(parity index, node)`; promoted
    /// one at a time when a contacted peer declines.
    pub reserve: Vec<(usize, NodeId)>,
    /// Fetch-attempt counter inherited from the triggering entry; seeds
    /// the parity rotation and the single-target fallback.
    pub attempt: u8,
    pub sent_at: Instant,
}

/// Per-group state of a node.
#[derive(Debug, Default)]
pub(crate) struct GroupState {
    /// The shard this node coordinates in the group, if any.
    pub shard: Option<usize>,
    /// The redundant-node index in the group, if any.
    pub red_idx: Option<usize>,
    /// The volatile hashtable (coordinators only).
    pub volatile: VolatileTable,
    /// Coordinator-side memgest state.
    pub coord: BTreeMap<MemgestId, CoordMemgest>,
    /// Redundant-side memgest state (replica copies / parity heaps).
    /// Coordinators also carry replica stores here for `Rep(r)` with
    /// `r > d + 1`, where copies spill onto other coordinators.
    pub redundant: BTreeMap<MemgestId, RedundantMemgest>,
    /// Puts postponed per memgest during parity rebuild.
    pub stalled: BTreeMap<MemgestId, Vec<StalledPut>>,
}

/// A Ring server node, generic over its network backend (the simulated
/// fabric by default; `TcpTransport` when run by `ring-server`).
pub struct Node<T: Transport<Msg> = RingEndpoint> {
    pub(crate) id: NodeId,
    pub(crate) ep: T,
    pub(crate) config: ClusterConfig,
    pub(crate) catalog: BTreeMap<MemgestId, MemgestDescriptor>,
    pub(crate) default_memgest: MemgestId,
    pub(crate) groups: BTreeMap<GroupId, GroupState>,
    pub(crate) pending: BTreeMap<PendingKey, PendingPut>,
    /// At-most-once table for client writes, keyed by `(client, req)`.
    pub(crate) dedup: BTreeMap<(NodeId, ReqId), Dedup>,
    /// Completion order of settled dedup entries, for pruning.
    pub(crate) dedup_order: VecDeque<(NodeId, ReqId)>,
    /// Outstanding metadata fetches while assuming a new role; requests
    /// are ignored until this drains (clients retry).
    pub(crate) recovering: usize,
    pub(crate) rebuilds: BTreeMap<(GroupId, MemgestId), RebuildState>,
    /// Outstanding metadata fetches keyed by `(group, memgest, shard)`.
    pub(crate) fetches: BTreeMap<(GroupId, MemgestId, usize), PendingFetch>,
    /// In-flight speculative shard reads, keyed by token.
    pub(crate) spec_reads: BTreeMap<u64, SpecRead>,
    /// Monotonic token source for speculative shard reads.
    pub(crate) next_spec_token: u64,
    /// Cumulative operation counters for introspection.
    pub(crate) ops: crate::stats::OpCounters,
    pub(crate) opts: NodeOptions,
    last_heartbeat: Instant,
    pub(crate) active: bool,
}

impl<T: Transport<Msg>> Node<T> {
    /// Creates a node bound to `ep` with the given initial config.
    pub fn new(ep: T, config: ClusterConfig, opts: NodeOptions) -> Node<T> {
        let id = ep.id();
        let catalog: BTreeMap<MemgestId, MemgestDescriptor> =
            opts.initial_memgests.iter().copied().collect();
        let mut node = Node {
            id,
            ep,
            config,
            catalog,
            default_memgest: opts.default_memgest,
            groups: BTreeMap::new(),
            pending: BTreeMap::new(),
            dedup: BTreeMap::new(),
            dedup_order: VecDeque::new(),
            recovering: 0,
            rebuilds: BTreeMap::new(),
            fetches: BTreeMap::new(),
            spec_reads: BTreeMap::new(),
            next_spec_token: 0,
            ops: crate::stats::OpCounters::default(),
            opts,
            last_heartbeat: ring_net::clock::now(),
            active: false,
        };
        node.active = node.config.nodes.contains(&node.id);
        if node.active {
            node.setup_roles();
        }
        node
    }

    /// Runs the event loop until the endpoint is killed.
    pub fn run(&mut self) {
        self.run_until(|| false, Duration::ZERO);
    }

    /// Runs the event loop until the endpoint is killed or `stop`
    /// returns true. On a stop request the node keeps serving until its
    /// in-flight redundancy traffic drains (or `drain_grace` elapses),
    /// so a SIGTERM'd server does not strand acknowledged writes.
    pub fn run_until(&mut self, stop: impl Fn() -> bool, drain_grace: Duration) {
        let mut draining_since: Option<Instant> = None;
        loop {
            match self.ep.recv_timeout(self.opts.poll_timeout) {
                Ok((from, msg)) => self.dispatch(from, msg),
                Err(ring_net::NetError::Timeout) => {}
                Err(_) => break, // Killed.
            }
            self.tick();
            if stop() {
                let now = ring_net::clock::now();
                let since = *draining_since.get_or_insert(now);
                if self.pending.is_empty() || now.duration_since(since) >= drain_grace {
                    break;
                }
            }
        }
    }

    /// A point-in-time statistics report (the payload of the `Stats`
    /// client call, also dumped on graceful shutdown).
    pub fn node_stats(&self) -> crate::stats::NodeStats {
        self.build_stats()
    }

    /// The transport this node runs on (net counters, shutdown).
    pub fn transport(&self) -> &T {
        &self.ep
    }

    fn tick(&mut self) {
        let now = ring_net::clock::now();
        if now.duration_since(self.last_heartbeat) >= self.opts.heartbeat_interval {
            self.last_heartbeat = now;
            let _ = self.ep.send(LEADER_NODE, Msg::Heartbeat);
            self.retransmit(now);
            self.retry_fetches(now);
            self.retry_rebuild_starts(now);
            self.expire_spec_reads(now);
            if self.opts.background_recovery && self.recovering == 0 {
                self.background_recovery_sweep();
            }
        }
    }

    /// Re-broadcasts `ParityRebuildStart` to coordinators that have not
    /// answered yet (a coordinator promoted in the same failure burst
    /// only answers once its own role state exists).
    fn retry_rebuild_starts(&mut self, now: Instant) {
        const START_RETRY: Duration = Duration::from_millis(150);
        let mut resend = Vec::new();
        for (&(g, mid), rb) in self.rebuilds.iter_mut() {
            if now.duration_since(rb.sent_at) < START_RETRY {
                continue;
            }
            rb.sent_at = now;
            for shard in 0..self.config.s {
                if !rb.infos.contains_key(&shard) {
                    resend.push((self.config.coordinator(g, shard), g, mid));
                }
            }
        }
        for (target, g, mid) in resend {
            let _ = self.ep.send(
                target,
                Msg::ParityRebuildStart {
                    group: g,
                    memgest: mid,
                },
            );
        }
    }

    /// Re-issues metadata fetches that have gone unanswered (the target
    /// may have died in the same failure burst), rotating through the
    /// alternative holders of the metadata.
    fn retry_fetches(&mut self, now: Instant) {
        const FETCH_RETRY: Duration = Duration::from_millis(150);
        let mut resend = Vec::new();
        let mut exhausted = Vec::new();
        for (&(g, mid, shard), f) in self.fetches.iter_mut() {
            if now.duration_since(f.sent_at) < FETCH_RETRY {
                continue;
            }
            if f.next_idx > f.targets.len() * 8 {
                // Every holder of this metadata has been asked many
                // times: the redundancy died with the coordinator (a
                // failure burst beyond the scheme's tolerance). Give up
                // so the rest of the node can start serving — those
                // keys are lost, exactly as the scheme's guarantee says.
                exhausted.push((g, mid, shard));
                continue;
            }
            let target = f.targets[f.next_idx % f.targets.len()];
            f.next_idx += 1;
            f.sent_at = now;
            resend.push((target, g, mid, shard));
        }
        for key in exhausted {
            self.fetches.remove(&key);
            self.recovering = self.recovering.saturating_sub(1);
        }
        for (target, g, mid, shard) in resend {
            let _ = self.ep.send(
                target,
                Msg::MetaFetch {
                    group: g,
                    memgest: mid,
                    shard,
                },
            );
        }
    }

    /// Re-sends redundancy messages whose acknowledgements are overdue
    /// (lost to a cut link or a dying node). Receivers deduplicate by
    /// `(key, version)`.
    fn retransmit(&mut self, now: Instant) {
        for p in self.pending.values_mut() {
            let backoff = self.opts.retransmit_interval * (1u32 << p.retries.min(6));
            if now.duration_since(p.last_send) < backoff {
                continue;
            }
            p.last_send = now;
            p.retries += 1;
            for (target, msg) in &p.msgs {
                if p.acks.outstanding.contains(target) {
                    self.ep.stats().record_retransmit();
                    let _ = self.ep.send(*target, msg.clone());
                }
            }
        }
    }

    fn dispatch(&mut self, from: NodeId, msg: Msg) {
        match msg {
            Msg::Request { req, body } => self.handle_request(from, req, body),
            Msg::Replicate {
                group,
                memgest,
                key,
                version,
                value,
                tombstone,
            } => self.handle_replicate(from, group, memgest, key, version, value, tombstone),
            Msg::ReplicateAck {
                group,
                memgest,
                key,
                version,
            }
            | Msg::ParityAck {
                group,
                memgest,
                key,
                version,
            } => self.handle_ack(from, group, memgest, key, version),
            Msg::ParityUpdate {
                group,
                memgest,
                shard,
                meta,
                segs,
            } => self.handle_parity_update(from, group, memgest, shard, meta, segs),
            Msg::MetaRemove {
                group,
                memgest,
                key,
                below,
            } => self.handle_meta_remove(group, memgest, key, below),
            Msg::ConfigUpdate {
                config,
                memgests,
                default,
            } => self.handle_config_update(config, memgests, default),
            Msg::MemgestCreate { token, id, desc } => {
                self.handle_memgest_create(from, token, id, desc)
            }
            Msg::MemgestDrop { token, id } => self.handle_memgest_drop(from, token, id),
            Msg::SetDefault { token, id } => {
                self.default_memgest = id;
                let _ = self.ep.send(from, Msg::CtrlAck { token });
            }
            Msg::MetaFetch {
                group,
                memgest,
                shard,
            } => self.handle_meta_fetch(from, group, memgest, shard),
            Msg::MetaFetchResp {
                group,
                memgest,
                shard,
                entries,
                values,
            } => self.handle_meta_fetch_resp(group, memgest, shard, entries, values),
            Msg::FetchValue {
                group,
                memgest,
                key,
                version,
            } => self.handle_fetch_value(from, group, memgest, key, version),
            Msg::FetchValueResp {
                group,
                memgest,
                key,
                version,
                value,
            } => self.handle_fetch_value_resp(group, memgest, key, version, value),
            Msg::RecoverBlock {
                group,
                memgest,
                shard,
                addr,
                len,
            } => self.handle_recover_block(from, group, memgest, shard, addr, len),
            Msg::RecoverBlockResp {
                group,
                memgest,
                addr,
                bytes,
            } => self.handle_recover_block_resp(group, memgest, addr, bytes),
            Msg::ParityRebuildStart { group, memgest } => {
                self.handle_parity_rebuild_start(from, group, memgest)
            }
            Msg::ParityRebuildInfo {
                group,
                memgest,
                shard,
                heap_len,
                data_valid,
                entries,
            } => self
                .handle_parity_rebuild_info(group, memgest, shard, heap_len, data_valid, entries),
            Msg::ParityRebuildDone { group, memgest } => {
                self.handle_parity_rebuild_done(from, group, memgest)
            }
            Msg::ShardRead {
                group,
                memgest,
                token,
                parity,
                ranges,
            } => self.handle_shard_read(from, group, memgest, token, parity, ranges),
            Msg::ShardReadResp {
                group,
                memgest,
                token,
                bytes,
            } => self.handle_shard_read_resp(from, group, memgest, token, bytes),
            // Leader-plane messages a data node never receives.
            Msg::Heartbeat | Msg::CtrlAck { .. } | Msg::Response { .. } => {}
        }
    }

    /// Instantiates per-group state for every role this node holds under
    /// the current config.
    pub(crate) fn setup_roles(&mut self) {
        for g in 0..self.config.groups as GroupId {
            let role = self.config.role_of(g, self.id);
            let gs = self.groups.entry(g).or_default();
            match role {
                Some(Role::Coordinator(shard)) => gs.shard = Some(shard),
                Some(Role::Redundant(idx)) => gs.red_idx = Some(idx),
                None => continue,
            }
            let ids: Vec<MemgestId> = self.catalog.keys().copied().collect();
            for id in ids {
                self.instantiate_memgest(g, id);
            }
        }
    }

    /// Creates the local state for one memgest in one group, according
    /// to this node's role there. Idempotent.
    pub(crate) fn instantiate_memgest(&mut self, g: GroupId, id: MemgestId) {
        let desc = match self.catalog.get(&id) {
            Some(d) => *d,
            None => return,
        };
        let s = self.config.s;
        let gs = self.groups.entry(g).or_default();

        if gs.shard.is_some() && !gs.coord.contains_key(&id) {
            let store = match desc.scheme {
                Scheme::Rep { .. } => CoordStore::Rep {
                    values: std::collections::HashMap::new(),
                },
                Scheme::Srs { k, m } => {
                    let code =
                        ring_erasure::SrsCode::new(k, m, s).expect("validated at memgest creation");
                    let layout = ring_erasure::SrsLayout::new(code, desc.block_size)
                        .expect("block_size validated at creation");
                    let heap = Heap::new(desc.block_size * 4);
                    self.ep
                        .register_region(data_mr_key(g, id), heap.region().clone());
                    CoordStore::Srs { heap, layout }
                }
            };
            gs.coord.insert(
                id,
                CoordMemgest {
                    desc,
                    meta: crate::storage::MetaTable::new(),
                    store,
                    stalled: false,
                },
            );
        }

        // Redundant-side state: replica stores on every active node (a
        // Rep(r) with r > d + 1 spills copies onto coordinators); parity
        // heaps only on redundant nodes with index < m.
        let needs_parity = match desc.scheme {
            Scheme::Srs { m, .. } => gs.red_idx.map(|i| i < m).unwrap_or(false),
            Scheme::Rep { .. } => false,
        };
        let needs_rep_store = matches!(desc.scheme, Scheme::Rep { r } if r > 1);
        if (needs_parity || needs_rep_store) && !gs.redundant.contains_key(&id) {
            let store = if needs_parity {
                let region = ring_net::MemoryRegion::new(desc.block_size * 4);
                self.ep
                    .register_region(parity_mr_key(g, id), region.clone());
                let (k, m) = match desc.scheme {
                    Scheme::Srs { k, m } => (k, m),
                    Scheme::Rep { .. } => unreachable!("parity implies SRS"),
                };
                let code =
                    ring_erasure::SrsCode::new(k, m, s).expect("validated at memgest creation");
                let layout = ring_erasure::SrsLayout::new(code, desc.block_size)
                    .expect("block_size validated at creation");
                RedundantStore::Parity {
                    region,
                    len: 0,
                    layout,
                }
            } else {
                RedundantStore::Rep {
                    values: std::collections::HashMap::new(),
                }
            };
            gs.redundant.insert(
                id,
                RedundantMemgest {
                    desc,
                    meta: crate::storage::MetaTable::new(),
                    store,
                },
            );
        }
    }

    /// Drops local state for a memgest (leader-driven `deleteMemgest`).
    /// Keys whose only versions lived there are discarded.
    pub(crate) fn drop_memgest(&mut self, id: MemgestId) {
        self.catalog.remove(&id);
        for (g, gs) in self.groups.iter_mut() {
            if let Some(coord) = gs.coord.remove(&id) {
                // Purge volatile references so later gets don't chase a
                // dangling memgest id.
                for (key, version, _) in coord.meta.iter() {
                    gs.volatile.remove(key, version);
                }
                self.ep.deregister_region(data_mr_key(*g, id));
            }
            if gs.redundant.remove(&id).is_some() {
                self.ep.deregister_region(parity_mr_key(*g, id));
            }
            gs.stalled.remove(&id);
        }
        self.pending.retain(|(_, mid, _, _), _| *mid != id);
    }

    fn handle_memgest_create(
        &mut self,
        from: NodeId,
        token: u64,
        id: MemgestId,
        desc: MemgestDescriptor,
    ) {
        self.catalog.insert(id, desc);
        if self.active {
            for g in 0..self.config.groups as GroupId {
                self.instantiate_memgest(g, id);
            }
        }
        let _ = self.ep.send(from, Msg::CtrlAck { token });
    }

    fn handle_memgest_drop(&mut self, from: NodeId, token: u64, id: MemgestId) {
        self.drop_memgest(id);
        let _ = self.ep.send(from, Msg::CtrlAck { token });
    }

    fn handle_meta_remove(&mut self, group: GroupId, memgest: MemgestId, key: Key, below: Version) {
        if let Some(gs) = self.groups.get_mut(&group) {
            if let Some(red) = gs.redundant.get_mut(&memgest) {
                for (v, e) in red.meta.remove_below(key, below) {
                    if let RedundantStore::Rep { values } = &mut red.store {
                        values.remove(&(key, v));
                    }
                    let _ = e;
                }
            }
        }
    }

    /// The redundancy fan-out targets of a memgest for a given shard.
    pub(crate) fn redundancy_targets(
        &self,
        g: GroupId,
        shard: usize,
        scheme: Scheme,
    ) -> Vec<NodeId> {
        match scheme {
            Scheme::Rep { r } => self.config.replica_targets(g, shard, r),
            Scheme::Srs { m, .. } => self.config.parity_targets(g, m),
        }
    }
}

impl<T: Transport<Msg>> std::fmt::Debug for Node<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("active", &self.active)
            .field("epoch", &self.config.epoch)
            .finish()
    }
}
