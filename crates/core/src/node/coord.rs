//! Coordinator-side request processing: the put/get/delete/move paths,
//! write-ahead, versioning, commit and garbage collection
//! (Sections 5.1–5.3).

use ring_net::{NodeId, Payload, Transport};

use crate::config::LEADER_NODE;
use crate::error::RingError;
use crate::proto::{ClientReq, ClientResp, ClientTag, MetaEntry, Msg, ParitySeg};
use crate::protocol::steps;
use crate::storage::{CoordStore, ObjectEntry, RedundantStore, Waiter};
use crate::types::{GroupId, Key, MemgestId, ReqId, Scheme, Version};

use super::{Node, OnCommit, PendingPut, StalledPut, DEDUP_CAP};

impl<T: Transport<Msg>> Node<T> {
    pub(crate) fn handle_request(&mut self, from: NodeId, req: ReqId, body: ClientReq) {
        // At-most-once for writes: a re-delivered `(client, req)` must
        // not execute a second time (it would assign a fresh version
        // outside the client's linearization window). Reads are
        // idempotent and skip the table.
        if matches!(
            body,
            ClientReq::Put { .. } | ClientReq::Delete { .. } | ClientReq::Move { .. }
        ) {
            match steps::dedup_decision(self.dedup.get(&(from, req))) {
                steps::DedupDecision::Resend(resp) => {
                    let body = resp.clone();
                    let _ = self.ep.send(from, Msg::Response { req, body });
                    return;
                }
                steps::DedupDecision::Drop => return,
                steps::DedupDecision::Execute => {}
            }
        }
        // Management requests belong to the leader; a data node that
        // receives one (e.g. through a client multicast) ignores it.
        match body {
            ClientReq::Put {
                key,
                value,
                memgest,
            } => {
                self.ops.puts += 1;
                self.handle_put(from, req, key, value, memgest)
            }
            ClientReq::Get { key } => {
                self.ops.gets += 1;
                self.handle_get(from, req, key)
            }
            ClientReq::Delete { key } => {
                self.ops.deletes += 1;
                self.handle_delete(from, req, key)
            }
            ClientReq::Move { key, dst } => {
                self.ops.moves += 1;
                self.handle_move(from, req, key, dst)
            }
            ClientReq::Stats => self.handle_stats(from, req),
            ClientReq::CreateMemgest { .. }
            | ClientReq::DeleteMemgest { .. }
            | ClientReq::SetDefaultMemgest { .. }
            | ClientReq::GetMemgestDescriptor { .. } => {
                debug_assert_ne!(self.id, LEADER_NODE);
            }
        }
    }

    /// Returns `Some(group)` iff this node currently coordinates `key`
    /// and is ready to serve (not mid-recovery).
    fn owned_group(&self, key: Key) -> Option<GroupId> {
        if !self.active || self.recovering > 0 {
            return None;
        }
        let (g, shard) = self.config.locate(key);
        let gs = self.groups.get(&g)?;
        (gs.shard == Some(shard)).then_some(g)
    }

    /// Opens an at-most-once window for `(from, req)`: until
    /// [`Node::respond`] settles it, re-deliveries of the same request
    /// are dropped instead of re-executed. Called only once the node has
    /// committed to answering (it owns the key and is not recovering) —
    /// silently ignored requests leave no trace, so the right node's
    /// execution is unaffected.
    fn dedup_open(&mut self, from: NodeId, req: ReqId) {
        self.dedup.insert((from, req), steps::DedupSlot::InFlight);
    }

    /// Sends a client response, settling the request's at-most-once
    /// window if one is open. The response is cached — errors included:
    /// the execution linearized somewhere inside the client's still-open
    /// window, so every later delivery of the same `(client, req)`
    /// (duplicate or client retry after a lost response) must observe
    /// that same answer rather than execute again.
    fn respond(&mut self, to: NodeId, req: ReqId, body: ClientResp) {
        steps::settle_dedup(
            &mut self.dedup,
            &mut self.dedup_order,
            (to, req),
            body.clone(),
            DEDUP_CAP,
        );
        let _ = self.ep.send(to, Msg::Response { req, body });
    }

    // ---- Put ----

    fn handle_put(
        &mut self,
        from: NodeId,
        req: ReqId,
        key: Key,
        value: Payload,
        memgest: Option<MemgestId>,
    ) {
        let Some(g) = self.owned_group(key) else {
            return; // Not ours: stay silent, the right node will answer.
        };
        self.dedup_open(from, req);
        let mid = memgest.unwrap_or(self.default_memgest);
        if !self.catalog.contains_key(&mid) {
            self.respond(from, req, ClientResp::Error(RingError::UnknownMemgest(mid)));
            return;
        }
        self.local_write(g, mid, key, value, false, OnCommit::ReplyPut((from, req)));
    }

    /// The write-ahead path shared by put, delete (tombstone) and the
    /// destination half of move: assigns the next version, records the
    /// uncommitted entry, stores the data locally, and fans out the
    /// redundancy traffic. Commit happens in [`Node::handle_ack`].
    pub(crate) fn local_write(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        key: Key,
        value: Payload,
        tombstone: bool,
        on_commit: OnCommit,
    ) {
        let gs = self.groups.get_mut(&g).expect("owned group exists");
        let shard = gs.shard.expect("coordinator role");
        let version = steps::next_version(gs.volatile.highest(key).map(|(v, _)| v));
        // Write-ahead: the volatile table and metadata table learn about
        // the version before any redundancy traffic is sent.
        gs.volatile.record(key, version, mid);

        let coord = gs.coord.get_mut(&mid).expect("memgest instantiated");
        let scheme = coord.desc.scheme;

        if matches!(scheme, Scheme::Srs { .. }) && coord.stalled {
            // A new parity node is rebuilding: postpone the data write
            // and fan-out, but keep the version reservation.
            coord.meta.insert(
                key,
                version,
                ObjectEntry {
                    data_present: false,
                    ..ObjectEntry::new(value.len(), usize::MAX, tombstone)
                },
            );
            gs.stalled.entry(mid).or_default().push(StalledPut {
                key,
                version,
                value,
                tombstone,
                on_commit,
            });
            return;
        }

        self.execute_write(g, shard, mid, key, version, value, tombstone, on_commit);
    }

    /// Performs the data write and redundancy fan-out for an assigned
    /// version (also used when flushing stalled puts).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute_write(
        &mut self,
        g: GroupId,
        shard: usize,
        mid: MemgestId,
        key: Key,
        version: Version,
        value: Payload,
        tombstone: bool,
        on_commit: OnCommit,
    ) {
        let gs = self.groups.get_mut(&g).expect("owned group exists");
        let coord = gs.coord.get_mut(&mid).expect("memgest instantiated");
        let scheme = coord.desc.scheme;
        let len = value.len();

        let mut parity_msgs: Vec<(NodeId, Msg)> = Vec::new();
        let mut replicate_targets: Vec<NodeId> = Vec::new();
        let addr = match &mut coord.store {
            CoordStore::Rep { values } => {
                if !tombstone {
                    values.insert((key, version), value.clone());
                }
                usize::MAX
            }
            CoordStore::Srs { heap, layout } => {
                let addr = if tombstone || len == 0 {
                    heap.len()
                } else {
                    heap.alloc(len)
                };
                if !tombstone && len > 0 {
                    // Versioned writes always land in fresh bump-allocated
                    // (zeroed) space, so the parity delta `new ^ old` is
                    // the value itself — no read-back or XOR needed.
                    heap.region()
                        .write(addr, &value)
                        .expect("allocated range is in bounds");
                    let delta: &[u8] = &value;
                    let targets = match scheme {
                        Scheme::Srs { m, .. } => self.config.parity_targets(g, m),
                        Scheme::Rep { .. } => unreachable!("SRS store"),
                    };
                    let segs = layout.split_range(shard, addr, len);
                    for (p_idx, &p_node) in targets.iter().enumerate() {
                        let mut out = Vec::with_capacity(segs.len());
                        for seg in &segs {
                            let c = layout.coefficient(p_idx, seg);
                            let off = seg.data_addr - addr;
                            let payload = if c == ring_gf::Gf256::ONE && off == 0 && seg.len == len
                            {
                                // Unit coefficient over the whole range:
                                // share the client's payload, zero-copy.
                                value.clone()
                            } else {
                                let mut d = vec![0u8; seg.len];
                                ring_gf::region::mul_into(&mut d, &delta[off..off + seg.len], c);
                                Payload::from(d)
                            };
                            out.push(ParitySeg {
                                parity_addr: seg.parity_addr,
                                delta: payload,
                            });
                        }
                        parity_msgs.push((
                            p_node,
                            Msg::ParityUpdate {
                                group: g,
                                memgest: mid,
                                shard,
                                meta: MetaEntry {
                                    key,
                                    version,
                                    len,
                                    addr,
                                    tombstone,
                                },
                                segs: out,
                            },
                        ));
                    }
                } else if let Scheme::Srs { m, .. } = scheme {
                    // Tombstones carry no heap delta but their metadata
                    // must still reach the parity nodes.
                    for &p_node in &self.config.parity_targets(g, m) {
                        parity_msgs.push((
                            p_node,
                            Msg::ParityUpdate {
                                group: g,
                                memgest: mid,
                                shard,
                                meta: MetaEntry {
                                    key,
                                    version,
                                    len: 0,
                                    addr,
                                    tombstone,
                                },
                                segs: Vec::new(),
                            },
                        ));
                    }
                }
                addr
            }
        };
        coord
            .meta
            .insert(key, version, ObjectEntry::new(len, addr, tombstone));

        if let Scheme::Rep { r } = scheme {
            if r > 1 {
                replicate_targets = self.config.replica_targets(g, shard, r);
            }
        }

        let needed = steps::acks_needed(scheme, self.opts.sync_replication);
        let mut msgs: Vec<(NodeId, Msg)> = Vec::new();
        for &t in &replicate_targets {
            msgs.push((
                t,
                Msg::Replicate {
                    group: g,
                    memgest: mid,
                    key,
                    version,
                    value: value.clone(),
                    tombstone,
                },
            ));
        }
        msgs.extend(parity_msgs);
        for (t, msg) in &msgs {
            let _ = self.ep.send(*t, msg.clone());
        }

        if needed == 0 {
            // Unreliable memgest: committed immediately (Section 5.2).
            self.commit(g, mid, key, version, on_commit);
        } else {
            self.pending.insert(
                (g, mid, key, version),
                PendingPut {
                    acks: steps::AckState::open(msgs.iter().map(|(t, _)| *t), needed),
                    on_commit,
                    msgs,
                    last_send: ring_net::clock::now(),
                    retries: 0,
                },
            );
        }
    }

    // ---- Commit ----

    pub(crate) fn handle_ack(
        &mut self,
        from: NodeId,
        g: GroupId,
        mid: MemgestId,
        key: Key,
        version: Version,
    ) {
        let Some(p) = self.pending.get_mut(&(g, mid, key, version)) else {
            return; // Late ack after commit; ignore.
        };
        match p.acks.apply_ack(from) {
            steps::AckOutcome::Ignored | steps::AckOutcome::Counted => {}
            steps::AckOutcome::Commit => {
                let p = self
                    .pending
                    .remove(&(g, mid, key, version))
                    .expect("present");
                self.commit(g, mid, key, version, p.on_commit);
            }
        }
    }

    /// Marks `(key, version)` committed, answers the client, releases
    /// parked requests, and prunes superseded versions.
    pub(crate) fn commit(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        key: Key,
        version: Version,
        on_commit: OnCommit,
    ) {
        let gs = self.groups.get_mut(&g).expect("owned group");
        let coord = gs.coord.get_mut(&mid).expect("memgest");
        let mut waiters = Vec::new();
        if let Some(e) = coord.meta.get_mut(key, version) {
            e.committed = true;
            waiters = std::mem::take(&mut e.waiters);
        }

        match on_commit {
            OnCommit::ReplyPut(client) => {
                self.respond(client.0, client.1, ClientResp::PutOk { version })
            }
            OnCommit::ReplyDelete(client) => self.respond(client.0, client.1, ClientResp::DeleteOk),
            OnCommit::ReplyMove(client) => {
                self.respond(client.0, client.1, ClientResp::MoveOk { version })
            }
        }

        self.release_waiters(g, mid, vec![(key, version, waiters)]);

        if !self.opts.keep_old_versions {
            self.prune_below(g, key, version);
            // If this version was itself superseded while uncommitted
            // (a higher version committed first — Figure 5), its meta
            // entry was spared only for the waiters just flushed; drop
            // it now that they are served.
            let gs = self.groups.get_mut(&g).expect("owned group");
            let superseded = gs.volatile.versions(key).iter().all(|&(v, _)| v != version);
            if superseded {
                if let Some(c) = gs.coord.get_mut(&mid) {
                    c.meta.remove(key, version);
                    if let crate::storage::CoordStore::Rep { values } = &mut c.store {
                        values.remove(&(key, version));
                    }
                }
            }
        }
    }

    /// Removes every version of `key` strictly below `version` from the
    /// volatile table and all memgests, and tells the redundancy to do
    /// the same (the periodic old-version removal of Section 5.2, tuned
    /// to run on every commit).
    pub(crate) fn prune_below(&mut self, g: GroupId, key: Key, version: Version) {
        let gs = self.groups.get_mut(&g).expect("owned group");
        let shard = gs.shard.expect("coordinator");
        let doomed: Vec<(Version, MemgestId)> = gs
            .volatile
            .versions(key)
            .iter()
            .copied()
            .filter(|&(v, _)| v < version)
            .collect();
        gs.volatile.remove_below(key, version);
        let mut notices: Vec<(MemgestId, Scheme)> = Vec::new();
        for (v, m) in doomed {
            if let Some(c) = gs.coord.get_mut(&m) {
                // Never prune entries that are still uncommitted (their
                // client is waiting for the quorum) or that carry parked
                // requests pinned to them (Figure 5 semantics).
                let removable = c
                    .meta
                    .get(key, v)
                    .map(|e| steps::removable(e.committed, !e.waiters.is_empty()))
                    .unwrap_or(false);
                if removable {
                    c.meta.remove(key, v);
                    if let CoordStore::Rep { values } = &mut c.store {
                        values.remove(&(key, v));
                    }
                }
                if !notices.iter().any(|(id, _)| *id == m) {
                    notices.push((m, c.desc.scheme));
                }
            }
        }
        for (m, scheme) in notices {
            if scheme.redundancy() == 0 {
                continue;
            }
            for t in self.redundancy_targets(g, shard, scheme) {
                let _ = self.ep.send(
                    t,
                    Msg::MetaRemove {
                        group: g,
                        memgest: m,
                        key,
                        below: version,
                    },
                );
            }
        }
    }

    // ---- Get ----

    fn handle_get(&mut self, from: NodeId, req: ReqId, key: Key) {
        let Some(g) = self.owned_group(key) else {
            return;
        };
        let gs = self.groups.get_mut(&g).expect("owned group");
        let Some((version, mid)) = gs.volatile.highest(key) else {
            self.respond(from, req, ClientResp::Error(RingError::KeyNotFound));
            return;
        };
        let Some(coord) = gs.coord.get_mut(&mid) else {
            self.respond(from, req, ClientResp::Error(RingError::KeyNotFound));
            return;
        };
        let Some(entry) = coord.meta.get_mut(key, version) else {
            self.respond(
                from,
                req,
                ClientResp::Error(RingError::Internal("volatile/meta divergence".into())),
            );
            return;
        };
        let decision = steps::read_decision(&steps::ReadEntry {
            committed: entry.committed,
            tombstone: entry.tombstone,
            data_present: entry.data_present,
        });
        if decision == steps::ReadDecision::Postpone {
            // Postpone until the pinned version commits (Figure 5).
            entry.waiters.push(Waiter::Get((from, req)));
            return;
        }
        self.answer_get(g, mid, key, version, (from, req));
    }

    /// Answers a get for a committed version, triggering on-demand data
    /// recovery if the bytes are not locally present.
    pub(crate) fn answer_get(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        key: Key,
        version: Version,
        client: ClientTag,
    ) {
        let gs = self.groups.get_mut(&g).expect("owned group");
        let shard = gs.shard.expect("coordinator");
        let Some(coord) = gs.coord.get_mut(&mid) else {
            self.respond(
                client.0,
                client.1,
                ClientResp::Error(RingError::KeyNotFound),
            );
            return;
        };
        let scheme = coord.desc.scheme;
        let Some(entry) = coord.meta.get_mut(key, version) else {
            self.respond(
                client.0,
                client.1,
                ClientResp::Error(RingError::KeyNotFound),
            );
            return;
        };
        // `answer_get` is only reached for committed versions, so the
        // decision here splits tombstone / serve / recover.
        match steps::read_decision(&steps::ReadEntry {
            committed: true,
            tombstone: entry.tombstone,
            data_present: entry.data_present,
        }) {
            steps::ReadDecision::NotFound => {
                self.respond(
                    client.0,
                    client.1,
                    ClientResp::Error(RingError::KeyNotFound),
                );
                return;
            }
            steps::ReadDecision::Serve => {
                let value = match &coord.store {
                    CoordStore::Rep { values } => values
                        .get(&(key, version))
                        .cloned()
                        .unwrap_or_else(Payload::empty),
                    CoordStore::Srs { heap, .. } => Payload::from(heap.read(entry.addr, entry.len)),
                };
                self.respond(client.0, client.1, ClientResp::GetOk { value, version });
                return;
            }
            steps::ReadDecision::Postpone | steps::ReadDecision::Recover => {}
        }
        // Lost data: recover on the fly with high priority (Section 5.5).
        let need_fetch = !entry.fetching;
        entry.fetching = true;
        entry.waiters.push(Waiter::Get(client));
        let (addr, len) = (entry.addr, entry.len);
        let attempt = entry.fetch_attempts;
        entry.fetch_attempts = entry.fetch_attempts.wrapping_add(1);
        if need_fetch {
            self.request_data_recovery(g, shard, mid, scheme, key, version, addr, len, attempt);
        }
    }

    // ---- Delete ----

    fn handle_delete(&mut self, from: NodeId, req: ReqId, key: Key) {
        let Some(g) = self.owned_group(key) else {
            return;
        };
        self.dedup_open(from, req);
        let gs = self.groups.get_mut(&g).expect("owned group");
        let Some((version, mid)) = gs.volatile.highest(key) else {
            self.respond(from, req, ClientResp::Error(RingError::KeyNotFound));
            return;
        };
        // Deleting a key whose latest version is already a tombstone is
        // a miss, not a second delete.
        let already_deleted = gs
            .coord
            .get(&mid)
            .and_then(|c| c.meta.get(key, version))
            .map(|e| e.tombstone)
            .unwrap_or(false);
        if already_deleted {
            self.respond(from, req, ClientResp::Error(RingError::KeyNotFound));
            return;
        }
        // A delete is a tombstone written to the memgest currently
        // holding the highest version, and commits under that memgest's
        // redundancy rule.
        self.local_write(
            g,
            mid,
            key,
            Payload::empty(),
            true,
            OnCommit::ReplyDelete((from, req)),
        );
    }

    // ---- Move ----

    fn handle_move(&mut self, from: NodeId, req: ReqId, key: Key, dst: MemgestId) {
        let Some(g) = self.owned_group(key) else {
            return;
        };
        self.dedup_open(from, req);
        if !self.catalog.contains_key(&dst) {
            self.respond(from, req, ClientResp::Error(RingError::UnknownMemgest(dst)));
            return;
        }
        self.do_move(g, key, dst, (from, req));
    }

    /// Executes (or parks) a move: the object must be read from the
    /// memgest holding the highest version, which requires that version
    /// to be committed and its data locally available (Section 5.2).
    pub(crate) fn do_move(&mut self, g: GroupId, key: Key, dst: MemgestId, client: ClientTag) {
        let gs = self.groups.get_mut(&g).expect("owned group");
        let shard = gs.shard.expect("coordinator");
        let Some((version, src)) = gs.volatile.highest(key) else {
            self.respond(
                client.0,
                client.1,
                ClientResp::Error(RingError::KeyNotFound),
            );
            return;
        };
        let Some(coord) = gs.coord.get_mut(&src) else {
            self.respond(
                client.0,
                client.1,
                ClientResp::Error(RingError::KeyNotFound),
            );
            return;
        };
        let scheme = coord.desc.scheme;
        let Some(entry) = coord.meta.get_mut(key, version) else {
            self.respond(
                client.0,
                client.1,
                ClientResp::Error(RingError::KeyNotFound),
            );
            return;
        };
        if entry.tombstone {
            self.respond(
                client.0,
                client.1,
                ClientResp::Error(RingError::KeyNotFound),
            );
            return;
        }
        if !entry.committed {
            // The move will resume when the version commits.
            entry.waiters.push(Waiter::Move { client, dst });
            return;
        }
        if !entry.data_present {
            let need_fetch = !entry.fetching;
            entry.fetching = true;
            entry.waiters.push(Waiter::Move { client, dst });
            let (addr, len) = (entry.addr, entry.len);
            let attempt = entry.fetch_attempts;
            entry.fetch_attempts = entry.fetch_attempts.wrapping_add(1);
            if need_fetch {
                self.request_data_recovery(g, shard, src, scheme, key, version, addr, len, attempt);
            }
            return;
        }
        // All local: no distributed transaction needed — the benefit of
        // the shared SRS key-to-node mapping (Section 5.2).
        let value = match &coord.store {
            CoordStore::Rep { values } => values
                .get(&(key, version))
                .cloned()
                .unwrap_or_else(Payload::empty),
            CoordStore::Srs { heap, .. } => Payload::from(heap.read(entry.addr, entry.len)),
        };
        self.local_write(g, dst, key, value, false, OnCommit::ReplyMove(client));
    }

    /// Flushes the stalled-put queue of a memgest after a parity rebuild
    /// completes.
    pub(crate) fn flush_stalled(&mut self, g: GroupId, mid: MemgestId) {
        let Some(gs) = self.groups.get_mut(&g) else {
            return;
        };
        let shard = match gs.shard {
            Some(s) => s,
            None => return,
        };
        if let Some(c) = gs.coord.get_mut(&mid) {
            c.stalled = false;
        }
        let queue = gs.stalled.remove(&mid).unwrap_or_default();
        for sp in queue {
            // Remove the placeholder entry; execute_write re-inserts it
            // with the real heap address.
            if let Some(c) = self
                .groups
                .get_mut(&g)
                .and_then(|gs| gs.coord.get_mut(&mid))
            {
                c.meta.remove(sp.key, sp.version);
            }
            self.execute_write(
                g,
                shard,
                mid,
                sp.key,
                sp.version,
                sp.value,
                sp.tombstone,
                sp.on_commit,
            );
        }
    }

    /// Sends the on-demand recovery request for a missing value,
    /// speculatively fanning out to `1 + Δ` redundancy targets (rotated
    /// by attempt number so a dead or still-rebuilding holder cannot
    /// wedge the waiters) and binding to whichever answers first.
    #[allow(clippy::too_many_arguments)]
    fn request_data_recovery(
        &mut self,
        g: GroupId,
        shard: usize,
        mid: MemgestId,
        scheme: Scheme,
        key: Key,
        version: Version,
        addr: usize,
        len: usize,
        attempt: u8,
    ) {
        match scheme {
            Scheme::Rep { r } => {
                let targets = self.config.replica_targets(g, shard, r);
                if !targets.is_empty() {
                    // Ask 1 + Δ distinct replicas at once; the first
                    // copy to arrive wins, later ones are idempotent.
                    let fanout = (1 + self.opts.read_fanout_extra).min(targets.len());
                    for c in 0..fanout {
                        let target = targets[(attempt as usize + c) % targets.len()];
                        let _ = self.ep.send(
                            target,
                            Msg::FetchValue {
                                group: g,
                                memgest: mid,
                                key,
                                version,
                            },
                        );
                    }
                }
            }
            Scheme::Srs { m, .. } => {
                if self.start_spec_read(g, shard, mid, addr, len, attempt) {
                    return;
                }
                // Degenerate range (or no parity targets): the delegated
                // single-parity decode still covers it.
                let targets = self.config.parity_targets(g, m);
                if !targets.is_empty() {
                    let parity = targets[attempt as usize % targets.len()];
                    let _ = self.ep.send(
                        parity,
                        Msg::RecoverBlock {
                            group: g,
                            memgest: mid,
                            shard,
                            addr,
                            len,
                        },
                    );
                }
            }
        }
    }

    /// Starts a speculative `k + Δ` shard read for a lost SRS heap range:
    /// requests the `k - 1` surviving lane blocks from the peer
    /// coordinators plus the matching parity bytes from `1 + Δ` parity
    /// nodes, and decodes locally from whichever `k` stripe rows arrive
    /// first ([`Node::handle_shard_read_resp`]). Returns `false` when the
    /// fan-out cannot be built (empty range, no parity targets, unknown
    /// memgest) and the caller should fall back to the delegated decode.
    fn start_spec_read(
        &mut self,
        g: GroupId,
        shard: usize,
        mid: MemgestId,
        addr: usize,
        len: usize,
        attempt: u8,
    ) -> bool {
        use super::{SpecPeer, SpecRead};
        let Some(coord) = self.groups.get(&g).and_then(|gs| gs.coord.get(&mid)) else {
            return false;
        };
        let CoordStore::Srs { layout, .. } = &coord.store else {
            return false;
        };
        let segs = layout.split_range(shard, addr, len);
        if segs.is_empty() {
            return false;
        }
        let params = layout.code().params();
        let (k, m) = (params.k, params.m);
        let parity_nodes = self.config.parity_targets(g, m);
        if parity_nodes.is_empty() {
            return false;
        }
        // The surviving lane peers: every stripe row of each segment
        // except our own (each data source lives on exactly one peer
        // coordinator, so these rows have a single possible server).
        let mut peers: std::collections::BTreeMap<NodeId, SpecPeer> =
            std::collections::BTreeMap::new();
        for (i, seg) in segs.iter().enumerate() {
            for j in 0..k {
                if j == seg.source {
                    continue;
                }
                let (peer_idx, peer_addr) = layout.peer_addr(seg, j);
                let node = self.config.coordinator(g, peer_idx);
                let p = peers.entry(node).or_insert_with(|| SpecPeer {
                    parts: Vec::new(),
                    ranges: Vec::new(),
                    parity: false,
                });
                p.parts.push((i, j));
                p.ranges.push((peer_addr, seg.len));
            }
        }
        // 1 + Δ parity nodes (rotated by attempt); the rest stay in
        // reserve, promoted one at a time if a contacted peer declines.
        let fanout = (1 + self.opts.read_fanout_extra).min(parity_nodes.len());
        let mut reserve = Vec::new();
        for c in 0..parity_nodes.len() {
            let p_idx = (attempt as usize + c) % parity_nodes.len();
            let node = parity_nodes[p_idx];
            if c < fanout {
                let p = peers.entry(node).or_insert_with(|| SpecPeer {
                    parts: Vec::new(),
                    ranges: Vec::new(),
                    parity: true,
                });
                for (i, seg) in segs.iter().enumerate() {
                    p.parts.push((i, k + p_idx));
                    p.ranges.push((seg.parity_addr, seg.len));
                }
            } else {
                reserve.push((p_idx, node));
            }
        }
        let token = self.next_spec_token;
        self.next_spec_token += 1;
        for (&node, p) in &peers {
            let _ = self.ep.send(
                node,
                Msg::ShardRead {
                    group: g,
                    memgest: mid,
                    token,
                    parity: p.parity,
                    ranges: p.ranges.clone(),
                },
            );
        }
        self.spec_reads.insert(
            token,
            SpecRead {
                group: g,
                memgest: mid,
                addr,
                len,
                segs,
                k,
                peers,
                responses: std::collections::BTreeMap::new(),
                declined: std::collections::BTreeSet::new(),
                reserve,
                attempt,
                sent_at: ring_net::clock::now(),
            },
        );
        true
    }

    /// Fan-in of a speculative shard read. Responses for unknown tokens
    /// are stragglers past the decode point (or past an expiry) and are
    /// dropped — that is the cancellation: late arrivals cost one branch.
    pub(crate) fn handle_shard_read_resp(
        &mut self,
        from: NodeId,
        g: GroupId,
        mid: MemgestId,
        token: u64,
        bytes: Option<Payload>,
    ) {
        let Some(sr) = self.spec_reads.get_mut(&token) else {
            return;
        };
        if sr.group != g || sr.memgest != mid {
            return;
        }
        let Some(peer) = sr.peers.get(&from) else {
            return;
        };
        if sr.responses.contains_key(&from) || sr.declined.contains(&from) {
            return; // Duplicate delivery.
        }
        let expected: usize = peer.ranges.iter().map(|&(_, len)| len).sum();
        match bytes {
            Some(b) if b.len() == expected => {
                sr.responses.insert(from, b);
            }
            _ => {
                sr.declined.insert(from);
            }
        }
        self.advance_spec_read(token);
    }

    /// Tries to decode; if the read is still short of `k` rows for some
    /// segment, promotes reserve parities to keep it satisfiable, or
    /// abandons it for the delegated-decode fallback.
    fn advance_spec_read(&mut self, token: u64) {
        if self.try_complete_spec_read(token) {
            return;
        }
        let mut sends: Vec<(NodeId, Msg)> = Vec::new();
        let mut fall_back = false;
        {
            let Some(sr) = self.spec_reads.get_mut(&token) else {
                return;
            };
            loop {
                let live: Vec<&[(usize, usize)]> = sr
                    .peers
                    .iter()
                    .filter(|(node, _)| !sr.declined.contains(node))
                    .map(|(_, peer)| peer.parts.as_slice())
                    .collect();
                let feasible = steps::spec_read_feasible(sr.segs.len(), sr.k, &live);
                if feasible {
                    break;
                }
                let Some((p_idx, node)) = sr.reserve.pop() else {
                    fall_back = true;
                    break;
                };
                let mut peer = super::SpecPeer {
                    parts: Vec::new(),
                    ranges: Vec::new(),
                    parity: true,
                };
                for (i, seg) in sr.segs.iter().enumerate() {
                    peer.parts.push((i, sr.k + p_idx));
                    peer.ranges.push((seg.parity_addr, seg.len));
                }
                sends.push((
                    node,
                    Msg::ShardRead {
                        group: sr.group,
                        memgest: sr.memgest,
                        token,
                        parity: true,
                        ranges: peer.ranges.clone(),
                    },
                ));
                sr.peers.insert(node, peer);
            }
        }
        if fall_back {
            let sr = self.spec_reads.remove(&token).expect("present");
            self.spec_read_fallback(sr);
            return;
        }
        for (node, msg) in sends {
            let _ = self.ep.send(node, msg);
        }
    }

    /// Attempts the late-binding decode: succeeds the moment every
    /// segment has `k` distinct stripe rows among the arrived responses.
    /// Returns `true` when the spec read is finished (installed or moot).
    fn try_complete_spec_read(&mut self, token: u64) -> bool {
        let decoded = {
            let Some(sr) = self.spec_reads.get(&token) else {
                return true;
            };
            let Some(coord) = self
                .groups
                .get(&sr.group)
                .and_then(|gs| gs.coord.get(&sr.memgest))
            else {
                self.spec_reads.remove(&token);
                return true;
            };
            let CoordStore::Srs { layout, .. } = &coord.store else {
                self.spec_reads.remove(&token);
                return true;
            };
            let rs = layout.code().rs();
            let mut out = vec![0u8; sr.len];
            for (i, seg) in sr.segs.iter().enumerate() {
                let mut have: Vec<(usize, &[u8])> = Vec::new();
                for (node, payload) in &sr.responses {
                    let peer = &sr.peers[node];
                    let mut off = 0usize;
                    for (&(si, row), &(_, rlen)) in peer.parts.iter().zip(peer.ranges.iter()) {
                        if si == i {
                            have.push((row, &payload[off..off + rlen]));
                        }
                        off += rlen;
                    }
                }
                match rs.recover_source(seg.source, &have) {
                    Ok(bytes) => {
                        let off = seg.data_addr - sr.addr;
                        out[off..off + seg.len].copy_from_slice(&bytes);
                    }
                    Err(_) => return false, // Short of k rows so far.
                }
            }
            out
        };
        let sr = self.spec_reads.remove(&token).expect("present");
        self.install_recovered_range(sr.group, sr.memgest, sr.addr, &decoded);
        true
    }

    /// Abandons a speculative read in favour of the pre-speculation
    /// path: a delegated decode at a single parity node (which gathers
    /// the lane blocks itself with one-sided reads).
    fn spec_read_fallback(&mut self, sr: super::SpecRead) {
        let Some(gs) = self.groups.get(&sr.group) else {
            return;
        };
        let Some(shard) = gs.shard else {
            return;
        };
        let Some(coord) = gs.coord.get(&sr.memgest) else {
            return;
        };
        let Scheme::Srs { m, .. } = coord.desc.scheme else {
            return;
        };
        let targets = self.config.parity_targets(sr.group, m);
        if targets.is_empty() {
            return;
        }
        let parity = targets[sr.attempt as usize % targets.len()];
        let _ = self.ep.send(
            parity,
            Msg::RecoverBlock {
                group: sr.group,
                memgest: sr.memgest,
                shard,
                addr: sr.addr,
                len: sr.len,
            },
        );
    }

    /// Expires speculative reads whose stragglers never arrived (dead
    /// links), handing the range to the fallback path.
    pub(crate) fn expire_spec_reads(&mut self, now: std::time::Instant) {
        const SPEC_RETRY: std::time::Duration = std::time::Duration::from_millis(150);
        let expired: Vec<u64> = self
            .spec_reads
            .iter()
            .filter(|(_, sr)| now.duration_since(sr.sent_at) >= SPEC_RETRY)
            .map(|(&t, _)| t)
            .collect();
        for t in expired {
            let sr = self.spec_reads.remove(&t).expect("present");
            self.spec_read_fallback(sr);
        }
    }

    /// Writes a recovered byte range into the SRS heap, marks every
    /// entry fully contained in it as present, and releases their parked
    /// requests (shared by the speculative decode and the delegated
    /// `RecoverBlockResp` path).
    pub(crate) fn install_recovered_range(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        addr: usize,
        bytes: &[u8],
    ) {
        let Some(gs) = self.groups.get_mut(&g) else {
            return;
        };
        let Some(coord) = gs.coord.get_mut(&mid) else {
            return;
        };
        let end = addr + bytes.len();
        if let CoordStore::Srs { heap, .. } = &mut coord.store {
            heap.reserve_upto(end);
            // The recovered range replaces zeroed bytes; write directly.
            heap.region()
                .write(addr, bytes)
                .expect("reserved range is in bounds");
        } else {
            return;
        }
        let recovered: Vec<(Key, Version)> = coord
            .meta
            .iter()
            .filter(|(_, _, e)| !e.data_present && e.addr >= addr && e.addr + e.len <= end)
            .map(|(k, v, _)| (k, v))
            .collect();
        let mut releases = Vec::new();
        for (k, v) in recovered {
            if let Some(e) = coord.meta.get_mut(k, v) {
                e.data_present = true;
                e.fetching = false;
                releases.push((k, v, std::mem::take(&mut e.waiters)));
            }
        }
        self.release_waiters(g, mid, releases);
    }

    /// Reads the committed value of `(key, version)` if it is locally
    /// present and live; `None` sends the caller down the slow per-waiter
    /// path.
    fn read_committed_value(
        &self,
        g: GroupId,
        mid: MemgestId,
        key: Key,
        version: Version,
    ) -> Option<Payload> {
        let gs = self.groups.get(&g)?;
        let coord = gs.coord.get(&mid)?;
        let e = coord.meta.get(key, version)?;
        if e.tombstone || !e.committed || !e.data_present {
            return None;
        }
        Some(match &coord.store {
            CoordStore::Rep { values } => values
                .get(&(key, version))
                .cloned()
                .unwrap_or_else(Payload::empty),
            CoordStore::Srs { heap, .. } => Payload::from(heap.read(e.addr, e.len)),
        })
    }

    /// Releases parked requests after an entry's bytes became available,
    /// materializing each value once and answering every parked get with
    /// a clone of the same `Arc`-backed payload — the fan-in stays
    /// zero-copy no matter how many clients piled onto the entry.
    pub(crate) fn release_waiters(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        releases: Vec<(Key, Version, Vec<Waiter>)>,
    ) {
        for (key, version, waiters) in releases {
            let mut shared: Option<Payload> = None;
            for w in waiters {
                match w {
                    Waiter::Get(client) => {
                        if shared.is_none() {
                            shared = self.read_committed_value(g, mid, key, version);
                        }
                        match &shared {
                            Some(v) => {
                                let value = v.clone();
                                self.respond(
                                    client.0,
                                    client.1,
                                    ClientResp::GetOk { value, version },
                                );
                            }
                            None => self.answer_get(g, mid, key, version, client),
                        }
                    }
                    Waiter::Move { client, dst } => self.do_move(g, key, dst, client),
                }
            }
        }
    }

    /// Handles the response to an on-demand replica fetch.
    pub(crate) fn handle_fetch_value_resp(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        key: Key,
        version: Version,
        value: Option<Payload>,
    ) {
        let Some(gs) = self.groups.get_mut(&g) else {
            return;
        };
        let Some(coord) = gs.coord.get_mut(&mid) else {
            return;
        };
        let Some(entry) = coord.meta.get_mut(key, version) else {
            return;
        };
        entry.fetching = false;
        let Some(value) = value else {
            // This replica did not have the copy: retry the remaining
            // targets a few times, then fail the waiters.
            if !entry.waiters.is_empty() && entry.fetch_attempts < 8 {
                let scheme = coord.desc.scheme;
                let shard = gs.shard.expect("coordinator");
                let coord = gs.coord.get_mut(&mid).expect("just looked up");
                let entry = coord.meta.get_mut(key, version).expect("just looked up");
                entry.fetching = true;
                let attempt = entry.fetch_attempts;
                entry.fetch_attempts = entry.fetch_attempts.wrapping_add(1);
                let (addr, len) = (entry.addr, entry.len);
                self.request_data_recovery(g, shard, mid, scheme, key, version, addr, len, attempt);
                return;
            }
            let waiters = std::mem::take(&mut entry.waiters);
            for w in waiters {
                let (Waiter::Get(client) | Waiter::Move { client, .. }) = w;
                self.respond(
                    client.0,
                    client.1,
                    ClientResp::Error(RingError::Unavailable("value copy lost".into())),
                );
            }
            return;
        };
        entry.data_present = true;
        let waiters = std::mem::take(&mut entry.waiters);
        if let CoordStore::Rep { values } = &mut coord.store {
            values.insert((key, version), value);
        }
        self.release_waiters(g, mid, vec![(key, version, waiters)]);
    }

    /// Handles a decoded block arriving from a parity node.
    pub(crate) fn handle_recover_block_resp(
        &mut self,
        g: GroupId,
        mid: MemgestId,
        addr: usize,
        bytes: Option<Payload>,
    ) {
        let Some(gs) = self.groups.get_mut(&g) else {
            return;
        };
        let Some(coord) = gs.coord.get_mut(&mid) else {
            return;
        };
        // Write the recovered range into the heap, then release every
        // entry fully contained in it.
        let Some(bytes) = bytes else {
            // The parity could not serve (dead link or mid-rebuild):
            // retry the range against the next parity target.
            let scheme = coord.desc.scheme;
            let shard = match gs.shard {
                Some(s) => s,
                None => return,
            };
            let retry: Vec<(Key, Version, usize, usize, u8)> = coord
                .meta
                .iter()
                .filter(|(_, _, e)| e.fetching && !e.data_present && e.addr >= addr)
                .map(|(k, v, e)| (k, v, e.addr, e.len, e.fetch_attempts))
                .collect();
            for &(k, v, _, _, _) in &retry {
                if let Some(e) = coord.meta.get_mut(k, v) {
                    e.fetch_attempts = e.fetch_attempts.wrapping_add(1);
                }
            }
            for (k, v, a, l, attempt) in retry {
                if attempt >= 8 {
                    continue;
                }
                self.request_data_recovery(g, shard, mid, scheme, k, v, a, l, attempt);
            }
            return;
        };
        self.install_recovered_range(g, mid, addr, &bytes);
    }

    /// Builds and returns this node's introspection report.
    fn handle_stats(&mut self, from: NodeId, req: ReqId) {
        let stats = self.build_stats();
        self.respond(from, req, ClientResp::Stats(Box::new(stats)));
    }

    /// Builds the node's statistics report (shared by the `Stats` client
    /// call and the graceful-shutdown JSON dump).
    pub(crate) fn build_stats(&self) -> crate::stats::NodeStats {
        use crate::stats::{GroupStats, MemgestStats, NodeStats};
        use crate::storage::RedundantStore as RS;
        let mut groups = Vec::new();
        let mut gids: Vec<_> = self.groups.keys().copied().collect();
        gids.sort_unstable();
        for g in gids {
            let gs = &self.groups[&g];
            let mut ids: Vec<crate::types::MemgestId> = gs
                .coord
                .keys()
                .chain(gs.redundant.keys())
                .copied()
                .collect();
            ids.sort_unstable();
            ids.dedup();
            let mut memgests = Vec::with_capacity(ids.len());
            for id in ids {
                let mut row = MemgestStats {
                    id,
                    ..MemgestStats::default()
                };
                if let Some(c) = gs.coord.get(&id) {
                    row.scheme = crate::stats::scheme_label(c.desc.scheme);
                    row.coord_meta_entries = c.meta.len();
                    row.missing_entries = c
                        .meta
                        .iter()
                        .filter(|(_, _, e)| !e.data_present && !e.tombstone)
                        .count();
                    row.coord_meta_bytes = c.meta.approx_bytes();
                    row.data_bytes = match &c.store {
                        // ring-lint: allow(hashmap-iteration) -- order-insensitive byte sum
                        CoordStore::Rep { values } => values.values().map(|v| v.len()).sum(),
                        CoordStore::Srs { heap, .. } => heap.len(),
                    };
                }
                if let Some(r) = gs.redundant.get(&id) {
                    if row.scheme.is_empty() {
                        row.scheme = crate::stats::scheme_label(r.desc.scheme);
                    }
                    row.redundant_meta_entries = r.meta.len();
                    match &r.store {
                        RS::Rep { values } => {
                            // ring-lint: allow(hashmap-iteration) -- order-insensitive byte sum
                            row.replica_bytes = values.values().map(|v| v.len()).sum();
                        }
                        RS::Parity { len, .. } => row.parity_bytes = *len,
                    }
                }
                memgests.push(row);
            }
            groups.push(GroupStats {
                group: g,
                shard: gs.shard,
                redundant_index: gs.red_idx,
                volatile_keys: gs.volatile.keys(),
                memgests,
            });
        }
        NodeStats {
            node: self.id,
            epoch: self.config.epoch,
            active: self.active && self.recovering == 0,
            ops: self.ops,
            groups,
        }
    }

    /// Proactively recovers a few missing entries per tick (Section
    /// 5.5's background data recovery). Throttled so foreground traffic
    /// and on-demand decodes keep priority.
    pub(crate) fn background_recovery_sweep(&mut self) {
        const PER_SWEEP: usize = 4;
        let groups: Vec<GroupId> = self.groups.keys().copied().collect();
        let mut issued = 0usize;
        for g in groups {
            let Some(gs) = self.groups.get(&g) else {
                continue;
            };
            let Some(shard) = gs.shard else { continue };
            let mids: Vec<MemgestId> = gs.coord.keys().copied().collect();
            for mid in mids {
                if issued >= PER_SWEEP {
                    return;
                }
                let gs = self.groups.get_mut(&g).expect("group exists");
                let Some(coord) = gs.coord.get_mut(&mid) else {
                    continue;
                };
                let scheme = coord.desc.scheme;
                let candidates: Vec<(Key, Version, usize, usize, u8)> = coord
                    .meta
                    .iter()
                    .filter(|(_, _, e)| {
                        !e.data_present && !e.tombstone && !e.fetching && e.fetch_attempts < 8
                    })
                    .take(PER_SWEEP - issued)
                    .map(|(k, v, e)| (k, v, e.addr, e.len, e.fetch_attempts))
                    .collect();
                for &(k, v, _, _, _) in &candidates {
                    if let Some(e) = coord.meta.get_mut(k, v) {
                        e.fetching = true;
                        e.fetch_attempts = e.fetch_attempts.wrapping_add(1);
                    }
                }
                for (k, v, addr, len, attempt) in candidates {
                    self.request_data_recovery(g, shard, mid, scheme, k, v, addr, len, attempt);
                    issued += 1;
                }
            }
        }
    }

    /// Serves a replica's value copy to a recovering coordinator.
    pub(crate) fn handle_fetch_value(
        &mut self,
        from: NodeId,
        g: GroupId,
        mid: MemgestId,
        key: Key,
        version: Version,
    ) {
        let value = self
            .groups
            .get(&g)
            .and_then(|gs| gs.redundant.get(&mid))
            .and_then(|red| match &red.store {
                RedundantStore::Rep { values } => values.get(&(key, version)).cloned(),
                RedundantStore::Parity { .. } => None,
            });
        let _ = self.ep.send(
            from,
            Msg::FetchValueResp {
                group: g,
                memgest: mid,
                key,
                version,
                value,
            },
        );
    }
}
