//! Redundant-node request processing: replica writes, parity updates,
//! metadata serving, and on-the-fly block decode (Sections 5.3 and 5.5).

use ring_gf::Gf256;
use ring_net::{NodeId, Payload, Transport};

use crate::proto::{MetaEntry, Msg, ParitySeg};
use crate::storage::{data_mr_key, CoordStore, ObjectEntry, RedundantStore};
use crate::types::{shard_of, GroupId, Key, MemgestId, Version};

use super::Node;

impl<T: Transport<Msg>> Node<T> {
    /// Stores a replica copy of `(key, version)` and acknowledges.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_replicate(
        &mut self,
        from: NodeId,
        g: GroupId,
        mid: MemgestId,
        key: Key,
        version: Version,
        value: Payload,
        tombstone: bool,
    ) {
        self.ops.redundancy_updates += 1;
        self.instantiate_memgest(g, mid);
        let Some(red) = self
            .groups
            .get_mut(&g)
            .and_then(|gs| gs.redundant.get_mut(&mid))
        else {
            return;
        };
        if red.meta.get(key, version).is_some() {
            // Retransmission of a copy already stored: just re-ack.
            let _ = self.ep.send(
                from,
                Msg::ReplicateAck {
                    group: g,
                    memgest: mid,
                    key,
                    version,
                },
            );
            return;
        }
        if !self.opts.replica_ack_delay.is_zero() {
            // Disk-backed backup model (RAMCloud-like baseline): the
            // copy is buffered to stable storage before acknowledging.
            ring_net::spin_wait(self.opts.replica_ack_delay);
        }
        let mut entry = ObjectEntry::new(value.len(), usize::MAX, tombstone);
        // Replicas never serve client reads, so the commit flag on a
        // replica only matters for recovery — where write-ahead semantics
        // make every replicated entry recoverable.
        entry.committed = true;
        red.meta.insert(key, version, entry);
        if !tombstone {
            if let RedundantStore::Rep { values } = &mut red.store {
                values.insert((key, version), value);
            }
        }
        let _ = self.ep.send(
            from,
            Msg::ReplicateAck {
                group: g,
                memgest: mid,
                key,
                version,
            },
        );
    }

    /// Applies a parity update: XORs the coefficient-multiplied deltas
    /// into the parity heap and records the metadata replica.
    pub(crate) fn handle_parity_update(
        &mut self,
        from: NodeId,
        g: GroupId,
        mid: MemgestId,
        shard: usize,
        meta: MetaEntry,
        segs: Vec<ParitySeg>,
    ) {
        let _ = shard;
        self.ops.redundancy_updates += 1;
        if self.rebuilds.contains_key(&(g, mid)) {
            // Mid-rebuild: the delta is already captured by the stalled
            // coordinator heap we are about to read (or by the donor
            // parity). Applying it here too would double-count; not
            // acking is safe because `ParityRebuildDone` acknowledges
            // every in-flight put of this memgest.
            return;
        }
        self.instantiate_memgest(g, mid);
        let Some(red) = self
            .groups
            .get_mut(&g)
            .and_then(|gs| gs.redundant.get_mut(&mid))
        else {
            return;
        };
        if red.meta.get(meta.key, meta.version).is_some() {
            // Retransmission: the delta was already XORed in — applying
            // it twice would cancel it. Just re-ack.
            let _ = self.ep.send(
                from,
                Msg::ParityAck {
                    group: g,
                    memgest: mid,
                    key: meta.key,
                    version: meta.version,
                },
            );
            return;
        }
        if let RedundantStore::Parity { region, len, .. } = &mut red.store {
            for seg in &segs {
                let end = seg.parity_addr + seg.delta.len();
                if end > region.len() {
                    region.grow(end.next_power_of_two());
                }
                region
                    .xor(seg.parity_addr, &seg.delta)
                    .expect("region grown to cover the segment");
                *len = (*len).max(end);
            }
        }
        let mut entry = ObjectEntry::new(meta.len, meta.addr, meta.tombstone);
        entry.committed = true;
        red.meta.insert(meta.key, meta.version, entry);
        let _ = self.ep.send(
            from,
            Msg::ParityAck {
                group: g,
                memgest: mid,
                key: meta.key,
                version: meta.version,
            },
        );
    }

    /// Serves the metadata (and, when this node coordinates the shard,
    /// the values) a recovering node asked for.
    pub(crate) fn handle_meta_fetch(
        &mut self,
        from: NodeId,
        g: GroupId,
        mid: MemgestId,
        shard: usize,
    ) {
        if self.recovering > 0 {
            // Our own tables are still being rebuilt (e.g. this node was
            // promoted in the same failure burst): answering now would
            // ship partial — possibly empty — metadata and silently lose
            // the requester's keys. Stay silent; the requester rotates
            // to an intact holder within 150ms.
            return;
        }
        let s = self.config.s;
        let Some(gs) = self.groups.get(&g) else {
            return;
        };
        let mut entries = Vec::new();
        let mut values = Vec::new();
        if gs.shard == Some(shard) {
            // A new replica is rebuilding from me, the coordinator: ship
            // metadata plus value copies.
            if let Some(coord) = gs.coord.get(&mid) {
                for (key, version, e) in coord.meta.iter() {
                    entries.push(MetaEntry {
                        key,
                        version,
                        len: e.len,
                        addr: e.addr,
                        tombstone: e.tombstone,
                    });
                    let v = match &coord.store {
                        CoordStore::Rep { values } => values.get(&(key, version)).cloned(),
                        CoordStore::Srs { .. } => None,
                    };
                    values.push(v);
                }
            }
        } else if let Some(red) = gs.redundant.get(&mid) {
            // A new coordinator is rebuilding: ship the metadata replicas
            // belonging to its shard (metadata-only — data recovery is
            // on demand, Section 5.5 step 6).
            for (key, version, e) in red.meta.iter() {
                if shard_of(key, s) != shard {
                    continue;
                }
                entries.push(MetaEntry {
                    key,
                    version,
                    len: e.len,
                    addr: e.addr,
                    tombstone: e.tombstone,
                });
                values.push(None);
            }
        }
        let _ = self.ep.send(
            from,
            Msg::MetaFetchResp {
                group: g,
                memgest: mid,
                shard,
                entries,
                values,
            },
        );
    }

    /// Decodes a lost heap range for a recovering data node: collects
    /// the surviving lane blocks (one-sided reads — the survivors' CPUs
    /// are not involved) plus the local parity bytes, and solves for the
    /// missing source (the online decode of Section 5.5).
    pub(crate) fn handle_recover_block(
        &mut self,
        from: NodeId,
        g: GroupId,
        mid: MemgestId,
        shard: usize,
        addr: usize,
        len: usize,
    ) {
        let my_idx = self
            .groups
            .get(&g)
            .and_then(|gs| gs.red_idx)
            .unwrap_or(usize::MAX);
        let result = if self.rebuilds.contains_key(&(g, mid)) {
            // The parity heap is not consistent yet; the requester will
            // retry against another parity (or here, later).
            None
        } else {
            self.decode_range(g, mid, my_idx, shard, addr, len)
        };
        let _ = self.ep.send(
            from,
            Msg::RecoverBlockResp {
                group: g,
                memgest: mid,
                addr,
                bytes: result.map(Payload::from),
            },
        );
    }

    /// Serves a speculative shard-read: ships raw bytes of the requested
    /// ranges from this node's data heap (`parity == false`) or parity
    /// region (`parity == true`), so the degraded coordinator can decode
    /// locally from whichever `k` stripe rows answer first. Declines
    /// (`bytes: None`) whenever the local bytes are not authoritative —
    /// the requester late-binds to another redundancy target.
    pub(crate) fn handle_shard_read(
        &mut self,
        from: NodeId,
        g: GroupId,
        mid: MemgestId,
        token: u64,
        parity: bool,
        ranges: Vec<(usize, usize)>,
    ) {
        let bytes = if parity {
            self.serve_parity_shard_read(g, mid, &ranges)
        } else {
            self.serve_data_shard_read(g, mid, &ranges)
        };
        let _ = self.ep.send(
            from,
            Msg::ShardReadResp {
                group: g,
                memgest: mid,
                token,
                bytes: bytes.map(Payload::from),
            },
        );
    }

    /// Raw heap bytes of a coordinator peer. Declined while this node is
    /// itself recovering or its heap has holes (metadata-only entries
    /// whose bytes were never re-decoded): zero-filled holes would decode
    /// to garbage on the requester.
    fn serve_data_shard_read(
        &self,
        g: GroupId,
        mid: MemgestId,
        ranges: &[(usize, usize)],
    ) -> Option<Vec<u8>> {
        if self.recovering > 0 {
            return None;
        }
        let gs = self.groups.get(&g)?;
        gs.shard?;
        let coord = gs.coord.get(&mid)?;
        let holey = coord
            .meta
            .iter()
            .any(|(_, _, e)| !e.data_present && !e.tombstone);
        if holey {
            return None;
        }
        let CoordStore::Srs { heap, .. } = &coord.store else {
            return None;
        };
        Some(concat_ranges(heap.region(), ranges))
    }

    /// Raw parity-region bytes. Declined mid-rebuild, when the parity
    /// heap is not yet consistent with the coordinators' data heaps.
    fn serve_parity_shard_read(
        &self,
        g: GroupId,
        mid: MemgestId,
        ranges: &[(usize, usize)],
    ) -> Option<Vec<u8>> {
        if self.rebuilds.contains_key(&(g, mid)) {
            return None;
        }
        let gs = self.groups.get(&g)?;
        let red = gs.redundant.get(&mid)?;
        let RedundantStore::Parity { region, .. } = &red.store else {
            return None;
        };
        Some(concat_ranges(region, ranges))
    }

    fn decode_range(
        &self,
        g: GroupId,
        mid: MemgestId,
        parity_idx: usize,
        shard: usize,
        addr: usize,
        len: usize,
    ) -> Option<Vec<u8>> {
        let gs = self.groups.get(&g)?;
        let red = gs.redundant.get(&mid)?;
        let RedundantStore::Parity { region, layout, .. } = &red.store else {
            return None;
        };
        let params = layout.code().params();
        let mut out = vec![0u8; len];
        for seg in layout.split_range(shard, addr, len) {
            let off = seg.data_addr - addr;
            // Start from the parity bytes (zeros when the parity heap
            // never grew that far — consistent with all-zero data).
            let mut acc = read_or_zeros(region, seg.parity_addr, seg.len);
            // XOR out the surviving peers' contributions.
            for j in 0..params.k {
                if j == seg.source {
                    continue;
                }
                let (peer_idx, peer_addr) = layout.peer_addr(&seg, j);
                let peer_node = self.config.coordinator(g, peer_idx);
                let peer = self
                    .ep
                    .rdma_read(peer_node, data_mr_key(g, mid), peer_addr, seg.len)
                    .unwrap_or_else(|_| vec![0u8; seg.len]);
                let c = layout.code().rs().coefficient(parity_idx, j);
                ring_gf::region::mul_acc(&mut acc, &peer, c);
            }
            // acc = g_{p, source} * D_source; divide by the coefficient.
            let c = layout.code().rs().coefficient(parity_idx, seg.source);
            let inv = c.checked_inv()?;
            ring_gf::region::mul_in_place(&mut acc, inv);
            out[off..off + seg.len].copy_from_slice(&acc);
        }
        Some(out)
    }
}

/// Reads a range from a region, padding with zeros past its end (the
/// region only grows lazily as parity updates arrive).
pub(crate) fn read_or_zeros(region: &ring_net::MemoryRegion, addr: usize, len: usize) -> Vec<u8> {
    let available = region.len().saturating_sub(addr).min(len);
    let mut out = vec![0u8; len];
    if available > 0 {
        if let Ok(bytes) = region.read(addr, available) {
            out[..available].copy_from_slice(&bytes);
        }
    }
    out
}

/// Concatenates `(addr, len)` ranges of a region, zero-padded past its
/// end (unwritten heap space is all-zero by the coding convention).
fn concat_ranges(region: &ring_net::MemoryRegion, ranges: &[(usize, usize)]) -> Vec<u8> {
    let total: usize = ranges.iter().map(|&(_, len)| len).sum();
    let mut out = Vec::with_capacity(total);
    for &(addr, len) in ranges {
        out.extend_from_slice(&read_or_zeros(region, addr, len));
    }
    out
}

/// Multiplies `bytes` by a scalar in place — helper for parity rebuild.
pub(crate) fn scale_in_place(bytes: &mut [u8], c: Gf256) {
    ring_gf::region::mul_in_place(bytes, c);
}
