//! Node introspection: per-node operation counters and storage
//! accounting, served over the protocol (`StatsRequest`).
//!
//! This is how the balance experiments measure the actual per-node
//! memory distribution that Figure 3 depicts, and how operators of a
//! real deployment would watch load and capacity.

use ring_net::NodeId;

use crate::types::{Epoch, GroupId, MemgestId, Scheme};

/// Storage accounting for one memgest on one node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemgestStats {
    /// The memgest.
    pub id: MemgestId,
    /// Scheme label (`REP3`, `SRS32`, ...).
    pub scheme: String,
    /// Metadata entries held (coordinator side).
    pub coord_meta_entries: usize,
    /// Coordinator entries whose data bytes are not locally present yet
    /// (awaiting on-demand or background recovery).
    pub missing_entries: usize,
    /// Approximate metadata bytes (coordinator side).
    pub coord_meta_bytes: usize,
    /// Bytes of primary data stored (values or heap frontier).
    pub data_bytes: usize,
    /// Metadata entries held as redundancy (replica/parity side).
    pub redundant_meta_entries: usize,
    /// Bytes of replica copies held.
    pub replica_bytes: usize,
    /// Bytes of parity heap in use.
    pub parity_bytes: usize,
}

/// Per-group summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupStats {
    /// The group.
    pub group: GroupId,
    /// Shard coordinated in this group, if any.
    pub shard: Option<usize>,
    /// Redundant index in this group, if any.
    pub redundant_index: Option<usize>,
    /// Keys in the volatile hashtable.
    pub volatile_keys: usize,
    /// Per-memgest accounting.
    pub memgests: Vec<MemgestStats>,
}

/// Cumulative operation counters of a node.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCounters {
    /// Client puts served (committed or pending).
    pub puts: u64,
    /// Client gets served.
    pub gets: u64,
    /// Client deletes served.
    pub deletes: u64,
    /// Client moves served.
    pub moves: u64,
    /// Replica/parity updates applied for other coordinators.
    pub redundancy_updates: u64,
}

/// A node's full introspection report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeStats {
    /// The reporting node.
    pub node: NodeId,
    /// Its configuration epoch.
    pub epoch: Epoch,
    /// Whether the node currently serves (not a spare, not recovering).
    pub active: bool,
    /// Operation counters.
    pub ops: OpCounters,
    /// Per-group storage accounting.
    pub groups: Vec<GroupStats>,
}

impl NodeStats {
    /// Total bytes of primary data on this node.
    pub fn data_bytes(&self) -> usize {
        self.groups
            .iter()
            .flat_map(|g| g.memgests.iter())
            .map(|m| m.data_bytes)
            .sum()
    }

    /// Total redundancy bytes (replica copies + parity heaps).
    pub fn redundancy_bytes(&self) -> usize {
        self.groups
            .iter()
            .flat_map(|g| g.memgests.iter())
            .map(|m| m.replica_bytes + m.parity_bytes)
            .sum()
    }

    /// Total entries still awaiting data recovery.
    pub fn missing_entries(&self) -> usize {
        self.groups
            .iter()
            .flat_map(|g| g.memgests.iter())
            .map(|m| m.missing_entries)
            .sum()
    }

    /// Total approximate metadata bytes.
    pub fn meta_bytes(&self) -> usize {
        self.groups
            .iter()
            .flat_map(|g| g.memgests.iter())
            .map(|m| m.coord_meta_bytes)
            .sum()
    }
}

/// Builds the scheme label for a stats row.
pub(crate) fn scheme_label(scheme: Scheme) -> String {
    scheme.label()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_sums_across_groups() {
        let stats = NodeStats {
            node: 1,
            epoch: 0,
            active: true,
            ops: OpCounters::default(),
            groups: vec![
                GroupStats {
                    group: 0,
                    memgests: vec![MemgestStats {
                        data_bytes: 100,
                        replica_bytes: 30,
                        parity_bytes: 5,
                        coord_meta_bytes: 7,
                        ..MemgestStats::default()
                    }],
                    ..GroupStats::default()
                },
                GroupStats {
                    group: 1,
                    memgests: vec![MemgestStats {
                        data_bytes: 50,
                        replica_bytes: 0,
                        parity_bytes: 25,
                        coord_meta_bytes: 3,
                        ..MemgestStats::default()
                    }],
                    ..GroupStats::default()
                },
            ],
        };
        assert_eq!(stats.data_bytes(), 150);
        assert_eq!(stats.redundancy_bytes(), 60);
        assert_eq!(stats.meta_bytes(), 10);
    }

    #[test]
    fn labels_from_schemes() {
        assert_eq!(scheme_label(Scheme::Rep { r: 3 }), "REP3");
        assert_eq!(scheme_label(Scheme::Srs { k: 3, m: 2 }), "SRS32");
    }
}
