//! Cluster configuration: node roles, groups, and replica placement.
//!
//! A deployment has `s + d` active KVS nodes (coordinators + redundant
//! nodes) and `n` spares (Section 5.5, Figure 6). Memgest groups
//! (Section 5.4) rotate the role assignment: group `g`'s member list is
//! the canonical node list rotated by `g`, so coordinators and parity
//! nodes are spread evenly when `groups > 1`.

use ring_net::NodeId;

use crate::types::{group_of, shard_of, Epoch, GroupId, Key};

/// Node id of the membership leader (the replicated state machine of
/// Section 5.5; its own fault tolerance is out of scope, as in the
/// paper's evaluation).
pub const LEADER_NODE: NodeId = 10_000;

/// First node id handed to clients.
pub const CLIENT_BASE: NodeId = 20_000;

/// A node's role within one memgest group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Coordinator of the given shard: owns the shard's keys in every
    /// memgest of the group.
    Coordinator(usize),
    /// Redundant node with the given index: hosts replica copies and
    /// parity blocks.
    Redundant(usize),
}

/// The cluster-wide configuration, replicated by the leader on every
/// membership change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Configuration epoch; higher wins.
    pub epoch: Epoch,
    /// Number of shards (coordinators per group).
    pub s: usize,
    /// Number of redundant nodes per group.
    pub d: usize,
    /// Number of memgest groups.
    pub groups: usize,
    /// The `s + d` active KVS nodes in canonical order. Position `i`
    /// determines the node's role in every group.
    pub nodes: Vec<NodeId>,
    /// Remaining spare nodes, ready for promotion.
    pub spares: Vec<NodeId>,
}

impl ClusterConfig {
    /// Creates the initial (epoch-0) configuration.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `s + d` nodes are supplied or parameters are
    /// degenerate.
    pub fn initial(
        s: usize,
        d: usize,
        groups: usize,
        nodes: Vec<NodeId>,
        spares: Vec<NodeId>,
    ) -> ClusterConfig {
        assert!(s > 0, "need at least one shard");
        assert!(groups > 0, "need at least one group");
        assert!(
            nodes.len() == s + d,
            "need exactly s + d = {} active nodes, got {}",
            s + d,
            nodes.len()
        );
        ClusterConfig {
            epoch: 0,
            s,
            d,
            groups,
            nodes,
            spares,
        }
    }

    /// The member list of group `g`: the canonical list rotated by `g`
    /// so that roles are spread across physical nodes.
    pub fn group_member(&self, g: GroupId, position: usize) -> NodeId {
        let n = self.nodes.len();
        self.nodes[(position + g as usize) % n]
    }

    /// The coordinator node of `(group, shard)`.
    pub fn coordinator(&self, g: GroupId, shard: usize) -> NodeId {
        assert!(shard < self.s, "shard {shard} out of range");
        self.group_member(g, shard)
    }

    /// The redundant node with index `idx` in group `g`.
    pub fn redundant(&self, g: GroupId, idx: usize) -> NodeId {
        assert!(idx < self.d, "redundant index {idx} out of range");
        self.group_member(g, self.s + idx)
    }

    /// The `(group, shard)` a key maps to.
    pub fn locate(&self, key: Key) -> (GroupId, usize) {
        (group_of(key, self.groups), shard_of(key, self.s))
    }

    /// The coordinator node responsible for a key.
    pub fn coordinator_of_key(&self, key: Key) -> NodeId {
        let (g, shard) = self.locate(key);
        self.coordinator(g, shard)
    }

    /// The role of `node` in group `g`, or `None` if the node is not an
    /// active member (e.g. a spare).
    pub fn role_of(&self, g: GroupId, node: NodeId) -> Option<Role> {
        let n = self.nodes.len();
        let canonical = self.nodes.iter().position(|&x| x == node)?;
        let position = (canonical + n - (g as usize % n)) % n;
        Some(if position < self.s {
            Role::Coordinator(position)
        } else {
            Role::Redundant(position - self.s)
        })
    }

    /// Replica targets for a `Rep(r)` put on `(group, shard)`: the
    /// `r - 1` nodes following the coordinator in the group's ring
    /// (redundant nodes first, then other coordinators for `r > d + 1`).
    pub fn replica_targets(&self, g: GroupId, shard: usize, r: usize) -> Vec<NodeId> {
        assert!(
            r <= self.s + self.d,
            "replication factor {r} exceeds node count"
        );
        // Redundant nodes first so that data copies prefer nodes that do
        // not already coordinate shards, then wrap over coordinators.
        let mut out = Vec::with_capacity(r.saturating_sub(1));
        for i in 0..self.d {
            if out.len() + 1 >= r {
                break;
            }
            out.push(self.redundant(g, (shard + i) % self.d));
        }
        let mut next = shard + 1;
        while out.len() + 1 < r {
            let candidate = self.coordinator(g, next % self.s);
            if candidate != self.coordinator(g, shard) && !out.contains(&candidate) {
                out.push(candidate);
            }
            next += 1;
        }
        out
    }

    /// Parity nodes for an `SRS(k, m)` memgest in group `g`: the first
    /// `m` redundant nodes.
    pub fn parity_targets(&self, g: GroupId, m: usize) -> Vec<NodeId> {
        (0..m).map(|p| self.redundant(g, p)).collect()
    }

    /// All active node ids (unordered contract, canonical order in
    /// practice).
    pub fn active_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Produces the successor configuration after `failed` is replaced
    /// by the first spare. Returns `None` if no spare remains or the
    /// node is not active.
    pub fn promote_spare(&self, failed: NodeId) -> Option<ClusterConfig> {
        let pos = self.nodes.iter().position(|&n| n == failed)?;
        let mut next = self.clone();
        let replacement = if next.spares.is_empty() {
            return None;
        } else {
            next.spares.remove(0)
        };
        next.nodes[pos] = replacement;
        next.epoch += 1;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(s: usize, d: usize, groups: usize) -> ClusterConfig {
        ClusterConfig::initial(
            s,
            d,
            groups,
            (0..(s + d) as NodeId).collect(),
            vec![100, 101],
        )
    }

    #[test]
    fn coordinator_and_redundant_partition_nodes() {
        let c = cfg(3, 2, 1);
        assert_eq!(c.coordinator(0, 0), 0);
        assert_eq!(c.coordinator(0, 2), 2);
        assert_eq!(c.redundant(0, 0), 3);
        assert_eq!(c.redundant(0, 1), 4);
    }

    #[test]
    fn group_rotation_spreads_roles() {
        let c = cfg(3, 2, 5);
        // Node 3 is redundant in group 0 but coordinator of some shard
        // in other groups.
        assert_eq!(c.role_of(0, 3), Some(Role::Redundant(0)));
        assert_eq!(c.role_of(2, 3), Some(Role::Coordinator(1)));
        // Every node coordinates in some group.
        for node in 0..5 {
            let coordinates =
                (0..5).any(|g| matches!(c.role_of(g as GroupId, node), Some(Role::Coordinator(_))));
            assert!(coordinates, "node {node} never coordinates");
        }
    }

    #[test]
    fn role_of_inverts_member_mapping() {
        let c = cfg(3, 2, 4);
        for g in 0..4u8 {
            for shard in 0..3 {
                let node = c.coordinator(g, shard);
                assert_eq!(c.role_of(g, node), Some(Role::Coordinator(shard)));
            }
            for idx in 0..2 {
                let node = c.redundant(g, idx);
                assert_eq!(c.role_of(g, node), Some(Role::Redundant(idx)));
            }
        }
        assert_eq!(c.role_of(0, 100), None); // Spare has no role.
    }

    #[test]
    fn replica_targets_prefer_redundant_nodes() {
        let c = cfg(3, 2, 1);
        // Rep(3) on shard 0: two targets, both redundant nodes.
        let t = c.replica_targets(0, 0, 3);
        assert_eq!(t.len(), 2);
        assert!(t.contains(&3) && t.contains(&4));
        // Rep(5): wraps onto the other coordinators.
        let t = c.replica_targets(0, 0, 5);
        assert_eq!(t.len(), 4);
        assert!(t.contains(&1) && t.contains(&2));
        // Rep(1): no targets.
        assert!(c.replica_targets(0, 1, 1).is_empty());
    }

    #[test]
    fn replica_targets_never_include_coordinator() {
        let c = cfg(3, 2, 1);
        for shard in 0..3 {
            for r in 1..=5 {
                let coord = c.coordinator(0, shard);
                let t = c.replica_targets(0, shard, r);
                assert!(!t.contains(&coord), "shard {shard} r {r}");
                // No duplicates.
                let mut sorted = t.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), t.len());
            }
        }
    }

    #[test]
    fn parity_targets_are_the_first_m_redundants() {
        let c = cfg(3, 2, 1);
        assert_eq!(c.parity_targets(0, 1), vec![3]);
        assert_eq!(c.parity_targets(0, 2), vec![3, 4]);
    }

    #[test]
    fn promote_spare_replaces_in_place() {
        let c = cfg(3, 2, 1);
        let next = c.promote_spare(1).unwrap();
        assert_eq!(next.epoch, 1);
        assert_eq!(next.nodes, vec![0, 100, 2, 3, 4]);
        assert_eq!(next.spares, vec![101]);
        // The replacement takes over the exact role.
        assert_eq!(next.coordinator(0, 1), 100);
        assert_eq!(c.promote_spare(99), None);
    }

    #[test]
    fn promote_fails_without_spares() {
        let mut c = cfg(2, 1, 1);
        c.spares.clear();
        assert_eq!(c.promote_spare(0), None);
    }

    #[test]
    fn locate_is_stable_across_epochs() {
        // The key-to-(group, shard) mapping never depends on membership.
        let a = cfg(3, 2, 2);
        let b = a.promote_spare(0).unwrap();
        for key in 0..500u64 {
            assert_eq!(a.locate(key), b.locate(key));
        }
    }
}
