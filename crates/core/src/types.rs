//! Core identifiers and storage-scheme descriptors.

use std::fmt;

/// A key. The paper's workloads use 8-byte keys, so keys are `u64`;
/// arbitrary byte-string keys can be hashed into this space by callers.
pub type Key = u64;

/// A monotonically increasing per-key version. Exactly one instance of a
/// `(key, version)` pair exists across all memgests (Section 5.2).
pub type Version = u64;

/// Identifier of a memgest (storage scheme instance).
pub type MemgestId = u32;

/// Identifier of a memgest group (Section 5.4 balancing).
pub type GroupId = u8;

/// Client request identifier, unique per client.
pub type ReqId = u64;

/// Configuration epoch: incremented by the leader on every role change.
pub type Epoch = u64;

/// The storage scheme of a memgest.
///
/// `s` (the shard count) is a cluster-wide constant shared by every
/// memgest in a group, so it lives in the cluster config rather than
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// `Rep(r)`: `r`-fold replication. `Rep(1)` is the unreliable
    /// memgest: no redundancy, immediate commit.
    Rep {
        /// Total number of copies, `>= 1`.
        r: usize,
    },
    /// `SRS(k, m, s)`: Stretched Reed-Solomon. `k` data blocks, `m`
    /// parity nodes, stretched over the group's `s` coordinators.
    Srs {
        /// RS data-block count (`k <= s`).
        k: usize,
        /// Parity-node count (`m <= d`).
        m: usize,
    },
}

impl Scheme {
    /// Number of redundant nodes the scheme occupies (replica targets or
    /// parity nodes).
    pub fn redundancy(&self) -> usize {
        match *self {
            Scheme::Rep { r } => r.saturating_sub(1),
            Scheme::Srs { m, .. } => m,
        }
    }

    /// Memory overhead factor relative to storing the data once, for a
    /// group with `s` shards.
    pub fn storage_overhead(&self, s: usize) -> f64 {
        match *self {
            Scheme::Rep { r } => r as f64,
            Scheme::Srs { k, m } => {
                let _ = s;
                1.0 + m as f64 / k as f64
            }
        }
    }

    /// True for the unreliable `Rep(1)` scheme.
    pub fn is_unreliable(&self) -> bool {
        matches!(*self, Scheme::Rep { r: 1 })
    }

    /// Number of acknowledgements a coordinator must collect before a
    /// put commits: quorum for replication (majority of `r` copies,
    /// counting the coordinator's own), all `m` parities for SRS
    /// (Section 5.3).
    pub fn acks_to_commit(&self) -> usize {
        match *self {
            // Majority of r copies; the coordinator itself is one copy.
            Scheme::Rep { r } => (r / 2 + 1).saturating_sub(1),
            Scheme::Srs { m, .. } => m,
        }
    }

    /// Label matching the paper's figures (`REP3`, `SRS32`, ...).
    pub fn label(&self) -> String {
        match *self {
            Scheme::Rep { r } => format!("REP{r}"),
            Scheme::Srs { k, m } => format!("SRS{k}{m}"),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Scheme::Rep { r } => write!(f, "Rep({r})"),
            Scheme::Srs { k, m } => write!(f, "SRS({k},{m})"),
        }
    }
}

/// User-facing description of a memgest (the `descriptor_t` of the
/// paper's API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemgestDescriptor {
    /// The storage scheme.
    pub scheme: Scheme,
    /// Sub-block size in bytes for SRS heap striping (ignored for
    /// replication). Must be a power of two.
    pub block_size: usize,
}

impl MemgestDescriptor {
    /// A replicated memgest with `r` copies.
    pub fn rep(r: usize) -> MemgestDescriptor {
        MemgestDescriptor {
            scheme: Scheme::Rep { r },
            block_size: 4096,
        }
    }

    /// An erasure-coded memgest `SRS(k, m, s)` (with the group's `s`).
    pub fn srs(k: usize, m: usize) -> MemgestDescriptor {
        MemgestDescriptor {
            scheme: Scheme::Srs { k, m },
            block_size: 4096,
        }
    }

    /// The unreliable memgest, `Rep(1)`.
    pub fn unreliable() -> MemgestDescriptor {
        MemgestDescriptor::rep(1)
    }
}

/// Mixes the key bits so that sequential keys spread over shards and
/// groups (splitmix64 finaliser).
#[inline]
pub fn hash_key(key: Key) -> u64 {
    let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The shard a key belongs to: `h(key) mod s` (Section 5.1).
#[inline]
pub fn shard_of(key: Key, s: usize) -> usize {
    (hash_key(key) % s as u64) as usize
}

/// The memgest group a key belongs to (upper hash bits, independent of
/// the shard index).
#[inline]
pub fn group_of(key: Key, groups: usize) -> GroupId {
    ((hash_key(key) >> 32) % groups as u64) as GroupId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_redundancy() {
        assert_eq!(Scheme::Rep { r: 1 }.redundancy(), 0);
        assert_eq!(Scheme::Rep { r: 3 }.redundancy(), 2);
        assert_eq!(Scheme::Srs { k: 3, m: 2 }.redundancy(), 2);
    }

    #[test]
    fn acks_to_commit_rules() {
        // Rep(1): no acks. Rep(2): majority of 2 = 2 copies -> 1 ack.
        // Rep(3): majority of 3 = 2 copies -> 1 ack. Rep(4): 3 -> 2.
        // Rep(5): 3 -> 2. SRS(k,m): all m parities.
        assert_eq!(Scheme::Rep { r: 1 }.acks_to_commit(), 0);
        assert_eq!(Scheme::Rep { r: 2 }.acks_to_commit(), 1);
        assert_eq!(Scheme::Rep { r: 3 }.acks_to_commit(), 1);
        assert_eq!(Scheme::Rep { r: 4 }.acks_to_commit(), 2);
        assert_eq!(Scheme::Rep { r: 5 }.acks_to_commit(), 2);
        assert_eq!(Scheme::Srs { k: 3, m: 2 }.acks_to_commit(), 2);
        assert_eq!(Scheme::Srs { k: 2, m: 1 }.acks_to_commit(), 1);
    }

    #[test]
    fn storage_overheads() {
        assert_eq!(Scheme::Rep { r: 3 }.storage_overhead(3), 3.0);
        assert!((Scheme::Srs { k: 3, m: 2 }.storage_overhead(3) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(Scheme::Rep { r: 3 }.label(), "REP3");
        assert_eq!(Scheme::Srs { k: 3, m: 2 }.label(), "SRS32");
        assert_eq!(format!("{}", Scheme::Srs { k: 2, m: 1 }), "SRS(2,1)");
    }

    #[test]
    fn unreliable_detection() {
        assert!(Scheme::Rep { r: 1 }.is_unreliable());
        assert!(!Scheme::Rep { r: 2 }.is_unreliable());
        assert!(!Scheme::Srs { k: 2, m: 1 }.is_unreliable());
    }

    #[test]
    fn sharding_covers_all_shards() {
        let s = 3;
        let mut seen = vec![false; s];
        for key in 0..1000u64 {
            seen[shard_of(key, s)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn sharding_is_roughly_balanced() {
        let s = 5;
        let mut counts = vec![0u32; s];
        for key in 0..100_000u64 {
            counts[shard_of(key, s)] += 1;
        }
        for &c in &counts {
            assert!((15_000..25_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn groups_cover_and_balance() {
        let groups = 4;
        let mut counts = vec![0u32; groups];
        for key in 0..100_000u64 {
            counts[group_of(key, groups) as usize] += 1;
        }
        for &c in &counts {
            assert!((20_000..30_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shard_and_group_are_independent() {
        // A single shard's keys must spread over all groups.
        let (s, groups) = (3, 3);
        let mut seen = vec![false; groups];
        for key in 0..10_000u64 {
            if shard_of(key, s) == 0 {
                seen[group_of(key, groups) as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
