//! Memory and load balance analysis for memgest groups (Section 5.4).
//!
//! With a single memgest group, parity nodes store more bytes than data
//! nodes (a parity node holds `1/k` of the group's data per SRS memgest
//! plus all replica copies), sit idle on get-heavy workloads, and
//! bottleneck put-heavy ones. Creating `s + d` groups and rotating the
//! role assignment (see [`crate::config::ClusterConfig::group_member`])
//! balances both: every physical node coordinates some shards and
//! carries redundancy for others.
//!
//! This module computes the *analytical* per-node storage weights for a
//! deployment — the quantity Figure 3's unfilled rectangles depict —
//! used by the `balance_ablation` bench binary and the tests below.

use crate::config::{ClusterConfig, Role};
use crate::types::{GroupId, Scheme};

/// Per-node storage weight, in bytes per byte of user data stored
/// (uniformly across keys and groups).
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    /// Weight per node, indexed like `config.nodes`.
    pub weights: Vec<f64>,
    /// Max/min ratio — 1.0 is perfectly balanced.
    pub imbalance: f64,
}

/// Computes per-node storage weights for a config and a set of schemes,
/// assuming every memgest stores the same volume of user data and keys
/// hash uniformly over shards and groups.
pub fn storage_balance(config: &ClusterConfig, schemes: &[Scheme]) -> BalanceReport {
    let n = config.nodes.len();
    let s = config.s;
    let mut weights = vec![0.0f64; n];
    // Each (group, scheme) stores 1/(groups) of that scheme's data.
    let per_group = 1.0 / config.groups as f64;
    for g in 0..config.groups as GroupId {
        for &scheme in schemes {
            match scheme {
                Scheme::Rep { r } => {
                    // Each shard's coordinator stores 1/s of the data;
                    // each replica target stores a copy of that shard.
                    for shard in 0..s {
                        let share = per_group / s as f64;
                        let coord = config.coordinator(g, shard);
                        weights[pos(config, coord)] += share;
                        for t in config.replica_targets(g, shard, r) {
                            weights[pos(config, t)] += share;
                        }
                    }
                }
                Scheme::Srs { k, m } => {
                    // Data nodes share the data evenly (1/s each);
                    // each parity node stores 1/k of it.
                    for shard in 0..s {
                        let coord = config.coordinator(g, shard);
                        weights[pos(config, coord)] += per_group / s as f64;
                    }
                    for p in 0..m {
                        let node = config.redundant(g, p);
                        weights[pos(config, node)] += per_group / k as f64;
                    }
                }
            }
        }
    }
    let max = weights.iter().copied().fold(0.0, f64::max);
    let min = weights.iter().copied().fold(f64::INFINITY, f64::min);
    BalanceReport {
        weights,
        imbalance: if min > 0.0 { max / min } else { f64::INFINITY },
    }
}

fn pos(config: &ClusterConfig, node: ring_net::NodeId) -> usize {
    config
        .nodes
        .iter()
        .position(|&x| x == node)
        .expect("node is active")
}

/// The role mix of a node across all groups (how many shards it
/// coordinates and how many redundancy slots it holds) — the workload-
/// balance side of Section 5.4.
pub fn role_mix(config: &ClusterConfig, node: ring_net::NodeId) -> (usize, usize) {
    let mut coords = 0;
    let mut redundants = 0;
    for g in 0..config.groups as GroupId {
        match config.role_of(g, node) {
            Some(Role::Coordinator(_)) => coords += 1,
            Some(Role::Redundant(_)) => redundants += 1,
            None => {}
        }
    }
    (coords, redundants)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schemes() -> Vec<Scheme> {
        vec![
            Scheme::Rep { r: 1 },
            Scheme::Rep { r: 2 },
            Scheme::Rep { r: 3 },
            Scheme::Rep { r: 4 },
            Scheme::Srs { k: 2, m: 1 },
            Scheme::Srs { k: 3, m: 1 },
            Scheme::Srs { k: 3, m: 2 },
        ]
    }

    fn cfg(groups: usize) -> ClusterConfig {
        ClusterConfig::initial(3, 2, groups, vec![0, 1, 2, 3, 4], vec![])
    }

    #[test]
    fn single_group_is_imbalanced() {
        let report = storage_balance(&cfg(1), &paper_schemes());
        assert!(
            report.imbalance > 1.2,
            "expected visible imbalance, got {:.2}",
            report.imbalance
        );
    }

    #[test]
    fn s_plus_d_groups_balance_perfectly() {
        // With s + d = 5 groups, the rotation visits every position once
        // per node: all weights equal.
        let report = storage_balance(&cfg(5), &paper_schemes());
        assert!(
            report.imbalance < 1.0 + 1e-9,
            "expected perfect balance, got {:.4}",
            report.imbalance
        );
    }

    #[test]
    fn total_weight_is_group_invariant() {
        // Balancing redistributes bytes; it must not create or destroy
        // them.
        let a: f64 = storage_balance(&cfg(1), &paper_schemes())
            .weights
            .iter()
            .sum();
        let b: f64 = storage_balance(&cfg(5), &paper_schemes())
            .weights
            .iter()
            .sum();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn replication_weights_add_up() {
        // Rep(3) alone: total = 3 units (one per copy).
        let report = storage_balance(&cfg(1), &[Scheme::Rep { r: 3 }]);
        let total: f64 = report.weights.iter().sum();
        assert!((total - 3.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn srs_weights_match_overhead() {
        // SRS(3,2): total = 1 + m/k = 5/3.
        let report = storage_balance(&cfg(1), &[Scheme::Srs { k: 3, m: 2 }]);
        let total: f64 = report.weights.iter().sum();
        assert!((total - 5.0 / 3.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn role_mix_spreads_with_groups() {
        let one = cfg(1);
        let five = cfg(5);
        // In one group, node 4 never coordinates.
        assert_eq!(role_mix(&one, 4).0, 0);
        // In five groups every node coordinates 3 shards and serves 2
        // redundancy slots.
        for node in 0..5 {
            assert_eq!(role_mix(&five, node), (3, 2), "node {node}");
        }
    }
}
