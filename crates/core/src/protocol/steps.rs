//! Pure transition functions of the per-item write path.
//!
//! Each public function mirrors exactly one action of
//! `crates/model/specs/RingWriteSemantics.tla`; the `// tla: <Action>`
//! marker above every function names that action and is checked by
//! ring-lint's `model-drift` rule against the spec text. The node calls
//! these from its message handlers; the model checker calls the same
//! functions from its successor generator, so the implementation and
//! the explored transition system cannot silently diverge on the
//! commit-flag, dedup, read-binding or degraded-read decisions.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ring_net::NodeId;

use crate::types::{Scheme, Version};

// ---- Versioning ----

/// Version assigned to a fresh write of a key: one above the highest
/// version the volatile table knows, starting from 1. Versions are
/// never renumbered — a crashed coordinator's recovered table resumes
/// from the highest surviving version.
// tla: CoordPrepare
pub fn next_version(highest: Option<Version>) -> Version {
    highest.map(|v| v + 1).unwrap_or(1)
}

/// Number of redundancy acknowledgements a write must gather before its
/// commit flag may be set: `r - 1` replicas under synchronous
/// replication, the paper's half-round-trip quorum otherwise, and every
/// parity node for SRS (a parity update lost before commit would leave
/// the stripe undecodable). Zero means the write commits immediately
/// (unreliable memgest, Section 5.2).
// tla: CoordPrepare
pub fn acks_needed(scheme: Scheme, sync_replication: bool) -> usize {
    match scheme {
        Scheme::Rep { r } if sync_replication => r.saturating_sub(1),
        _ => scheme.acks_to_commit(),
    }
}

// ---- Redundancy acknowledgements ----

/// Acknowledgement progress of one uncommitted write: which redundancy
/// nodes have not answered yet, and how many of those answers are still
/// required before the commit flag may be set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AckState {
    /// Nodes whose ack has not arrived yet.
    pub outstanding: BTreeSet<NodeId>,
    /// Acks still required before commit (quorum for Rep, all for SRS).
    pub needed: usize,
}

/// Result of feeding one redundancy acknowledgement into an
/// [`AckState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// Duplicate or unknown sender; the state is unchanged.
    Ignored,
    /// Counted, but the write still waits for more acks.
    Counted,
    /// The last required ack: set the commit flag now.
    Commit,
}

impl AckState {
    /// Opens ack tracking for a write fanned out to `targets`.
    // tla: CoordPrepare
    pub fn open(targets: impl IntoIterator<Item = NodeId>, needed: usize) -> Self {
        AckState {
            outstanding: targets.into_iter().collect(),
            needed,
        }
    }

    /// Consumes one acknowledgement from `from`. Duplicates (and acks
    /// from nodes never targeted) are ignored — each node's ack counts
    /// at most once toward the quorum.
    // tla: RedundancyAck
    pub fn apply_ack(&mut self, from: NodeId) -> AckOutcome {
        if !self.outstanding.remove(&from) {
            return AckOutcome::Ignored;
        }
        self.needed = self.needed.saturating_sub(1);
        if self.needed == 0 {
            AckOutcome::Commit
        } else {
            AckOutcome::Counted
        }
    }

    /// Adds a freshly promoted spare to the outstanding set (its
    /// redundancy message is being re-sent there); returns whether the
    /// node was newly added.
    // tla: SparePromote
    pub fn retarget(&mut self, to: NodeId) -> bool {
        self.outstanding.insert(to)
    }
}

// ---- At-most-once dedup (RIFL-style) ----

/// At-most-once slot for one client request, generic over the response
/// type so the model checker can instantiate it with its abstract
/// response instead of the wire [`ClientResp`](crate::proto::ClientResp).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DedupSlot<R> {
    /// Executing (possibly parked or awaiting acks); re-deliveries are
    /// dropped — the eventual response answers every copy.
    InFlight,
    /// Answered; re-deliveries get the cached response resent.
    Done(R),
}

/// What a coordinator does with a (re)delivered write request.
#[derive(Debug, PartialEq, Eq)]
pub enum DedupDecision<'a, R> {
    /// First delivery: execute the request.
    Execute,
    /// Already answered: resend the cached response, never re-execute.
    Resend(&'a R),
    /// Still executing: drop this copy.
    Drop,
}

/// Classifies a delivered write request against its at-most-once slot.
/// Re-executing after the response was delivered would assign a fresh
/// version outside the client's linearization window, so only an empty
/// slot may execute.
// tla: RetryDeliver
pub fn dedup_decision<R>(slot: Option<&DedupSlot<R>>) -> DedupDecision<'_, R> {
    match slot {
        None => DedupDecision::Execute,
        Some(DedupSlot::InFlight) => DedupDecision::Drop,
        Some(DedupSlot::Done(resp)) => DedupDecision::Resend(resp),
    }
}

/// Settles an open at-most-once window to `Done(resp)` — errors
/// included, since the execution linearized inside the client's still
/// open window — and prunes the oldest settled entry once more than
/// `cap` are retained. A request that never opened a window (reads,
/// silently ignored requests) leaves the table untouched.
// tla: CommitFlag
pub fn settle_dedup<K: Ord + Copy, R>(
    table: &mut BTreeMap<K, DedupSlot<R>>,
    order: &mut VecDeque<K>,
    key: K,
    resp: R,
    cap: usize,
) {
    if let Some(slot) = table.get_mut(&key) {
        *slot = DedupSlot::Done(resp);
        order.push_back(key);
        if order.len() > cap {
            if let Some(old) = order.pop_front() {
                table.remove(&old);
            }
        }
    }
}

// ---- Read binding ----

/// The commit-visibility fields of a metadata entry, as seen by the
/// read path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEntry {
    pub committed: bool,
    pub tombstone: bool,
    pub data_present: bool,
}

/// How a get binds to the highest version of a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadDecision {
    /// The latest version is a committed tombstone: report a miss.
    NotFound,
    /// The latest version is uncommitted: park behind it until its
    /// commit flag is set (Figure 5).
    Postpone,
    /// Committed with bytes locally present: serve.
    Serve,
    /// Committed but the bytes were lost: recover on demand, parking
    /// the client until the data returns.
    Recover,
}

/// Binds a read to the key's highest version. A get never observes an
/// uncommitted value and never skips past an uncommitted latest version
/// to an older one — it waits, preserving linearizability.
// tla: GetBind
pub fn read_decision(e: &ReadEntry) -> ReadDecision {
    if !e.committed {
        ReadDecision::Postpone
    } else if e.tombstone {
        ReadDecision::NotFound
    } else if e.data_present {
        ReadDecision::Serve
    } else {
        ReadDecision::Recover
    }
}

// ---- Garbage collection ----

/// Whether a superseded version's entry may be removed: never while
/// uncommitted (its client still waits on the quorum) and never while
/// parked requests pin it (Figure 5 semantics).
// tla: CommitFlag
pub fn removable(committed: bool, has_waiters: bool) -> bool {
    committed && !has_waiters
}

// ---- Degraded reads ----

/// Whether a speculative `k + Δ` shard read can still decode: every
/// segment needs `k` distinct stripe rows among the peers that have
/// not declined. `live_parts` holds, per non-declined peer, its
/// `(segment index, stripe row)` assignments.
// tla: DegradedBind
pub fn spec_read_feasible(num_segs: usize, k: usize, live_parts: &[&[(usize, usize)]]) -> bool {
    (0..num_segs).all(|i| {
        let mut rows = BTreeSet::new();
        for parts in live_parts {
            for &(si, row) in *parts {
                if si == i {
                    rows.insert(row);
                }
            }
        }
        rows.len() >= k
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_start_at_one_and_increment() {
        assert_eq!(next_version(None), 1);
        assert_eq!(next_version(Some(1)), 2);
        assert_eq!(next_version(Some(41)), 42);
    }

    #[test]
    fn ack_quorums_match_schemes() {
        assert_eq!(acks_needed(Scheme::Rep { r: 1 }, false), 0);
        assert_eq!(acks_needed(Scheme::Rep { r: 2 }, false), 1);
        assert_eq!(acks_needed(Scheme::Rep { r: 3 }, false), 1);
        assert_eq!(acks_needed(Scheme::Rep { r: 3 }, true), 2);
        assert_eq!(acks_needed(Scheme::Srs { k: 2, m: 1 }, false), 1);
        assert_eq!(acks_needed(Scheme::Srs { k: 4, m: 2 }, true), 2);
    }

    #[test]
    fn acks_count_each_node_once() {
        let mut a = AckState::open([2u32, 3], 2);
        assert_eq!(a.apply_ack(5), AckOutcome::Ignored);
        assert_eq!(a.apply_ack(2), AckOutcome::Counted);
        assert_eq!(a.apply_ack(2), AckOutcome::Ignored);
        assert_eq!(a.apply_ack(3), AckOutcome::Commit);
    }

    #[test]
    fn retarget_reopens_a_slot() {
        let mut a = AckState::open([2u32], 1);
        assert!(a.retarget(4));
        assert!(!a.retarget(4));
        assert_eq!(a.apply_ack(4), AckOutcome::Commit);
    }

    #[test]
    fn dedup_executes_once_then_resends() {
        let empty: Option<&DedupSlot<u8>> = None;
        assert_eq!(dedup_decision(empty), DedupDecision::Execute);
        assert_eq!(
            dedup_decision(Some(&DedupSlot::<u8>::InFlight)),
            DedupDecision::Drop
        );
        assert_eq!(
            dedup_decision(Some(&DedupSlot::Done(7u8))),
            DedupDecision::Resend(&7)
        );
    }

    #[test]
    fn settle_prunes_oldest_past_cap() {
        let mut table: BTreeMap<u32, DedupSlot<u8>> = BTreeMap::new();
        let mut order = VecDeque::new();
        for k in 0..3u32 {
            table.insert(k, DedupSlot::InFlight);
            settle_dedup(&mut table, &mut order, k, k as u8, 2);
        }
        assert!(!table.contains_key(&0), "oldest pruned at cap");
        assert!(matches!(table.get(&2), Some(DedupSlot::Done(2))));
        // No open window: table untouched.
        settle_dedup(&mut table, &mut order, 9, 9, 2);
        assert!(!table.contains_key(&9));
    }

    #[test]
    fn reads_never_observe_uncommitted_state() {
        let e = |committed, tombstone, data_present| ReadEntry {
            committed,
            tombstone,
            data_present,
        };
        assert_eq!(
            read_decision(&e(false, false, true)),
            ReadDecision::Postpone
        );
        assert_eq!(read_decision(&e(false, true, true)), ReadDecision::Postpone);
        assert_eq!(read_decision(&e(true, true, false)), ReadDecision::NotFound);
        assert_eq!(read_decision(&e(true, false, true)), ReadDecision::Serve);
        assert_eq!(read_decision(&e(true, false, false)), ReadDecision::Recover);
    }

    #[test]
    fn gc_spares_uncommitted_and_pinned_entries() {
        assert!(removable(true, false));
        assert!(!removable(false, false));
        assert!(!removable(true, true));
    }

    #[test]
    fn spec_read_needs_k_rows_per_segment() {
        let a: &[(usize, usize)] = &[(0, 0), (1, 0)];
        let b: &[(usize, usize)] = &[(0, 1), (1, 1)];
        assert!(spec_read_feasible(2, 2, &[a, b]));
        assert!(!spec_read_feasible(2, 2, &[a]));
        // Duplicate rows do not count twice.
        assert!(!spec_read_feasible(2, 2, &[a, a]));
        assert!(spec_read_feasible(0, 2, &[]));
    }
}
