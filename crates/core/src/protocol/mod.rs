//! Pure, side-effect-free protocol logic shared by the live node
//! (`crate::node`) and the explicit-state model checker
//! (`crates/model`).
//!
//! The node owns the transports, timers and storage; everything here is
//! plain data in, plain data out. That split is what lets the model
//! checker explore the exact decision procedures the implementation
//! runs — drift between the two would otherwise be invisible until a
//! chaos seed happened to hit it.

pub mod steps;
