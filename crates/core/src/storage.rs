//! Node-local storage: the volatile hashtable, per-memgest metadata
//! hashtables, and data stores (replicated value maps and SRS heaps).
//!
//! Layout follows Section 5.1/Figure 4: a coordinator keeps one
//! *volatile hashtable* mapping each of its keys to the list of
//! `(version, memgestID)` pairs, plus one *metadata hashtable* per
//! memgest mapping `(key, version)` to the object entry (length,
//! location, commit flag, pending requests). The volatile table is never
//! replicated — it is reconstructed from the memgests' metadata tables
//! after failures.

use std::collections::{BTreeMap, HashMap};

use ring_erasure::SrsLayout;
use ring_net::{MemoryRegion, Payload};

use crate::proto::ClientTag;
use crate::types::{GroupId, Key, MemgestDescriptor, MemgestId, Version};

/// A request parked until its target version commits (Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub enum Waiter {
    /// A get waiting for the pinned version to commit.
    Get(ClientTag),
    /// A move waiting for the source version to commit.
    Move {
        /// The requesting client.
        client: ClientTag,
        /// Destination memgest.
        dst: MemgestId,
    },
}

/// Metadata of one `(key, version)` instance inside a memgest.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectEntry {
    /// Value length in bytes.
    pub len: usize,
    /// Heap address for SRS memgests; `usize::MAX` for replicated ones.
    pub addr: usize,
    /// True once the redundancy requirement is satisfied.
    pub committed: bool,
    /// True for delete markers.
    pub tombstone: bool,
    /// True if the value bytes are locally readable (false right after
    /// metadata-only recovery, until fetched or decoded on demand).
    pub data_present: bool,
    /// True while an on-demand data recovery for this entry is in
    /// flight.
    pub fetching: bool,
    /// Recovery attempts so far (rotates over redundancy targets).
    pub fetch_attempts: u8,
    /// Requests parked on this entry.
    pub waiters: Vec<Waiter>,
}

impl ObjectEntry {
    /// A fresh, uncommitted, locally present entry.
    pub fn new(len: usize, addr: usize, tombstone: bool) -> ObjectEntry {
        ObjectEntry {
            len,
            addr,
            committed: false,
            tombstone,
            data_present: true,
            fetching: false,
            fetch_attempts: 0,
            waiters: Vec::new(),
        }
    }

    /// An entry recovered from a metadata replica: committed (write-ahead
    /// guarantees only intended writes are visible on redundancy) but
    /// without local data.
    pub fn recovered(len: usize, addr: usize, tombstone: bool) -> ObjectEntry {
        ObjectEntry {
            len,
            addr,
            committed: true,
            tombstone,
            data_present: false,
            fetching: false,
            fetch_attempts: 0,
            waiters: Vec::new(),
        }
    }
}

/// The per-memgest metadata hashtable: `(key, version) -> entry`.
#[derive(Debug, Default)]
pub struct MetaTable {
    map: BTreeMap<Key, BTreeMap<Version, ObjectEntry>>,
}

impl MetaTable {
    /// Creates an empty table.
    pub fn new() -> MetaTable {
        MetaTable::default()
    }

    /// Inserts (or replaces) an entry.
    pub fn insert(&mut self, key: Key, version: Version, entry: ObjectEntry) {
        self.map.entry(key).or_default().insert(version, entry);
    }

    /// Looks an entry up.
    pub fn get(&self, key: Key, version: Version) -> Option<&ObjectEntry> {
        self.map.get(&key)?.get(&version)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: Key, version: Version) -> Option<&mut ObjectEntry> {
        self.map.get_mut(&key)?.get_mut(&version)
    }

    /// The highest version recorded for a key in this memgest.
    pub fn highest(&self, key: Key) -> Option<(Version, &ObjectEntry)> {
        self.map.get(&key)?.iter().next_back().map(|(&v, e)| (v, e))
    }

    /// Removes a specific version. Returns the entry if present.
    pub fn remove(&mut self, key: Key, version: Version) -> Option<ObjectEntry> {
        let versions = self.map.get_mut(&key)?;
        let out = versions.remove(&version);
        if versions.is_empty() {
            self.map.remove(&key);
        }
        out
    }

    /// Removes every version strictly below `below`; returns the removed
    /// `(version, entry)` pairs.
    pub fn remove_below(&mut self, key: Key, below: Version) -> Vec<(Version, ObjectEntry)> {
        let Some(versions) = self.map.get_mut(&key) else {
            return Vec::new();
        };
        let doomed: Vec<Version> = versions.range(..below).map(|(&v, _)| v).collect();
        let mut out = Vec::with_capacity(doomed.len());
        for v in doomed {
            if let Some(e) = versions.remove(&v) {
                out.push((v, e));
            }
        }
        if versions.is_empty() {
            self.map.remove(&key);
        }
        out
    }

    /// Iterates over all `(key, version, entry)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Version, &ObjectEntry)> {
        self.map
            .iter()
            .flat_map(|(&k, vs)| vs.iter().map(move |(&v, e)| (k, v, e)))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.values().map(|v| v.len()).sum()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate in-memory footprint in bytes (for the Figure 12
    /// metadata-size sweep).
    pub fn approx_bytes(&self) -> usize {
        // Key + version + entry fields, ignoring allocator overhead.
        self.len() * (8 + 8 + 8 + 8 + 4)
    }
}

/// The volatile hashtable: `key -> [(version, memgestID)]`, newest
/// first. Only committed versions appear here plus the in-flight
/// highest (needed for version assignment).
#[derive(Debug, Default)]
pub struct VolatileTable {
    index: HashMap<Key, Vec<(Version, MemgestId)>>,
}

impl VolatileTable {
    /// Creates an empty table.
    pub fn new() -> VolatileTable {
        VolatileTable::default()
    }

    /// Records a `(version, memgest)` instance for a key (idempotent).
    pub fn record(&mut self, key: Key, version: Version, memgest: MemgestId) {
        let list = self.index.entry(key).or_default();
        match list.binary_search_by(|(v, _)| version.cmp(v)) {
            Ok(pos) => list[pos] = (version, memgest),
            Err(pos) => list.insert(pos, (version, memgest)),
        }
    }

    /// The highest version of a key and the memgest holding it.
    pub fn highest(&self, key: Key) -> Option<(Version, MemgestId)> {
        self.index.get(&key)?.first().copied()
    }

    /// Removes one version of a key.
    pub fn remove(&mut self, key: Key, version: Version) {
        if let Some(list) = self.index.get_mut(&key) {
            list.retain(|&(v, _)| v != version);
            if list.is_empty() {
                self.index.remove(&key);
            }
        }
    }

    /// Removes every version strictly below `below`.
    pub fn remove_below(&mut self, key: Key, below: Version) {
        if let Some(list) = self.index.get_mut(&key) {
            list.retain(|&(v, _)| v >= below);
            if list.is_empty() {
                self.index.remove(&key);
            }
        }
    }

    /// All versions currently known for a key, newest first.
    pub fn versions(&self, key: Key) -> &[(Version, MemgestId)] {
        self.index.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of keys.
    pub fn keys(&self) -> usize {
        self.index.len()
    }

    /// Clears the table (used before a rebuild).
    pub fn clear(&mut self) {
        self.index.clear();
    }
}

/// A bump-allocated, RDMA-registered heap backing an SRS memgest on a
/// data node.
///
/// Allocations are append-only: every `(key, version)` gets a fresh
/// range, so parity deltas are always computed against known-zero or
/// previously-written bytes and old ranges are never mutated — the
/// invariant that keeps cross-node parity consistent without
/// distributed locking.
#[derive(Debug)]
pub struct Heap {
    region: MemoryRegion,
    next: usize,
}

impl Heap {
    /// Creates a heap with the given initial capacity.
    pub fn new(capacity: usize) -> Heap {
        Heap {
            region: MemoryRegion::new(capacity),
            next: 0,
        }
    }

    /// The RDMA-registerable region backing the heap.
    pub fn region(&self) -> &MemoryRegion {
        &self.region
    }

    /// Current allocation frontier.
    pub fn len(&self) -> usize {
        self.next
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }

    /// Allocates `len` bytes, growing the region if needed. Returns the
    /// address.
    pub fn alloc(&mut self, len: usize) -> usize {
        let addr = self.next;
        self.next += len;
        if self.next > self.region.len() {
            self.region.grow(self.next.next_power_of_two().max(4096));
        }
        addr
    }

    /// Sets the frontier after metadata recovery (new allocations must
    /// not collide with recovered ranges).
    pub fn reserve_upto(&mut self, addr: usize) {
        if addr > self.next {
            self.next = addr;
            if self.next > self.region.len() {
                self.region.grow(self.next.next_power_of_two().max(4096));
            }
        }
    }

    /// Writes bytes at `addr`, returning the XOR delta against the old
    /// contents.
    ///
    /// # Panics
    ///
    /// Panics if the range was never allocated.
    pub fn write_delta(&mut self, addr: usize, bytes: &[u8]) -> Vec<u8> {
        assert!(addr + bytes.len() <= self.next, "write beyond frontier");
        // One allocation: the old bytes become the delta buffer, then a
        // word-wide XOR folds the new bytes in.
        let mut delta = self
            .region
            .read(addr, bytes.len())
            .expect("allocated range is in bounds");
        self.region
            .write(addr, bytes)
            .expect("allocated range is in bounds");
        ring_gf::region::xor_into(&mut delta, bytes);
        delta
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range was never allocated.
    pub fn read(&self, addr: usize, len: usize) -> Vec<u8> {
        assert!(addr + len <= self.next, "read beyond frontier");
        self.region
            .read(addr, len)
            .expect("allocated range is in bounds")
    }
}

/// Coordinator-side state of one memgest.
#[derive(Debug)]
pub struct CoordMemgest {
    /// The descriptor.
    pub desc: MemgestDescriptor,
    /// The metadata hashtable.
    pub meta: MetaTable,
    /// The data store.
    pub store: CoordStore,
    /// Puts stalled while a new parity node rebuilds (SRS only).
    pub stalled: bool,
}

/// The data store of a coordinator memgest.
#[derive(Debug)]
pub enum CoordStore {
    /// Replicated memgests store whole values per `(key, version)`.
    Rep {
        /// The value map (Arc-backed: entries share bytes with the
        /// replication fan-out and response cache).
        values: HashMap<(Key, Version), Payload>,
    },
    /// SRS memgests store values in an RDMA-registered heap with the
    /// stretched-code address arithmetic alongside.
    Srs {
        /// The heap.
        heap: Heap,
        /// Address arithmetic for parity updates and recovery.
        layout: SrsLayout,
    },
}

/// Redundant-node-side state of one memgest.
#[derive(Debug)]
pub struct RedundantMemgest {
    /// The descriptor.
    pub desc: MemgestDescriptor,
    /// Metadata replicas, possibly covering several shards.
    pub meta: MetaTable,
    /// The redundancy payload.
    pub store: RedundantStore,
}

/// The payload a redundant node holds for a memgest.
#[derive(Debug)]
pub enum RedundantStore {
    /// Replica copies of whole values.
    Rep {
        /// The value map (Arc-backed, shared with the incoming message).
        values: HashMap<(Key, Version), Payload>,
    },
    /// A parity heap region covering the coordinators' data heaps.
    Parity {
        /// The parity bytes (RDMA-registered).
        region: MemoryRegion,
        /// High-water mark of applied parity addresses.
        len: usize,
        /// Address arithmetic for decode and rebuild.
        layout: SrsLayout,
    },
}

/// RDMA region key for a coordinator's data heap of `(group, memgest)`.
pub fn data_mr_key(group: GroupId, memgest: MemgestId) -> u64 {
    1 << 63 | (group as u64) << 32 | memgest as u64
}

/// RDMA region key for a parity node's parity heap of `(group, memgest)`.
pub fn parity_mr_key(group: GroupId, memgest: MemgestId) -> u64 {
    1 << 62 | (group as u64) << 32 | memgest as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_table_highest_and_remove_below() {
        let mut t = MetaTable::new();
        t.insert(1, 3, ObjectEntry::new(10, 0, false));
        t.insert(1, 1, ObjectEntry::new(10, 0, false));
        t.insert(1, 2, ObjectEntry::new(10, 0, false));
        assert_eq!(t.highest(1).unwrap().0, 3);
        assert_eq!(t.len(), 3);
        let removed = t.remove_below(1, 3);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(t.get(1, 3).is_some());
        assert!(t.get(1, 1).is_none());
    }

    #[test]
    fn meta_table_remove_clears_empty_keys() {
        let mut t = MetaTable::new();
        t.insert(7, 1, ObjectEntry::new(4, 0, false));
        assert!(t.remove(7, 1).is_some());
        assert!(t.is_empty());
        assert!(t.remove(7, 1).is_none());
    }

    #[test]
    fn meta_table_iteration_and_size() {
        let mut t = MetaTable::new();
        t.insert(1, 1, ObjectEntry::new(4, 0, false));
        t.insert(2, 1, ObjectEntry::new(4, 0, false));
        t.insert(2, 2, ObjectEntry::new(4, 0, false));
        assert_eq!(t.iter().count(), 3);
        assert_eq!(t.approx_bytes(), 3 * 36);
    }

    #[test]
    fn volatile_orders_versions_descending() {
        let mut v = VolatileTable::new();
        v.record(5, 2, 0);
        v.record(5, 7, 1);
        v.record(5, 4, 2);
        assert_eq!(v.highest(5), Some((7, 1)));
        assert_eq!(v.versions(5), &[(7, 1), (4, 2), (2, 0)]);
        v.remove(5, 7);
        assert_eq!(v.highest(5), Some((4, 2)));
        v.remove_below(5, 4);
        assert_eq!(v.versions(5), &[(4, 2)]);
    }

    #[test]
    fn volatile_record_is_idempotent_and_updates_memgest() {
        let mut v = VolatileTable::new();
        v.record(1, 1, 0);
        v.record(1, 1, 3); // Same version moved to another memgest.
        assert_eq!(v.versions(1), &[(1, 3)]);
        assert_eq!(v.keys(), 1);
    }

    #[test]
    fn volatile_empty_key_queries() {
        let v = VolatileTable::new();
        assert_eq!(v.highest(42), None);
        assert!(v.versions(42).is_empty());
    }

    #[test]
    fn heap_alloc_write_read() {
        let mut h = Heap::new(16);
        let a = h.alloc(10);
        assert_eq!(a, 0);
        let delta = h.write_delta(a, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(delta, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]); // Fresh = zeros.
        assert_eq!(h.read(a, 3), vec![1, 2, 3]);
        // Second write produces the XOR delta.
        let delta = h.write_delta(a, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 11]);
        assert_eq!(delta[9], 10 ^ 11);
        assert_eq!(delta[..9], vec![0; 9]);
    }

    #[test]
    fn heap_grows_on_demand() {
        let mut h = Heap::new(8);
        let a = h.alloc(100);
        h.write_delta(a, &[7u8; 100]);
        assert_eq!(h.read(a, 100), vec![7u8; 100]);
        assert!(h.region().len() >= 100);
    }

    #[test]
    fn heap_reserve_upto_moves_frontier() {
        let mut h = Heap::new(8);
        h.reserve_upto(50);
        let a = h.alloc(4);
        assert_eq!(a, 50);
        h.reserve_upto(10); // Never shrinks.
        assert_eq!(h.len(), 54);
    }

    #[test]
    #[should_panic(expected = "beyond frontier")]
    fn heap_unallocated_read_panics() {
        let h = Heap::new(64);
        let _ = h.read(0, 1);
    }

    #[test]
    fn mr_keys_are_disjoint() {
        assert_ne!(data_mr_key(0, 1), parity_mr_key(0, 1));
        assert_ne!(data_mr_key(0, 1), data_mr_key(1, 1));
        assert_ne!(data_mr_key(0, 1), data_mr_key(0, 2));
    }

    #[test]
    fn recovered_entries_are_committed_without_data() {
        let e = ObjectEntry::recovered(10, 5, false);
        assert!(e.committed);
        assert!(!e.data_present);
        let f = ObjectEntry::new(10, 5, true);
        assert!(!f.committed);
        assert!(f.tombstone);
    }
}
