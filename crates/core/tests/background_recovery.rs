//! Section 5.5's background data recovery: after a promotion, the new
//! coordinator proactively restores missing values without waiting for
//! client reads.

use std::time::{Duration, Instant};

use ring_kvs::{Cluster, ClusterSpec};
use ring_net::LatencyModel;

fn spec(background: bool) -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        spares: 1,
        fail_timeout: Duration::from_millis(150),
        background_recovery: background,
        ..ClusterSpec::paper_evaluation()
    }
}

fn missing_on(client: &mut ring_kvs::RingClient, node: u32) -> Option<usize> {
    client.node_stats(node).ok().map(|s| s.missing_entries())
}

#[test]
fn background_sweep_restores_all_data_without_reads() {
    let cluster = Cluster::start(spec(true));
    let mut client = cluster.client();
    let mut expected = Vec::new();
    for key in 0..80u64 {
        let value = vec![(key % 97) as u8 + 1; 600];
        // Mix erasure-coded and replicated keys.
        let mid = if key % 2 == 0 { 6 } else { 2 };
        client.put_to(key, &value, mid).unwrap();
        if cluster.coordinator_of(key) == 0 {
            expected.push((key, value));
        }
    }
    assert!(expected.len() > 10);
    cluster.kill(0);

    // Without issuing a single get for the lost keys, the promoted node
    // (id 5) must drain its missing-entry count to zero.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match missing_on(&mut client, 5) {
            Some(0) => break,
            _ if Instant::now() >= deadline => {
                panic!(
                    "background recovery never drained: {:?} entries missing",
                    missing_on(&mut client, 5)
                );
            }
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }

    // And the restored bytes must be correct.
    for (key, value) in expected {
        assert_eq!(client.get(key).unwrap(), value, "key {key}");
    }
    cluster.shutdown();
}

#[test]
fn without_background_recovery_entries_stay_missing() {
    let cluster = Cluster::start(spec(false));
    let mut client = cluster.client();
    for key in 0..80u64 {
        client.put_to(key, &[1u8; 300], 6).unwrap();
    }
    cluster.kill(0);
    // Wait for the promotion + metadata recovery to settle.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match missing_on(&mut client, 5) {
            Some(n) if n > 0 => break, // Metadata recovered, data holes remain.
            _ if Instant::now() >= deadline => panic!("promotion never completed"),
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    // The holes persist (no reads, no background sweep)...
    std::thread::sleep(Duration::from_millis(500));
    let still_missing = missing_on(&mut client, 5).unwrap();
    assert!(still_missing > 0, "entries recovered without any trigger");
    // ...until a get arrives, which recovers exactly on demand.
    let victim = (0..80u64)
        .find(|&k| cluster.coordinator_of(k) == 0)
        .unwrap();
    assert_eq!(client.get(victim).unwrap(), vec![1u8; 300]);
    let after = missing_on(&mut client, 5).unwrap();
    assert!(
        after < still_missing,
        "on-demand recovery must reduce holes"
    );
    cluster.shutdown();
}
