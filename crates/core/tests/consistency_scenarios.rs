//! Strong-consistency scenarios (Section 5.2, Figure 5): version
//! pinning, commit-gated reads, and independent commits across
//! memgests, made deterministic with link failures.

use std::time::{Duration, Instant};

use ring_kvs::proto::ClientResp;
use ring_kvs::{Cluster, ClusterSpec};
use ring_net::LatencyModel;

fn spec() -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        ..ClusterSpec::paper_evaluation()
    }
}

/// Picks a key, its coordinator, and the REP2 replica target.
fn pick_key(cluster: &Cluster) -> (u64, u32, u32) {
    let key = 12345u64;
    let coordinator = cluster.coordinator_of(key);
    let cfg = cluster.config();
    let (g, shard) = cfg.locate(key);
    let replica = cfg.replica_targets(g, shard, 2)[0];
    (key, coordinator, replica)
}

fn wait_response(
    client: &mut ring_kvs::RingClient,
    req: u64,
    deadline: Duration,
) -> Option<ClientResp> {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        for (r, body) in client.poll_responses() {
            if r == req {
                return Some(body);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    None
}

#[test]
fn figure5_multi_client_scenario() {
    // The paper's Figure 5, made deterministic: client A's put to the
    // slow (replicated) memgest cannot commit while the replica link is
    // down; client B's put to the fast (unreliable) memgest commits
    // immediately with a higher version; C reads B's value right away;
    // D's earlier get stays pinned to A's version and is answered with
    // obj1 only after A's write finally commits.
    let cluster = Cluster::start(spec());
    let (key, coordinator, replica) = pick_key(&cluster);

    let mut a = cluster.client();
    let mut b = cluster.client();
    let mut c = cluster.client();
    let mut d = cluster.client();

    // Cut the replication path so version 1 stays uncommitted.
    cluster.fabric().fail_link(coordinator, replica);

    // A: put(key, obj1) to REP2 (memgest 1) — version 1, uncommitted.
    let req_a = a.put_async(key, b"obj1", Some(1)).unwrap();
    std::thread::sleep(Duration::from_millis(20)); // Let the node process it.

    // D: get(key) — pinned to version 1, postponed.
    let req_d = d.get_async(key).unwrap();
    std::thread::sleep(Duration::from_millis(20));

    // B: put(key, obj2) to REP1 (memgest 0) — version 2, commits now.
    let req_b = b.put_async(key, b"obj2", Some(0)).unwrap();
    let resp_b = wait_response(&mut b, req_b, Duration::from_secs(2)).expect("B commits");
    assert_eq!(resp_b, ClientResp::PutOk { version: 2 });

    // C: get(key) returns obj2 (the highest committed version) even
    // though version 1 is still pending.
    let (value, version) = c.get_versioned(key).unwrap();
    assert_eq!(value, b"obj2");
    assert_eq!(version, 2);

    // A and D are still waiting.
    assert!(wait_response(&mut a, req_a, Duration::from_millis(100)).is_none());
    assert!(wait_response(&mut d, req_d, Duration::from_millis(50)).is_none());

    // Heal the link: retransmission replicates version 1, it commits,
    // A gets its ack and D gets obj1 — the version its get pinned.
    cluster.fabric().heal_link(coordinator, replica);
    let resp_a = wait_response(&mut a, req_a, Duration::from_secs(2)).expect("A commits");
    assert_eq!(resp_a, ClientResp::PutOk { version: 1 });
    let resp_d = wait_response(&mut d, req_d, Duration::from_secs(2)).expect("D answered");
    assert_eq!(
        resp_d,
        ClientResp::GetOk {
            value: b"obj1".to_vec().into(),
            version: 1
        }
    );

    // The final state is still the last writer's value.
    assert_eq!(c.get(key).unwrap(), b"obj2");
    cluster.shutdown();
}

#[test]
fn get_blocks_until_commit() {
    let cluster = Cluster::start(spec());
    let (key, coordinator, replica) = pick_key(&cluster);
    let mut writer = cluster.client();
    let mut reader = cluster.client();

    cluster.fabric().fail_link(coordinator, replica);
    let w = writer.put_async(key, b"pending", Some(1)).unwrap();
    std::thread::sleep(Duration::from_millis(20));

    // The read is postponed, not answered with stale/uncommitted data.
    let r = reader.get_async(key).unwrap();
    assert!(wait_response(&mut reader, r, Duration::from_millis(80)).is_none());

    cluster.fabric().heal_link(coordinator, replica);
    assert_eq!(
        wait_response(&mut writer, w, Duration::from_secs(2)).unwrap(),
        ClientResp::PutOk { version: 1 }
    );
    assert_eq!(
        wait_response(&mut reader, r, Duration::from_secs(2)).unwrap(),
        ClientResp::GetOk {
            value: b"pending".to_vec().into(),
            version: 1
        }
    );
    cluster.shutdown();
}

#[test]
fn move_waits_for_uncommitted_source() {
    // A move must read the highest version, which requires it to be
    // committed first (Section 5.2: the move request is postponed if the
    // requested object is not durable).
    let cluster = Cluster::start(spec());
    let (key, coordinator, replica) = pick_key(&cluster);
    let mut writer = cluster.client();
    let mut mover = cluster.client();

    cluster.fabric().fail_link(coordinator, replica);
    let w = writer.put_async(key, b"to-move", Some(1)).unwrap();
    std::thread::sleep(Duration::from_millis(20));

    // Issue the move while version 1 is uncommitted.
    let m = {
        // move via the raw async API: reuse put_async's pattern through
        // the public move_key on a thread would block; send manually.
        mover.move_async(key, 6).unwrap()
    };
    assert!(wait_response(&mut mover, m, Duration::from_millis(80)).is_none());

    cluster.fabric().heal_link(coordinator, replica);
    assert_eq!(
        wait_response(&mut writer, w, Duration::from_secs(2)).unwrap(),
        ClientResp::PutOk { version: 1 }
    );
    match wait_response(&mut mover, m, Duration::from_secs(2)).unwrap() {
        ClientResp::MoveOk { version } => assert_eq!(version, 2),
        other => panic!("unexpected move response: {other:?}"),
    }
    assert_eq!(mover.get(key).unwrap(), b"to-move");
    cluster.shutdown();
}

#[test]
fn versions_are_monotone_across_interleavings() {
    let cluster = Cluster::start(spec());
    let key = 777u64;
    let mut a = cluster.client();
    let mut b = cluster.client();
    let mut last = 0;
    for i in 0..20 {
        let client = if i % 2 == 0 { &mut a } else { &mut b };
        let mid = (i % 7) as u32;
        let v = client.put_to(key, &[i as u8], mid).unwrap();
        assert!(v > last, "version went backwards: {v} after {last}");
        last = v;
    }
    let (value, version) = a.get_versioned(key).unwrap();
    assert_eq!(version, last);
    assert_eq!(value, vec![19u8]);
    cluster.shutdown();
}

#[test]
fn reads_see_latest_committed_after_concurrent_writers() {
    let cluster = Cluster::start(spec());
    let keys: Vec<u64> = (0..20).collect();
    let mut handles = Vec::new();
    for t in 0..4 {
        let mut client = cluster.client();
        let keys = keys.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..10u64 {
                for &k in &keys {
                    let mid = ((k + t + round) % 7) as u32;
                    client
                        .put_to(k, &[(t * 100 + round) as u8; 32], mid)
                        .unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Every key must be readable and hold one of the written values.
    let mut reader = cluster.client();
    for &k in &keys {
        let v = reader.get(k).unwrap();
        assert_eq!(v.len(), 32);
        assert!(v.iter().all(|&b| b == v[0]));
    }
    cluster.shutdown();
}
