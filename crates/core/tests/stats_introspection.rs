//! The introspection plane: per-node op counters and storage accounting.

use ring_kvs::{Cluster, ClusterSpec};
use ring_net::LatencyModel;

fn fast_spec() -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        ..ClusterSpec::paper_evaluation()
    }
}

#[test]
fn op_counters_track_served_requests() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    for key in 0..30u64 {
        client.put_to(key, b"value", 2).unwrap();
    }
    for key in 0..30u64 {
        client.get(key).unwrap();
    }
    client.move_key(0, 6).unwrap();
    client.delete(1).unwrap();

    let mut puts = 0;
    let mut gets = 0;
    let mut moves = 0;
    let mut deletes = 0;
    for node in 0..5u32 {
        let s = client.node_stats(node).unwrap();
        assert!(s.active, "node {node}");
        puts += s.ops.puts;
        gets += s.ops.gets;
        moves += s.ops.moves;
        deletes += s.ops.deletes;
    }
    // Coordinators count the requests they own; non-owners drop silently
    // but only receive them on multicast retries (none here).
    assert_eq!(puts, 30);
    assert_eq!(gets, 30);
    assert_eq!(moves, 1);
    assert_eq!(deletes, 1);
    cluster.shutdown();
}

#[test]
fn storage_accounting_reflects_written_bytes() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    let value = vec![1u8; 1000];
    for key in 0..60u64 {
        client.put_to(key, &value, 6).unwrap(); // SRS(3,2).
    }
    let mut data = 0usize;
    let mut parity = 0usize;
    let mut meta_entries = 0usize;
    for node in 0..5u32 {
        let s = client.node_stats(node).unwrap();
        data += s.data_bytes();
        parity += s
            .groups
            .iter()
            .flat_map(|g| g.memgests.iter())
            .map(|m| m.parity_bytes)
            .sum::<usize>();
        meta_entries += s
            .groups
            .iter()
            .flat_map(|g| g.memgests.iter())
            .map(|m| m.coord_meta_entries)
            .sum::<usize>();
    }
    assert_eq!(meta_entries, 60);
    assert_eq!(data, 60 * 1000, "primary bytes");
    // Two parity nodes, each covering ~1/k of the data heaps modulo
    // block rounding.
    assert!(parity > 0, "parity heaps in use");
    cluster.shutdown();
}

#[test]
fn replica_bytes_counted_for_replication() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    let value = vec![2u8; 500];
    for key in 0..40u64 {
        client.put_to(key, &value, 2).unwrap(); // Rep(3).
    }
    let mut replica_bytes = 0usize;
    for node in 0..5u32 {
        let s = client.node_stats(node).unwrap();
        replica_bytes += s
            .groups
            .iter()
            .flat_map(|g| g.memgests.iter())
            .map(|m| m.replica_bytes)
            .sum::<usize>();
    }
    // Every key has 2 replica copies somewhere.
    assert_eq!(replica_bytes, 40 * 500 * 2);
    cluster.shutdown();
}

#[test]
fn spare_reports_inactive() {
    let spec = ClusterSpec {
        spares: 1,
        ..fast_spec()
    };
    let cluster = Cluster::start(spec);
    let mut client = cluster.client();
    let s = client.node_stats(5).unwrap(); // The spare.
    assert!(!s.active);
    assert!(s.groups.is_empty());
    cluster.shutdown();
}
