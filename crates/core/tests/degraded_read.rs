//! Degraded-read fast path: committed gets are answered by on-demand
//! speculative `k + Δ` decode from surviving shards while recovery is
//! still in progress — the read path never waits for a parity rebuild
//! or spare promotion to finish.

use std::time::{Duration, Instant};

use ring_kvs::{Cluster, ClusterSpec, RingError};
use ring_net::LatencyModel;

fn spec_with_spares(spares: usize) -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        spares,
        fail_timeout: Duration::from_millis(150),
        ..ClusterSpec::paper_evaluation()
    }
}

/// Retries a get until it succeeds or the deadline passes.
fn get_eventually(
    client: &mut ring_kvs::RingClient,
    key: u64,
    deadline: Duration,
) -> Result<Vec<u8>, RingError> {
    let end = Instant::now() + deadline;
    loop {
        match client.get(key) {
            Ok(v) => return Ok(v),
            Err(e) if Instant::now() >= end => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// The acceptance-criteria scenario: a committed GET is answered during
/// an in-progress (and here: deliberately wedged) parity rebuild via
/// degraded decode, without waiting for the rebuild to complete.
///
/// Sequence: SRS(3,2) over nodes 0..=4 with spares 5 and 6. Kill
/// coordinator 0 → spare 5 is promoted with metadata-only holes. Cut
/// the link between spare 6 and coordinator 1, then kill parity node 3
/// → spare 6 is promoted as parity but its rebuild handshake with
/// coordinator 1 can never complete, so the rebuild stays in progress
/// for the remainder of the test. Every victim get must still succeed:
/// the promoted coordinator decodes on demand from the surviving rows
/// (data peers 1 and 2 plus parity node 4), with the rebuilding parity
/// declining its shard-read.
#[test]
fn committed_get_served_during_wedged_parity_rebuild() {
    let cluster = Cluster::start(spec_with_spares(2));
    let mut client = cluster.client();

    let mut victims = Vec::new();
    for key in 500..620u64 {
        let value = vec![(key % 199) as u8 + 1; 700];
        client.put_to(key, &value, 6).unwrap(); // SRS(3,2).
        if cluster.coordinator_of(key) == 0 {
            victims.push((key, value));
        }
    }
    assert!(victims.len() >= 4, "need several keys on shard 0");

    // Phase 1: coordinator failure and spare promotion. Burn one victim
    // as the promotion probe so the remaining ones still have data
    // holes when the parity fails.
    cluster.kill(0);
    let (probe_key, probe_value) = victims.remove(0);
    let v = get_eventually(&mut client, probe_key, Duration::from_secs(15))
        .unwrap_or_else(|e| panic!("promotion probe key {probe_key}: {e}"));
    assert_eq!(v, probe_value);

    // Phase 2: wedge the upcoming rebuild, then fail a parity node.
    // Spare 6 will be promoted as the replacement parity, but its
    // ParityRebuildStart to coordinator 1 is dropped on the cut link,
    // so the rebuild never finishes while this test runs.
    cluster.fabric().fail_link(6, 1);
    cluster.kill(3);
    // Give the leader time to detect the failure and promote spare 6,
    // so the rebuild is genuinely in progress (and wedged) before the
    // degraded reads are issued.
    std::thread::sleep(Duration::from_millis(600));

    // Phase 3: every remaining victim still has a metadata-only hole on
    // the promoted coordinator. Each get must be answered by the
    // speculative shard-read decode — the wedged rebuild guarantees the
    // answer cannot have come from waiting on recovery.
    for (key, value) in victims {
        let v = get_eventually(&mut client, key, Duration::from_secs(15))
            .unwrap_or_else(|e| panic!("degraded key {key}: {e}"));
        assert_eq!(
            v, value,
            "degraded decode returned wrong bytes for key {key}"
        );
    }

    // The link is still down: the rebuild really was in progress the
    // whole time. Heal it and confirm the cluster drains to a fully
    // recovered state (the wedge was an obstacle, not a wound).
    cluster.fabric().heal_link(6, 1);
    let mut late = cluster.client();
    let v = get_eventually(&mut late, probe_key, Duration::from_secs(15)).unwrap();
    assert_eq!(v, probe_value);
    cluster.shutdown();
}

/// `read_fanout_extra = 0` degenerates to a plain `k`-row fan-out
/// (one parity target, no speculation slack) and must still decode.
#[test]
fn degraded_read_with_zero_extra_fanout() {
    let cluster = Cluster::start(ClusterSpec {
        read_fanout_extra: 0,
        ..spec_with_spares(1)
    });
    let mut client = cluster.client();
    let mut victims = Vec::new();
    for key in 700..760u64 {
        let value = vec![(key % 97) as u8 + 1; 512];
        client.put_to(key, &value, 6).unwrap(); // SRS(3,2).
        if cluster.coordinator_of(key) == 2 {
            victims.push((key, value));
        }
    }
    assert!(!victims.is_empty());
    cluster.kill(2);
    for (key, value) in victims {
        let v = get_eventually(&mut client, key, Duration::from_secs(15))
            .unwrap_or_else(|e| panic!("key {key}: {e}"));
        assert_eq!(v, value);
    }
    cluster.shutdown();
}

/// With `read_fanout_extra = 2` every parity node is contacted up
/// front; the decode binds to whichever `k` rows land first. A dead
/// parity (no spare, so no promotion ever happens) leaves the fan-out
/// one response short on that branch, and the read completes from the
/// survivors without waiting out any retry timer.
#[test]
fn full_fanout_tolerates_dead_parity_without_retry() {
    let cluster = Cluster::start(ClusterSpec {
        read_fanout_extra: 2,
        ..spec_with_spares(1)
    });
    let mut client = cluster.client();
    let mut victims = Vec::new();
    for key in 900..960u64 {
        let value = vec![(key % 181) as u8 + 1; 640];
        client.put_to(key, &value, 6).unwrap(); // SRS(3,2).
        if cluster.coordinator_of(key) == 1 {
            victims.push((key, value));
        }
    }
    assert!(!victims.is_empty());

    // Kill the coordinator first; after its spare is promoted, also
    // kill one parity. No spare remains, so the parity stays dead and
    // every degraded read must late-bind around the silent peer.
    cluster.kill(1);
    let (probe_key, probe_value) = victims.remove(0);
    let v = get_eventually(&mut client, probe_key, Duration::from_secs(15)).unwrap();
    assert_eq!(v, probe_value);
    assert!(!victims.is_empty(), "need victims beyond the probe");

    cluster.kill(4);
    std::thread::sleep(Duration::from_millis(400));
    for (key, value) in victims {
        let v = get_eventually(&mut client, key, Duration::from_secs(15))
            .unwrap_or_else(|e| panic!("key {key}: {e}"));
        assert_eq!(v, value);
    }
    cluster.shutdown();
}
