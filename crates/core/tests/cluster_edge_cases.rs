//! Edge cases: memgest lifecycle with live data, large multi-block
//! values, version retention, and model-checked random operation mixes.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ring_kvs::{Cluster, ClusterSpec, MemgestDescriptor, RingError};
use ring_net::LatencyModel;

fn fast_spec() -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        ..ClusterSpec::paper_evaluation()
    }
}

#[test]
fn deleting_a_memgest_discards_its_keys() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    let id = client.create_memgest(MemgestDescriptor::rep(2)).unwrap();
    client.put_to(50, b"doomed", id).unwrap();
    client.put_to(51, b"safe", 2).unwrap();
    client.delete_memgest(id).unwrap();
    // Keys whose only version lived in the dropped memgest are gone;
    // others are untouched. Either way, no node must crash.
    assert_eq!(client.get(50).unwrap_err(), RingError::KeyNotFound);
    assert_eq!(client.get(51).unwrap(), b"safe");
    // The shard still works for new writes.
    client.put_to(50, b"reborn", 2).unwrap();
    assert_eq!(client.get(50).unwrap(), b"reborn");
    cluster.shutdown();
}

#[test]
fn large_values_span_blocks_and_periods() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    // Default SRS block size is 4 KiB; 64 KiB objects cross many blocks
    // and heap periods.
    for (i, mid) in [(0u64, 4u32), (1, 5), (2, 6)] {
        let value: Vec<u8> = (0..64 * 1024).map(|j| (j % 251) as u8).collect();
        client.put_to(1000 + i, &value, mid).unwrap();
        assert_eq!(client.get(1000 + i).unwrap(), value, "memgest {mid}");
        // Overwrite with different content, verify again.
        let value2: Vec<u8> = value.iter().map(|b| b ^ 0xFF).collect();
        client.put_to(1000 + i, &value2, mid).unwrap();
        assert_eq!(client.get(1000 + i).unwrap(), value2, "memgest {mid}");
    }
    cluster.shutdown();
}

#[test]
fn keep_old_versions_retains_backups() {
    let spec = ClusterSpec {
        keep_old_versions: true,
        ..fast_spec()
    };
    let cluster = Cluster::start(spec);
    let mut client = cluster.client();
    client.put_to(7, b"v1-reliable", 6).unwrap(); // SRS(3,2).
    client.move_key(7, 0).unwrap(); // To unreliable; v1 stays as backup.
    client.put_to(7, b"v3-unreliable", 0).unwrap();
    let (value, version) = client.get_versioned(7).unwrap();
    assert_eq!(value, b"v3-unreliable");
    assert_eq!(version, 3);
    cluster.shutdown();
}

#[test]
fn interleaved_deletes_and_moves_match_model() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(2024);
    for step in 0..2_000u32 {
        let key = rng.gen_range(0..50u64);
        match rng.gen_range(0..10) {
            0..=5 => {
                let value = vec![(step % 251) as u8; rng.gen_range(1..300)];
                let mid = rng.gen_range(0..7u32);
                client.put_to(key, &value, mid).unwrap();
                model.insert(key, value);
            }
            6..=7 => {
                let dst = rng.gen_range(0..7u32);
                match client.move_key(key, dst) {
                    Ok(_) => assert!(model.contains_key(&key), "step {step}"),
                    Err(RingError::KeyNotFound) => {
                        assert!(!model.contains_key(&key), "step {step}")
                    }
                    Err(e) => panic!("step {step}: {e}"),
                }
            }
            _ => match client.delete(key) {
                Ok(()) => {
                    assert!(model.remove(&key).is_some(), "step {step}");
                }
                Err(RingError::KeyNotFound) => {
                    assert!(!model.contains_key(&key), "step {step}")
                }
                Err(e) => panic!("step {step}: {e}"),
            },
        }
        // Spot-check a random key every few steps.
        if step % 7 == 0 {
            let probe = rng.gen_range(0..50u64);
            match model.get(&probe) {
                Some(expect) => assert_eq!(&client.get(probe).unwrap(), expect),
                None => assert_eq!(client.get(probe).unwrap_err(), RingError::KeyNotFound),
            }
        }
    }
    // Final full sweep.
    for key in 0..50u64 {
        match model.get(&key) {
            Some(expect) => assert_eq!(&client.get(key).unwrap(), expect),
            None => assert_eq!(client.get(key).unwrap_err(), RingError::KeyNotFound),
        }
    }
    cluster.shutdown();
}

#[test]
fn default_memgest_switch_mid_stream() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    client.put(1, b"to-default-0").unwrap();
    client.set_default_memgest(6).unwrap();
    client.put(2, b"to-default-6").unwrap();
    assert_eq!(client.get(1).unwrap(), b"to-default-0");
    assert_eq!(client.get(2).unwrap(), b"to-default-6");
    cluster.shutdown();
}

#[test]
fn move_to_same_memgest_is_a_version_bump() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    client.put_to(9, b"stay", 2).unwrap();
    let v = client.move_key(9, 2).unwrap();
    assert_eq!(v, 2);
    assert_eq!(client.get(9).unwrap(), b"stay");
    cluster.shutdown();
}

#[test]
fn single_shard_cluster_works() {
    // Degenerate deployment: s = 1 (everything on one coordinator).
    let spec = ClusterSpec {
        s: 1,
        d: 2,
        memgests: vec![
            MemgestDescriptor::rep(1),
            MemgestDescriptor::rep(3),
            MemgestDescriptor::srs(1, 2),
        ],
        ..fast_spec()
    };
    let cluster = Cluster::start(spec);
    let mut client = cluster.client();
    for key in 0..30u64 {
        client
            .put_to(key, &[key as u8; 100], (key % 3) as u32)
            .unwrap();
    }
    for key in 0..30u64 {
        assert_eq!(client.get(key).unwrap(), vec![key as u8; 100]);
    }
    cluster.shutdown();
}

#[test]
fn tombstone_then_move_is_not_found() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    client.put_to(11, b"x", 2).unwrap();
    client.delete(11).unwrap();
    assert_eq!(client.move_key(11, 6).unwrap_err(), RingError::KeyNotFound);
    cluster.shutdown();
}
