//! The headline durability property: a write that was *acknowledged*
//! (committed) to a reliable memgest is never lost, even when its
//! coordinator crashes mid-workload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ring_kvs::{Cluster, ClusterSpec};
use ring_net::LatencyModel;

fn run_scenario(memgest: u32) {
    let cluster = Cluster::start(ClusterSpec {
        latency: LatencyModel::instant(),
        spares: 1,
        fail_timeout: Duration::from_millis(150),
        ..ClusterSpec::paper_evaluation()
    });

    let stop = Arc::new(AtomicBool::new(false));
    let committed: Arc<Mutex<Vec<(u64, u32)>>> = Arc::new(Mutex::new(Vec::new()));

    // Writer thread: streams acknowledged puts, remembering exactly
    // which writes were committed (acked) before the crash.
    let mut writer = cluster.client();
    let stop_w = Arc::clone(&stop);
    let committed_w = Arc::clone(&committed);
    let writer_thread = std::thread::spawn(move || {
        let mut round = 0u32;
        // Cap below the u8 value encoding (round % 250) so the decoded
        // round can never wrap past an earlier acknowledged one.
        while !stop_w.load(Ordering::Relaxed) && round < 240 {
            for key in 0..40u64 {
                let value = vec![(round % 250) as u8 + 1; 256];
                if writer.put_to(key, &value, memgest).is_ok() {
                    committed_w.lock().expect("no poisoning").push((key, round));
                }
                if stop_w.load(Ordering::Relaxed) {
                    break;
                }
            }
            round += 1;
        }
    });

    // Let the workload run, then crash a coordinator under it.
    std::thread::sleep(Duration::from_millis(150));
    cluster.kill(1);
    std::thread::sleep(Duration::from_millis(700));
    stop.store(true, Ordering::Relaxed);
    writer_thread.join().expect("writer thread");

    // Every key's LAST acknowledged round must be readable with a value
    // from that round or a later acknowledged one (the writer may have
    // kept writing after recovery).
    let log = committed.lock().expect("no poisoning").clone();
    let mut last_acked: std::collections::HashMap<u64, u32> = Default::default();
    for (key, round) in log {
        let e = last_acked.entry(key).or_default();
        *e = (*e).max(round);
    }
    let mut reader = cluster.client();
    let deadline = Instant::now() + Duration::from_secs(10);
    for (key, last_round) in last_acked {
        loop {
            match reader.get(key) {
                Ok(v) => {
                    let round = v[0] as u32 - 1;
                    assert!(
                        round >= last_round % 250,
                        "key {key}: acknowledged round {last_round} lost, read {round}"
                    );
                    break;
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Err(e) => panic!("key {key} unreadable after recovery: {e}"),
            }
        }
    }
    cluster.shutdown();
}

#[test]
fn committed_rep3_writes_survive_coordinator_crash() {
    run_scenario(2);
}

#[test]
fn committed_srs32_writes_survive_coordinator_crash() {
    run_scenario(6);
}
