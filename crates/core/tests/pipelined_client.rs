//! Contract tests for the pipelined (windowed non-blocking) client API.
//!
//! The pipelined path must keep the sync path's guarantees while many
//! requests are in flight: every submitted request completes exactly
//! once, completions may arrive out of submission order, and duplicate
//! delivery on the fabric (a retransmission race) never commits a write
//! twice — the coordinator's RIFL-style dedup answers re-delivered
//! requests from its response cache.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use ring_kvs::{Cluster, ClusterSpec, ReqId};
use ring_net::{FaultAction, FaultInjector, LatencyModel, NodeId};

fn fast_spec() -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        ..ClusterSpec::paper_evaluation()
    }
}

const REP3: u32 = 2; // Memgest id in the paper_evaluation spec.

/// Delays the first `n` messages sent by `from` by `delay` each;
/// everything else is delivered untouched.
struct DelayFirst {
    from: NodeId,
    n: usize,
    delay: Duration,
    seen: AtomicUsize,
}

impl FaultInjector for DelayFirst {
    fn on_message(&self, from: NodeId, _to: NodeId, _bytes: usize) -> FaultAction {
        if from == self.from && self.seen.fetch_add(1, Ordering::Relaxed) < self.n {
            FaultAction::Delay(self.delay)
        } else {
            FaultAction::Deliver
        }
    }
}

/// Duplicates every message from `from` after a short extra delay.
struct DuplicateAll {
    from: NodeId,
}

impl FaultInjector for DuplicateAll {
    fn on_message(&self, from: NodeId, _to: NodeId, _bytes: usize) -> FaultAction {
        if from == self.from {
            FaultAction::Duplicate(Duration::from_micros(200))
        } else {
            FaultAction::Deliver
        }
    }
}

#[test]
fn window_keeps_many_requests_in_flight_and_completes_each_once() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    client.set_window(8);

    let n = 40u64;
    let mut submitted: Vec<ReqId> = Vec::new();
    let mut completions = Vec::new();
    for key in 0..n {
        let value = key.to_le_bytes();
        submitted.push(client.put_nb(key, &value, Some(REP3)).unwrap());
        assert!(client.in_flight() <= 8, "window must bound in-flight");
        completions.extend(client.poll());
    }
    completions.extend(client.drain());
    assert_eq!(client.in_flight(), 0);

    // Exactly one completion per submission, all successful.
    let ids: HashSet<ReqId> = completions.iter().map(|(r, _)| *r).collect();
    assert_eq!(completions.len(), n as usize);
    assert_eq!(ids, submitted.iter().copied().collect());
    for (req, res) in &completions {
        assert!(res.is_ok(), "req {req} failed: {res:?}");
    }

    // And the writes landed: read everything back through the sync API.
    for key in 0..n {
        assert_eq!(client.get(key).unwrap(), key.to_le_bytes());
    }
    cluster.shutdown();
}

#[test]
fn completions_can_arrive_out_of_submission_order() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    client.set_window(8);

    // Preload distinct keys so the gets below have answers.
    for key in 0..4u64 {
        client.put_to(key, b"preloaded-value!", REP3).unwrap();
    }

    // Delay the client's next (first pipelined) request on the wire;
    // the following ones overtake it, so its response arrives last.
    cluster
        .fabric()
        .set_fault_injector(std::sync::Arc::new(DelayFirst {
            from: client.id(),
            n: 1,
            delay: Duration::from_millis(20),
            seen: AtomicUsize::new(0),
        }));

    let slow = client.get_nb(0).unwrap();
    let mut fast = Vec::new();
    for key in 1..4u64 {
        fast.push(client.get_nb(key).unwrap());
    }
    let completions = client.drain();
    cluster.fabric().clear_fault_injector();

    assert_eq!(completions.len(), 4);
    let order: Vec<ReqId> = completions.iter().map(|(r, _)| *r).collect();
    assert_eq!(order.last(), Some(&slow), "delayed request finishes last");
    // The undelayed requests overtook it (their relative order depends
    // on coordinator-thread scheduling and is deliberately unspecified).
    let overtakers: HashSet<ReqId> = order[..3].iter().copied().collect();
    assert_eq!(overtakers, fast.iter().copied().collect());
    for (_, res) in &completions {
        assert!(res.is_ok(), "{res:?}");
    }
    cluster.shutdown();
}

#[test]
fn duplicate_delivery_of_pipelined_puts_stays_at_most_once() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    client.set_window(4);

    // Every client message is delivered twice from here on: each
    // pipelined put reaches the coordinator as a retransmission race.
    cluster
        .fabric()
        .set_fault_injector(std::sync::Arc::new(DuplicateAll { from: client.id() }));

    let n = 20u64;
    let key = 7u64;
    let mut completions = Vec::new();
    for i in 0..n {
        let value = i.to_le_bytes();
        client.put_nb(key, &value, Some(REP3)).unwrap();
        completions.extend(client.poll());
    }
    completions.extend(client.drain());
    cluster.fabric().clear_fault_injector();

    // Every put committed exactly once: the n assigned versions are a
    // permutation of 1..=n (a double-execution would skip past n).
    let mut versions: Vec<u64> = completions
        .iter()
        .map(|(req, res)| match res {
            Ok(ring_kvs::ClientResp::PutOk { version }) => *version,
            other => panic!("req {req}: unexpected {other:?}"),
        })
        .collect();
    versions.sort_unstable();
    assert_eq!(versions, (1..=n).collect::<Vec<_>>());

    let (_, final_version) = client.get_versioned(key).unwrap();
    assert_eq!(final_version, n, "exactly n commits, no duplicates");
    cluster.shutdown();
}
