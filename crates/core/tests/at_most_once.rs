//! At-most-once contract for client writes (RIFL-style dedup).
//!
//! The paper's RC transport delivers each request exactly once; the
//! simulated fabric (and the chaos injector) can duplicate or
//! re-deliver. A re-delivered write must NOT execute a second time —
//! that would assign a fresh version outside the client's linearization
//! window (e.g. a late duplicate delete tombstoning a newer put). The
//! coordinator instead resends the cached response.

use std::time::Duration;

use ring_kvs::proto::{ClientReq, ClientResp, Msg, RingEndpoint};
use ring_kvs::types::ReqId;
use ring_kvs::{Cluster, ClusterSpec, CLIENT_BASE};
use ring_net::LatencyModel;

fn fast_spec() -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        ..ClusterSpec::paper_evaluation()
    }
}

/// Waits for the response to `req`, ignoring anything else.
fn response_for(ep: &RingEndpoint, want: ReqId) -> ClientResp {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < deadline {
        if let Ok((_, Msg::Response { req, body })) = ep.recv_timeout(Duration::from_millis(50)) {
            if req == want {
                return body;
            }
        }
    }
    panic!("no response for req {want}");
}

#[test]
fn duplicated_write_requests_execute_at_most_once() {
    let cluster = Cluster::start(fast_spec());
    let raw = cluster.fabric().register(CLIENT_BASE + 999).unwrap();
    let key = 42u64;
    let coord = cluster.coordinator_of(key);
    let put = |req: ReqId, value: &[u8]| Msg::Request {
        req,
        body: ClientReq::Put {
            key,
            value: value.to_vec().into(),
            memgest: Some(2), // REP3
        },
    };

    // First put executes and gets version 1.
    raw.send(coord, put(1, b"original")).unwrap();
    assert_eq!(response_for(&raw, 1), ClientResp::PutOk { version: 1 });

    // A re-delivered copy of the same request is answered from the
    // dedup cache: same version, no re-execution.
    raw.send(coord, put(1, b"original")).unwrap();
    assert_eq!(response_for(&raw, 1), ClientResp::PutOk { version: 1 });

    // A genuinely new put sees version 2 — proof the duplicate above
    // did not burn a version.
    raw.send(coord, put(2, b"newer")).unwrap();
    assert_eq!(response_for(&raw, 2), ClientResp::PutOk { version: 2 });

    // A very late duplicate of the first put still replays the cached
    // answer instead of resurrecting "original" at version 3.
    raw.send(coord, put(1, b"original")).unwrap();
    assert_eq!(response_for(&raw, 1), ClientResp::PutOk { version: 1 });
    let mut client = cluster.client();
    assert_eq!(client.get(key).unwrap(), b"newer");

    cluster.shutdown();
}

#[test]
fn duplicated_delete_cannot_tombstone_a_newer_put() {
    let cluster = Cluster::start(fast_spec());
    let raw = cluster.fabric().register(CLIENT_BASE + 998).unwrap();
    let key = 77u64;
    let coord = cluster.coordinator_of(key);

    raw.send(
        coord,
        Msg::Request {
            req: 1,
            body: ClientReq::Put {
                key,
                value: ring_net::Payload::from(&b"v1"[..]),
                memgest: Some(2),
            },
        },
    )
    .unwrap();
    assert_eq!(response_for(&raw, 1), ClientResp::PutOk { version: 1 });

    let delete = Msg::Request {
        req: 2,
        body: ClientReq::Delete { key },
    };
    raw.send(coord, delete.clone()).unwrap();
    assert_eq!(response_for(&raw, 2), ClientResp::DeleteOk);

    // The key is rewritten...
    raw.send(
        coord,
        Msg::Request {
            req: 3,
            body: ClientReq::Put {
                key,
                value: ring_net::Payload::from(&b"v2"[..]),
                memgest: Some(2),
            },
        },
    )
    .unwrap();
    let v2 = match response_for(&raw, 3) {
        ClientResp::PutOk { version } => version,
        other => panic!("unexpected {other:?}"),
    };

    // ...and a late duplicate of the delete arrives. Without dedup it
    // would tombstone the new value; with it, the cached DeleteOk is
    // replayed and the value survives.
    raw.send(coord, delete).unwrap();
    assert_eq!(response_for(&raw, 2), ClientResp::DeleteOk);
    let mut client = cluster.client();
    let (value, version) = client.get_versioned(key).unwrap();
    assert_eq!(value, b"v2");
    assert_eq!(version, v2);

    cluster.shutdown();
}
