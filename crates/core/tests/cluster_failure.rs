//! Failure injection and recovery: spare promotion, metadata recovery,
//! on-demand data recovery (replica fetch and erasure decode), and
//! parity-heap rebuild (Section 5.5).

use std::time::{Duration, Instant};

use ring_kvs::{Cluster, ClusterSpec, RingError};
use ring_net::LatencyModel;

fn spec_with_spares(spares: usize) -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        spares,
        fail_timeout: Duration::from_millis(150),
        ..ClusterSpec::paper_evaluation()
    }
}

/// Retries a get until it succeeds or the deadline passes (recovery
/// runs concurrently with the client's retry loop).
fn get_eventually(
    client: &mut ring_kvs::RingClient,
    key: u64,
    deadline: Duration,
) -> Result<Vec<u8>, RingError> {
    let end = Instant::now() + deadline;
    loop {
        match client.get(key) {
            Ok(v) => return Ok(v),
            Err(e) if Instant::now() >= end => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

#[test]
fn rep3_survives_replica_failure_without_promotion() {
    // Quorum replication: killing one of the two replica targets leaves
    // coordinator + one replica = majority of 3.
    let cluster = Cluster::start(spec_with_spares(0));
    let mut client = cluster.client();
    client.put_to(1, b"before", 2).unwrap();
    // Node 3 is a redundant node in the single-group layout.
    cluster.kill(3);
    client.put_to(2, b"after", 2).unwrap();
    assert_eq!(client.get(1).unwrap(), b"before");
    assert_eq!(client.get(2).unwrap(), b"after");
    cluster.shutdown();
}

#[test]
fn coordinator_failure_recovers_replicated_data() {
    let cluster = Cluster::start(spec_with_spares(1));
    let mut client = cluster.client();
    // Write a batch of keys to REP3 and find one whose coordinator is
    // node 0.
    let mut victims = Vec::new();
    for key in 0..60u64 {
        client.put_to(key, &key.to_le_bytes(), 2).unwrap();
        if cluster.coordinator_of(key) == 0 {
            victims.push(key);
        }
    }
    assert!(!victims.is_empty());
    cluster.kill(0);
    // The spare must take over and serve every key, fetching lost
    // values from replicas on demand.
    for key in victims {
        let v = get_eventually(&mut client, key, Duration::from_secs(15))
            .unwrap_or_else(|e| panic!("key {key}: {e}"));
        assert_eq!(v, key.to_le_bytes().to_vec());
    }
    cluster.shutdown();
}

#[test]
fn coordinator_failure_recovers_erasure_coded_data() {
    let cluster = Cluster::start(spec_with_spares(1));
    let mut client = cluster.client();
    let mut victims = Vec::new();
    for key in 100..160u64 {
        let value = vec![(key % 251) as u8; 900];
        client.put_to(key, &value, 6).unwrap(); // SRS(3,2).
        if cluster.coordinator_of(key) == 1 {
            victims.push((key, value));
        }
    }
    assert!(!victims.is_empty());
    cluster.kill(1);
    // The promoted spare recovers metadata from a parity node, then
    // decodes each value on first access (online block recovery).
    for (key, value) in victims {
        let v = get_eventually(&mut client, key, Duration::from_secs(15))
            .unwrap_or_else(|e| panic!("key {key}: {e}"));
        assert_eq!(v, value, "key {key}");
    }
    cluster.shutdown();
}

#[test]
fn unreliable_data_is_lost_on_coordinator_failure() {
    let cluster = Cluster::start(spec_with_spares(1));
    let mut client = cluster.client();
    let mut rep_key = None;
    let mut unrel_key = None;
    for key in 0..60u64 {
        if cluster.coordinator_of(key) == 2 {
            if unrel_key.is_none() {
                client.put_to(key, b"gone", 0).unwrap(); // REP1.
                unrel_key = Some(key);
            } else if rep_key.is_none() {
                client.put_to(key, b"kept", 2).unwrap(); // REP3.
                rep_key = Some(key);
            }
        }
    }
    let (unrel_key, rep_key) = (unrel_key.unwrap(), rep_key.unwrap());
    cluster.kill(2);
    // Replicated data survives; unreliable data does not.
    assert_eq!(
        get_eventually(&mut client, rep_key, Duration::from_secs(15)).unwrap(),
        b"kept"
    );
    let end = Instant::now() + Duration::from_secs(6);
    loop {
        match client.get(unrel_key) {
            Err(RingError::KeyNotFound) => break,
            _ if Instant::now() >= end => panic!("unreliable key still served"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    cluster.shutdown();
}

#[test]
fn parity_node_failure_rebuilds_and_keeps_coding_consistent() {
    let cluster = Cluster::start(spec_with_spares(2));
    let mut client = cluster.client();
    for key in 200..240u64 {
        let value = vec![(key % 13) as u8 + 1; 600];
        client.put_to(key, &value, 6).unwrap(); // SRS(3,2): parities on 3, 4.
    }
    cluster.kill(3); // First parity node.

    // New puts must keep committing (they stall during rebuild, then
    // flush).
    let end = Instant::now() + Duration::from_secs(15);
    loop {
        match client.put_to(500, b"during-rebuild", 6) {
            Ok(_) => break,
            Err(_) if Instant::now() >= end => panic!("puts never resumed"),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }

    // Give the rebuild a moment to finish, then kill a data coordinator:
    // decode must succeed against the REBUILT parity.
    std::thread::sleep(Duration::from_millis(300));
    let victim_key = (200..240u64)
        .find(|&k| cluster.coordinator_of(k) == 0)
        .expect("some key on node 0");
    cluster.kill(0);
    let v = get_eventually(&mut client, victim_key, Duration::from_secs(15)).unwrap();
    assert_eq!(v, vec![(victim_key % 13) as u8 + 1; 600]);
    cluster.shutdown();
}

#[test]
fn writes_continue_after_promotion() {
    let cluster = Cluster::start(spec_with_spares(1));
    let mut client = cluster.client();
    client.put_to(1, b"v1", 2).unwrap();
    cluster.kill(cluster.coordinator_of(1));
    // Eventually the promoted node accepts new writes for the shard.
    let end = Instant::now() + Duration::from_secs(15);
    let version = loop {
        match client.put_to(1, b"v2", 2) {
            Ok(v) => break v,
            Err(_) if Instant::now() >= end => panic!("writes never resumed"),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    assert!(
        version >= 2,
        "recovered version counter must advance: {version}"
    );
    assert_eq!(client.get(1).unwrap(), b"v2");
    cluster.shutdown();
}

#[test]
fn move_after_recovery_works() {
    let cluster = Cluster::start(spec_with_spares(1));
    let mut client = cluster.client();
    let key = (0..60u64)
        .find(|&k| cluster.coordinator_of(k) == 0)
        .unwrap();
    let value = vec![0x3Cu8; 1200];
    client.put_to(key, &value, 6).unwrap(); // SRS(3,2).
    cluster.kill(0);
    // Move from the recovered SRS memgest to REP3: requires an on-demand
    // decode first, then a normal replicated write.
    let end = Instant::now() + Duration::from_secs(15);
    loop {
        match client.move_key(key, 2) {
            Ok(_) => break,
            Err(_) if Instant::now() >= end => panic!("move never succeeded"),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert_eq!(client.get(key).unwrap(), value);
    cluster.shutdown();
}

#[test]
fn sequential_double_failure_with_two_spares() {
    let cluster = Cluster::start(spec_with_spares(2));
    let mut client = cluster.client();
    for key in 0..40u64 {
        client.put_to(key, &[key as u8; 64], 2).unwrap();
    }
    cluster.kill(0);
    for key in 0..40u64 {
        get_eventually(&mut client, key, Duration::from_secs(15)).unwrap();
    }
    // Second failure after the first recovery completed.
    cluster.kill(1);
    for key in 0..40u64 {
        let v = get_eventually(&mut client, key, Duration::from_secs(15))
            .unwrap_or_else(|e| panic!("key {key}: {e}"));
        assert_eq!(v, vec![key as u8; 64]);
    }
    cluster.shutdown();
}

#[test]
fn dead_spare_is_skipped_at_promotion() {
    // Kill the first spare before the coordinator: the leader must
    // promote the *second* spare, not the corpse.
    let cluster = Cluster::start(spec_with_spares(2));
    let mut client = cluster.client();
    let key = (0..60u64)
        .find(|&k| cluster.coordinator_of(k) == 0)
        .expect("key on node 0");
    client.put_to(key, b"survives", 2).unwrap();
    cluster.kill(5); // First spare dies silently.
    std::thread::sleep(Duration::from_millis(250));
    cluster.kill(0); // Now the coordinator.
    let v = get_eventually(&mut client, key, Duration::from_secs(15)).unwrap();
    assert_eq!(v, b"survives");
    cluster.shutdown();
}

#[test]
fn simultaneous_coordinator_and_parity_failure_srs32() {
    // SRS(3,2) must survive two concurrent failures end to end: a data
    // coordinator and a parity node die together. The promoted parity
    // rebuilds its heap with help from the surviving parity (the dead
    // coordinator's heap is not trustworthy), and the promoted
    // coordinator decodes its objects on demand.
    let cluster = Cluster::start(spec_with_spares(3));
    let mut client = cluster.client();
    let mut victims = Vec::new();
    for key in 0..120u64 {
        let value = vec![(key % 199) as u8 + 1; 700];
        client.put_to(key, &value, 6).unwrap(); // SRS(3,2): parities on 3, 4.
        if cluster.coordinator_of(key) == 0 {
            victims.push((key, value));
        }
    }
    assert!(victims.len() > 10);
    cluster.kill(0); // Data coordinator.
    cluster.kill(3); // First parity node — at the same time.

    for (key, value) in &victims {
        let v = get_eventually(&mut client, *key, Duration::from_secs(20))
            .unwrap_or_else(|e| panic!("key {key}: {e}"));
        assert_eq!(&v, value, "key {key}");
    }

    // The memgest must be fully writable again, and a THIRD failure
    // afterwards must still be recoverable (proving the rebuilt parity
    // is byte-correct, not just present).
    let end = Instant::now() + Duration::from_secs(15);
    loop {
        match client.put_to(9999, &[7u8; 256], 6) {
            Ok(_) => break,
            Err(_) if Instant::now() < end => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("puts never resumed: {e}"),
        }
    }
    std::thread::sleep(Duration::from_millis(500)); // Let rebuilds settle.
    let survivor_key = victims.iter().map(|(k, _)| *k).find(|&k| {
        cluster.coordinator_of(k) == 1 || {
            // coordinator_of reports the bootstrap mapping; node 1 and 2
            // kept their roles, pick a key from node 1.
            false
        }
    });
    // Pick any key on node 1 (untouched so far).
    let k1 = (0..200u64)
        .find(|&k| cluster.coordinator_of(k) == 1)
        .unwrap();
    let v1 = vec![0x5Au8; 900];
    client.put_to(k1, &v1, 6).unwrap();
    let _ = survivor_key;
    cluster.kill(1);
    let got = get_eventually(&mut client, k1, Duration::from_secs(20)).unwrap();
    assert_eq!(got, v1);
    cluster.shutdown();
}
