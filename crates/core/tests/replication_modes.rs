//! Quorum vs fully synchronous replication (the §3.1 contrast and the
//! DESIGN.md ablation): a quorum commit survives a lagging replica, a
//! fully synchronous commit waits for every copy.

use std::time::Duration;

use ring_kvs::proto::ClientResp;
use ring_kvs::{Cluster, ClusterSpec};
use ring_net::LatencyModel;

fn spec(sync: bool) -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        sync_replication: sync,
        ..ClusterSpec::paper_evaluation()
    }
}

fn rep3_targets(cluster: &Cluster, key: u64) -> (u32, Vec<u32>) {
    let cfg = cluster.config();
    let (g, shard) = cfg.locate(key);
    (cfg.coordinator(g, shard), cfg.replica_targets(g, shard, 3))
}

fn wait_response(
    client: &mut ring_kvs::RingClient,
    req: u64,
    deadline: Duration,
) -> Option<ClientResp> {
    let end = std::time::Instant::now() + deadline;
    while std::time::Instant::now() < end {
        for (r, body) in client.poll_responses() {
            if r == req {
                return Some(body);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    None
}

#[test]
fn quorum_commits_with_one_replica_unreachable() {
    let cluster = Cluster::start(spec(false));
    let key = 42u64;
    let (coordinator, targets) = rep3_targets(&cluster, key);
    // Cut one of the two replica links: majority (coordinator + one
    // replica) still forms.
    cluster.fabric().fail_link(coordinator, targets[0]);
    let mut client = cluster.client();
    let v = client.put_to(key, b"quorum", 2).unwrap();
    assert_eq!(v, 1);
    assert_eq!(client.get(key).unwrap(), b"quorum");
    cluster.shutdown();
}

#[test]
fn sync_replication_stalls_until_every_copy_acks() {
    let cluster = Cluster::start(spec(true));
    let key = 42u64;
    let (coordinator, targets) = rep3_targets(&cluster, key);
    cluster.fabric().fail_link(coordinator, targets[0]);
    let mut client = cluster.client();
    let req = client.put_async(key, b"sync", Some(2)).unwrap();
    // No commit while one copy is unreachable...
    assert!(wait_response(&mut client, req, Duration::from_millis(100)).is_none());
    // ...and commit resumes when the link heals (retransmission).
    cluster.fabric().heal_link(coordinator, targets[0]);
    match wait_response(&mut client, req, Duration::from_secs(2)) {
        Some(ClientResp::PutOk { version }) => assert_eq!(version, 1),
        other => panic!("expected commit after heal, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn sync_replication_still_serves_normal_traffic() {
    let cluster = Cluster::start(spec(true));
    let mut client = cluster.client();
    for key in 0..50u64 {
        client.put_to(key, &key.to_le_bytes(), 2).unwrap();
    }
    for key in 0..50u64 {
        assert_eq!(client.get(key).unwrap(), key.to_le_bytes());
    }
    cluster.shutdown();
}
