//! Client-side failover behavior (Section 5.5): timeout, multicast
//! re-send, and coordinator learning.

use std::time::{Duration, Instant};

use ring_kvs::{Cluster, ClusterSpec};
use ring_net::LatencyModel;

#[test]
fn client_learns_new_coordinator_after_failover() {
    let cluster = Cluster::start(ClusterSpec {
        latency: LatencyModel::instant(),
        spares: 1,
        fail_timeout: Duration::from_millis(150),
        client_timeout: Duration::from_millis(120),
        ..ClusterSpec::paper_evaluation()
    });
    let mut client = cluster.client();
    let key = (0..60u64)
        .find(|&k| cluster.coordinator_of(k) == 0)
        .unwrap();
    client.put_to(key, b"before", 2).unwrap();
    cluster.kill(0);

    // First access: unicast to the dead node times out, multicast finds
    // the promoted spare — slow path.
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(15);
    loop {
        match client.get(key) {
            Ok(v) => {
                assert_eq!(v, b"before");
                break;
            }
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("never recovered: {e}"),
        }
    }
    let first = t0.elapsed();
    assert!(
        first >= Duration::from_millis(100),
        "first access should have paid at least one timeout: {first:?}"
    );

    // Subsequent accesses go straight to the learned coordinator: far
    // below one client timeout.
    for _ in 0..5 {
        let t = Instant::now();
        assert_eq!(client.get(key).unwrap(), b"before");
        assert!(
            t.elapsed() < Duration::from_millis(100),
            "learned path must not pay the timeout: {:?}",
            t.elapsed()
        );
    }

    // A fresh client starts from the stale bootstrap config and learns
    // independently.
    let mut fresh = cluster.client();
    assert_eq!(fresh.get(key).unwrap(), b"before");
    let t = Instant::now();
    assert_eq!(fresh.get(key).unwrap(), b"before");
    assert!(t.elapsed() < Duration::from_millis(100));
    cluster.shutdown();
}

#[test]
fn requests_to_unrelated_keys_are_unaffected_by_failover() {
    let cluster = Cluster::start(ClusterSpec {
        latency: LatencyModel::instant(),
        spares: 1,
        fail_timeout: Duration::from_millis(150),
        ..ClusterSpec::paper_evaluation()
    });
    let mut client = cluster.client();
    let safe_key = (0..60u64)
        .find(|&k| cluster.coordinator_of(k) == 1)
        .unwrap();
    client.put_to(safe_key, b"steady", 2).unwrap();
    cluster.kill(0);
    // Keys on surviving coordinators keep their fast path throughout
    // the failover window.
    for _ in 0..10 {
        let t = Instant::now();
        assert_eq!(client.get(safe_key).unwrap(), b"steady");
        assert!(t.elapsed() < Duration::from_millis(100));
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();
}
