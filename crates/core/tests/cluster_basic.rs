//! End-to-end tests of the basic KVS API on an in-process cluster.

use ring_kvs::{Cluster, ClusterSpec, MemgestDescriptor, RingError};
use ring_net::LatencyModel;

fn fast_spec() -> ClusterSpec {
    ClusterSpec {
        latency: LatencyModel::instant(),
        ..ClusterSpec::paper_evaluation()
    }
}

#[test]
fn put_get_round_trip_all_memgests() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    // Memgests 0..=6: REP1, REP2, REP3, REP4, SRS21, SRS31, SRS32.
    for mid in 0..7u32 {
        for (i, len) in [1usize, 2, 16, 100, 1024, 2048].iter().enumerate() {
            let key = (mid as u64) * 100 + i as u64;
            let value: Vec<u8> = (0..*len)
                .map(|j| (j as u8).wrapping_mul(31).wrapping_add(mid as u8))
                .collect();
            let v = client.put_to(key, &value, mid).unwrap();
            assert_eq!(v, 1, "memgest {mid} key {key}");
            assert_eq!(client.get(key).unwrap(), value, "memgest {mid} len {len}");
        }
    }
    cluster.shutdown();
}

#[test]
fn versions_increase_on_overwrite() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    assert_eq!(client.put_to(7, b"a", 2).unwrap(), 1);
    assert_eq!(client.put_to(7, b"bb", 2).unwrap(), 2);
    assert_eq!(client.put_to(7, b"ccc", 6).unwrap(), 3); // Different memgest.
    let (value, version) = client.get_versioned(7).unwrap();
    assert_eq!(value, b"ccc");
    assert_eq!(version, 3);
    cluster.shutdown();
}

#[test]
fn get_missing_key_is_not_found() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    assert_eq!(client.get(999).unwrap_err(), RingError::KeyNotFound);
    cluster.shutdown();
}

#[test]
fn delete_hides_key_and_survives_scheme() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    for mid in [0u32, 2, 6] {
        let key = 1000 + mid as u64;
        client.put_to(key, b"data", mid).unwrap();
        client.delete(key).unwrap();
        assert_eq!(
            client.get(key).unwrap_err(),
            RingError::KeyNotFound,
            "memgest {mid}"
        );
        // Re-put after delete gets a higher version.
        let v = client.put_to(key, b"new", mid).unwrap();
        assert!(v >= 2, "memgest {mid}: version {v}");
        assert_eq!(client.get(key).unwrap(), b"new");
    }
    cluster.shutdown();
}

#[test]
fn delete_missing_key_not_found() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    assert_eq!(client.delete(555).unwrap_err(), RingError::KeyNotFound);
    cluster.shutdown();
}

#[test]
fn move_between_all_scheme_pairs() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    let mut key = 5000u64;
    for src in 0..7u32 {
        for dst in 0..7u32 {
            let value = vec![0xA5u8; 700];
            client.put_to(key, &value, src).unwrap();
            let v = client.move_key(key, dst).unwrap();
            assert_eq!(v, 2, "move {src} -> {dst}");
            assert_eq!(client.get(key).unwrap(), value, "move {src} -> {dst}");
            key += 1;
        }
    }
    cluster.shutdown();
}

#[test]
fn move_missing_key_not_found() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    assert_eq!(client.move_key(777, 2).unwrap_err(), RingError::KeyNotFound);
    cluster.shutdown();
}

#[test]
fn put_to_unknown_memgest_rejected() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    assert_eq!(
        client.put_to(1, b"x", 99).unwrap_err(),
        RingError::UnknownMemgest(99)
    );
    cluster.shutdown();
}

#[test]
fn create_and_use_memgest_at_runtime() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    let id = client.create_memgest(MemgestDescriptor::srs(2, 2)).unwrap();
    assert_eq!(id, 7);
    client.put_to(42, b"fresh", id).unwrap();
    assert_eq!(client.get(42).unwrap(), b"fresh");
    let desc = client.memgest_descriptor(id).unwrap();
    assert_eq!(desc, MemgestDescriptor::srs(2, 2));
    cluster.shutdown();
}

#[test]
fn invalid_memgest_descriptors_rejected() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    // k > s.
    assert!(matches!(
        client.create_memgest(MemgestDescriptor::srs(4, 1)),
        Err(RingError::InvalidDescriptor(_))
    ));
    // m > d.
    assert!(matches!(
        client.create_memgest(MemgestDescriptor::srs(2, 3)),
        Err(RingError::InvalidDescriptor(_))
    ));
    // r > s + d.
    assert!(matches!(
        client.create_memgest(MemgestDescriptor::rep(6)),
        Err(RingError::InvalidDescriptor(_))
    ));
    cluster.shutdown();
}

#[test]
fn set_default_memgest_applies_to_plain_puts() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    client.set_default_memgest(6).unwrap(); // SRS32.
    client.put(11, b"in-srs").unwrap();
    assert_eq!(client.get(11).unwrap(), b"in-srs");
    cluster.shutdown();
}

#[test]
fn delete_memgest_removes_it() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    let id = client.create_memgest(MemgestDescriptor::rep(2)).unwrap();
    client.delete_memgest(id).unwrap();
    assert_eq!(
        client.put_to(1, b"x", id).unwrap_err(),
        RingError::UnknownMemgest(id)
    );
    assert_eq!(
        client.memgest_descriptor(id).unwrap_err(),
        RingError::UnknownMemgest(id)
    );
    cluster.shutdown();
}

#[test]
fn many_keys_across_all_shards() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    for key in 0..300u64 {
        let value = key.to_le_bytes().to_vec();
        client.put_to(key, &value, (key % 7) as u32).unwrap();
    }
    for key in 0..300u64 {
        assert_eq!(client.get(key).unwrap(), key.to_le_bytes().to_vec());
    }
    cluster.shutdown();
}

#[test]
fn two_clients_see_each_others_writes() {
    let cluster = Cluster::start(fast_spec());
    let mut a = cluster.client();
    let mut b = cluster.client();
    a.put_to(33, b"from-a", 2).unwrap();
    assert_eq!(b.get(33).unwrap(), b"from-a");
    b.put_to(33, b"from-b", 6).unwrap();
    assert_eq!(a.get(33).unwrap(), b"from-b");
    cluster.shutdown();
}

#[test]
fn empty_value_round_trips() {
    let cluster = Cluster::start(fast_spec());
    let mut client = cluster.client();
    client.put_to(8, b"", 2).unwrap();
    assert_eq!(client.get(8).unwrap(), Vec::<u8>::new());
    client.put_to(9, b"", 6).unwrap();
    assert_eq!(client.get(9).unwrap(), Vec::<u8>::new());
    cluster.shutdown();
}

#[test]
fn multi_group_cluster_works() {
    let spec = ClusterSpec {
        groups: 5, // s + d groups: the balancing config of Section 5.4.
        ..fast_spec()
    };
    let cluster = Cluster::start(spec);
    let mut client = cluster.client();
    for key in 0..200u64 {
        client
            .put_to(key, &key.to_be_bytes(), (key % 7) as u32)
            .unwrap();
    }
    for key in 0..200u64 {
        assert_eq!(client.get(key).unwrap(), key.to_be_bytes().to_vec());
    }
    // Move across schemes still works in every group.
    for key in 0..50u64 {
        client.move_key(key, ((key + 3) % 7) as u32).unwrap();
        assert_eq!(client.get(key).unwrap(), key.to_be_bytes().to_vec());
    }
    cluster.shutdown();
}
