//! Fine-grained API contract tests: display formats, wire-size
//! accounting, configuration arithmetic, and error surfaces.

use ring_kvs::config::{ClusterConfig, Role};
use ring_kvs::proto::{ClientReq, ClientResp, MetaEntry, Msg, ParitySeg};
use ring_kvs::types::{group_of, hash_key, shard_of};
use ring_kvs::{MemgestDescriptor, RingError, Scheme};
use ring_net::WireSize;

#[test]
fn error_display_strings() {
    assert_eq!(RingError::KeyNotFound.to_string(), "key not found");
    assert_eq!(
        RingError::UnknownMemgest(7).to_string(),
        "unknown memgest 7"
    );
    assert_eq!(RingError::Timeout.to_string(), "request timed out");
    assert!(RingError::InvalidDescriptor("x".into())
        .to_string()
        .contains("invalid descriptor"));
    assert!(RingError::Unavailable("busy".into())
        .to_string()
        .contains("busy"));
    assert!(RingError::Net("drop".into())
        .to_string()
        .contains("network"));
    assert!(RingError::Internal("bug".into())
        .to_string()
        .contains("internal"));
    assert!(RingError::NotCoordinator
        .to_string()
        .contains("coordinator"));
}

#[test]
fn net_error_converts_to_ring_error() {
    assert_eq!(
        RingError::from(ring_net::NetError::Timeout),
        RingError::Timeout
    );
    assert!(matches!(
        RingError::from(ring_net::NetError::Unreachable(3)),
        RingError::Net(_)
    ));
}

#[test]
fn descriptor_constructors() {
    assert_eq!(MemgestDescriptor::rep(3).scheme, Scheme::Rep { r: 3 });
    assert_eq!(
        MemgestDescriptor::srs(3, 2).scheme,
        Scheme::Srs { k: 3, m: 2 }
    );
    assert!(MemgestDescriptor::unreliable().scheme.is_unreliable());
    assert_eq!(MemgestDescriptor::rep(3).block_size, 4096);
}

#[test]
fn hash_key_is_a_bijection_sample() {
    // splitmix64 is invertible; sampled injectivity check.
    let mut seen = std::collections::HashSet::new();
    for k in 0..10_000u64 {
        assert!(seen.insert(hash_key(k)), "collision at {k}");
    }
}

#[test]
fn shard_and_group_bounds() {
    for key in 0..1_000u64 {
        assert!(shard_of(key, 7) < 7);
        assert!((group_of(key, 5) as usize) < 5);
    }
    // One shard / one group degenerates to zero.
    assert_eq!(shard_of(123, 1), 0);
    assert_eq!(group_of(123, 1), 0);
}

#[test]
fn msg_wire_sizes_order_sensibly() {
    let small_put = Msg::Request {
        req: 1,
        body: ClientReq::Put {
            key: 1,
            value: ring_net::Payload::from(vec![0; 64]),
            memgest: None,
        },
    };
    let get = Msg::Request {
        req: 1,
        body: ClientReq::Get { key: 1 },
    };
    let hb = Msg::Heartbeat;
    assert!(small_put.wire_size() > get.wire_size());
    assert!(get.wire_size() >= hb.wire_size());

    let resp_big = Msg::Response {
        req: 1,
        body: ClientResp::GetOk {
            value: ring_net::Payload::from(vec![0; 4096]),
            version: 1,
        },
    };
    assert!(resp_big.wire_size() > 4096);

    let parity = Msg::ParityUpdate {
        group: 0,
        memgest: 0,
        shard: 0,
        meta: MetaEntry {
            key: 1,
            version: 1,
            len: 100,
            addr: 0,
            tombstone: false,
        },
        segs: vec![ParitySeg {
            parity_addr: 0,
            delta: ring_net::Payload::from(vec![0; 100]),
        }],
    };
    assert!(parity.wire_size() > 100);
}

#[test]
fn msg_kind_names_cover_planes() {
    assert_eq!(Msg::Heartbeat.kind(), "Heartbeat");
    assert_eq!(
        Msg::MetaFetch {
            group: 0,
            memgest: 0,
            shard: 0
        }
        .kind(),
        "MetaFetch"
    );
    assert_eq!(
        Msg::RecoverBlock {
            group: 0,
            memgest: 0,
            shard: 0,
            addr: 0,
            len: 1
        }
        .kind(),
        "RecoverBlock"
    );
}

#[test]
fn config_rotation_covers_every_pairing() {
    // With s+d groups, every (node, role position) pair occurs exactly
    // once — the basis of the balancing argument.
    let cfg = ClusterConfig::initial(3, 2, 5, vec![10, 11, 12, 13, 14], vec![]);
    for node in [10u32, 11, 12, 13, 14] {
        let mut coord_shards = Vec::new();
        let mut red_idxs = Vec::new();
        for g in 0..5u8 {
            match cfg.role_of(g, node) {
                Some(Role::Coordinator(s)) => coord_shards.push(s),
                Some(Role::Redundant(i)) => red_idxs.push(i),
                None => panic!("node {node} unused in group {g}"),
            }
        }
        coord_shards.sort_unstable();
        red_idxs.sort_unstable();
        assert_eq!(coord_shards, vec![0, 1, 2], "node {node}");
        assert_eq!(red_idxs, vec![0, 1], "node {node}");
    }
}

#[test]
fn scheme_display_and_labels_agree() {
    for (scheme, display, label) in [
        (Scheme::Rep { r: 1 }, "Rep(1)", "REP1"),
        (Scheme::Rep { r: 4 }, "Rep(4)", "REP4"),
        (Scheme::Srs { k: 2, m: 1 }, "SRS(2,1)", "SRS21"),
        (Scheme::Srs { k: 3, m: 2 }, "SRS(3,2)", "SRS32"),
    ] {
        assert_eq!(scheme.to_string(), display);
        assert_eq!(scheme.label(), label);
    }
}

#[test]
fn replica_targets_scale_with_r_in_multi_group() {
    let cfg = ClusterConfig::initial(3, 2, 5, vec![0, 1, 2, 3, 4], vec![]);
    for g in 0..5u8 {
        for shard in 0..3 {
            for r in 1..=5usize {
                let t = cfg.replica_targets(g, shard, r);
                assert_eq!(t.len(), r - 1, "g {g} shard {shard} r {r}");
                assert!(!t.contains(&cfg.coordinator(g, shard)));
            }
        }
    }
}

#[test]
fn epoch_monotonicity_through_promotions() {
    let mut cfg = ClusterConfig::initial(2, 1, 1, vec![0, 1, 2], vec![3, 4]);
    let first = cfg.clone();
    cfg = cfg.promote_spare(0).unwrap();
    assert_eq!(cfg.epoch, 1);
    cfg = cfg.promote_spare(1).unwrap();
    assert_eq!(cfg.epoch, 2);
    assert!(cfg.spares.is_empty());
    assert_eq!(cfg.promote_spare(2), None); // Out of spares.
                                            // Key mapping never changed.
    for key in 0..100u64 {
        assert_eq!(first.locate(key), cfg.locate(key));
    }
}
