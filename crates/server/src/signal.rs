//! Minimal POSIX signal handling for graceful shutdown.
//!
//! The container vendors no `libc` crate, so the two syscall wrappers
//! this needs — `signal(2)` to install a handler and `kill(2)` for the
//! harness to deliver SIGTERM to children — are declared directly.
//! The handler does the only thing that is async-signal-safe here: it
//! flips one atomic flag, which the server's event loop polls via its
//! `run_until` stop predicate.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGINT` (ctrl-c).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite termination; the harness's graceful stop).
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn kill(pid: i32, sig: i32) -> i32;
}

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Installs the SIGTERM/SIGINT handler. Call once, before serving.
pub fn install() {
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// True once SIGTERM or SIGINT has been received.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Sends `sig` to `pid` (harness-side). Returns false if the signal
/// could not be delivered (e.g. the process already exited).
pub fn send(pid: u32, sig: i32) -> bool {
    unsafe { kill(pid as i32, sig) == 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear() {
        // The handler itself is exercised end-to-end by the loopback
        // integration test (SIGTERM → drain → JSON stats on stderr).
        assert!(!shutdown_requested());
        assert!(!send(0x7fff_fff0, SIGTERM), "absent pid reports failure");
    }
}
