//! Boots a real Ring cluster on `127.0.0.1`: one OS process per node
//! plus the leader, talking the `ring-wire` protocol over TCP.
//!
//! This is the process-boundary counterpart of `ring_kvs::cluster`
//! (which collapses nodes into threads on the simulated fabric). The
//! integration tests, the CI `server-smoke` job, and the bench's
//! `tcp_loopback` section all drive clusters through this harness.
//!
//! Ports are allocated by binding to `127.0.0.1:0` and handing the
//! chosen address to the child process; children are spawned with the
//! full topology as flags, so no shared files are needed.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ring_kvs::client::{ClientOptions, RingClient};
use ring_kvs::config::{CLIENT_BASE, LEADER_NODE};
use ring_kvs::proto::Msg;
use ring_kvs::types::{MemgestDescriptor, MemgestId};
use ring_net::{clock, NodeId, TcpOptions, TcpTransport};
use ring_wire::MsgCodec;

use crate::config::ClusterTopology;
use crate::signal;

/// Everything needed to boot a loopback cluster.
#[derive(Debug, Clone)]
pub struct LoopbackSpec {
    /// Shards per group.
    pub s: usize,
    /// Redundant nodes per group.
    pub d: usize,
    /// Spare nodes.
    pub spares: usize,
    /// Memgest groups.
    pub groups: usize,
    /// Memgests created at startup, ids `0..n`.
    pub memgests: Vec<MemgestDescriptor>,
    /// Default memgest for untargeted puts.
    pub default_memgest: MemgestId,
    /// Node heartbeat period.
    pub heartbeat: Duration,
    /// Leader failure-detection threshold.
    pub fail_timeout: Duration,
    /// SIGTERM drain grace passed to every server.
    pub drain_grace: Duration,
    /// Per-attempt timeout of clients the harness creates.
    pub client_timeout: Duration,
}

impl Default for LoopbackSpec {
    fn default() -> LoopbackSpec {
        LoopbackSpec {
            s: 2,
            d: 1,
            spares: 1,
            groups: 1,
            memgests: vec![MemgestDescriptor::rep(2), MemgestDescriptor::srs(2, 1)],
            default_memgest: 0,
            heartbeat: Duration::from_millis(20),
            fail_timeout: Duration::from_millis(300),
            drain_grace: Duration::from_millis(500),
            client_timeout: Duration::from_millis(1000),
        }
    }
}

/// What a gracefully stopped server left behind.
#[derive(Debug, Clone)]
pub struct StopReport {
    /// The node that stopped.
    pub node: NodeId,
    /// True if the process exited with status 0.
    pub clean_exit: bool,
    /// Its stderr — on a clean exit, one JSON stats line.
    pub stderr: String,
}

/// Locates the `ring-server` binary (or `ring-cli` via `name`).
///
/// Order: the `RING_SERVER_BIN`-style env override
/// (`RING_<NAME>_BIN` with dashes mapped to underscores), then a
/// sibling of the current executable — integration tests run from
/// `target/<profile>/deps/`, bins from `target/<profile>/`, and the
/// binaries land in `target/<profile>/`.
pub fn find_binary(name: &str) -> Option<PathBuf> {
    let env_key = format!(
        "RING_{}_BIN",
        name.trim_start_matches("ring-")
            .to_uppercase()
            .replace('-', "_")
    );
    if let Ok(p) = std::env::var(&env_key) {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    if dir.file_name().map(|n| n == "deps").unwrap_or(false) {
        dir = dir.parent()?;
    }
    let cand = dir.join(name);
    cand.is_file().then_some(cand)
}

/// A running loopback cluster. Dropping it kills any child still
/// alive; prefer [`LoopbackCluster::shutdown`] for a graceful stop.
#[derive(Debug)]
pub struct LoopbackCluster {
    topology: ClusterTopology,
    spec: LoopbackSpec,
    children: BTreeMap<NodeId, Child>,
    cli_bin: Option<PathBuf>,
    next_client: AtomicU32,
}

impl LoopbackCluster {
    /// Boots `s + d + spares` server processes plus the leader and
    /// waits until every listen port accepts connections.
    ///
    /// # Errors
    ///
    /// I/O errors from port allocation or process spawning; a timeout
    /// waiting for readiness surfaces as [`io::ErrorKind::TimedOut`].
    pub fn start(spec: LoopbackSpec) -> io::Result<LoopbackCluster> {
        let server_bin = find_binary("ring-server").ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                "ring-server binary not built (cargo build -p ring-server)",
            )
        })?;
        let total = spec.s + spec.d + spec.spares;
        let nodes: Vec<NodeId> = (0..(spec.s + spec.d) as NodeId).collect();
        let spares: Vec<NodeId> = ((spec.s + spec.d) as NodeId..total as NodeId).collect();
        let mut peers = BTreeMap::new();
        for id in nodes
            .iter()
            .chain(spares.iter())
            .copied()
            .chain([LEADER_NODE])
        {
            peers.insert(id, alloc_port()?);
        }
        let topology = ClusterTopology {
            s: spec.s,
            d: spec.d,
            groups: spec.groups,
            nodes,
            spares,
            peers,
            memgests: spec.memgests.clone(),
            default_memgest: spec.default_memgest,
        };

        let mut children = BTreeMap::new();
        for (&id, &addr) in &topology.peers {
            let mut cmd = Command::new(&server_bin);
            if id == LEADER_NODE {
                cmd.arg("--leader");
            } else {
                cmd.args(["--node", &id.to_string()]);
            }
            cmd.args(["--listen", &addr.to_string()]);
            push_topology_flags(&mut cmd, &topology);
            cmd.args(["--heartbeat-ms", &spec.heartbeat.as_millis().to_string()]);
            cmd.args([
                "--fail-timeout-ms",
                &spec.fail_timeout.as_millis().to_string(),
            ]);
            cmd.args([
                "--drain-grace-ms",
                &spec.drain_grace.as_millis().to_string(),
            ]);
            cmd.stdin(Stdio::null());
            cmd.stdout(Stdio::null());
            cmd.stderr(Stdio::piped());
            children.insert(id, cmd.spawn()?);
        }

        let cluster = LoopbackCluster {
            topology,
            spec,
            children,
            cli_bin: find_binary("ring-cli"),
            next_client: AtomicU32::new(CLIENT_BASE),
        };
        cluster.await_ready(Duration::from_secs(10))?;
        Ok(cluster)
    }

    fn await_ready(&self, timeout: Duration) -> io::Result<()> {
        let deadline = clock::now() + timeout;
        for (&id, &addr) in &self.topology.peers {
            loop {
                match TcpStream::connect_timeout(&addr, Duration::from_millis(100)) {
                    Ok(_) => break,
                    Err(e) => {
                        if clock::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("node {id} at {addr} never came up: {e}"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        }
        Ok(())
    }

    /// The deployment description the servers were spawned with.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// A fresh in-process client speaking TCP to the cluster.
    pub fn client(&self) -> RingClient<TcpTransport<Msg>> {
        let id = self.next_client.fetch_add(1, Ordering::AcqRel);
        let ep = TcpTransport::client(
            id,
            self.topology.peers.clone(),
            Arc::new(MsgCodec),
            TcpOptions::default(),
        );
        RingClient::new(
            ep,
            self.topology.config(),
            ClientOptions {
                timeout: self.spec.client_timeout,
                ..ClientOptions::default()
            },
        )
    }

    /// Runs `ring-cli` as a separate OS process against this cluster,
    /// returning its output. The topology is passed as flags; `words`
    /// is the command (`["put", "7", "hello"]`).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] if the `ring-cli` binary is not
    /// built; otherwise spawn errors.
    pub fn cli(&self, words: &[&str]) -> io::Result<std::process::Output> {
        let bin = self.cli_bin.clone().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                "ring-cli binary not built (cargo build -p ring-server)",
            )
        })?;
        let id = self.next_client.fetch_add(1, Ordering::AcqRel);
        let mut cmd = Command::new(bin);
        cmd.args(["--id", &id.to_string()]);
        cmd.args([
            "--timeout-ms",
            &self.spec.client_timeout.as_millis().to_string(),
        ]);
        push_topology_flags(&mut cmd, &self.topology);
        cmd.args(words);
        cmd.output()
    }

    /// Kills a node abruptly (SIGKILL — the paper's "manually killing
    /// processes"). The leader notices via missed heartbeats and
    /// promotes a spare.
    ///
    /// # Errors
    ///
    /// Propagates kill/wait errors; unknown ids error with
    /// [`io::ErrorKind::NotFound`].
    pub fn kill_node(&mut self, node: NodeId) -> io::Result<()> {
        let mut child = self.children.remove(&node).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no child for node {node}"))
        })?;
        child.kill()?;
        child.wait()?;
        Ok(())
    }

    /// Stops a node gracefully: SIGTERM, then waits up to `wait` for
    /// the drain-and-flush exit, falling back to SIGKILL.
    ///
    /// # Errors
    ///
    /// Propagates wait errors; unknown ids error with
    /// [`io::ErrorKind::NotFound`].
    pub fn stop_node(&mut self, node: NodeId, wait: Duration) -> io::Result<StopReport> {
        let child = self.children.remove(&node).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no child for node {node}"))
        })?;
        Self::stop_child(node, child, wait)
    }

    fn stop_child(node: NodeId, mut child: Child, wait: Duration) -> io::Result<StopReport> {
        signal::send(child.id(), signal::SIGTERM);
        let deadline = clock::now() + wait;
        let clean_exit = loop {
            match child.try_wait()? {
                Some(status) => break status.success(),
                None if clock::now() >= deadline => {
                    child.kill()?;
                    child.wait()?;
                    break false;
                }
                None => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        let mut stderr = String::new();
        if let Some(mut pipe) = child.stderr.take() {
            use std::io::Read as _;
            let _ = pipe.read_to_string(&mut stderr);
        }
        Ok(StopReport {
            node,
            clean_exit,
            stderr,
        })
    }

    /// Gracefully stops every remaining process (nodes first, leader
    /// last) and returns their reports.
    pub fn shutdown(mut self) -> Vec<StopReport> {
        let mut reports = Vec::new();
        let ids: Vec<NodeId> = self.children.keys().copied().collect();
        // BTreeMap order puts the leader (highest id) last already.
        for id in ids {
            if let Some(child) = self.children.remove(&id) {
                if let Ok(r) = Self::stop_child(id, child, Duration::from_secs(5)) {
                    reports.push(r);
                }
            }
        }
        reports
    }
}

impl Drop for LoopbackCluster {
    fn drop(&mut self) {
        for (_, child) in self.children.iter_mut() {
            let _ = child.kill();
        }
        for (_, mut child) in std::mem::take(&mut self.children) {
            let _ = child.wait();
        }
    }
}

fn push_topology_flags(cmd: &mut Command, topo: &ClusterTopology) {
    cmd.args(["--s", &topo.s.to_string()]);
    cmd.args(["--d", &topo.d.to_string()]);
    cmd.args(["--groups", &topo.groups.to_string()]);
    let list = |ids: &[NodeId]| {
        ids.iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    cmd.args(["--nodes", &list(&topo.nodes)]);
    if !topo.spares.is_empty() {
        cmd.args(["--spares", &list(&topo.spares)]);
    }
    for (id, addr) in &topo.peers {
        cmd.args(["--peer", &format!("{id}={addr}")]);
    }
    for m in &topo.memgests {
        let spec = match m.scheme {
            ring_kvs::types::Scheme::Rep { r } => format!("rep:{r}@{}", m.block_size),
            ring_kvs::types::Scheme::Srs { k, m: mm } => {
                format!("srs:{k},{mm}@{}", m.block_size)
            }
        };
        cmd.args(["--memgest", &spec]);
    }
    cmd.args(["--default-memgest", &topo.default_memgest.to_string()]);
}

/// Reserves a loopback address by briefly binding port 0.
fn alloc_port() -> io::Result<SocketAddr> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.local_addr()
}
