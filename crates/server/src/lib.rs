//! Ring as actual OS processes.
//!
//! Everything below the protocol layer is already transport-generic
//! (`ring_kvs::node::Node<T: Transport<Msg>>`); this crate supplies the
//! pieces that turn one node into one *process*:
//!
//! - [`config`] — the `ring-server` / `ring-cli` configuration surface:
//!   command-line flags plus an optional `key = value` cluster file, so
//!   every process of a deployment can share one description of the
//!   topology (ids, addresses, schemes).
//! - [`signal`] — SIGTERM/SIGINT handling for graceful shutdown: the
//!   server drains in-flight redundancy traffic and flushes its
//!   statistics to stderr as one JSON line before exiting.
//! - [`report`] — that JSON stats report (hand-rolled; the wire format
//!   of the shutdown dump is part of the CLI contract, not an artifact
//!   of a serialisation library).
//! - [`harness`] — a loopback-cluster harness that boots real
//!   `ring-server` processes on `127.0.0.1`, used by the integration
//!   tests, the CI smoke job, and the bench's `tcp_loopback` section.
//!
//! The binaries themselves live in `src/bin/ring_server.rs` (a node or,
//! with `--leader`, the membership leader) and `src/bin/ring_cli.rs`
//! (puts/gets/moves from a separate process).

pub mod config;
pub mod harness;
pub mod report;
pub mod signal;
