//! Configuration surface of the `ring-server` and `ring-cli` binaries.
//!
//! A deployment is described by a [`ClusterTopology`]: the shard layout
//! (`s`, `d`, `groups`), the node id lists, the id → address peer map,
//! and the memgest catalog. Every process of one cluster — servers,
//! leader, clients — parses the *same* description, either from a
//! shared `key = value` cluster file (`--config ring.conf`) or from
//! repeated flags; flags override file entries.
//!
//! Cluster file format (one `key = value` per line, `#` comments):
//!
//! ```text
//! s = 2
//! d = 1
//! groups = 1
//! nodes = 0,1,2
//! spares = 3
//! peer.0 = 127.0.0.1:4700
//! peer.1 = 127.0.0.1:4701
//! peer.2 = 127.0.0.1:4702
//! peer.3 = 127.0.0.1:4703
//! peer.10000 = 127.0.0.1:4799   # the leader
//! memgest = rep:2
//! memgest = srs:2,1
//! default_memgest = 0
//! ```

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

use ring_kvs::config::{ClusterConfig, CLIENT_BASE, LEADER_NODE};
use ring_kvs::types::{MemgestDescriptor, MemgestId, Scheme};
use ring_net::NodeId;

/// A configuration parse failure (message is the CLI diagnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError(msg.into()))
}

/// The shared description of one cluster deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTopology {
    /// Shards (coordinator slots) per group.
    pub s: usize,
    /// Redundant nodes per group.
    pub d: usize,
    /// Memgest groups.
    pub groups: usize,
    /// Active node ids (exactly `s + d`).
    pub nodes: Vec<NodeId>,
    /// Spare node ids.
    pub spares: Vec<NodeId>,
    /// Listen address of every process, including the leader under
    /// [`LEADER_NODE`]. Clients need no entry: they dial, servers
    /// answer over the same connection.
    pub peers: BTreeMap<NodeId, SocketAddr>,
    /// Memgests created at startup, ids `0..n` in order.
    pub memgests: Vec<MemgestDescriptor>,
    /// Default memgest for untargeted puts.
    pub default_memgest: MemgestId,
}

impl Default for ClusterTopology {
    fn default() -> ClusterTopology {
        ClusterTopology {
            s: 2,
            d: 1,
            groups: 1,
            nodes: vec![0, 1, 2],
            spares: Vec::new(),
            peers: BTreeMap::new(),
            memgests: vec![MemgestDescriptor::rep(2)],
            default_memgest: 0,
        }
    }
}

impl ClusterTopology {
    /// Parses a cluster file (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending line.
    pub fn parse_file(text: &str) -> Result<ClusterTopology, ConfigError> {
        let mut topo = ClusterTopology {
            memgests: Vec::new(),
            ..ClusterTopology::default()
        };
        let mut nodes_set = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            let at = |what: &str, e: &dyn std::fmt::Display| {
                ConfigError(format!("line {}: bad {what}: {e}", lineno + 1))
            };
            match key {
                "s" => topo.s = value.parse().map_err(|e| at("s", &e))?,
                "d" => topo.d = value.parse().map_err(|e| at("d", &e))?,
                "groups" => topo.groups = value.parse().map_err(|e| at("groups", &e))?,
                "nodes" => {
                    topo.nodes = parse_id_list(value).map_err(|e| at("nodes", &e))?;
                    nodes_set = true;
                }
                "spares" => topo.spares = parse_id_list(value).map_err(|e| at("spares", &e))?,
                "memgest" => topo
                    .memgests
                    .push(parse_scheme(value).map_err(|e| at("memgest", &e))?),
                "default_memgest" => {
                    topo.default_memgest = value.parse().map_err(|e| at("default_memgest", &e))?
                }
                _ => {
                    if let Some(id) = key.strip_prefix("peer.") {
                        let id: NodeId = id.parse().map_err(|e| at("peer id", &e))?;
                        let addr: SocketAddr = value.parse().map_err(|e| at("peer address", &e))?;
                        topo.peers.insert(id, addr);
                    } else {
                        return err(format!("line {}: unknown key `{key}`", lineno + 1));
                    }
                }
            }
        }
        if !nodes_set {
            topo.nodes = (0..(topo.s + topo.d) as NodeId).collect();
        }
        if topo.memgests.is_empty() {
            topo.memgests.push(MemgestDescriptor::rep(2));
        }
        topo.validate()?;
        Ok(topo)
    }

    /// Renders the topology back into the cluster-file format (the
    /// harness writes this for the processes it spawns).
    pub fn to_file(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "s = {}", self.s);
        let _ = writeln!(out, "d = {}", self.d);
        let _ = writeln!(out, "groups = {}", self.groups);
        let _ = writeln!(out, "nodes = {}", fmt_id_list(&self.nodes));
        if !self.spares.is_empty() {
            let _ = writeln!(out, "spares = {}", fmt_id_list(&self.spares));
        }
        for (id, addr) in &self.peers {
            let _ = writeln!(out, "peer.{id} = {addr}");
        }
        for m in &self.memgests {
            let _ = writeln!(out, "memgest = {}", fmt_scheme(m));
        }
        let _ = writeln!(out, "default_memgest = {}", self.default_memgest);
        out
    }

    /// Sanity-checks the topology.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] describing the inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.s == 0 {
            return err("need at least one shard (s > 0)");
        }
        if self.groups == 0 {
            return err("need at least one group");
        }
        if self.nodes.len() != self.s + self.d {
            return err(format!(
                "nodes list has {} entries, s + d = {}",
                self.nodes.len(),
                self.s + self.d
            ));
        }
        if self.memgests.is_empty() {
            return err("need at least one memgest");
        }
        if self.default_memgest as usize >= self.memgests.len() {
            return err(format!(
                "default_memgest {} out of range (have {} memgests)",
                self.default_memgest,
                self.memgests.len()
            ));
        }
        for &id in self.nodes.iter().chain(self.spares.iter()) {
            if id >= CLIENT_BASE {
                return err(format!("node id {id} collides with the client id range"));
            }
        }
        Ok(())
    }

    /// The bootstrap [`ClusterConfig`] every process starts from.
    pub fn config(&self) -> ClusterConfig {
        ClusterConfig::initial(
            self.s,
            self.d,
            self.groups,
            self.nodes.clone(),
            self.spares.clone(),
        )
    }

    /// The memgest catalog as `(id, descriptor)` pairs, ids `0..n`.
    pub fn catalog(&self) -> Vec<(MemgestId, MemgestDescriptor)> {
        self.memgests
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as MemgestId, d))
            .collect()
    }
}

fn parse_id_list(s: &str) -> Result<Vec<NodeId>, ConfigError> {
    if s.trim().is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<NodeId>()
                .map_err(|e| ConfigError(format!("`{}`: {e}", p.trim())))
        })
        .collect()
}

fn fmt_id_list(ids: &[NodeId]) -> String {
    ids.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a scheme spec: `rep:<r>` or `srs:<k>,<m>`, optionally
/// suffixed with `@<block_size>`.
///
/// # Errors
///
/// [`ConfigError`] describing the malformed spec.
pub fn parse_scheme(spec: &str) -> Result<MemgestDescriptor, ConfigError> {
    let (scheme_part, block) = match spec.split_once('@') {
        Some((s, b)) => (
            s,
            Some(
                b.parse::<usize>()
                    .map_err(|e| ConfigError(format!("block size `{b}`: {e}")))?,
            ),
        ),
        None => (spec, None),
    };
    let Some((name, params)) = scheme_part.split_once(':') else {
        return err(format!(
            "scheme `{spec}` must be rep:<r> or srs:<k>,<m> (e.g. rep:2, srs:2,1)"
        ));
    };
    let mut desc = match name.trim() {
        "rep" => {
            let r: usize = params
                .trim()
                .parse()
                .map_err(|e| ConfigError(format!("rep factor `{params}`: {e}")))?;
            if r == 0 {
                return err("rep factor must be >= 1");
            }
            MemgestDescriptor::rep(r)
        }
        "srs" => {
            let Some((k, m)) = params.split_once(',') else {
                return err(format!("srs spec `{params}` must be <k>,<m>"));
            };
            let k: usize = k
                .trim()
                .parse()
                .map_err(|e| ConfigError(format!("srs k `{k}`: {e}")))?;
            let m: usize = m
                .trim()
                .parse()
                .map_err(|e| ConfigError(format!("srs m `{m}`: {e}")))?;
            if k == 0 || m == 0 {
                return err("srs k and m must be >= 1");
            }
            MemgestDescriptor::srs(k, m)
        }
        other => return err(format!("unknown scheme `{other}` (want rep or srs)")),
    };
    if let Some(b) = block {
        desc.block_size = b;
    }
    Ok(desc)
}

fn fmt_scheme(d: &MemgestDescriptor) -> String {
    match d.scheme {
        Scheme::Rep { r } => format!("rep:{r}@{}", d.block_size),
        Scheme::Srs { k, m } => format!("srs:{k},{m}@{}", d.block_size),
    }
}

/// Parsed `ring-server` command line.
#[derive(Debug, Clone)]
pub struct ServerArgs {
    /// This process's node id ([`LEADER_NODE`] when `--leader`).
    pub node: NodeId,
    /// Run the membership leader instead of a storage node.
    pub leader: bool,
    /// Listen address (defaults to this node's `peer.<id>` entry).
    pub listen: SocketAddr,
    /// The shared deployment description.
    pub topology: ClusterTopology,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Leader failure-detection threshold.
    pub fail_timeout: Duration,
    /// How long a SIGTERM'd node keeps draining in-flight redundancy
    /// traffic before exiting anyway.
    pub drain_grace: Duration,
}

/// Parses the `ring-server` command line (without the program name).
///
/// # Errors
///
/// [`ConfigError`] with a usage-style diagnostic.
pub fn parse_server_args(args: &[String]) -> Result<ServerArgs, ConfigError> {
    let mut parser = FlagParser::new(args)?;
    let leader = parser.take_bool("--leader");
    let node: Option<NodeId> = parser.take_parsed("--node")?;
    let listen: Option<SocketAddr> = parser.take_parsed("--listen")?;
    let heartbeat = parser.take_ms("--heartbeat-ms", 20)?;
    let fail_timeout = parser.take_ms("--fail-timeout-ms", 300)?;
    let drain_grace = parser.take_ms("--drain-grace-ms", 500)?;
    let topology = parser.finish_topology()?;

    let node = match (leader, node) {
        (true, None) => LEADER_NODE,
        (true, Some(n)) if n != LEADER_NODE => {
            return err(format!("--leader runs as node {LEADER_NODE}; omit --node"));
        }
        (_, Some(n)) => n,
        (false, None) => return err("missing --node <id> (or --leader)"),
    };
    let listen = match listen.or_else(|| topology.peers.get(&node).copied()) {
        Some(a) => a,
        None => {
            return err(format!(
                "no listen address: pass --listen or add peer.{node} to the config"
            ))
        }
    };
    Ok(ServerArgs {
        node,
        leader,
        listen,
        topology,
        heartbeat,
        fail_timeout,
        drain_grace,
    })
}

/// Parsed `ring-cli` command line: connection options plus the
/// remaining positional words (the command and its operands).
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// This client's id (must be `>=` [`CLIENT_BASE`]). Defaults to a
    /// pid-derived id: every `ring-cli` process is a distinct client,
    /// and two processes sharing an id would receive each other's late
    /// or duplicated responses (request ids restart at zero in every
    /// process, so they alias).
    pub id: NodeId,
    /// The shared deployment description.
    pub topology: ClusterTopology,
    /// Per-attempt response timeout.
    pub timeout: Duration,
    /// Command and operands, e.g. `["put", "7", "hello"]`.
    pub command: Vec<String>,
}

/// Parses the `ring-cli` command line (without the program name).
///
/// # Errors
///
/// [`ConfigError`] with a usage-style diagnostic.
pub fn parse_cli_args(args: &[String]) -> Result<CliArgs, ConfigError> {
    let mut parser = FlagParser::new(args)?;
    let id: NodeId = parser
        .take_parsed("--id")?
        .unwrap_or_else(|| CLIENT_BASE + std::process::id() % 10_000);
    let timeout = parser.take_ms("--timeout-ms", 1000)?;
    let command = std::mem::take(&mut parser.positional);
    let topology = parser.finish_topology()?;
    if id < CLIENT_BASE {
        return err(format!("client id {id} must be >= {CLIENT_BASE}"));
    }
    if command.is_empty() {
        return err("missing command (put | get | del | move | stats | descriptor)");
    }
    Ok(CliArgs {
        id,
        topology,
        timeout,
        command,
    })
}

/// Shared flag scanner for the two binaries: collects the topology
/// flags into a map, leaves binary-specific flags to the caller.
struct FlagParser {
    flags: BTreeMap<String, Vec<String>>,
    positional: Vec<String>,
}

impl FlagParser {
    /// Flags that take a value (everything else is boolean or
    /// positional).
    const VALUED: [&'static str; 16] = [
        "--config",
        "--node",
        "--listen",
        "--peer",
        "--s",
        "--d",
        "--groups",
        "--nodes",
        "--spares",
        "--memgest",
        "--default-memgest",
        "--heartbeat-ms",
        "--fail-timeout-ms",
        "--drain-grace-ms",
        "--id",
        "--timeout-ms",
    ];

    fn new(args: &[String]) -> Result<FlagParser, ConfigError> {
        let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(rest) = arg.strip_prefix("--") {
                let flag = format!("--{}", rest.split('=').next().unwrap_or(rest));
                let valued = Self::VALUED.contains(&flag.as_str());
                let value = if let Some((_, v)) = arg.split_once('=') {
                    Some(v.to_string())
                } else if valued {
                    it.next().cloned()
                } else {
                    None
                };
                if valued {
                    match value {
                        Some(v) => flags.entry(flag).or_default().push(v),
                        None => return err(format!("flag {flag} needs a value")),
                    }
                } else {
                    flags.entry(flag).or_default().push(String::new());
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(FlagParser { flags, positional })
    }

    fn take_bool(&mut self, flag: &str) -> bool {
        self.flags.remove(flag).is_some()
    }

    fn take_one(&mut self, flag: &str) -> Result<Option<String>, ConfigError> {
        match self.flags.remove(flag) {
            None => Ok(None),
            Some(mut vs) if vs.len() == 1 => Ok(vs.pop()),
            Some(_) => err(format!("flag {flag} given more than once")),
        }
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Option<T>, ConfigError>
    where
        T::Err: std::fmt::Display,
    {
        match self.take_one(flag)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| ConfigError(format!("flag {flag} `{v}`: {e}"))),
        }
    }

    fn take_ms(&mut self, flag: &str, default_ms: u64) -> Result<Duration, ConfigError> {
        Ok(Duration::from_millis(
            self.take_parsed::<u64>(flag)?.unwrap_or(default_ms),
        ))
    }

    /// Consumes the topology flags: the `--config` file (if any) is the
    /// base, individual flags override it.
    fn finish_topology(mut self) -> Result<ClusterTopology, ConfigError> {
        let mut topo = match self.take_one("--config")? {
            Some(path) => {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| ConfigError(format!("reading {path}: {e}")))?;
                ClusterTopology::parse_file(&text)?
            }
            None => ClusterTopology::default(),
        };
        if let Some(s) = self.take_parsed("--s")? {
            topo.s = s;
        }
        if let Some(d) = self.take_parsed("--d")? {
            topo.d = d;
        }
        if let Some(g) = self.take_parsed("--groups")? {
            topo.groups = g;
        }
        if let Some(nodes) = self.take_one("--nodes")? {
            topo.nodes = parse_id_list(&nodes)?;
        } else if topo.peers.is_empty() && topo.nodes.len() != topo.s + topo.d {
            topo.nodes = (0..(topo.s + topo.d) as NodeId).collect();
        }
        if let Some(spares) = self.take_one("--spares")? {
            topo.spares = parse_id_list(&spares)?;
        }
        if let Some(specs) = self.flags.remove("--memgest") {
            topo.memgests = specs
                .iter()
                .map(|s| parse_scheme(s))
                .collect::<Result<_, _>>()?;
        }
        if let Some(d) = self.take_parsed("--default-memgest")? {
            topo.default_memgest = d;
        }
        for spec in self.flags.remove("--peer").unwrap_or_default() {
            let Some((id, addr)) = spec.split_once('=') else {
                return err(format!("--peer `{spec}` must be <id>=<addr>"));
            };
            let id: NodeId = id
                .trim()
                .parse()
                .map_err(|e| ConfigError(format!("--peer id `{id}`: {e}")))?;
            let addr: SocketAddr = addr
                .trim()
                .parse()
                .map_err(|e| ConfigError(format!("--peer address `{addr}`: {e}")))?;
            topo.peers.insert(id, addr);
        }
        if let Some(unknown) = self.flags.keys().next() {
            return err(format!("unknown flag {unknown}"));
        }
        topo.validate()?;
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_round_trip() {
        let mut topo = ClusterTopology {
            spares: vec![3],
            nodes: vec![0, 1, 2],
            memgests: vec![MemgestDescriptor::rep(2), MemgestDescriptor::srs(2, 1)],
            ..ClusterTopology::default()
        };
        for id in [0u32, 1, 2, 3, LEADER_NODE] {
            topo.peers.insert(
                id,
                format!("127.0.0.1:{}", 4700 + (id % 100)).parse().unwrap(),
            );
        }
        let text = topo.to_file();
        let back = ClusterTopology::parse_file(&text).unwrap();
        assert_eq!(back, topo);
    }

    #[test]
    fn scheme_specs() {
        assert_eq!(parse_scheme("rep:3").unwrap(), MemgestDescriptor::rep(3));
        assert_eq!(
            parse_scheme("srs:2,1").unwrap(),
            MemgestDescriptor::srs(2, 1)
        );
        let d = parse_scheme("srs:3,2@4096").unwrap();
        assert_eq!(d.scheme, Scheme::Srs { k: 3, m: 2 });
        assert_eq!(d.block_size, 4096);
        assert!(parse_scheme("rep").is_err());
        assert!(parse_scheme("xor:1").is_err());
        assert!(parse_scheme("rep:0").is_err());
        assert!(parse_scheme("srs:2").is_err());
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn server_flags() {
        let a = parse_server_args(&args(&[
            "--node",
            "1",
            "--listen",
            "127.0.0.1:4701",
            "--peer",
            "0=127.0.0.1:4700",
            "--peer",
            "1=127.0.0.1:4701",
            "--peer",
            "2=127.0.0.1:4702",
            "--memgest",
            "rep:2",
            "--drain-grace-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(a.node, 1);
        assert!(!a.leader);
        assert_eq!(a.listen, "127.0.0.1:4701".parse().unwrap());
        assert_eq!(a.drain_grace, Duration::from_millis(250));
        assert_eq!(a.topology.peers.len(), 3);
    }

    #[test]
    fn leader_flag_implies_leader_node() {
        let a = parse_server_args(&args(&["--leader", "--listen", "127.0.0.1:4799"])).unwrap();
        assert_eq!(a.node, LEADER_NODE);
        assert!(a.leader);
        assert!(parse_server_args(&args(&["--leader", "--node", "3"])).is_err());
    }

    #[test]
    fn missing_node_rejected() {
        assert!(parse_server_args(&args(&["--listen", "127.0.0.1:4700"])).is_err());
        assert!(
            parse_server_args(&args(&["--node", "0"])).is_err(),
            "no listen"
        );
        assert!(parse_server_args(&args(&["--node", "0", "--bogus"])).is_err());
    }

    #[test]
    fn cli_command_words() {
        let a =
            parse_cli_args(&args(&["--peer", "0=127.0.0.1:4700", "put", "7", "hello"])).unwrap();
        assert_eq!(a.command, vec!["put", "7", "hello"]);
        // Default id is pid-derived but always in the client range.
        assert!(a.id >= CLIENT_BASE && a.id < CLIENT_BASE + 10_000);
        let b = parse_cli_args(&args(&[
            "--peer",
            "0=127.0.0.1:4700",
            "--id",
            "20042",
            "get",
            "1",
        ]))
        .unwrap();
        assert_eq!(b.id, 20042);
        assert!(parse_cli_args(&args(&["--peer", "0=127.0.0.1:4700"])).is_err());
        assert!(parse_cli_args(&args(&["--id", "5", "get", "1"])).is_err());
    }
}
