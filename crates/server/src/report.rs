//! The shutdown stats report: one JSON object on stderr.
//!
//! A SIGTERM'd `ring-server` drains and then prints exactly one line —
//! `{"node":…,"role":…,"ops":{…},"net":{…}}` — so harnesses and
//! operators can scrape final counters without parsing logs. The format
//! is part of the CLI contract (asserted by the loopback integration
//! tests), hence hand-rolled here rather than derived.

use ring_kvs::stats::NodeStats;
use ring_net::NetStatsSnapshot;

fn push_net(out: &mut String, net: &NetStatsSnapshot) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "\"net\":{{\"msgs_sent\":{},\"bytes_sent\":{},\"msgs_received\":{},\
         \"bytes_received\":{},\"retransmits\":{},\"rdma_reads\":{},\
         \"rdma_read_bytes\":{},\"rdma_writes\":{},\"rdma_write_bytes\":{}}}",
        net.msgs_sent,
        net.bytes_sent,
        net.msgs_received,
        net.bytes_received,
        net.retransmits,
        net.rdma_reads,
        net.rdma_read_bytes,
        net.rdma_writes,
        net.rdma_write_bytes,
    );
}

/// Renders a storage node's shutdown report.
pub fn node_report(stats: &NodeStats, net: &NetStatsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"node\":{},\"role\":\"node\",\"epoch\":{},\"active\":{},\
         \"ops\":{{\"puts\":{},\"gets\":{},\"deletes\":{},\"moves\":{},\
         \"redundancy_updates\":{}}},",
        stats.node,
        stats.epoch,
        stats.active,
        stats.ops.puts,
        stats.ops.gets,
        stats.ops.deletes,
        stats.ops.moves,
        stats.ops.redundancy_updates,
    );
    push_net(&mut out, net);
    out.push('}');
    out
}

/// Renders the leader's shutdown report.
pub fn leader_report(node: u32, epoch: u64, net: &NetStatsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"node\":{node},\"role\":\"leader\",\"epoch\":{epoch},"
    );
    push_net(&mut out, net);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_kvs::stats::OpCounters;

    #[test]
    fn reports_are_single_line_json() {
        let stats = NodeStats {
            node: 3,
            epoch: 2,
            active: true,
            ops: OpCounters {
                puts: 4,
                gets: 5,
                deletes: 0,
                moves: 1,
                redundancy_updates: 6,
            },
            groups: Vec::new(),
        };
        let net = NetStatsSnapshot {
            msgs_sent: 10,
            bytes_sent: 1000,
            ..NetStatsSnapshot::default()
        };
        let node = node_report(&stats, &net);
        assert!(!node.contains('\n'));
        assert!(node.contains("\"role\":\"node\""));
        assert!(node.contains("\"puts\":4"));
        assert!(node.contains("\"msgs_sent\":10"));
        let leader = leader_report(10_000, 7, &net);
        assert!(leader.contains("\"role\":\"leader\""));
        assert!(leader.contains("\"epoch\":7"));
        assert!(leader.starts_with('{') && leader.ends_with('}'));
    }
}
