//! `ring-server`: one Ring cluster process.
//!
//! Runs a storage node (`--node <id>`) or the membership leader
//! (`--leader`) on a TCP listener, speaking the `ring-wire` protocol.
//! On SIGTERM/SIGINT the process drains in-flight redundancy traffic
//! (bounded by `--drain-grace-ms`) and flushes its final statistics to
//! stderr as one JSON line.
//!
//! ```text
//! ring-server --node 0 --config ring.conf
//! ring-server --leader --config ring.conf
//! ```

use std::sync::Arc;

use ring_kvs::leader::{Leader, LeaderOptions};
use ring_kvs::node::{Node, NodeOptions};
use ring_net::{TcpOptions, TcpTransport};
use ring_server::config::{parse_server_args, ServerArgs};
use ring_server::{report, signal};
use ring_wire::MsgCodec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_server_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ring-server: {e}");
            std::process::exit(2);
        }
    };
    signal::install();
    let transport = match TcpTransport::bind(
        parsed.node,
        parsed.listen,
        parsed.topology.peers.clone(),
        Arc::new(MsgCodec),
        TcpOptions::default(),
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ring-server: binding {}: {e}", parsed.listen);
            std::process::exit(1);
        }
    };
    if parsed.leader {
        run_leader(transport, &parsed);
    } else {
        run_node(transport, &parsed);
    }
}

fn run_leader(transport: TcpTransport<ring_kvs::proto::Msg>, parsed: &ServerArgs) {
    let mut leader = Leader::new(
        transport,
        parsed.topology.config(),
        parsed.topology.catalog(),
        parsed.topology.default_memgest,
        LeaderOptions {
            fail_timeout: parsed.fail_timeout,
            ..LeaderOptions::default()
        },
    );
    leader.run_until(signal::shutdown_requested);
    let snap = leader.transport().stats().snapshot();
    eprintln!(
        "{}",
        report::leader_report(parsed.node, leader.config().epoch, &snap)
    );
}

fn run_node(transport: TcpTransport<ring_kvs::proto::Msg>, parsed: &ServerArgs) {
    let mut node = Node::new(
        transport,
        parsed.topology.config(),
        NodeOptions {
            heartbeat_interval: parsed.heartbeat,
            initial_memgests: parsed.topology.catalog(),
            default_memgest: parsed.topology.default_memgest,
            ..NodeOptions::default()
        },
    );
    node.run_until(signal::shutdown_requested, parsed.drain_grace);
    let snap = node.transport().stats().snapshot();
    eprintln!("{}", report::node_report(&node.node_stats(), &snap));
}
