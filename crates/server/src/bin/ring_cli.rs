//! `ring-cli`: drive a Ring cluster from a separate process.
//!
//! ```text
//! ring-cli --config ring.conf put 7 hello          # default memgest
//! ring-cli --config ring.conf put 7 hello 1        # memgest 1
//! ring-cli --config ring.conf get 7
//! ring-cli --config ring.conf move 7 1
//! ring-cli --config ring.conf del 7
//! ring-cli --config ring.conf stats 0
//! ring-cli --config ring.conf create-memgest srs:2,1
//! ring-cli --config ring.conf descriptor 1
//! ```
//!
//! Mutations print `OK version=<v>` (or `OK`); `get` prints the value
//! bytes on stdout. Exit status: 0 success, 1 operation failure, 2
//! usage error.

use std::sync::Arc;

use ring_kvs::client::{ClientOptions, RingClient};
use ring_kvs::proto::Msg;
use ring_kvs::types::{Key, MemgestId};
use ring_kvs::RingError;
use ring_net::{TcpOptions, TcpTransport};
use ring_server::config::{parse_cli_args, parse_scheme, ConfigError};
use ring_wire::MsgCodec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_cli_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ring-cli: {e}");
            std::process::exit(2);
        }
    };
    let ep = TcpTransport::client(
        parsed.id,
        parsed.topology.peers.clone(),
        Arc::new(MsgCodec),
        TcpOptions::default(),
    );
    let mut client = RingClient::new(
        ep,
        parsed.topology.config(),
        ClientOptions {
            timeout: parsed.timeout,
            ..ClientOptions::default()
        },
    );
    match run(&mut client, &parsed.command) {
        Ok(()) => {}
        Err(CliError::Usage(msg)) => {
            eprintln!("ring-cli: {msg}");
            std::process::exit(2);
        }
        Err(CliError::Op(e)) => {
            eprintln!("ring-cli: {e}");
            std::process::exit(1);
        }
    }
}

enum CliError {
    Usage(String),
    Op(RingError),
}

impl From<RingError> for CliError {
    fn from(e: RingError) -> CliError {
        CliError::Op(e)
    }
}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> CliError {
        CliError::Usage(e.0)
    }
}

fn want<T: std::str::FromStr>(words: &[String], i: usize, what: &str) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    let w = words
        .get(i)
        .ok_or_else(|| CliError::Usage(format!("missing {what}")))?;
    w.parse()
        .map_err(|e| CliError::Usage(format!("bad {what} `{w}`: {e}")))
}

fn run(client: &mut RingClient<TcpTransport<Msg>>, words: &[String]) -> Result<(), CliError> {
    match words[0].as_str() {
        "put" => {
            let key: Key = want(words, 1, "key")?;
            let value = words
                .get(2)
                .ok_or_else(|| CliError::Usage("missing value".into()))?;
            let version = match words.get(3) {
                Some(m) => {
                    let id: MemgestId = m
                        .parse()
                        .map_err(|e| CliError::Usage(format!("bad memgest `{m}`: {e}")))?;
                    client.put_to(key, value.as_bytes(), id)?
                }
                None => client.put(key, value.as_bytes())?,
            };
            println!("OK version={version}");
        }
        "get" => {
            let key: Key = want(words, 1, "key")?;
            let (value, version) = client.get_versioned(key)?;
            eprintln!("version={version}");
            println!("{}", String::from_utf8_lossy(&value));
        }
        "del" => {
            let key: Key = want(words, 1, "key")?;
            client.delete(key)?;
            println!("OK");
        }
        "move" => {
            let key: Key = want(words, 1, "key")?;
            let dst: MemgestId = want(words, 2, "destination memgest")?;
            let version = client.move_key(key, dst)?;
            println!("OK version={version}");
        }
        "stats" => {
            let node: u32 = want(words, 1, "node id")?;
            let s = client.node_stats(node)?;
            println!(
                "node={} epoch={} active={} puts={} gets={} deletes={} moves={} redundancy_updates={}",
                s.node,
                s.epoch,
                s.active,
                s.ops.puts,
                s.ops.gets,
                s.ops.deletes,
                s.ops.moves,
                s.ops.redundancy_updates,
            );
        }
        "create-memgest" => {
            let spec = words
                .get(1)
                .ok_or_else(|| CliError::Usage("missing scheme spec".into()))?;
            let id = client.create_memgest(parse_scheme(spec)?)?;
            println!("OK id={id}");
        }
        "descriptor" => {
            let id: MemgestId = want(words, 1, "memgest id")?;
            let d = client.memgest_descriptor(id)?;
            match d.scheme {
                ring_kvs::types::Scheme::Rep { r } => {
                    println!("rep:{r}@{}", d.block_size)
                }
                ring_kvs::types::Scheme::Srs { k, m } => {
                    println!("srs:{k},{m}@{}", d.block_size)
                }
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown command `{other}` (put | get | del | move | stats | create-memgest | descriptor)"
            )));
        }
    }
    Ok(())
}
