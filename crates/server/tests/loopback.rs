//! End-to-end tests against real `ring-server` OS processes on
//! loopback TCP: PUT/GET/MOVE for REP and SRS memgests, a separate
//! `ring-cli` client process, node kill + spare promotion, and
//! SIGTERM-graceful shutdown with the JSON stats flush.

use std::time::{Duration, Instant};

use ring_server::harness::{LoopbackCluster, LoopbackSpec};

/// Points the harness at the binaries cargo built for this test run.
fn setup_bins() {
    std::env::set_var("RING_SERVER_BIN", env!("CARGO_BIN_EXE_ring-server"));
    std::env::set_var("RING_CLI_BIN", env!("CARGO_BIN_EXE_ring-cli"));
}

/// Retries `f` until it succeeds or `timeout` elapses.
fn retry<T, E: std::fmt::Debug>(
    timeout: Duration,
    mut f: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let deadline = Instant::now() + timeout;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn put_get_move_over_tcp() {
    setup_bins();
    let cluster = LoopbackCluster::start(LoopbackSpec::default()).expect("cluster boots");
    let mut client = cluster.client();

    // REP memgest (id 0, the default).
    for key in 0..8u64 {
        let value = format!("value-{key}");
        let version = retry(Duration::from_secs(10), || {
            client.put(key, value.as_bytes())
        })
        .unwrap_or_else(|e| panic!("put {key}: {e:?}"));
        assert!(version >= 1);
    }
    for key in 0..8u64 {
        let got = client.get(key).expect("get after put");
        assert_eq!(got, format!("value-{key}").into_bytes());
    }

    // SRS memgest (id 1): targeted puts.
    for key in 100..108u64 {
        let value = format!("srs-{key}");
        client.put_to(key, value.as_bytes(), 1).expect("srs put");
        assert_eq!(client.get(key).expect("srs get"), value.into_bytes());
    }

    // Move a key REP -> SRS and back; reads must survive both hops.
    client.move_key(3, 1).expect("move to srs");
    assert_eq!(client.get(3).expect("get after move"), b"value-3".to_vec());
    client.move_key(3, 0).expect("move back to rep");
    assert_eq!(
        client.get(3).expect("get after move back"),
        b"value-3".to_vec()
    );

    // Delete.
    client.delete(5).expect("delete");
    assert!(client.get(5).is_err(), "deleted key must not resolve");
}

#[test]
fn cli_process_round_trip() {
    setup_bins();
    let cluster = LoopbackCluster::start(LoopbackSpec::default()).expect("cluster boots");

    // Each ring-cli invocation is a fresh OS process.
    let put = retry(Duration::from_secs(10), || {
        let out = cluster
            .cli(&["put", "7", "hello-from-cli"])
            .expect("spawn cli");
        if out.status.success() {
            Ok(out)
        } else {
            Err(String::from_utf8_lossy(&out.stderr).to_string())
        }
    })
    .expect("cli put succeeds");
    let stdout = String::from_utf8_lossy(&put.stdout);
    assert!(stdout.starts_with("OK version="), "put said: {stdout}");

    let get = cluster.cli(&["get", "7"]).expect("spawn cli");
    assert!(get.status.success());
    assert_eq!(
        String::from_utf8_lossy(&get.stdout).trim(),
        "hello-from-cli"
    );

    let mv = cluster.cli(&["move", "7", "1"]).expect("spawn cli");
    assert!(
        mv.status.success(),
        "move failed: {}",
        String::from_utf8_lossy(&mv.stderr)
    );
    let get2 = cluster.cli(&["get", "7"]).expect("spawn cli");
    assert_eq!(
        String::from_utf8_lossy(&get2.stdout).trim(),
        "hello-from-cli"
    );

    let stats = cluster.cli(&["stats", "0"]).expect("spawn cli");
    assert!(stats.status.success());
    let line = String::from_utf8_lossy(&stats.stdout);
    assert!(line.contains("node=0"), "stats said: {line}");

    let del = cluster.cli(&["del", "7"]).expect("spawn cli");
    assert!(del.status.success());
    let gone = cluster.cli(&["get", "7"]).expect("spawn cli");
    assert!(!gone.status.success(), "get of deleted key must fail");

    // Usage errors exit 2 without touching the cluster.
    let bad = cluster.cli(&["frobnicate"]).expect("spawn cli");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn kill_node_promotes_spare() {
    setup_bins();
    let mut cluster = LoopbackCluster::start(LoopbackSpec::default()).expect("cluster boots");
    let mut client = cluster.client();

    // Seed both schemes.
    for key in 0..10u64 {
        retry(Duration::from_secs(10), || {
            client.put(key, format!("rep-{key}").as_bytes())
        })
        .unwrap_or_else(|e| panic!("rep put {key}: {e:?}"));
        client
            .put_to(1000 + key, format!("srs-{key}").as_bytes(), 1)
            .unwrap_or_else(|e| panic!("srs put {key}: {e:?}"));
    }

    // Kill an active node outright (a coordinator for some keys).
    cluster.kill_node(0).expect("kill node 0");

    // The leader must detect the death, promote the spare, and every
    // key — replicated and erasure-coded — must come back.
    for key in 0..10u64 {
        let rep = retry(Duration::from_secs(20), || client.get(key))
            .unwrap_or_else(|e| panic!("rep key {key} lost after failover: {e:?}"));
        assert_eq!(rep, format!("rep-{key}").into_bytes());
        let srs = retry(Duration::from_secs(20), || client.get(1000 + key))
            .unwrap_or_else(|e| panic!("srs key {key} lost after failover: {e:?}"));
        assert_eq!(srs, format!("srs-{key}").into_bytes());
    }

    // Writes keep working on the new configuration.
    retry(Duration::from_secs(10), || client.put(42, b"post-failover"))
        .expect("put after failover");
    assert_eq!(client.get(42).expect("get"), b"post-failover".to_vec());
}

#[test]
fn sigterm_drains_and_flushes_json_stats() {
    setup_bins();
    let mut cluster = LoopbackCluster::start(LoopbackSpec::default()).expect("cluster boots");
    let mut client = cluster.client();
    for key in 0..4u64 {
        retry(Duration::from_secs(10), || client.put(key, b"x"))
            .unwrap_or_else(|e| panic!("put {key}: {e:?}"));
    }

    // Gracefully stop a redundant node (id s+d-1 = 2 by default).
    let report = cluster
        .stop_node(2, Duration::from_secs(5))
        .expect("stop node 2");
    assert!(report.clean_exit, "stderr: {}", report.stderr);
    let line = report.stderr.trim();
    let json =
        serde_json::from_str(line).unwrap_or_else(|e| panic!("stats not JSON ({e:?}): {line}"));
    assert_eq!(json.get("node").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(
        json.get("role").and_then(|v| v.as_str()),
        Some("node"),
        "{line}"
    );
    let net = json.get("net").expect("net section");
    assert!(
        net.get("msgs_sent").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
        "a serving node must have sent messages: {line}"
    );
    assert!(net.get("retransmits").is_some(), "{line}");

    // The rest of the cluster shuts down cleanly too, leader included.
    let reports = cluster.shutdown();
    assert!(!reports.is_empty());
    for r in &reports {
        assert!(r.clean_exit, "node {} unclean: {}", r.node, r.stderr);
        let v = serde_json::from_str(r.stderr.trim())
            .unwrap_or_else(|e| panic!("node {}: bad JSON ({e:?}): {}", r.node, r.stderr));
        let role = v.get("role").and_then(|x| x.as_str()).unwrap_or("");
        assert!(role == "node" || role == "leader", "{}", r.stderr);
    }
}
