//! Determinism regression: two sequential soaks with the same master
//! seed must record byte-identical histories.
//!
//! The sequential preset removes every source of nondeterminism the
//! design intends (one client, synchronous window, zero message faults,
//! zero partitions/crashes); what remains — op scripts, key draws,
//! value tags, versions, observed reads — must then be a pure function
//! of `ClusterSpec::seed`. A diff here means some protocol path sneaked
//! in ambient time, ambient entropy, or hash-ordered iteration, which
//! is exactly what ring-lint's deterministic-path rules police
//! statically; this test is the dynamic backstop.

use ring_chaos::{run_soak, SoakConfig};

fn seed() -> u64 {
    std::env::var("RING_CHAOS_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse().ok()
            }
        })
        .unwrap_or(0xD3_7E_12_57)
}

#[test]
fn sequential_soak_replays_byte_identical() {
    let cfg = SoakConfig::sequential(seed());

    let a = run_soak(&cfg);
    let b = run_soak(&cfg);

    assert!(a.passed(), "first run must linearize: {:?}", a.checker);
    assert!(b.passed(), "second run must linearize: {:?}", b.checker);
    assert_eq!(a.schedule_digest, b.schedule_digest, "schedule diverged");
    assert_eq!(a.ops, b.ops, "op counts diverged: {} vs {}", a.ops, b.ops);
    // No faults are injected, so nothing may time out or fail — a
    // Maybe would make histories legitimately diverge.
    assert_eq!((a.timeouts, a.failures), (0, 0), "faultless run timed out");
    assert_eq!((b.timeouts, b.failures), (0, 0), "faultless run timed out");

    let bytes_a = a.history.canonical_bytes();
    let bytes_b = b.history.canonical_bytes();
    if bytes_a != bytes_b {
        // Locate the first diverging event for an actionable failure.
        let n = a.history.events.len().min(b.history.events.len());
        for i in 0..n {
            let (ea, eb) = (&a.history.events[i], &b.history.events[i]);
            let same = ea.client == eb.client
                && ea.op == eb.op
                && ea.key == eb.key
                && ea.call == eb.call
                && ea.outcome == eb.outcome;
            assert!(
                same,
                "histories diverge at event {i}:\n  run A: {ea:?}\n  run B: {eb:?}"
            );
        }
        panic!(
            "histories diverge in length: {} vs {} events",
            a.history.events.len(),
            b.history.events.len()
        );
    }
}

/// Satellite regression for the straggler nemesis: straggles are
/// delay-only, so a sequential synchronous soak under a seeded
/// straggler schedule must still record a byte-identical history — the
/// slow node changes when messages arrive, never what the protocol
/// decides.
#[test]
fn sequential_straggler_soak_replays_byte_identical() {
    let cfg = SoakConfig::sequential_straggler(seed());

    let a = run_soak(&cfg);
    let b = run_soak(&cfg);

    assert!(a.passed(), "first run must linearize: {:?}", a.checker);
    assert!(b.passed(), "second run must linearize: {:?}", b.checker);
    assert_eq!(a.schedule_digest, b.schedule_digest, "schedule diverged");
    // The straggler actually fired (delay-only, so no timeouts).
    assert!(
        a.straggles.1 > 0,
        "straggler never straggled: {:?}",
        a.straggles
    );
    assert_eq!(
        (a.timeouts, a.failures),
        (0, 0),
        "straggles must not fail ops"
    );
    assert_eq!(
        (b.timeouts, b.failures),
        (0, 0),
        "straggles must not fail ops"
    );
    assert_eq!(
        a.history.canonical_bytes(),
        b.history.canonical_bytes(),
        "straggled histories diverge (seed {:#x})",
        a.seed
    );
    // The straggler perturbs the schedule digest relative to the plain
    // sequential preset: it is part of the seeded schedule, not noise.
    assert_ne!(
        a.schedule_digest,
        SoakConfig::sequential(a.seed).schedule_digest(),
        "straggler absent from schedule digest"
    );
}

#[test]
fn different_seeds_record_different_histories() {
    let a = run_soak(&SoakConfig::sequential(1));
    let b = run_soak(&SoakConfig::sequential(2));
    assert!(a.passed() && b.passed());
    assert_ne!(a.schedule_digest, b.schedule_digest);
    assert_ne!(
        a.history.canonical_bytes(),
        b.history.canonical_bytes(),
        "different seeds produced identical histories"
    );
}
