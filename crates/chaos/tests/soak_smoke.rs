//! Smoke-level soak: a short seeded chaos run against a real cluster
//! must produce a linearizable history, and its seeded schedule must be
//! bit-identical across same-seed constructions.

use ring_chaos::{run_soak, SoakConfig};

#[test]
fn quick_soak_linearizes_under_faults() {
    let cfg = SoakConfig::quick(0xC4A05);
    let report = run_soak(&cfg);
    assert!(
        report.passed(),
        "soak failed for seed {:#x}: {:?}",
        report.seed,
        report.checker
    );
    // The nemesis actually ran.
    assert_eq!(report.partitions, 1, "seed {:#x}", report.seed);
    assert_eq!(report.crashes, 1, "seed {:#x}", report.seed);
    // Message faults actually fired.
    let (decided, dropped, _, _) = report.message_faults;
    assert!(decided > 1000, "only {decided} fault decisions");
    assert!(dropped > 0, "no drops in {decided} decisions");
    // All scripted ops plus preload plus final reads are in the history.
    let scripted: usize = cfg.clients * cfg.ops_per_client;
    assert_eq!(report.ops, scripted + 2 * cfg.keys as usize);
}

#[test]
fn quick_soak_linearizes_under_stragglers() {
    let cfg = SoakConfig::quick_straggler(0x57A6);
    let report = run_soak(&cfg);
    assert!(
        report.passed(),
        "straggler soak failed for seed {:#x}: {:?}",
        report.seed,
        report.checker
    );
    let (decided, straggled) = report.straggles;
    assert!(straggled > 0, "no straggles in {decided} decisions");
}

#[test]
fn same_seed_same_schedule() {
    let a = SoakConfig::quick(77).schedule_digest();
    let b = SoakConfig::quick(77).schedule_digest();
    let c = SoakConfig::quick(78).schedule_digest();
    assert_eq!(a, b);
    assert_ne!(a, c);
}
