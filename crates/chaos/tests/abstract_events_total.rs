//! Property tests for the history → abstract-model-event projection:
//! it must be *total* — no (invocation, outcome, timing) combination
//! may panic it — because the conformance pass runs it on whatever a
//! chaos soak recorded, including dangling invocations from crashed
//! clients (timed-out `Maybe` outcomes with unordered timestamps) and
//! outcome shapes no healthy run produces. `canonical_bytes` feeds the
//! same downstream consumers, so it gets the same treatment.

use proptest::prelude::*;
use ring_chaos::abstract_events::{abstract_ops, project, AbstractKind};
use ring_chaos::history::{Event, History, Invocation, Outcome};

/// Decodes an arbitrary tuple into an event, covering every call and
/// outcome variant — deliberately including mismatched pairs (a put
/// with a get outcome) and inverted or saturated timestamps. The key
/// derives from the op id so multiple events collide on few keys.
fn event_from(raw: (u8, u8, u32, u64, u64, u64)) -> Event {
    let (call_sel, out_sel, client, op, inv, ret) = raw;
    let key = op % 5;
    let call = match call_sel % 4 {
        0 => Invocation::Put {
            tag: (client, op),
            memgest: (op % 2 == 1).then_some((op % 8) as u32),
        },
        1 => Invocation::Get,
        2 => Invocation::Delete,
        _ => Invocation::Move {
            to: (op % 8) as u32,
        },
    };
    let outcome = match out_sel % 7 {
        0 => Outcome::PutOk {
            version: inv.wrapping_add(1),
        },
        1 => Outcome::GetOk {
            tag: (inv % 2 == 0).then_some((client, op)),
            version: (inv % 3 == 0).then_some(ret),
        },
        2 => Outcome::DeleteOk,
        3 => Outcome::MoveOk { version: ret },
        4 => Outcome::MoveNoop,
        5 => Outcome::Maybe,
        _ => Outcome::Failed("injected failure".into()),
    };
    Event {
        client,
        op,
        key,
        call,
        invoked_ns: inv,
        // A crashed client's dangling invocation records an open window.
        returned_ns: if out_sel % 5 == 0 { u64::MAX } else { ret },
        outcome,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn projection_is_total_over_arbitrary_histories(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u32>(),
             any::<u64>(), any::<u64>(), any::<u64>()), 0..60),
    ) {
        let events: Vec<Event> = raw.iter().copied().map(event_from).collect();
        let h = History { events };

        // Per-event projection never panics and preserves identity.
        for e in &h.events {
            let a = project(e);
            prop_assert_eq!(a.client, e.client);
            prop_assert_eq!(a.op, e.op);
            prop_assert_eq!(a.invoked_ns, e.invoked_ns);
            // Indefinite writes/rewrites are free to linearize
            // arbitrarily late; everything else keeps its window.
            match a.kind {
                AbstractKind::Write { definite: false, .. }
                | AbstractKind::Rewrite { definite: false, .. } => {
                    prop_assert_eq!(a.returned_ns, u64::MAX);
                }
                _ => prop_assert_eq!(a.returned_ns, e.returned_ns),
            }
        }

        // Whole-history projection partitions without loss.
        let by_key = abstract_ops(&h);
        let total: usize = by_key.values().map(Vec::len).sum();
        prop_assert_eq!(total, h.events.len());

        // The canonical serialization is total over the same inputs.
        let bytes = h.canonical_bytes();
        if !h.events.is_empty() {
            prop_assert!(!bytes.is_empty());
        }
    }

    #[test]
    fn projection_ignores_timestamps_like_canonical_bytes(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u32>(),
             any::<u64>(), any::<u64>(), any::<u64>()), 1..30),
        shift in any::<u32>(),
    ) {
        // Shifting definite-response timestamps changes neither the
        // canonical bytes nor the per-key op partition sizes: both views
        // are about logical content, not wall-clock placement.
        let events: Vec<Event> = raw.iter().copied().map(event_from).collect();
        let shifted: Vec<Event> = events
            .iter()
            .map(|e| {
                let mut e = e.clone();
                e.invoked_ns = e.invoked_ns.wrapping_add(u64::from(shift));
                if e.returned_ns != u64::MAX {
                    e.returned_ns = e.returned_ns.wrapping_add(u64::from(shift));
                }
                e
            })
            .collect();
        let a = History { events };
        let b = History { events: shifted };
        prop_assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        let pa = abstract_ops(&a);
        let pb = abstract_ops(&b);
        prop_assert_eq!(pa.len(), pb.len());
        for (k, ops) in &pa {
            prop_assert_eq!(ops.len(), pb[k].len());
        }
    }
}
