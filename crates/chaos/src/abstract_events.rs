//! Projection of recorded histories onto the formal model's abstract
//! events — the refinement mapping of DESIGN.md §11.
//!
//! `crates/model` replays every seeded soak history through the
//! `RingWriteSemantics` transition system; this module is the bridge:
//! it rewrites each concrete [`Event`] into the abstract operation the
//! spec reasons about (a versioned register write, a version-bumping
//! rewrite, a bound read, or a no-op). The projection is **total** — it
//! never panics, whatever (invocation, outcome) pair the recorder
//! produced, including dangling invocations from crashed clients whose
//! outcome is [`Outcome::Maybe`] — so a conformance run can never die
//! on the history it is supposed to judge (a proptest in
//! `tests/abstract_events_total.rs` pins this down).

use std::collections::BTreeMap;

use ring_kvs::{Key, Version};

use crate::history::{Event, History, Invocation, Outcome};
use crate::Tag;

/// Effect of one operation on its key's abstract versioned register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstractKind {
    /// `CoordPrepare` + `CommitFlag` in the spec: sets the register to
    /// `tag` (`None` is a tombstone) at `version` (`None` when the
    /// response never carried one — a timed-out or failed write).
    Write {
        /// Tag of the written value; `None` clears the register.
        tag: Option<Tag>,
        /// Version assigned by the coordinator, if the client learned it.
        version: Option<Version>,
        /// False for "maybe happened" writes, which the replay may
        /// place arbitrarily late (equivalently: never).
        definite: bool,
    },
    /// A `move`: the value is untouched but the destination write
    /// consumes a fresh version (`CoordPrepare` + `CommitFlag` over the
    /// same bytes).
    Rewrite {
        /// Version after the move, if the client learned it.
        version: Option<Version>,
        /// False for "maybe happened" moves.
        definite: bool,
    },
    /// `GetBind` + `GetReturn` in the spec: observes the register.
    /// `None` means the read observed nothing usable (timeout/error)
    /// and constrains nothing.
    Read {
        /// `(tag, version)` as returned; the outer `None` is an
        /// unconstrained read, the inner `tag: None` an observed
        /// absence.
        observed: Option<(Option<Tag>, Option<Version>)>,
    },
    /// No effect on the register (e.g. a move that found no value).
    Noop,
}

/// One history event in abstract-model terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstractOp {
    /// Recorder client id.
    pub client: u32,
    /// Recorder op id.
    pub op: u64,
    /// Invocation timestamp (ns since recorder epoch).
    pub invoked_ns: u64,
    /// Response timestamp; `u64::MAX` for indefinite operations, whose
    /// placement in the replay is unconstrained past their invocation.
    pub returned_ns: u64,
    /// The abstract effect.
    pub kind: AbstractKind,
}

/// Projects one event. Total: every (invocation, outcome) combination —
/// including pairs no real run produces — maps to *some* abstract op;
/// a mismatched or indeterminate outcome degrades to the indefinite
/// form of its invocation rather than panicking.
pub fn project(e: &Event) -> AbstractOp {
    let (kind, definite) = match (&e.call, &e.outcome) {
        (Invocation::Put { tag, .. }, Outcome::PutOk { version }) => (
            AbstractKind::Write {
                tag: Some(*tag),
                version: Some(*version),
                definite: true,
            },
            true,
        ),
        // A put whose response was lost, errored, or mismatched may
        // still have taken effect at an unknown version.
        (Invocation::Put { tag, .. }, _) => (
            AbstractKind::Write {
                tag: Some(*tag),
                version: None,
                definite: false,
            },
            false,
        ),
        (Invocation::Delete, Outcome::DeleteOk) => (
            AbstractKind::Write {
                tag: None,
                version: None,
                definite: true,
            },
            true,
        ),
        (Invocation::Delete, _) => (
            AbstractKind::Write {
                tag: None,
                version: None,
                definite: false,
            },
            false,
        ),
        (Invocation::Move { .. }, Outcome::MoveOk { version }) => (
            AbstractKind::Rewrite {
                version: Some(*version),
                definite: true,
            },
            true,
        ),
        (Invocation::Move { .. }, Outcome::MoveNoop) => (AbstractKind::Noop, true),
        (Invocation::Move { .. }, _) => (
            AbstractKind::Rewrite {
                version: None,
                definite: false,
            },
            false,
        ),
        (Invocation::Get, Outcome::GetOk { tag, version }) => (
            AbstractKind::Read {
                observed: Some((*tag, *version)),
            },
            true,
        ),
        // A get that timed out or errored observed nothing.
        (Invocation::Get, _) => (AbstractKind::Read { observed: None }, true),
    };
    AbstractOp {
        client: e.client,
        op: e.op,
        invoked_ns: e.invoked_ns,
        returned_ns: if definite { e.returned_ns } else { u64::MAX },
        kind,
    }
}

/// Projects a whole history, partitioned per key (the replay, like the
/// linearizability checker, is P-compositional).
pub fn abstract_ops(h: &History) -> BTreeMap<Key, Vec<AbstractOp>> {
    let mut by_key: BTreeMap<Key, Vec<AbstractOp>> = BTreeMap::new();
    for e in &h.events {
        by_key.entry(e.key).or_default().push(project(e));
    }
    by_key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definite_put_maps_to_versioned_write() {
        let e = Event {
            client: 1,
            op: 2,
            key: 3,
            call: Invocation::Put {
                tag: (1, 2),
                memgest: None,
            },
            invoked_ns: 10,
            returned_ns: 20,
            outcome: Outcome::PutOk { version: 7 },
        };
        let a = project(&e);
        assert_eq!(a.returned_ns, 20);
        assert_eq!(
            a.kind,
            AbstractKind::Write {
                tag: Some((1, 2)),
                version: Some(7),
                definite: true
            }
        );
    }

    #[test]
    fn maybe_put_is_indefinite_and_unbounded() {
        let e = Event {
            client: 1,
            op: 2,
            key: 3,
            call: Invocation::Put {
                tag: (1, 2),
                memgest: None,
            },
            invoked_ns: 10,
            returned_ns: 20,
            outcome: Outcome::Maybe,
        };
        let a = project(&e);
        assert_eq!(a.returned_ns, u64::MAX);
        assert!(matches!(
            a.kind,
            AbstractKind::Write {
                definite: false,
                version: None,
                ..
            }
        ));
    }

    #[test]
    fn mismatched_outcome_degrades_instead_of_panicking() {
        // A put that somehow recorded a get outcome: impossible in real
        // runs, but the projection must stay total.
        let e = Event {
            client: 0,
            op: 0,
            key: 0,
            call: Invocation::Put {
                tag: (0, 0),
                memgest: None,
            },
            invoked_ns: 0,
            returned_ns: 1,
            outcome: Outcome::GetOk {
                tag: None,
                version: None,
            },
        };
        assert!(matches!(
            project(&e).kind,
            AbstractKind::Write {
                definite: false,
                ..
            }
        ));
    }

    #[test]
    fn history_partitions_by_key() {
        let mk = |key| Event {
            client: 0,
            op: key,
            key,
            call: Invocation::Get,
            invoked_ns: 0,
            returned_ns: 1,
            outcome: Outcome::Maybe,
        };
        let h = History {
            events: vec![mk(1), mk(2), mk(1)],
        };
        let by_key = abstract_ops(&h);
        assert_eq!(by_key.len(), 2);
        assert_eq!(by_key[&1].len(), 2);
        assert_eq!(by_key[&2].len(), 1);
    }
}
