//! Invocation/response history recording around `RingClient`.
//!
//! Each recorded write carries a globally unique *tag* `(client, op)`
//! encoded into the value bytes, so a later read identifies exactly
//! which write it observed — the precondition for register-style
//! linearizability checking without value bookkeeping on the server.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ring_kvs::{ClientResp, Key, MemgestId, ReqId, RingClient, RingError, Version};

use crate::mix64;

/// Identity of one recorded write: `(recorder-client id, op id)`.
pub type Tag = (u32, u64);

const VALUE_MAGIC: u32 = 0xC4A0_5EED;

/// Minimum value length able to carry a tag header.
pub const MIN_VALUE_LEN: usize = 16;

/// Encodes a tagged value of `len >= MIN_VALUE_LEN` bytes: a 16-byte
/// header (magic, client, op) plus deterministic filler.
pub fn encode_value(tag: Tag, len: usize) -> Vec<u8> {
    assert!(len >= MIN_VALUE_LEN, "value too short for a tag header");
    let mut v = Vec::with_capacity(len);
    v.extend_from_slice(&VALUE_MAGIC.to_le_bytes());
    v.extend_from_slice(&tag.0.to_le_bytes());
    v.extend_from_slice(&tag.1.to_le_bytes());
    let mut ctr = mix64(u64::from(tag.0) ^ tag.1.rotate_left(32));
    while v.len() < len {
        ctr = mix64(ctr);
        let chunk = ctr.to_le_bytes();
        let take = (len - v.len()).min(8);
        v.extend_from_slice(&chunk[..take]);
    }
    v
}

/// Recovers the tag from a value written by [`encode_value`], if it is
/// one (filler bytes are not verified; the 32-bit magic plus exact
/// header layout make accidental matches implausible).
pub fn decode_tag(value: &[u8]) -> Option<Tag> {
    if value.len() < MIN_VALUE_LEN {
        return None;
    }
    let magic = u32::from_le_bytes(value[0..4].try_into().expect("4 bytes"));
    if magic != VALUE_MAGIC {
        return None;
    }
    let client = u32::from_le_bytes(value[4..8].try_into().expect("4 bytes"));
    let op = u64::from_le_bytes(value[8..16].try_into().expect("8 bytes"));
    Some((client, op))
}

/// What a recorded operation asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invocation {
    /// Write the tagged value (optionally targeting a memgest).
    Put {
        /// The write's unique tag.
        tag: Tag,
        /// Explicit memgest target, if any.
        memgest: Option<MemgestId>,
    },
    /// Read the key.
    Get,
    /// Delete the key.
    Delete,
    /// Move the key's value to another memgest.
    Move {
        /// Destination memgest.
        to: MemgestId,
    },
}

/// What came back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Put committed at this version.
    PutOk {
        /// Version the coordinator assigned.
        version: Version,
    },
    /// Get returned a value (or observed absence: `tag == None`).
    GetOk {
        /// Tag of the observed write; `None` for key-not-found or an
        /// untagged (foreign) value.
        tag: Option<Tag>,
        /// Version returned with the value, if present.
        version: Option<Version>,
    },
    /// Delete acknowledged — including "key not found", which is an
    /// idempotent success (a retry after a lost response looks exactly
    /// like this, so the two cannot be told apart from the client).
    DeleteOk,
    /// Move acknowledged at this version.
    MoveOk {
        /// Version after the move.
        version: Version,
    },
    /// Move reported key-not-found: modelled as a no-op (the value, if
    /// any, is untouched by a move either way).
    MoveNoop,
    /// The operation timed out: it *may or may not* have taken effect.
    Maybe,
    /// A definite error after which the operation is still treated as
    /// "maybe happened" for writes (conservative) and unconstrained for
    /// reads.
    Failed(String),
}

/// One completed invocation/response pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Recorder-assigned client id (not the fabric node id).
    pub client: u32,
    /// Recorder-assigned op id, unique per recorder.
    pub op: u64,
    /// The key operated on.
    pub key: Key,
    /// The request.
    pub call: Invocation,
    /// Invocation timestamp, ns since the recorder's epoch.
    pub invoked_ns: u64,
    /// Response timestamp, ns since the recorder's epoch.
    pub returned_ns: u64,
    /// The response.
    pub outcome: Outcome,
}

/// A completed history: every event recorded by one [`HistoryRecorder`].
#[derive(Debug, Clone, Default)]
pub struct History {
    /// All events, in recording order (not necessarily invocation
    /// order — clients race to append).
    pub events: Vec<Event>,
}

impl History {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of operations that ended in [`Outcome::Maybe`].
    pub fn maybe_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.outcome == Outcome::Maybe)
            .count()
    }

    /// Count of operations that ended in [`Outcome::Failed`].
    pub fn failed_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.outcome, Outcome::Failed(_)))
            .count()
    }

    /// Canonical byte serialization of the history's *logical* content:
    /// every field of every event in recording order, excluding the
    /// wall-clock timestamps (`invoked_ns`/`returned_ns`), which vary
    /// run to run even when the run is otherwise deterministic. Two
    /// sequential soaks with the same master seed must produce equal
    /// canonical bytes — the determinism regression test asserts this.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        fn push_tag(out: &mut Vec<u8>, tag: Tag) {
            out.extend_from_slice(&tag.0.to_le_bytes());
            out.extend_from_slice(&tag.1.to_le_bytes());
        }
        let mut out = Vec::with_capacity(self.events.len() * 48);
        for e in &self.events {
            out.extend_from_slice(&e.client.to_le_bytes());
            out.extend_from_slice(&e.op.to_le_bytes());
            out.extend_from_slice(&e.key.to_le_bytes());
            match e.call {
                Invocation::Put { tag, memgest } => {
                    out.push(0);
                    push_tag(&mut out, tag);
                    out.push(memgest.is_some() as u8);
                    out.extend_from_slice(&memgest.unwrap_or(0).to_le_bytes());
                }
                Invocation::Get => out.push(1),
                Invocation::Delete => out.push(2),
                Invocation::Move { to } => {
                    out.push(3);
                    out.extend_from_slice(&to.to_le_bytes());
                }
            }
            match &e.outcome {
                Outcome::PutOk { version } => {
                    out.push(0);
                    out.extend_from_slice(&version.to_le_bytes());
                }
                Outcome::GetOk { tag, version } => {
                    out.push(1);
                    out.push(tag.is_some() as u8);
                    push_tag(&mut out, tag.unwrap_or((0, 0)));
                    out.push(version.is_some() as u8);
                    out.extend_from_slice(&version.unwrap_or(0).to_le_bytes());
                }
                Outcome::DeleteOk => out.push(2),
                Outcome::MoveOk { version } => {
                    out.push(3);
                    out.extend_from_slice(&version.to_le_bytes());
                }
                Outcome::MoveNoop => out.push(4),
                Outcome::Maybe => out.push(5),
                Outcome::Failed(msg) => {
                    out.push(6);
                    out.extend_from_slice(&(msg.len() as u64).to_le_bytes());
                    out.extend_from_slice(msg.as_bytes());
                }
            }
        }
        out
    }
}

/// Shared event log + id allocator for a family of [`RecordedClient`]s.
pub struct HistoryRecorder {
    epoch: Instant,
    next_client: AtomicU64,
    next_op: AtomicU64,
    events: Mutex<Vec<Event>>,
}

impl HistoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Arc<HistoryRecorder> {
        Arc::new(HistoryRecorder {
            epoch: ring_net::clock::now(),
            next_client: AtomicU64::new(0),
            next_op: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        })
    }

    /// Wraps a `RingClient` so its calls are recorded. `value_len` is
    /// the byte length of every tagged value this client writes.
    pub fn client(
        self: &Arc<HistoryRecorder>,
        inner: RingClient,
        value_len: usize,
    ) -> RecordedClient {
        assert!(value_len >= MIN_VALUE_LEN, "values must fit a tag header");
        RecordedClient {
            recorder: Arc::clone(self),
            id: self.next_client.fetch_add(1, Ordering::Relaxed) as u32,
            value_len,
            inner,
            pending: HashMap::new(),
        }
    }

    /// Snapshots the history recorded so far.
    pub fn history(&self) -> History {
        History {
            events: self.events.lock().unwrap().clone(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn record(&self, event: Event) {
        self.events.lock().unwrap().push(event);
    }
}

/// A `RingClient` whose every call lands in the shared history.
///
/// The wrapper owns op naming: values are tagged with this client's id
/// and a fresh op id, so two writes never carry the same bytes.
pub struct RecordedClient {
    recorder: Arc<HistoryRecorder>,
    id: u32,
    value_len: usize,
    inner: RingClient,
    /// Pipelined requests submitted but not yet completed, by fabric
    /// request id.
    pending: HashMap<ReqId, Pending>,
}

/// Bookkeeping for one outstanding pipelined request.
struct Pending {
    op: u64,
    key: Key,
    call: Invocation,
    invoked_ns: u64,
}

impl RecordedClient {
    /// The recorder-assigned client id (used in tags).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Writes a fresh tagged value to `key` in the default memgest.
    pub fn put(&mut self, key: Key) -> Result<Version, RingError> {
        self.put_impl(key, None)
    }

    /// Writes a fresh tagged value to `key` in a specific memgest.
    pub fn put_to(&mut self, key: Key, memgest: MemgestId) -> Result<Version, RingError> {
        self.put_impl(key, Some(memgest))
    }

    fn put_impl(&mut self, key: Key, memgest: Option<MemgestId>) -> Result<Version, RingError> {
        let op = self.recorder.next_op.fetch_add(1, Ordering::Relaxed);
        let tag = (self.id, op);
        let value = encode_value(tag, self.value_len);
        let invoked_ns = self.recorder.now_ns();
        let res = match memgest {
            Some(m) => self.inner.put_to(key, &value, m),
            None => self.inner.put(key, &value),
        };
        let returned_ns = self.recorder.now_ns();
        let outcome = match &res {
            Ok(v) => Outcome::PutOk { version: *v },
            Err(RingError::Timeout) => Outcome::Maybe,
            Err(e) => Outcome::Failed(e.to_string()),
        };
        self.recorder.record(Event {
            client: self.id,
            op,
            key,
            call: Invocation::Put { tag, memgest },
            invoked_ns,
            returned_ns,
            outcome,
        });
        res
    }

    /// Reads `key`, recording which write's tag was observed.
    pub fn get(&mut self, key: Key) -> Result<Option<(Vec<u8>, Version)>, RingError> {
        let op = self.recorder.next_op.fetch_add(1, Ordering::Relaxed);
        let invoked_ns = self.recorder.now_ns();
        let res = self.inner.get_versioned(key);
        let returned_ns = self.recorder.now_ns();
        let (outcome, mapped) = match res {
            Ok((value, version)) => (
                Outcome::GetOk {
                    tag: decode_tag(&value),
                    version: Some(version),
                },
                Ok(Some((value, version))),
            ),
            Err(RingError::KeyNotFound) => (
                Outcome::GetOk {
                    tag: None,
                    version: None,
                },
                Ok(None),
            ),
            Err(RingError::Timeout) => (Outcome::Maybe, Err(RingError::Timeout)),
            Err(e) => (Outcome::Failed(e.to_string()), Err(e)),
        };
        self.recorder.record(Event {
            client: self.id,
            op,
            key,
            call: Invocation::Get,
            invoked_ns,
            returned_ns,
            outcome,
        });
        mapped
    }

    /// Deletes `key`. Key-not-found counts as success (idempotence).
    pub fn delete(&mut self, key: Key) -> Result<(), RingError> {
        let op = self.recorder.next_op.fetch_add(1, Ordering::Relaxed);
        let invoked_ns = self.recorder.now_ns();
        let res = self.inner.delete(key);
        let returned_ns = self.recorder.now_ns();
        let (outcome, mapped) = match res {
            Ok(()) | Err(RingError::KeyNotFound) => (Outcome::DeleteOk, Ok(())),
            Err(RingError::Timeout) => (Outcome::Maybe, Err(RingError::Timeout)),
            Err(e) => (Outcome::Failed(e.to_string()), Err(e)),
        };
        self.recorder.record(Event {
            client: self.id,
            op,
            key,
            call: Invocation::Delete,
            invoked_ns,
            returned_ns,
            outcome,
        });
        mapped
    }

    /// Moves `key` to memgest `dst` (value-preserving re-encode).
    pub fn move_key(&mut self, key: Key, dst: MemgestId) -> Result<(), RingError> {
        let op = self.recorder.next_op.fetch_add(1, Ordering::Relaxed);
        let invoked_ns = self.recorder.now_ns();
        let res = self.inner.move_key(key, dst);
        let returned_ns = self.recorder.now_ns();
        let (outcome, mapped) = match res {
            Ok(version) => (Outcome::MoveOk { version }, Ok(())),
            Err(RingError::KeyNotFound) => (Outcome::MoveNoop, Ok(())),
            Err(RingError::Timeout) => (Outcome::Maybe, Err(RingError::Timeout)),
            Err(e) => (Outcome::Failed(e.to_string()), Err(e)),
        };
        self.recorder.record(Event {
            client: self.id,
            op,
            key,
            call: Invocation::Move { to: dst },
            invoked_ns,
            returned_ns,
            outcome,
        });
        mapped
    }

    // ---- Pipelined (windowed) recording API ----
    //
    // Each `*_nb` call records the invocation immediately and parks a
    // `Pending` entry; the matching response event is recorded when the
    // completion surfaces in [`Self::poll_ops`] / [`Self::drain_ops`].
    // The invocation..response window therefore spans the whole time the
    // request was in flight — exactly what the linearizability checker
    // needs for overlapping ops from one client.

    /// Sets the in-flight window of the wrapped pipelined client.
    pub fn set_window(&mut self, window: usize) {
        self.inner.set_window(window);
    }

    /// Pipelined tagged put into a memgest. May block while the window
    /// is full (completions gathered meanwhile surface via
    /// [`Self::poll_ops`]).
    pub fn put_nb(&mut self, key: Key, memgest: MemgestId) {
        let op = self.recorder.next_op.fetch_add(1, Ordering::Relaxed);
        let tag = (self.id, op);
        let value = encode_value(tag, self.value_len);
        let call = Invocation::Put {
            tag,
            memgest: Some(memgest),
        };
        let invoked_ns = self.recorder.now_ns();
        match self.inner.put_nb(key, &value, Some(memgest)) {
            Ok(req) => self.park(req, op, key, call, invoked_ns),
            Err(e) => self.record_submit_error(op, key, call, invoked_ns, e),
        }
    }

    /// Pipelined get.
    pub fn get_nb(&mut self, key: Key) {
        let op = self.recorder.next_op.fetch_add(1, Ordering::Relaxed);
        let invoked_ns = self.recorder.now_ns();
        match self.inner.get_nb(key) {
            Ok(req) => self.park(req, op, key, Invocation::Get, invoked_ns),
            Err(e) => self.record_submit_error(op, key, Invocation::Get, invoked_ns, e),
        }
    }

    /// Pipelined delete.
    pub fn delete_nb(&mut self, key: Key) {
        let op = self.recorder.next_op.fetch_add(1, Ordering::Relaxed);
        let invoked_ns = self.recorder.now_ns();
        match self.inner.delete_nb(key) {
            Ok(req) => self.park(req, op, key, Invocation::Delete, invoked_ns),
            Err(e) => self.record_submit_error(op, key, Invocation::Delete, invoked_ns, e),
        }
    }

    /// Pipelined move.
    pub fn move_nb(&mut self, key: Key, dst: MemgestId) {
        let op = self.recorder.next_op.fetch_add(1, Ordering::Relaxed);
        let call = Invocation::Move { to: dst };
        let invoked_ns = self.recorder.now_ns();
        match self.inner.move_nb(key, dst) {
            Ok(req) => self.park(req, op, key, call, invoked_ns),
            Err(e) => self.record_submit_error(op, key, call, invoked_ns, e),
        }
    }

    /// Records completions that have already arrived, without blocking.
    /// Returns how many events were recorded.
    pub fn poll_ops(&mut self) -> usize {
        let completions = self.inner.poll();
        let n = completions.len();
        for (req, res) in completions {
            self.record_completion(req, res);
        }
        n
    }

    /// Blocks until every outstanding pipelined request completes,
    /// recording each. Returns how many events were recorded.
    pub fn drain_ops(&mut self) -> usize {
        let completions = self.inner.drain();
        let n = completions.len();
        for (req, res) in completions {
            self.record_completion(req, res);
        }
        n
    }

    fn park(&mut self, req: ReqId, op: u64, key: Key, call: Invocation, invoked_ns: u64) {
        self.pending.insert(
            req,
            Pending {
                op,
                key,
                call,
                invoked_ns,
            },
        );
    }

    /// A request that could not even be submitted: never on the wire, so
    /// a timeout-flavoured error still conservatively counts as Maybe.
    fn record_submit_error(
        &mut self,
        op: u64,
        key: Key,
        call: Invocation,
        invoked_ns: u64,
        err: RingError,
    ) {
        let outcome = match err {
            RingError::Timeout => Outcome::Maybe,
            e => Outcome::Failed(e.to_string()),
        };
        let returned_ns = self.recorder.now_ns();
        self.recorder.record(Event {
            client: self.id,
            op,
            key,
            call,
            invoked_ns,
            returned_ns,
            outcome,
        });
    }

    fn record_completion(&mut self, req: ReqId, res: Result<ClientResp, RingError>) {
        let Some(p) = self.pending.remove(&req) else {
            return; // Completion for an unrecorded (auxiliary) request.
        };
        let returned_ns = self.recorder.now_ns();
        // Unexpected-but-successful response shapes map to a hard error,
        // mirroring the sync wrappers.
        let err_of = |resp: ClientResp| -> RingError {
            match resp {
                ClientResp::Error(e) => e,
                other => RingError::Internal(format!("unexpected response {other:?}")),
            }
        };
        let outcome = match (&p.call, res) {
            (_, Err(RingError::Timeout)) => Outcome::Maybe,
            (_, Err(e)) => Outcome::Failed(e.to_string()),
            (Invocation::Put { .. }, Ok(ClientResp::PutOk { version })) => {
                Outcome::PutOk { version }
            }
            (Invocation::Get, Ok(ClientResp::GetOk { value, version })) => Outcome::GetOk {
                tag: decode_tag(&value),
                version: Some(version),
            },
            (Invocation::Delete, Ok(ClientResp::DeleteOk)) => Outcome::DeleteOk,
            (Invocation::Move { .. }, Ok(ClientResp::MoveOk { version })) => {
                Outcome::MoveOk { version }
            }
            (call, Ok(other)) => match (call, err_of(other)) {
                (Invocation::Get, RingError::KeyNotFound) => Outcome::GetOk {
                    tag: None,
                    version: None,
                },
                (Invocation::Delete, RingError::KeyNotFound) => Outcome::DeleteOk,
                (Invocation::Move { .. }, RingError::KeyNotFound) => Outcome::MoveNoop,
                (_, RingError::Timeout) => Outcome::Maybe,
                (_, e) => Outcome::Failed(e.to_string()),
            },
        };
        self.recorder.record(Event {
            client: self.id,
            op: p.op,
            key: p.key,
            call: p.call,
            invoked_ns: p.invoked_ns,
            returned_ns,
            outcome,
        });
    }

    /// The wrapped client, for unrecorded auxiliary calls (memgest
    /// management, stats).
    pub fn inner(&mut self) -> &mut RingClient {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_tags_round_trip() {
        for (client, op, len) in [(0, 0, 16), (3, 9, 64), (u32::MAX, u64::MAX, 1024)] {
            let v = encode_value((client, op), len);
            assert_eq!(v.len(), len);
            assert_eq!(decode_tag(&v), Some((client, op)));
        }
    }

    #[test]
    fn filler_is_deterministic_and_tag_dependent() {
        assert_eq!(encode_value((1, 2), 100), encode_value((1, 2), 100));
        assert_ne!(encode_value((1, 2), 100), encode_value((1, 3), 100));
    }

    #[test]
    fn foreign_values_do_not_decode() {
        assert_eq!(decode_tag(b"short"), None);
        assert_eq!(decode_tag(&[0u8; 64]), None);
        let mut v = encode_value((5, 6), 32);
        v[0] ^= 0xFF; // Corrupt the magic.
        assert_eq!(decode_tag(&v), None);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_values_rejected() {
        let _ = encode_value((0, 0), 8);
    }
}
