//! End-to-end seeded soak runs: workload + nemesis + checker.
//!
//! Everything random in a soak — the per-client op scripts, the nemesis
//! timeline, the message-fault decision table — is derived from
//! `ClusterSpec::seed` via labelled sub-seeds, and each artefact folds
//! into a schedule digest. Re-running with the same seed reproduces the
//! schedule bit-for-bit ([`SoakReport::schedule_digest`] is equal);
//! thread interleaving still varies, which is exactly the point: many
//! interleavings of one adversarial schedule, all of which must
//! linearize.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ring_kvs::{Cluster, ClusterSpec, MemgestDescriptor, MemgestId};
use ring_workload::{KeyDistribution, WorkloadGen, WorkloadSpec};

use crate::checker::{check_history, CheckOutcome};
use crate::history::HistoryRecorder;
use crate::nemesis::{FaultPlan, MessageFaults, Nemesis, NemesisSpec};
use crate::straggler::{StragglerProfile, StragglerSpec};
use crate::Digest;

/// Default in-flight pipeline depth of each scripted soak client. Deep
/// enough to exercise out-of-order completion and duplicate-delivery
/// races, shallow enough that per-key contention stays realistic.
const SOAK_WINDOW: usize = 4;

/// One scripted client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Tagged put into a memgest.
    Put {
        /// The key.
        key: u64,
        /// Target memgest.
        memgest: MemgestId,
    },
    /// Read.
    Get {
        /// The key.
        key: u64,
    },
    /// Delete.
    Delete {
        /// The key.
        key: u64,
    },
    /// Move between memgests.
    Move {
        /// The key.
        key: u64,
        /// Destination memgest.
        memgest: MemgestId,
    },
}

impl ScriptOp {
    fn mix_into(&self, d: &mut Digest) {
        match *self {
            ScriptOp::Put { key, memgest } => {
                d.mix(0);
                d.mix(key);
                d.mix(u64::from(memgest));
            }
            ScriptOp::Get { key } => {
                d.mix(1);
                d.mix(key);
            }
            ScriptOp::Delete { key } => {
                d.mix(2);
                d.mix(key);
            }
            ScriptOp::Move { key, memgest } => {
                d.mix(3);
                d.mix(key);
                d.mix(u64::from(memgest));
            }
        }
    }
}

/// Configuration of a soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Cluster spec; `spec.seed` is the master seed for everything.
    pub spec: ClusterSpec,
    /// Concurrent client threads.
    pub clients: usize,
    /// Scripted ops per client (the preload and final read pass are on
    /// top of these).
    pub ops_per_client: usize,
    /// Key-space size; keys are drawn Zipfian so some are contended.
    pub keys: u64,
    /// Tagged-value length in bytes (>= 16).
    pub value_len: usize,
    /// Fraction of scripted ops that are gets.
    pub get_ratio: f64,
    /// Fraction that are deletes.
    pub delete_ratio: f64,
    /// Fraction that are moves.
    pub move_ratio: f64,
    /// Memgests the workload targets (puts round-robin by key, moves
    /// pick seeded-randomly). Ids index into `spec.memgests`.
    pub memgests: Vec<MemgestId>,
    /// Message-fault probabilities.
    pub faults: MessageFaults,
    /// Seeded straggler (slow-node) profile layered over the message
    /// faults; `None` disables it.
    pub straggler: Option<StragglerSpec>,
    /// Coarse-fault timeline spec.
    pub nemesis: NemesisSpec,
    /// In-flight pipeline depth per scripted client (1 = synchronous).
    pub window: usize,
}

impl SoakConfig {
    /// A small smoke-test soak (~1.2k ops): REP3 + SRS(3,2), light
    /// message faults, one partition, one crash.
    pub fn quick(seed: u64) -> SoakConfig {
        SoakConfig {
            ops_per_client: 300,
            clients: 4,
            nemesis: NemesisSpec {
                partitions: 1,
                crashes: 1,
                start_after: Duration::from_millis(40),
                every: Duration::from_millis(150),
                partition_len: Duration::from_millis(25),
            },
            ..SoakConfig::acceptance(seed)
        }
    }

    /// The acceptance-criteria soak: >= 10k ops over REP3 + SRS(3,2)
    /// with drops, duplicates, delays, transient partitions and two
    /// crash-plus-promotion events.
    pub fn acceptance(seed: u64) -> SoakConfig {
        let spec = ClusterSpec {
            spares: 2,
            memgests: vec![MemgestDescriptor::rep(3), MemgestDescriptor::srs(3, 2)],
            default_memgest: 0,
            // Short per-attempt timeout so retries around faults stay
            // cheap; 10 attempts still ride out a 50ms failover.
            client_timeout: Duration::from_millis(25),
            seed,
            ..ClusterSpec::default()
        };
        SoakConfig {
            spec,
            clients: 4,
            ops_per_client: 2500,
            keys: 96,
            value_len: 64,
            get_ratio: 0.40,
            delete_ratio: 0.05,
            move_ratio: 0.05,
            memgests: vec![0, 1],
            faults: MessageFaults::light(),
            straggler: None,
            nemesis: NemesisSpec::standard(),
            window: SOAK_WINDOW,
        }
    }

    /// [`SoakConfig::quick`] with a seeded straggler layered on top of
    /// the message faults: linearizability must survive a chronically
    /// slow node exactly as it survives drops and crashes.
    pub fn quick_straggler(seed: u64) -> SoakConfig {
        SoakConfig {
            straggler: Some(StragglerSpec::light()),
            ..SoakConfig::quick(seed)
        }
    }

    /// [`SoakConfig::sequential`] plus a straggler schedule. Straggles
    /// are delay-only, so the sequential synchronous run still records
    /// a byte-identical history per seed — the determinism regression
    /// re-runs under this preset to pin down that the straggler nemesis
    /// perturbs *when* messages arrive but never *what* the protocol
    /// decides.
    pub fn sequential_straggler(seed: u64) -> SoakConfig {
        SoakConfig {
            straggler: Some(StragglerSpec::light()),
            ..SoakConfig::sequential(seed)
        }
    }

    /// A fully sequential soak: one client, synchronous ops, no faults
    /// of any kind, generous timeouts. With concurrency and faults
    /// removed, the *complete recorded history* — not just the schedule
    /// — is a pure function of the seed, which is what the determinism
    /// regression test (`crates/chaos/tests/determinism.rs`) pins down.
    pub fn sequential(seed: u64) -> SoakConfig {
        let mut cfg = SoakConfig::acceptance(seed);
        cfg.spec.client_timeout = Duration::from_secs(5);
        cfg.clients = 1;
        cfg.ops_per_client = 400;
        cfg.window = 1;
        cfg.faults = MessageFaults::none();
        cfg.nemesis = NemesisSpec {
            partitions: 0,
            crashes: 0,
            ..NemesisSpec::quiet()
        };
        cfg
    }

    /// The scripted op streams, one per client: pure in the seed.
    pub fn scripts(&self) -> Vec<Vec<ScriptOp>> {
        assert!(!self.memgests.is_empty(), "need at least one memgest");
        assert!(
            self.get_ratio + self.delete_ratio + self.move_ratio <= 1.0,
            "op ratios exceed 1"
        );
        let m = self.memgests.len();
        (0..self.clients)
            .map(|c| {
                let mut keygen = WorkloadGen::new(
                    WorkloadSpec {
                        key_count: self.keys,
                        value_len: self.value_len,
                        get_ratio: 0.0, // Kinds are drawn below instead.
                        distribution: KeyDistribution::Zipfian,
                    },
                    self.spec.derived_seed(&format!("soak-keys-{c}")),
                );
                let mut rng =
                    SmallRng::seed_from_u64(self.spec.derived_seed(&format!("soak-kinds-{c}")));
                (0..self.ops_per_client)
                    .map(|_| {
                        let key = keygen.next_key();
                        let r: f64 = rng.gen();
                        if r < self.get_ratio {
                            ScriptOp::Get { key }
                        } else if r < self.get_ratio + self.delete_ratio {
                            ScriptOp::Delete { key }
                        } else if r < self.get_ratio + self.delete_ratio + self.move_ratio {
                            ScriptOp::Move {
                                key,
                                memgest: self.memgests[rng.gen_range(0..m)],
                            }
                        } else {
                            ScriptOp::Put {
                                key,
                                memgest: self.memgests[key as usize % m],
                            }
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Digest of the run's full seeded schedule: scripts, nemesis
    /// timeline, and a probe of the message-fault decision table.
    /// Bit-identical across runs with equal configs and seeds.
    pub fn schedule_digest(&self) -> u64 {
        let mut d = Digest::new();
        for (c, script) in self.scripts().iter().enumerate() {
            d.mix(c as u64);
            for op in script {
                op.mix_into(&mut d);
            }
        }
        let data_nodes = self.spec.s + self.spec.d;
        for ev in self.nemesis.timeline(
            self.spec.derived_seed("nemesis"),
            data_nodes,
            self.spec.spares,
        ) {
            ev.mix_into(&mut d);
        }
        let plan = FaultPlan::new(self.spec.derived_seed("faults"), self.faults);
        d.mix(plan.probe_digest((data_nodes + self.spec.spares) as u32, 64));
        if let Some(spec) = self.straggler {
            let prof = StragglerProfile::seeded(
                self.spec.derived_seed("straggler"),
                spec,
                (data_nodes + self.spec.spares) as u32,
                None,
            );
            d.mix(prof.probe_digest((data_nodes + self.spec.spares) as u32, 64));
        }
        d.value()
    }
}

/// What a soak run produced.
#[derive(Debug)]
pub struct SoakReport {
    /// The master seed (echoed so failures are replayable).
    pub seed: u64,
    /// Digest of the seeded schedule (scripts + timeline + fault table).
    pub schedule_digest: u64,
    /// Total recorded operations (preload + scripted + final reads).
    pub ops: usize,
    /// Operations that timed out (counted as "maybe happened").
    pub timeouts: usize,
    /// Operations that returned a hard error.
    pub failures: usize,
    /// Partitions actually injected.
    pub partitions: usize,
    /// Crashes actually injected.
    pub crashes: usize,
    /// Messages (decided, dropped, duplicated, delayed) by the plan.
    pub message_faults: (u64, u64, u64, u64),
    /// Straggler decisions `(decided, straggled)`; zeros when the run
    /// had no straggler profile.
    pub straggles: (u64, u64),
    /// The checker's verdict.
    pub checker: CheckOutcome,
    /// The full recorded history the verdict was computed over.
    pub history: crate::history::History,
}

impl SoakReport {
    /// True when the history linearized.
    pub fn passed(&self) -> bool {
        self.checker.is_ok()
    }
}

/// Runs a full seeded soak: boot, preload, faulted workload, heal,
/// final read pass, shutdown, check.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let scripts = cfg.scripts();
    let spec = cfg.spec.clone();
    let data_nodes = spec.s + spec.d;
    let timeline = cfg
        .nemesis
        .timeline(spec.derived_seed("nemesis"), data_nodes, spec.spares);
    let schedule_digest = cfg.schedule_digest();
    let plan = Arc::new(FaultPlan::new(spec.derived_seed("faults"), cfg.faults));
    let straggler = cfg.straggler.map(|s| {
        Arc::new(StragglerProfile::seeded(
            spec.derived_seed("straggler"),
            s,
            (data_nodes + spec.spares) as u32,
            Some(Arc::clone(&plan) as Arc<_>),
        ))
    });

    let cluster = Cluster::start(spec.clone());
    let recorder = HistoryRecorder::new();

    // Fault-free preload: every key written once so gets have something
    // to observe from the start. Recorded like any other op.
    {
        let mut loader = recorder.client(cluster.client(), cfg.value_len);
        for key in 0..cfg.keys {
            let memgest = cfg.memgests[key as usize % cfg.memgests.len()];
            let _ = loader.put_to(key, memgest);
        }
    }

    match &straggler {
        Some(prof) => cluster
            .fabric()
            .set_fault_injector(Arc::clone(prof) as Arc<_>),
        None => cluster
            .fabric()
            .set_fault_injector(Arc::clone(&plan) as Arc<_>),
    }
    let nemesis = Nemesis::start(cluster.fabric().clone(), timeline);

    // Recorded clients are created on the main thread so recorder ids
    // (hence value tags) assign deterministically: loader 0, scripted
    // clients 1..=n, final reader n+1.
    let mut clients: Vec<_> = (0..cfg.clients)
        .map(|_| recorder.client(cluster.client(), cfg.value_len))
        .collect();

    std::thread::scope(|scope| {
        for (mut rc, script) in clients.drain(..).zip(scripts.iter()) {
            scope.spawn(move || {
                // Pipelined workload driver: each client keeps up to
                // `cfg.window` scripted ops in flight. Errors and
                // timeouts are part of the history; the checker, not
                // the workload, judges them. Retries inside the client
                // are idempotent (coordinator dedup), so pipelining
                // keeps at-most-once semantics even under faults.
                rc.set_window(cfg.window);
                for op in script {
                    match *op {
                        ScriptOp::Put { key, memgest } => rc.put_nb(key, memgest),
                        ScriptOp::Get { key } => rc.get_nb(key),
                        ScriptOp::Delete { key } => rc.delete_nb(key),
                        ScriptOp::Move { key, memgest } => rc.move_nb(key, memgest),
                    }
                    rc.poll_ops();
                }
                rc.drain_ops();
            });
        }
    });

    let (partitions, crashes) = nemesis.stop();
    cluster.fabric().clear_fault_injector();
    // Let in-flight failovers finish before the verification reads.
    std::thread::sleep(3 * cfg.spec.fail_timeout);

    {
        let mut reader = recorder.client(cluster.client(), cfg.value_len);
        for key in 0..cfg.keys {
            let _ = reader.get(key);
        }
    }

    cluster.shutdown();

    let history = recorder.history();
    let timeouts = history.maybe_count();
    let failures = history.failed_count();
    let ops = history.len();
    let checker = check_history(&history);

    SoakReport {
        seed: cfg.spec.seed,
        schedule_digest,
        ops,
        timeouts,
        failures,
        partitions,
        crashes,
        message_faults: plan.counters(),
        straggles: straggler.map_or((0, 0), |p| p.counters()),
        checker,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_seeded_and_sized() {
        let cfg = SoakConfig::acceptance(11);
        let s1 = cfg.scripts();
        let s2 = cfg.scripts();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), cfg.clients);
        assert!(s1.iter().all(|s| s.len() == cfg.ops_per_client));
        let total: usize = s1.iter().map(Vec::len).sum();
        assert!(total >= 10_000, "acceptance soak must be >= 10k ops");
        let other = SoakConfig::acceptance(12).scripts();
        assert_ne!(s1, other);
    }

    #[test]
    fn schedule_digest_tracks_seed() {
        assert_eq!(
            SoakConfig::acceptance(5).schedule_digest(),
            SoakConfig::acceptance(5).schedule_digest()
        );
        assert_ne!(
            SoakConfig::acceptance(5).schedule_digest(),
            SoakConfig::acceptance(6).schedule_digest()
        );
    }

    #[test]
    fn script_mix_matches_ratios() {
        let cfg = SoakConfig::acceptance(3);
        let ops: Vec<ScriptOp> = cfg.scripts().into_iter().flatten().collect();
        let frac = |pred: fn(&ScriptOp) -> bool| {
            ops.iter().filter(|o| pred(o)).count() as f64 / ops.len() as f64
        };
        let gets = frac(|o| matches!(o, ScriptOp::Get { .. }));
        let dels = frac(|o| matches!(o, ScriptOp::Delete { .. }));
        let moves = frac(|o| matches!(o, ScriptOp::Move { .. }));
        assert!((gets - 0.40).abs() < 0.03, "get fraction {gets}");
        assert!((dels - 0.05).abs() < 0.02, "delete fraction {dels}");
        assert!((moves - 0.05).abs() < 0.02, "move fraction {moves}");
    }
}
