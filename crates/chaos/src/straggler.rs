//! Seeded straggler profiles: chronically slow nodes.
//!
//! A [`StragglerProfile`] is a [`FaultInjector`] that models the tail
//! of a real deployment — one or two nodes whose NIC, GC pauses, or
//! noisy neighbours make them intermittently slow — without dropping a
//! single message. It is the workload the speculative `k + Δ` read
//! fan-out exists for: with `Δ = 0` a degraded read that happens to
//! pick the slow parity waits out the full straggle, with `Δ >= 1` the
//! decode late-binds to whichever rows land first and the tail
//! collapses (see `BENCH_ring.json`'s `tail_latency` section).
//!
//! Like [`crate::FaultPlan`], every decision is a pure function of
//! `(seed, from, to, n)` — the profile composes *over* an inner
//! injector (straggle delays add on top of the inner plan's verdict) so
//! soaks can run message corruption and stragglers together and still
//! replay bit-identically from one seed.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ring_net::{FaultAction, FaultInjector, NodeId};

use crate::{mix64, Digest};

/// Shape of a straggler profile: how many nodes are slow and how slow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerSpec {
    /// How many distinct nodes are chronically slow.
    pub slow_nodes: usize,
    /// Probability that a message touching a slow node (either
    /// endpoint) is straggled.
    pub slow_prob: f64,
    /// Smallest injected straggle.
    pub min_extra: Duration,
    /// Largest injected straggle.
    pub max_extra: Duration,
}

impl StragglerSpec {
    /// One slow node, ~35% of its messages straggled by 0.5–2ms —
    /// orders of magnitude above the RDMA-calibrated hop latency, well
    /// below any failure-detection threshold.
    pub fn light() -> StragglerSpec {
        StragglerSpec {
            slow_nodes: 1,
            slow_prob: 0.35,
            min_extra: Duration::from_micros(500),
            max_extra: Duration::from_millis(2),
        }
    }
}

/// A seeded, deterministic slow-node [`FaultInjector`].
///
/// The straggle applied to the `n`-th message on a directed link is a
/// pure function of `(seed, from, to, n)`; the slow-node set is a pure
/// function of the seed. Messages are never dropped or duplicated —
/// composition with an inner injector keeps the inner verdict and adds
/// the straggle on top of any inner extra delay.
pub struct StragglerProfile {
    seed: u64,
    spec: StragglerSpec,
    slow: BTreeSet<NodeId>,
    inner: Option<Arc<dyn FaultInjector>>,
    seqs: Mutex<HashMap<(NodeId, NodeId), u64>>,
    decisions: AtomicU64,
    straggled: AtomicU64,
}

impl StragglerProfile {
    /// Creates a profile whose slow-node set is drawn (seeded) from
    /// `0..nodes`, straggling on top of `inner`'s verdicts (pass `None`
    /// for a pure straggler).
    pub fn seeded(
        seed: u64,
        spec: StragglerSpec,
        nodes: u32,
        inner: Option<Arc<dyn FaultInjector>>,
    ) -> StragglerProfile {
        StragglerProfile::pinned(
            seed,
            spec,
            StragglerProfile::slow_set(seed, spec, nodes),
            inner,
        )
    }

    /// Creates a profile with an explicitly chosen slow-node set
    /// (benchmarks pin the straggler to a known redundancy target so
    /// `Δ = 0` provably waits on it).
    pub fn pinned(
        seed: u64,
        spec: StragglerSpec,
        slow: BTreeSet<NodeId>,
        inner: Option<Arc<dyn FaultInjector>>,
    ) -> StragglerProfile {
        assert!(
            (0.0..=1.0).contains(&spec.slow_prob),
            "slow_prob {} outside [0, 1]",
            spec.slow_prob
        );
        assert!(spec.min_extra <= spec.max_extra, "min_extra > max_extra");
        StragglerProfile {
            seed,
            spec,
            slow,
            inner,
            seqs: Mutex::new(HashMap::new()),
            decisions: AtomicU64::new(0),
            straggled: AtomicU64::new(0),
        }
    }

    /// The seeded slow-node set for `0..nodes`: `spec.slow_nodes`
    /// distinct draws, pure in the seed.
    pub fn slow_set(seed: u64, spec: StragglerSpec, nodes: u32) -> BTreeSet<NodeId> {
        let mut pool: Vec<NodeId> = (0..nodes).collect();
        let mut slow = BTreeSet::new();
        for ctr in 0..spec.slow_nodes.min(pool.len()) as u64 {
            let i = mix64(seed ^ mix64(0x5710_u64 ^ ctr)) as usize % pool.len();
            slow.insert(pool.swap_remove(i));
        }
        slow
    }

    /// The nodes this profile straggles.
    pub fn slow_nodes(&self) -> &BTreeSet<NodeId> {
        &self.slow
    }

    /// The straggle (if any) applied to the `seq`-th message on link
    /// `from -> to`: a pure function, exposed so tests and digests can
    /// replay the decision table.
    pub fn straggle(&self, from: NodeId, to: NodeId, seq: u64) -> Option<Duration> {
        if !self.slow.contains(&from) && !self.slow.contains(&to) {
            return None;
        }
        let link = (u64::from(from) << 32) | u64::from(to);
        let h = mix64(self.seed ^ mix64(link ^ 0x57_4A_66_1E) ^ mix64(seq));
        // 53-bit uniform in [0, 1), same construction as FaultPlan.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u >= self.spec.slow_prob {
            return None;
        }
        let (lo, hi) = (
            self.spec.min_extra.as_nanos() as u64,
            self.spec.max_extra.as_nanos() as u64,
        );
        let extra = if hi > lo {
            lo + mix64(h) % (hi - lo)
        } else {
            lo
        };
        Some(Duration::from_nanos(extra))
    }

    /// Digest of the straggle table over a probe grid plus the slow
    /// set: the reproducibility witness for the straggler half of a
    /// schedule.
    pub fn probe_digest(&self, nodes: u32, seqs_per_link: u64) -> u64 {
        let mut d = Digest::new();
        for &n in &self.slow {
            d.mix(u64::from(n));
        }
        for from in 0..nodes {
            for to in 0..nodes {
                if from == to {
                    continue;
                }
                for seq in 0..seqs_per_link {
                    d.mix(match self.straggle(from, to, seq) {
                        None => 0,
                        Some(extra) => 1 | (extra.as_nanos() as u64) << 1,
                    });
                }
            }
        }
        d.value()
    }

    /// `(decided, straggled)` counters so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.decisions.load(Ordering::Relaxed),
            self.straggled.load(Ordering::Relaxed),
        )
    }
}

impl FaultInjector for StragglerProfile {
    fn on_message(&self, from: NodeId, to: NodeId, wire_bytes: usize) -> FaultAction {
        let seq = {
            let mut seqs = self.seqs.lock().unwrap();
            let c = seqs.entry((from, to)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        self.decisions.fetch_add(1, Ordering::Relaxed);
        let base = match &self.inner {
            Some(inner) => inner.on_message(from, to, wire_bytes),
            None => FaultAction::Deliver,
        };
        match self.straggle(from, to, seq) {
            None => base,
            Some(extra) => {
                self.straggled.fetch_add(1, Ordering::Relaxed);
                match base {
                    // A dropped message has no latency to add to.
                    FaultAction::Drop => FaultAction::Drop,
                    FaultAction::Deliver => FaultAction::Delay(extra),
                    FaultAction::Delay(e) => FaultAction::Delay(e + extra),
                    // Straggle the retransmitted copy; the first copy
                    // already left the slow node before the stall.
                    FaultAction::Duplicate(e) => FaultAction::Duplicate(e + extra),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nemesis::{FaultPlan, MessageFaults};

    #[test]
    fn slow_set_is_seeded_and_distinct() {
        let spec = StragglerSpec {
            slow_nodes: 3,
            ..StragglerSpec::light()
        };
        let a = StragglerProfile::slow_set(5, spec, 7);
        let b = StragglerProfile::slow_set(5, spec, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3, "distinct draws");
        assert!(a.iter().all(|&n| n < 7));
        // Different seeds must still produce valid (distinct, in-range)
        // sets; the probe digest, not the set, distinguishes seeds.
        let c = StragglerProfile::slow_set(6, spec, 7);
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|&n| n < 7));
    }

    #[test]
    fn straggles_are_pure_and_only_touch_slow_links() {
        let p = StragglerProfile::seeded(9, StragglerSpec::light(), 5, None);
        let q = StragglerProfile::seeded(9, StragglerSpec::light(), 5, None);
        assert_eq!(p.slow_nodes(), q.slow_nodes());
        assert_eq!(p.probe_digest(5, 128), q.probe_digest(5, 128));
        let slow = *p.slow_nodes().iter().next().unwrap();
        for from in 0..5u32 {
            for to in 0..5u32 {
                if from == to {
                    continue;
                }
                for seq in 0..64 {
                    assert_eq!(p.straggle(from, to, seq), q.straggle(from, to, seq));
                    if !p.slow_nodes().contains(&from) && !p.slow_nodes().contains(&to) {
                        assert_eq!(p.straggle(from, to, seq), None);
                    }
                }
            }
        }
        // The slow node's links do get straggled at roughly slow_prob.
        let fast = (0..5u32).find(|n| !p.slow_nodes().contains(n)).unwrap();
        let hits = (0..10_000u64)
            .filter(|&s| p.straggle(fast, slow, s).is_some())
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.35).abs() < 0.03, "straggle rate {rate}");
    }

    #[test]
    fn straggle_bounds_respected() {
        let spec = StragglerSpec::light();
        let p = StragglerProfile::seeded(3, spec, 4, None);
        let slow = *p.slow_nodes().iter().next().unwrap();
        let other = (0..4u32).find(|&n| n != slow).unwrap();
        for seq in 0..4096 {
            if let Some(extra) = p.straggle(slow, other, seq) {
                assert!(extra >= spec.min_extra && extra < spec.max_extra);
            }
        }
    }

    #[test]
    fn composes_over_inner_plan() {
        // Straggle adds on top of the inner verdict and never turns a
        // drop into a delivery (or vice versa).
        let inner = Arc::new(FaultPlan::new(7, MessageFaults::light()));
        let spec = StragglerSpec {
            slow_prob: 1.0, // Straggle everything touching the slow node.
            ..StragglerSpec::light()
        };
        let p = StragglerProfile::seeded(7, spec, 4, Some(Arc::clone(&inner) as Arc<_>));
        let slow = *p.slow_nodes().iter().next().unwrap();
        let other = (0..4u32).find(|&n| n != slow).unwrap();
        for seq in 0..2048 {
            let base = inner.decide(slow, other, seq);
            let combined = p.on_message(slow, other, 64);
            match (base, combined) {
                (FaultAction::Drop, FaultAction::Drop) => {}
                (FaultAction::Deliver, FaultAction::Delay(e)) => {
                    assert!(e >= spec.min_extra);
                }
                (FaultAction::Delay(b), FaultAction::Delay(c)) => assert!(c > b),
                (FaultAction::Duplicate(b), FaultAction::Duplicate(c)) => assert!(c > b),
                other => panic!("bad composition at seq {seq}: {other:?}"),
            }
        }
    }

    #[test]
    fn pure_straggler_never_drops() {
        let p = StragglerProfile::seeded(11, StragglerSpec::light(), 5, None);
        for seq in 0..4096u64 {
            let _ = seq;
        }
        for from in 0..5u32 {
            for to in 0..5u32 {
                if from == to {
                    continue;
                }
                for _ in 0..32 {
                    match p.on_message(from, to, 128) {
                        FaultAction::Deliver | FaultAction::Delay(_) => {}
                        bad => panic!("pure straggler produced {bad:?}"),
                    }
                }
            }
        }
    }
}
