//! Seeded chaos testing for the Ring cluster: deterministic fault
//! injection plus black-box linearizability checking.
//!
//! The crate has three parts, mirroring the classic nemesis/checker
//! architecture (Jepsen, Porcupine):
//!
//! - [`nemesis`]: a seeded [`FaultPlan`] implementing
//!   `ring_net::FaultInjector` (per-message drop / duplicate / delay,
//!   hence reorder), and a [`NemesisSpec`] timeline of coarse faults —
//!   transient partitions and node crashes followed by spare promotion —
//!   driven against the fabric by a [`nemesis::Nemesis`] thread; the
//!   companion [`straggler::StragglerProfile`] models chronically slow
//!   nodes (delay-only, composable over a `FaultPlan`).
//! - [`history`]: a [`RecordedClient`] wrapper around
//!   `ring_kvs::RingClient` that logs every invocation/response pair
//!   with wall-clock windows, unique value tags and returned versions.
//! - [`checker`]: a per-key Wing & Gong linearizability checker (sound
//!   by P-compositionality: a KV history is linearizable iff each
//!   per-key subhistory is) against a sequential register model that
//!   understands Ring's `move` and version semantics.
//!
//! [`soak`] ties the three together into a reproducible YCSB-style soak
//! run: every random choice — the workload, the nemesis timeline, the
//! message-fault decision function — derives from one `u64` seed, so a
//! failure report's seed replays the identical schedule.

pub mod abstract_events;
pub mod checker;
pub mod history;
pub mod nemesis;
pub mod soak;
pub mod straggler;

pub use abstract_events::{abstract_ops, AbstractKind, AbstractOp};
pub use checker::{check_history, CheckOutcome, Violation};
pub use history::{History, HistoryRecorder, RecordedClient, Tag};
pub use nemesis::{FaultPlan, MessageFaults, Nemesis, NemesisEvent, NemesisSpec};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use straggler::{StragglerProfile, StragglerSpec};

/// Order-sensitive FNV-1a-style accumulator used for schedule digests.
///
/// Every seeded artefact of a soak run (workload scripts, nemesis
/// timeline, fault-decision probes) folds itself into one of these; two
/// runs with the same seed produce bit-identical digests.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    /// A fresh accumulator.
    pub fn new() -> Digest {
        Digest(0xcbf29ce484222325)
    }

    /// Folds one word into the digest.
    pub fn mix(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x100000001b3);
        }
    }

    /// The accumulated value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

/// splitmix64 finaliser: the crate's standard bit mixer for deriving
/// decorrelated values from counters and seeds.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::new();
        a.mix(1);
        a.mix(2);
        let mut b = Digest::new();
        b.mix(2);
        b.mix(1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn digest_is_reproducible() {
        let mut a = Digest::new();
        let mut b = Digest::new();
        for i in 0..100 {
            a.mix(i);
            b.mix(i);
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn mix64_spreads_counters() {
        let outs: std::collections::HashSet<u64> = (0..1000).map(mix64).collect();
        assert_eq!(outs.len(), 1000);
    }
}
