//! Per-key Wing & Gong linearizability checking over recorded
//! histories.
//!
//! Ring's KV API is a map of independent registers, so linearizability
//! is *P-compositional* (Herlihy & Wing): a history is linearizable iff
//! every per-key subhistory is. The checker therefore partitions the
//! history by key and runs an exhaustive linearization search per key
//! against a sequential register model:
//!
//! - `put(tag)` sets the register to `tag` (versions are checked
//!   separately, see below);
//! - `get -> tag?` must observe exactly the model value (`None` =
//!   absent);
//! - `delete` clears the register — key-not-found responses are merged
//!   with success because a retried delete whose first response was
//!   lost is indistinguishable from one that found nothing;
//! - `move` relocates the value between memgests without changing it,
//!   so it is a value-level no-op (its version still participates in
//!   the version consistency check).
//!
//! Operations that timed out ("maybe happened") get an infinite
//! response time: the search may place them anywhere after their
//! invocation, including after every observation — which is
//! indistinguishable from never happening.
//!
//! On top of the per-key search, a global *version consistency* pass
//! enforces the paper's Section 5.2 invariant as observed by clients:
//! `(key, version)` identifies one write, so no two distinct tags may
//! ever be returned under the same `(key, version)`.

use std::collections::{BTreeMap, HashMap, HashSet};

use ring_kvs::{Key, Version};

use crate::history::{Event, History, Invocation, Outcome};
use crate::Tag;

/// Result of checking one history.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// The history is linearizable and version-consistent.
    Ok {
        /// Distinct keys checked.
        keys: usize,
        /// Events checked.
        events: usize,
        /// Search states explored across all keys.
        states: u64,
    },
    /// A consistency violation, with the evidence.
    Violation(Violation),
    /// Some per-key searches ran out of budget before a verdict (raise
    /// the budget); every other key was still checked and found clean.
    Inconclusive {
        /// The keys whose searches exceeded the budget.
        keys: Vec<Key>,
        /// States explored before giving up, summed over all keys.
        states: u64,
    },
}

impl CheckOutcome {
    /// True for [`CheckOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, CheckOutcome::Ok { .. })
    }
}

/// Evidence for a non-linearizable (or version-inconsistent) history.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The key on which the violation occurred.
    pub key: Key,
    /// Human-readable description of what failed.
    pub detail: String,
    /// The offending operations: for a linearizability failure, the
    /// events that could not be linearized at the search frontier; for
    /// a version conflict, the two clashing observations.
    pub events: Vec<Event>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "key {}: {}", self.key, self.detail)?;
        for e in &self.events {
            writeln!(
                f,
                "  [{:>12}ns..{:>12}ns] client {} op {}: {:?} -> {:?}",
                e.invoked_ns,
                if e.returned_ns == u64::MAX {
                    u64::MAX
                } else {
                    e.returned_ns
                },
                e.client,
                e.op,
                e.call,
                e.outcome
            )?;
        }
        Ok(())
    }
}

/// Default per-key search budget (states explored).
pub const DEFAULT_BUDGET: u64 = 20_000_000;

/// Checks a history with the default search budget.
pub fn check_history(history: &History) -> CheckOutcome {
    check_history_with_budget(history, DEFAULT_BUDGET)
}

/// Checks a history, exploring at most `budget` search states per key.
pub fn check_history_with_budget(history: &History, budget: u64) -> CheckOutcome {
    if let Some(v) = check_version_consistency(history) {
        return CheckOutcome::Violation(v);
    }

    let mut by_key: BTreeMap<Key, Vec<&Event>> = BTreeMap::new();
    for e in &history.events {
        by_key.entry(e.key).or_default().push(e);
    }

    let mut total_states = 0u64;
    let keys = by_key.len();
    // A blown budget on one key must not abort the history: a definite
    // violation on a later key outranks "inconclusive", and every key
    // deserves its own verdict.
    let mut inconclusive: Vec<Key> = Vec::new();
    for (key, events) in by_key {
        match check_key(key, &events, budget) {
            KeyVerdict::Linearizable { states } => total_states += states,
            KeyVerdict::Violation(v) => return CheckOutcome::Violation(v),
            KeyVerdict::OutOfBudget { states } => {
                total_states += states;
                inconclusive.push(key);
            }
        }
    }
    if !inconclusive.is_empty() {
        return CheckOutcome::Inconclusive {
            keys: inconclusive,
            states: total_states,
        };
    }
    CheckOutcome::Ok {
        keys,
        events: history.events.len(),
        states: total_states,
    }
}

/// No two distinct tags may be observed under one `(key, version)`.
fn check_version_consistency(history: &History) -> Option<Violation> {
    let mut seen: HashMap<(Key, Version), (Tag, &Event)> = HashMap::new();
    for e in &history.events {
        let observed: Option<(Version, Tag)> = match (&e.call, &e.outcome) {
            (Invocation::Put { tag, .. }, Outcome::PutOk { version }) => Some((*version, *tag)),
            (
                Invocation::Get,
                Outcome::GetOk {
                    tag: Some(tag),
                    version: Some(version),
                },
            ) => Some((*version, *tag)),
            _ => None,
        };
        let Some((version, tag)) = observed else {
            continue;
        };
        match seen.get(&(e.key, version)) {
            Some(&(prev_tag, prev_e)) if prev_tag != tag => {
                return Some(Violation {
                    key: e.key,
                    detail: format!(
                        "version {version} observed with two different values: \
                         tags {prev_tag:?} and {tag:?}"
                    ),
                    events: vec![prev_e.clone(), e.clone()],
                });
            }
            Some(_) => {}
            None => {
                seen.insert((e.key, version), (tag, e));
            }
        }
    }
    None
}

/// One operation in a per-key search, reduced to model terms.
struct KeyOp<'a> {
    event: &'a Event,
    inv: u64,
    /// `u64::MAX` for "maybe happened" ops: the search may place them
    /// arbitrarily late.
    ret: u64,
    sem: Sem,
}

/// Sequential-model semantics of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sem {
    /// Always applicable; sets the register.
    Write(Option<Tag>),
    /// Applicable iff the register equals the observed value.
    Read(Option<Tag>),
    /// Always applicable; leaves the register unchanged.
    Noop,
}

enum KeyVerdict {
    Linearizable { states: u64 },
    Violation(Violation),
    OutOfBudget { states: u64 },
}

fn sem_of(e: &Event) -> Sem {
    match (&e.call, &e.outcome) {
        // A put takes effect whether or not its response arrived; if it
        // never executed, placing it after every observation models
        // that. Failed writes are treated like timeouts (conservative:
        // the node may have applied the op before the error).
        (Invocation::Put { tag, .. }, _) => Sem::Write(Some(*tag)),
        (Invocation::Delete, _) => Sem::Write(None),
        (Invocation::Move { .. }, _) => Sem::Noop,
        (Invocation::Get, Outcome::GetOk { tag, .. }) => Sem::Read(*tag),
        // A get that timed out or errored observed nothing.
        (Invocation::Get, _) => Sem::Noop,
    }
}

fn is_maybe(e: &Event) -> bool {
    matches!(e.outcome, Outcome::Maybe | Outcome::Failed(_))
}

/// Exhaustive Wing & Gong search for one key, with memoization on
/// (linearized-set, register value).
fn check_key(key: Key, events: &[&Event], budget: u64) -> KeyVerdict {
    let mut ops: Vec<KeyOp<'_>> = events
        .iter()
        .map(|e| KeyOp {
            event: e,
            inv: e.invoked_ns,
            ret: if is_maybe(e) { u64::MAX } else { e.returned_ns },
            sem: sem_of(e),
        })
        .collect();
    ops.sort_by_key(|o| (o.inv, o.ret));
    let n = ops.len();
    let words = n.div_ceil(64);

    // DFS over (linearized bitset, register). `path` is the chosen
    // linearization prefix; on failure the deepest frontier reached is
    // the evidence.
    let mut linearized = vec![0u64; words];
    let mut state: Option<Tag> = None;
    let mut done = 0usize;
    // Per-depth iteration cursor: which op index to try next.
    let mut cursor = vec![0usize; n + 1];
    let mut path: Vec<(usize, Option<Tag>)> = Vec::new(); // (op, prior state)
    let mut seen: HashSet<(Vec<u64>, Option<Tag>)> = HashSet::new();
    let mut states = 0u64;
    let mut deepest = 0usize;
    let mut deepest_set: Vec<u64> = linearized.clone();
    let mut deepest_state: Option<Tag> = None;

    let test_bit = |set: &[u64], i: usize| set[i / 64] >> (i % 64) & 1 == 1;

    loop {
        if done == n {
            return KeyVerdict::Linearizable { states };
        }
        // Earliest response among remaining ops bounds the candidates:
        // an op invoked after some remaining op completed cannot be
        // linearized before it.
        let min_ret = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| !test_bit(&linearized, *i))
            .map(|(_, o)| o.ret)
            .min()
            .expect("done < n");

        let mut advanced = false;
        while cursor[done] < n {
            let i = cursor[done];
            cursor[done] += 1;
            if test_bit(&linearized, i) || ops[i].inv > min_ret {
                continue;
            }
            // Applicability against the model.
            let next_state = match ops[i].sem {
                Sem::Write(v) => v,
                Sem::Noop => state,
                Sem::Read(observed) => {
                    if observed != state {
                        continue;
                    }
                    state
                }
            };
            // Take the step.
            let mut next_set = linearized.clone();
            next_set[i / 64] |= 1 << (i % 64);
            if !seen.insert((next_set.clone(), next_state)) {
                continue; // Equivalent state already explored.
            }
            states += 1;
            if states > budget {
                return KeyVerdict::OutOfBudget { states };
            }
            path.push((i, state));
            linearized = next_set;
            state = next_state;
            done += 1;
            cursor[done] = 0;
            if done > deepest {
                deepest = done;
                deepest_set = linearized.clone();
                deepest_state = state;
            }
            advanced = true;
            break;
        }
        if advanced {
            continue;
        }
        // Backtrack.
        match path.pop() {
            Some((i, prior)) => {
                linearized[i / 64] &= !(1 << (i % 64));
                state = prior;
                done -= 1;
            }
            None => {
                // Exhausted: not linearizable. Report the frontier at
                // the deepest prefix reached: the ops that were
                // eligible there but could not be applied.
                let min_ret = ops
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !test_bit(&deepest_set, *i))
                    .map(|(_, o)| o.ret)
                    .min()
                    .unwrap_or(u64::MAX);
                let stuck: Vec<Event> = ops
                    .iter()
                    .enumerate()
                    .filter(|(i, o)| !test_bit(&deepest_set, *i) && o.inv <= min_ret)
                    .map(|(_, o)| o.event.clone())
                    .collect();
                return KeyVerdict::Violation(Violation {
                    key,
                    detail: format!(
                        "no linearization: after {} of {} ops the register holds \
                         {deepest_state:?} and none of the eligible ops can apply",
                        deepest, n
                    ),
                    events: stuck,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Event, Invocation, Outcome};

    fn put(client: u32, op: u64, key: Key, inv: u64, ret: u64, version: Version) -> Event {
        Event {
            client,
            op,
            key,
            call: Invocation::Put {
                tag: (client, op),
                memgest: None,
            },
            invoked_ns: inv,
            returned_ns: ret,
            outcome: Outcome::PutOk { version },
        }
    }

    fn get(client: u32, op: u64, key: Key, inv: u64, ret: u64, tag: Option<Tag>) -> Event {
        Event {
            client,
            op,
            key,
            call: Invocation::Get,
            invoked_ns: inv,
            returned_ns: ret,
            outcome: Outcome::GetOk {
                tag,
                // A version unique per tag, so the version-consistency
                // pass never sees a fabricated conflict in valid tests.
                version: tag.map(|t| 1000 + t.1),
            },
        }
    }

    fn history(events: Vec<Event>) -> History {
        History { events }
    }

    #[test]
    fn sequential_history_accepted() {
        let h = history(vec![
            put(0, 0, 5, 0, 10, 1),
            get(1, 1, 5, 20, 30, Some((0, 0))),
            put(0, 2, 5, 40, 50, 2),
            get(1, 3, 5, 60, 70, Some((0, 2))),
        ]);
        assert!(check_history(&h).is_ok(), "{:?}", check_history(&h));
    }

    #[test]
    fn concurrent_reads_may_split_around_a_write() {
        // Two gets concurrent with a put: one sees the old value, the
        // other the new one. Linearizable.
        let h = history(vec![
            put(0, 0, 7, 0, 10, 1),
            put(0, 1, 7, 100, 200, 2),
            get(1, 2, 7, 110, 190, Some((0, 0))),
            get(2, 3, 7, 120, 180, Some((0, 1))),
        ]);
        assert!(check_history(&h).is_ok(), "{:?}", check_history(&h));
    }

    #[test]
    fn stale_read_after_commit_rejected() {
        // put(tag B) completes at t=200; a later get observes the
        // overwritten tag A. Non-linearizable: the checker must say so
        // and name the offending ops.
        let h = history(vec![
            put(0, 0, 9, 0, 10, 1),
            put(0, 1, 9, 100, 200, 2),
            get(1, 2, 9, 300, 400, Some((0, 0))),
        ]);
        match check_history(&h) {
            CheckOutcome::Violation(v) => {
                assert_eq!(v.key, 9);
                // The stale get is part of the evidence.
                assert!(
                    v.events.iter().any(|e| e.client == 1 && e.op == 2),
                    "evidence must include the stale read: {v}"
                );
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn read_of_never_written_value_rejected() {
        let h = history(vec![
            put(0, 0, 3, 0, 10, 1),
            get(1, 1, 3, 20, 30, Some((9, 9))),
        ]);
        assert!(!check_history(&h).is_ok());
    }

    #[test]
    fn lost_update_rejected() {
        // Sequential put A, put B, then two sequential gets observing
        // B then A: A "came back" — non-linearizable.
        let h = history(vec![
            put(0, 0, 4, 0, 10, 1),
            put(0, 1, 4, 20, 30, 2),
            get(1, 2, 4, 40, 50, Some((0, 1))),
            get(1, 3, 4, 60, 70, Some((0, 0))),
        ]);
        assert!(!check_history(&h).is_ok());
    }

    #[test]
    fn delete_then_absent_read_accepted() {
        let mut del = Event {
            client: 2,
            op: 2,
            key: 6,
            call: Invocation::Delete,
            invoked_ns: 20,
            returned_ns: 30,
            outcome: Outcome::DeleteOk,
        };
        let h = history(vec![
            put(0, 0, 6, 0, 10, 1),
            del.clone(),
            get(1, 3, 6, 40, 50, None),
        ]);
        assert!(check_history(&h).is_ok(), "{:?}", check_history(&h));
        // Whereas observing the value after a completed delete is only
        // OK if the get was concurrent with the delete.
        del.invoked_ns = 20;
        del.returned_ns = 30;
        let h2 = history(vec![
            put(0, 0, 6, 0, 10, 1),
            del,
            get(1, 3, 6, 40, 50, Some((0, 0))),
        ]);
        assert!(!check_history(&h2).is_ok());
    }

    #[test]
    fn timed_out_put_may_or_may_not_take_effect() {
        let maybe_put = Event {
            client: 0,
            op: 1,
            key: 8,
            call: Invocation::Put {
                tag: (0, 1),
                memgest: None,
            },
            invoked_ns: 20,
            returned_ns: 40,
            outcome: Outcome::Maybe,
        };
        // Case 1: a later read sees the timed-out put. OK.
        let h1 = history(vec![
            put(0, 0, 8, 0, 10, 1),
            maybe_put.clone(),
            get(1, 2, 8, 50, 60, Some((0, 1))),
        ]);
        assert!(check_history(&h1).is_ok(), "{:?}", check_history(&h1));
        // Case 2: a later read still sees the old value. Also OK.
        let h2 = history(vec![
            put(0, 0, 8, 0, 10, 1),
            maybe_put,
            get(1, 2, 8, 50, 60, Some((0, 0))),
        ]);
        assert!(check_history(&h2).is_ok(), "{:?}", check_history(&h2));
    }

    #[test]
    fn maybe_put_cannot_take_effect_before_invocation() {
        // The timed-out put is invoked *after* the get returned, so the
        // get cannot have observed it.
        let h = history(vec![
            get(1, 0, 2, 0, 10, Some((0, 1))),
            Event {
                client: 0,
                op: 1,
                key: 2,
                call: Invocation::Put {
                    tag: (0, 1),
                    memgest: None,
                },
                invoked_ns: 20,
                returned_ns: 40,
                outcome: Outcome::Maybe,
            },
        ]);
        assert!(!check_history(&h).is_ok());
    }

    #[test]
    fn version_conflict_detected() {
        // Two different tags observed under the same (key, version).
        let h = history(vec![put(0, 0, 1, 0, 10, 7), put(1, 1, 1, 1000, 1010, 7)]);
        match check_history(&h) {
            CheckOutcome::Violation(v) => {
                assert!(v.detail.contains("version 7"), "{}", v.detail);
                assert_eq!(v.events.len(), 2);
            }
            other => panic!("expected version violation, got {other:?}"),
        }
    }

    #[test]
    fn move_is_value_transparent() {
        let mv = Event {
            client: 2,
            op: 2,
            key: 11,
            call: Invocation::Move { to: 1 },
            invoked_ns: 20,
            returned_ns: 30,
            outcome: Outcome::MoveOk { version: 2 },
        };
        let h = history(vec![
            put(0, 0, 11, 0, 10, 1),
            mv,
            get(1, 3, 11, 40, 50, Some((0, 0))),
        ]);
        assert!(check_history(&h).is_ok(), "{:?}", check_history(&h));
    }

    #[test]
    fn keys_are_checked_independently() {
        // A violation on key 1 is found even among clean keys.
        let mut events = Vec::new();
        for key in 0..20u64 {
            events.push(put(0, key * 10, key, key * 100, key * 100 + 10, 1));
            events.push(get(
                1,
                key * 10 + 1,
                key,
                key * 100 + 20,
                key * 100 + 30,
                Some((0, key * 10)),
            ));
        }
        assert!(check_history(&history(events.clone())).is_ok());
        events.push(get(2, 999, 1, 5000, 5010, None)); // Value vanished.
        match check_history(&history(events)) {
            CheckOutcome::Violation(v) => assert_eq!(v.key, 1),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_reported_not_crashed() {
        // Dozens of overlapping maybe-puts force a wide search.
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push(Event {
                client: i as u32,
                op: i,
                key: 0,
                call: Invocation::Put {
                    tag: (i as u32, i),
                    memgest: None,
                },
                invoked_ns: 0,
                returned_ns: 10,
                outcome: Outcome::Maybe,
            });
        }
        events.push(get(99, 99, 0, 20, 30, Some((3, 3))));
        match check_history_with_budget(&history(events), 50) {
            CheckOutcome::Inconclusive { keys, .. } => assert_eq!(keys, vec![0]),
            other => panic!("expected inconclusive, got {other:?}"),
        }
    }

    /// Dozens of overlapping maybe-puts on `key`, enough to blow a
    /// small search budget.
    fn budget_blower(key: Key) -> Vec<Event> {
        (0..40u64)
            .map(|i| Event {
                client: i as u32,
                op: key * 1000 + i,
                key,
                call: Invocation::Put {
                    tag: (i as u32, key * 1000 + i),
                    memgest: None,
                },
                invoked_ns: 0,
                returned_ns: 10,
                outcome: Outcome::Maybe,
            })
            .collect()
    }

    #[test]
    fn budget_exhaustion_is_per_key_not_per_history() {
        // Key 0 blows the budget; keys 1 and 2 are cheap and clean. The
        // verdict must be inconclusive on key 0 *only*, with the other
        // keys checked (not silently skipped).
        let mut events = budget_blower(0);
        events.push(get(90, 9000, 0, 20, 30, Some((3, 3))));
        for key in [1u64, 2] {
            events.push(put(50, key * 100, key, 0, 10, 1));
            events.push(get(51, key * 100 + 1, key, 20, 30, Some((50, key * 100))));
        }
        match check_history_with_budget(&history(events), 50) {
            CheckOutcome::Inconclusive { keys, states } => {
                assert_eq!(keys, vec![0], "only key 0 ran out of budget");
                // The clean keys' states are counted too: they were
                // actually searched, past the exhausted key.
                assert!(states > 50, "clean keys explored after the blown one");
            }
            other => panic!("expected inconclusive, got {other:?}"),
        }
    }

    #[test]
    fn violation_behind_a_blown_budget_is_still_found() {
        // Key 0 exhausts the budget, but key 5 holds a definite stale
        // read: the checker must keep going and report the violation,
        // which outranks "inconclusive".
        let mut events = budget_blower(0);
        events.push(put(50, 500, 5, 0, 10, 1));
        events.push(put(50, 501, 5, 20, 30, 2));
        events.push(get(51, 502, 5, 40, 50, Some((50, 500))));
        match check_history_with_budget(&history(events), 50) {
            CheckOutcome::Violation(v) => assert_eq!(v.key, 5),
            other => panic!("expected violation on key 5, got {other:?}"),
        }
    }
}
