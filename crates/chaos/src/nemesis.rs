//! Seeded fault schedules: message-level faults and coarse topology
//! faults (partitions, crashes) derived from one `u64` seed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ring_kvs::proto::RingFabric;
use ring_net::{FaultAction, FaultInjector, NodeId};

use crate::{mix64, Digest};

/// Per-message fault probabilities for a [`FaultPlan`].
///
/// Probabilities are cumulative-checked in the order drop, duplicate,
/// delay; their sum must stay `<= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageFaults {
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice (second copy delayed).
    pub dup_prob: f64,
    /// Probability a message is delayed by up to `max_extra_delay`
    /// (delayed messages are overtaken by later ones: reordering).
    pub delay_prob: f64,
    /// Upper bound for injected extra delays.
    pub max_extra_delay: Duration,
}

impl MessageFaults {
    /// A gentle default mix: ~2% drops, 1% duplicates, 2% delays of up
    /// to 200µs (≫ the RDMA-calibrated hop latency, so real reordering).
    pub fn light() -> MessageFaults {
        MessageFaults {
            drop_prob: 0.02,
            dup_prob: 0.01,
            delay_prob: 0.02,
            max_extra_delay: Duration::from_micros(200),
        }
    }

    /// No message faults.
    pub fn none() -> MessageFaults {
        MessageFaults {
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_extra_delay: Duration::ZERO,
        }
    }
}

/// A seeded, deterministic [`FaultInjector`].
///
/// The fate of the `n`-th message on a directed link `(from, to)` is a
/// pure function of `(seed, from, to, n)` — no global state couples
/// links, so one link's traffic volume never perturbs another link's
/// schedule. Which *real* message ends up being the `n`-th on a link
/// still depends on thread interleaving; what is bit-identical across
/// runs is the decision table itself (see [`FaultPlan::probe_digest`]).
pub struct FaultPlan {
    seed: u64,
    faults: MessageFaults,
    seqs: Mutex<HashMap<(NodeId, NodeId), u64>>,
    decisions: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
}

impl FaultPlan {
    /// Creates a plan for the given seed and probabilities.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are negative or sum to more than 1.
    pub fn new(seed: u64, faults: MessageFaults) -> FaultPlan {
        let sum = faults.drop_prob + faults.dup_prob + faults.delay_prob;
        assert!(
            faults.drop_prob >= 0.0 && faults.dup_prob >= 0.0 && faults.delay_prob >= 0.0,
            "negative fault probability"
        );
        assert!(sum <= 1.0, "fault probabilities sum to {sum} > 1");
        FaultPlan {
            seed,
            faults,
            seqs: Mutex::new(HashMap::new()),
            decisions: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// The fate of the `seq`-th message on link `from -> to`: a pure
    /// function, exposed so tests can replay decision tables.
    pub fn decide(&self, from: NodeId, to: NodeId, seq: u64) -> FaultAction {
        let link = (u64::from(from) << 32) | u64::from(to);
        let h = mix64(self.seed ^ mix64(link) ^ mix64(seq));
        // 53-bit uniform in [0, 1), same construction as rand's f64.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let f = &self.faults;
        if u < f.drop_prob {
            FaultAction::Drop
        } else if u < f.drop_prob + f.dup_prob {
            FaultAction::Duplicate(self.extra_delay(h))
        } else if u < f.drop_prob + f.dup_prob + f.delay_prob {
            FaultAction::Delay(self.extra_delay(h))
        } else {
            FaultAction::Deliver
        }
    }

    fn extra_delay(&self, h: u64) -> Duration {
        let max = self.faults.max_extra_delay.as_nanos() as u64;
        if max == 0 {
            return Duration::ZERO;
        }
        // Second independent draw from the same hash; 1..=max so a
        // "delayed" message is never delayed by zero.
        Duration::from_nanos(1 + mix64(h) % max)
    }

    /// Digest of the decision table over a probe grid (`links x seqs`):
    /// equal for equal seeds, different (w.h.p.) otherwise. This is the
    /// reproducibility witness for the message-fault half of a run.
    pub fn probe_digest(&self, nodes: u32, seqs_per_link: u64) -> u64 {
        let mut d = Digest::new();
        for from in 0..nodes {
            for to in 0..nodes {
                if from == to {
                    continue;
                }
                for seq in 0..seqs_per_link {
                    let word = match self.decide(from, to, seq) {
                        FaultAction::Deliver => 0,
                        FaultAction::Drop => 1,
                        FaultAction::Delay(extra) => 2 | (extra.as_nanos() as u64) << 2,
                        FaultAction::Duplicate(extra) => 3 | (extra.as_nanos() as u64) << 2,
                    };
                    d.mix(word);
                }
            }
        }
        d.value()
    }

    /// `(decided, dropped, duplicated, delayed)` counters so far.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.decisions.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
            self.duplicated.load(Ordering::Relaxed),
            self.delayed.load(Ordering::Relaxed),
        )
    }
}

impl FaultInjector for FaultPlan {
    fn on_message(&self, from: NodeId, to: NodeId, _wire_bytes: usize) -> FaultAction {
        let seq = {
            let mut seqs = self.seqs.lock().unwrap();
            let c = seqs.entry((from, to)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let action = self.decide(from, to, seq);
        self.decisions.fetch_add(1, Ordering::Relaxed);
        match action {
            FaultAction::Drop => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Duplicate(_) => {
                self.duplicated.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Delay(_) => {
                self.delayed.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Deliver => {}
        }
        action
    }
}

/// How many coarse faults a nemesis run injects and how they are paced.
///
/// Events are strictly serialized — one fault in flight at a time, with
/// `every` between starts and partitions healing after `partition_len`
/// (`every > partition_len` is asserted). This keeps the run inside the
/// paper's fault model: never more than `d` simultaneous failures per
/// group, so a strongly-consistent history is actually achievable and a
/// checker violation indicts the implementation, not the nemesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NemesisSpec {
    /// Number of transient partitions to inject.
    pub partitions: usize,
    /// Number of node crashes to inject (clamped to the spare count:
    /// every crash must be repairable by a promotion).
    pub crashes: usize,
    /// Quiet period before the first event.
    pub start_after: Duration,
    /// Gap between consecutive event starts.
    pub every: Duration,
    /// How long a partition lasts before healing.
    pub partition_len: Duration,
}

impl NemesisSpec {
    /// No coarse faults (message faults may still run).
    pub fn quiet() -> NemesisSpec {
        NemesisSpec {
            partitions: 0,
            crashes: 0,
            start_after: Duration::from_millis(50),
            every: Duration::from_millis(300),
            partition_len: Duration::from_millis(30),
        }
    }

    /// The acceptance mix: a few transient partitions plus crashes.
    pub fn standard() -> NemesisSpec {
        NemesisSpec {
            partitions: 3,
            crashes: 2,
            ..NemesisSpec::quiet()
        }
    }

    /// The seeded event timeline for a cluster with data nodes
    /// `0..data_nodes` and `spares` spare nodes. Deterministic in
    /// `seed`; crash targets are distinct data nodes (at most one crash
    /// per spare), partition endpoints are distinct data-node pairs.
    /// The leader is never a fault target — leader failover is an open
    /// item (see ROADMAP.md).
    pub fn timeline(&self, seed: u64, data_nodes: usize, spares: usize) -> Vec<NemesisEvent> {
        assert!(
            self.every > self.partition_len,
            "events must be serialized: every <= partition_len"
        );
        assert!(data_nodes >= 2, "need at least two data nodes");
        let crashes = self.crashes.min(spares);
        // Seeded choice without rand: pick via mix64 counters.
        let mut draw = {
            let mut ctr = 0u64;
            move |bound: u64| {
                ctr += 1;
                mix64(seed ^ mix64(ctr)) % bound
            }
        };

        // Crash targets: distinct data nodes.
        let mut pool: Vec<NodeId> = (0..data_nodes as NodeId).collect();
        let mut crash_targets = Vec::new();
        for _ in 0..crashes {
            let i = draw(pool.len() as u64) as usize;
            crash_targets.push(pool.swap_remove(i));
        }

        // Interleave kinds: shuffle a deck of event kinds.
        let mut kinds: Vec<bool> = Vec::new(); // true = crash
        kinds.extend(std::iter::repeat_n(false, self.partitions));
        kinds.extend(std::iter::repeat_n(true, crashes));
        for i in (1..kinds.len()).rev() {
            kinds.swap(i, draw(i as u64 + 1) as usize);
        }

        let mut events = Vec::new();
        let mut crash_iter = crash_targets.into_iter();
        for (i, is_crash) in kinds.into_iter().enumerate() {
            let at = self.start_after + self.every * i as u32;
            if is_crash {
                events.push(NemesisEvent::Crash {
                    at,
                    node: crash_iter.next().expect("one target per crash"),
                });
            } else {
                let a = draw(data_nodes as u64) as NodeId;
                let mut b = draw(data_nodes as u64 - 1) as NodeId;
                if b >= a {
                    b += 1;
                }
                events.push(NemesisEvent::Partition {
                    at,
                    a,
                    b,
                    len: self.partition_len,
                });
            }
        }
        events
    }
}

/// One scheduled coarse fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NemesisEvent {
    /// Cut the link `a <-> b` at `at`, heal it `len` later.
    Partition {
        /// Offset from nemesis start.
        at: Duration,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Partition duration.
        len: Duration,
    },
    /// Kill `node` at `at`; the leader promotes a spare into its role.
    Crash {
        /// Offset from nemesis start.
        at: Duration,
        /// The victim (a data node, never the leader).
        node: NodeId,
    },
}

impl NemesisEvent {
    /// Folds the event into a schedule digest.
    pub fn mix_into(&self, d: &mut Digest) {
        match *self {
            NemesisEvent::Partition { at, a, b, len } => {
                d.mix(1);
                d.mix(at.as_nanos() as u64);
                d.mix(u64::from(a));
                d.mix(u64::from(b));
                d.mix(len.as_nanos() as u64);
            }
            NemesisEvent::Crash { at, node } => {
                d.mix(2);
                d.mix(at.as_nanos() as u64);
                d.mix(u64::from(node));
            }
        }
    }
}

/// A running nemesis: a thread executing a timeline against a fabric.
pub struct Nemesis {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<(usize, usize)>>,
}

impl Nemesis {
    /// Starts executing `timeline` against `fabric` on a new thread.
    /// Partitions are healed inline after their duration; on stop or
    /// timeline end every cut link is healed (killed nodes stay dead —
    /// their spares have taken over).
    pub fn start(fabric: RingFabric, timeline: Vec<NemesisEvent>) -> Nemesis {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let began = ring_net::clock::now();
            let mut partitions = 0usize;
            let mut crashes = 0usize;
            'events: for ev in timeline {
                let at = match ev {
                    NemesisEvent::Partition { at, .. } | NemesisEvent::Crash { at, .. } => at,
                };
                while began.elapsed() < at {
                    if stop2.load(Ordering::Relaxed) {
                        break 'events;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                match ev {
                    NemesisEvent::Partition { a, b, len, .. } => {
                        fabric.fail_link(a, b);
                        std::thread::sleep(len);
                        fabric.heal_link(a, b);
                        partitions += 1;
                    }
                    NemesisEvent::Crash { node, .. } => {
                        fabric.kill(node);
                        crashes += 1;
                    }
                }
            }
            (partitions, crashes)
        });
        Nemesis {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread to stop and joins it; returns
    /// `(partitions_injected, crashes_injected)`.
    pub fn stop(mut self) -> (usize, usize) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("stop consumes self")
            .join()
            .expect("nemesis thread never panics")
    }
}

impl Drop for Nemesis {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_in_seed() {
        let a = FaultPlan::new(7, MessageFaults::light());
        let b = FaultPlan::new(7, MessageFaults::light());
        for from in 0..6 {
            for to in 0..6 {
                for seq in 0..200 {
                    assert_eq!(a.decide(from, to, seq), b.decide(from, to, seq));
                }
            }
        }
        assert_eq!(a.probe_digest(8, 64), b.probe_digest(8, 64));
        let c = FaultPlan::new(8, MessageFaults::light());
        assert_ne!(a.probe_digest(8, 64), c.probe_digest(8, 64));
    }

    #[test]
    fn fault_rates_approach_probabilities() {
        let plan = FaultPlan::new(42, MessageFaults::light());
        let (mut drops, mut dups, mut delays, mut total) = (0u64, 0u64, 0u64, 0u64);
        for seq in 0..40_000 {
            total += 1;
            match plan.decide(0, 1, seq) {
                FaultAction::Drop => drops += 1,
                FaultAction::Duplicate(e) => {
                    assert!(e > Duration::ZERO && e <= Duration::from_micros(200));
                    dups += 1;
                }
                FaultAction::Delay(e) => {
                    assert!(e > Duration::ZERO && e <= Duration::from_micros(200));
                    delays += 1;
                }
                FaultAction::Deliver => {}
            }
        }
        let rate = |n: u64| n as f64 / total as f64;
        assert!(
            (rate(drops) - 0.02).abs() < 0.005,
            "drop rate {}",
            rate(drops)
        );
        assert!((rate(dups) - 0.01).abs() < 0.005, "dup rate {}", rate(dups));
        assert!(
            (rate(delays) - 0.02).abs() < 0.005,
            "delay rate {}",
            rate(delays)
        );
    }

    #[test]
    fn per_link_sequences_are_independent() {
        // The same seq on different links must give (w.h.p.) different
        // streams; same link same seq always matches.
        let plan = FaultPlan::new(3, MessageFaults::light());
        let stream = |f, t| (0..4096).map(|s| plan.decide(f, t, s)).collect::<Vec<_>>();
        assert_eq!(stream(0, 1), stream(0, 1));
        assert_ne!(stream(0, 1), stream(1, 0));
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn overfull_probabilities_rejected() {
        let _ = FaultPlan::new(
            0,
            MessageFaults {
                drop_prob: 0.5,
                dup_prob: 0.4,
                delay_prob: 0.2,
                max_extra_delay: Duration::ZERO,
            },
        );
    }

    #[test]
    fn timeline_is_seeded_and_respects_limits() {
        let spec = NemesisSpec {
            partitions: 4,
            crashes: 3,
            start_after: Duration::from_millis(10),
            every: Duration::from_millis(100),
            partition_len: Duration::from_millis(20),
        };
        // Only 2 spares: crashes clamp to 2.
        let t1 = spec.timeline(9, 5, 2);
        let t2 = spec.timeline(9, 5, 2);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 6);
        let crash_targets: Vec<NodeId> = t1
            .iter()
            .filter_map(|e| match e {
                NemesisEvent::Crash { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(crash_targets.len(), 2);
        let mut uniq = crash_targets.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), crash_targets.len(), "crash targets distinct");
        for ev in &t1 {
            match *ev {
                NemesisEvent::Partition { a, b, .. } => {
                    assert_ne!(a, b);
                    assert!(u64::from(a.max(b)) < 5);
                }
                NemesisEvent::Crash { node, .. } => assert!(u64::from(node) < 5),
            }
        }
        let t3 = spec.timeline(10, 5, 2);
        assert_ne!(t1, t3, "different seed, different timeline");
    }
}
