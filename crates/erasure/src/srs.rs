//! Stretched Reed-Solomon codes (Section 3.3 of the paper).
//!
//! `SRS(k, m, s)` encodes data with a plain `RS(k, m)` code but spreads
//! the `k` data blocks over `s >= k` data nodes. The construction divides
//! the data into `l = lcm(k, s)` sub-blocks: RS source `j` consists of the
//! `l/k` consecutive sub-blocks `[j*l/k, (j+1)*l/k)`, while data node `i`
//! stores the `l/s` consecutive sub-blocks `[i*l/s, (i+1)*l/s)`. Parity
//! nodes are untouched by stretching: parity node `p` stores the `l/k`
//! parity sub-blocks of RS parity `p`, one per *lane*.
//!
//! A **lane** `u` in `0..l/k` is the set of sub-blocks
//! `{ D~[j*l/k + u] : j in 0..k }` plus the `m` parity sub-blocks
//! `{ P~[p*l/k + u] : p in 0..m }` — an independent `RS(k, m)` stripe.
//! All encoding, update and recovery is lane-wise, which is exactly the
//! block structure of the expanded matrix `Hexp = H ∘ E` (Eqn. (2)/(3)).

use ring_gf::{region, Gf256, Matrix};

use crate::{lcm, CodeError, Rs};

/// The three parameters of a stretched code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SrsParams {
    /// Number of RS data blocks.
    pub k: usize,
    /// Number of parity blocks (and parity nodes).
    pub m: usize,
    /// Number of data nodes the `k` blocks are stretched over (`s >= k`).
    pub s: usize,
}

impl std::fmt::Display for SrsParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SRS({},{},{})", self.k, self.m, self.s)
    }
}

/// An object encoded with an SRS code: per-node byte payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrsEncodedObject {
    /// Payload stored on each of the `s` data nodes (`l/s` sub-blocks each).
    pub data_nodes: Vec<Vec<u8>>,
    /// Payload stored on each of the `m` parity nodes (`l/k` sub-blocks each).
    pub parity_nodes: Vec<Vec<u8>>,
    /// Sub-block size in bytes.
    pub sub_block: usize,
    /// Original object length.
    pub object_len: usize,
}

/// A stretched Reed-Solomon code `SRS(k, m, s)`.
///
/// `SRS(k, m, k)` is identical to `RS(k, m)`.
#[derive(Clone)]
pub struct SrsCode {
    params: SrsParams,
    rs: Rs,
    l: usize,
}

impl std::fmt::Debug for SrsCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SrsCode({})", self.params)
    }
}

impl SrsCode {
    /// Creates an `SRS(k, m, s)` code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `k == 0`, `s < k`, or
    /// `k + m` exceeds the field.
    pub fn new(k: usize, m: usize, s: usize) -> Result<SrsCode, CodeError> {
        if s < k {
            return Err(CodeError::InvalidParameters(format!(
                "stretch s = {s} must be >= k = {k}"
            )));
        }
        let rs = Rs::new(k, m)?;
        Ok(SrsCode {
            params: SrsParams { k, m, s },
            rs,
            l: lcm(k, s),
        })
    }

    /// The code parameters.
    pub fn params(&self) -> SrsParams {
        self.params
    }

    /// `l = lcm(k, s)`: the number of data sub-blocks per stripe.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Sub-blocks stored per data node (`l / s`).
    pub fn data_blocks_per_node(&self) -> usize {
        self.l / self.params.s
    }

    /// Sub-blocks stored per parity node, which equals the number of
    /// lanes (`l / k`).
    pub fn lanes(&self) -> usize {
        self.l / self.params.k
    }

    /// The underlying `RS(k, m)` code.
    pub fn rs(&self) -> &Rs {
        &self.rs
    }

    /// Memory overhead factor of the scheme: `(s + m·s/k) / s = 1 + m/k`.
    pub fn storage_overhead(&self) -> f64 {
        1.0 + self.params.m as f64 / self.params.k as f64
    }

    /// The data node hosting global data sub-block `g`, with its local
    /// index on that node.
    ///
    /// # Panics
    ///
    /// Panics if `g >= l`.
    pub fn node_of_sub_block(&self, g: usize) -> (usize, usize) {
        assert!(g < self.l, "sub-block {g} out of range (l = {})", self.l);
        let per = self.data_blocks_per_node();
        (g / per, g % per)
    }

    /// The RS source and lane of global data sub-block `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g >= l`.
    pub fn source_of_sub_block(&self, g: usize) -> (usize, usize) {
        assert!(g < self.l, "sub-block {g} out of range (l = {})", self.l);
        let lanes = self.lanes();
        (g / lanes, g % lanes)
    }

    /// The global data sub-block of RS source `j`, lane `u`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= k` or `u >= lanes()`.
    pub fn sub_block_of(&self, j: usize, u: usize) -> usize {
        assert!(j < self.params.k, "source {j} out of range");
        assert!(u < self.lanes(), "lane {u} out of range");
        j * self.lanes() + u
    }

    /// The expanded coding matrix `Hexp` of Eqn. (2): size
    /// `(l + l*m/k) x l`, equal to the entry-wise product `H ∘ E` with
    /// `E_ij = I_{l/k}`.
    pub fn expanded_matrix(&self) -> Matrix {
        let lanes = self.lanes();
        let rows = self.l + lanes * self.params.m;
        let mut hexp = Matrix::zero(rows, self.l);
        for g in 0..self.l {
            hexp[(g, g)] = Gf256::ONE;
        }
        for p in 0..self.params.m {
            for u in 0..lanes {
                let row = self.l + p * lanes + u;
                for j in 0..self.params.k {
                    hexp[(row, self.sub_block_of(j, u))] = self.rs.coefficient(p, j);
                }
            }
        }
        hexp
    }

    /// Encodes an object: pads it to a multiple of `l`, splits it into
    /// `l` sub-blocks, distributes them over `s` data nodes and computes
    /// the `m` parity node payloads.
    ///
    /// # Errors
    ///
    /// Never fails for valid parameters; kept fallible for uniformity
    /// with [`Rs::encode`].
    pub fn encode_object(&self, object: &[u8]) -> Result<SrsEncodedObject, CodeError> {
        let sub = object.len().div_ceil(self.l);
        let lanes = self.lanes();
        let per_data = self.data_blocks_per_node();

        // Split (with zero padding) into l sub-blocks.
        let mut subs: Vec<Vec<u8>> = Vec::with_capacity(self.l);
        for i in 0..self.l {
            let start = (i * sub).min(object.len());
            let end = ((i + 1) * sub).min(object.len());
            let mut block = object[start..end].to_vec();
            block.resize(sub, 0);
            subs.push(block);
        }

        // Data node payloads: concatenation of the node's sub-blocks.
        let mut data_nodes = Vec::with_capacity(self.params.s);
        for i in 0..self.params.s {
            let mut payload = Vec::with_capacity(per_data * sub);
            for q in 0..per_data {
                payload.extend_from_slice(&subs[i * per_data + q]);
            }
            data_nodes.push(payload);
        }

        // Parity node payloads, lane-wise.
        let mut parity_nodes = vec![vec![0u8; lanes * sub]; self.params.m];
        for (p, payload) in parity_nodes.iter_mut().enumerate() {
            for u in 0..lanes {
                let out = &mut payload[u * sub..(u + 1) * sub];
                for j in 0..self.params.k {
                    let g = self.sub_block_of(j, u);
                    region::mul_acc(out, &subs[g], self.rs.coefficient(p, j));
                }
            }
        }

        Ok(SrsEncodedObject {
            data_nodes,
            parity_nodes,
            sub_block: sub,
            object_len: object.len(),
        })
    }

    /// Reassembles the original object from the data node payloads.
    ///
    /// # Errors
    ///
    /// Returns a length error if payload sizes are inconsistent.
    pub fn reassemble(&self, enc: &SrsEncodedObject) -> Result<Vec<u8>, CodeError> {
        let per_data = self.data_blocks_per_node();
        let mut out = Vec::with_capacity(per_data * enc.sub_block * self.params.s);
        for (i, payload) in enc.data_nodes.iter().enumerate() {
            if payload.len() != per_data * enc.sub_block {
                return Err(CodeError::BlockLengthMismatch {
                    expected: per_data * enc.sub_block,
                    actual: enc.data_nodes[i].len(),
                });
            }
            out.extend_from_slice(payload);
        }
        out.truncate(enc.object_len);
        Ok(out)
    }

    /// Reconstructs every missing node payload in place, lane by lane.
    ///
    /// `data` has `s` entries, `parity` has `m`; `None` marks a failed
    /// node. Succeeds iff every lane retains at least `k` of its `k + m`
    /// sub-blocks — which is why SRS can sometimes tolerate more than `m`
    /// failures (Section 3.3).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEnoughBlocks`] if some lane is short, and
    /// count/length errors for malformed input.
    pub fn reconstruct(
        &self,
        data: &mut [Option<Vec<u8>>],
        parity: &mut [Option<Vec<u8>>],
        sub_block: usize,
    ) -> Result<(), CodeError> {
        if data.len() != self.params.s {
            return Err(CodeError::BlockCountMismatch {
                expected: self.params.s,
                actual: data.len(),
            });
        }
        if parity.len() != self.params.m {
            return Err(CodeError::BlockCountMismatch {
                expected: self.params.m,
                actual: parity.len(),
            });
        }
        let per_data = self.data_blocks_per_node();
        let lanes = self.lanes();
        for d in data.iter().flatten() {
            if d.len() != per_data * sub_block {
                return Err(CodeError::BlockLengthMismatch {
                    expected: per_data * sub_block,
                    actual: d.len(),
                });
            }
        }
        for p in parity.iter().flatten() {
            if p.len() != lanes * sub_block {
                return Err(CodeError::BlockLengthMismatch {
                    expected: lanes * sub_block,
                    actual: p.len(),
                });
            }
        }

        let missing_data: Vec<usize> = (0..data.len()).filter(|&i| data[i].is_none()).collect();
        let missing_parity: Vec<usize> =
            (0..parity.len()).filter(|&i| parity[i].is_none()).collect();
        if missing_data.is_empty() && missing_parity.is_empty() {
            return Ok(());
        }

        // Reconstruct lane by lane with the base RS code.
        let mut recovered_data: Vec<Vec<u8>> = missing_data
            .iter()
            .map(|_| vec![0u8; per_data * sub_block])
            .collect();
        let mut recovered_parity: Vec<Vec<u8>> = missing_parity
            .iter()
            .map(|_| vec![0u8; lanes * sub_block])
            .collect();

        for u in 0..lanes {
            let mut shards: Vec<Option<Vec<u8>>> =
                Vec::with_capacity(self.params.k + self.params.m);
            let mut lane_touched = false;
            for j in 0..self.params.k {
                let g = self.sub_block_of(j, u);
                let (node, local) = self.node_of_sub_block(g);
                match &data[node] {
                    Some(payload) => shards.push(Some(
                        payload[local * sub_block..(local + 1) * sub_block].to_vec(),
                    )),
                    None => {
                        shards.push(None);
                        lane_touched = true;
                    }
                }
            }
            for par in parity.iter().take(self.params.m) {
                match par {
                    Some(payload) => {
                        shards.push(Some(payload[u * sub_block..(u + 1) * sub_block].to_vec()))
                    }
                    None => {
                        shards.push(None);
                        lane_touched = true;
                    }
                }
            }
            if !lane_touched {
                continue;
            }
            self.rs.reconstruct(&mut shards)?;
            // Copy recovered lane pieces back to the missing nodes.
            for (slot, &node) in missing_data.iter().enumerate() {
                for local in 0..per_data {
                    let g = node * per_data + local;
                    let (j, lane) = self.source_of_sub_block(g);
                    if lane == u {
                        let block = shards[j].as_ref().expect("reconstructed");
                        recovered_data[slot][local * sub_block..(local + 1) * sub_block]
                            .copy_from_slice(block);
                    }
                }
            }
            for (slot, &p) in missing_parity.iter().enumerate() {
                let block = shards[self.params.k + p].as_ref().expect("reconstructed");
                recovered_parity[slot][u * sub_block..(u + 1) * sub_block].copy_from_slice(block);
            }
        }

        for (slot, &node) in missing_data.iter().enumerate() {
            data[node] = Some(std::mem::take(&mut recovered_data[slot]));
        }
        for (slot, &p) in missing_parity.iter().enumerate() {
            parity[p] = Some(std::mem::take(&mut recovered_parity[slot]));
        }
        Ok(())
    }

    /// Recovers the payload of a single lost data node.
    ///
    /// # Errors
    ///
    /// See [`SrsCode::reconstruct`].
    pub fn recover_data_node(
        &self,
        lost: usize,
        data: &[Option<Vec<u8>>],
        parity: &[Option<Vec<u8>>],
    ) -> Result<Vec<u8>, CodeError> {
        if lost >= self.params.s {
            return Err(CodeError::IndexOutOfRange {
                index: lost,
                bound: self.params.s,
            });
        }
        let sub_block = self.infer_sub_block(data, parity)?;
        let mut d: Vec<Option<Vec<u8>>> = data.to_vec();
        if lost < d.len() {
            d[lost] = None;
        }
        let mut p: Vec<Option<Vec<u8>>> = parity.to_vec();
        self.reconstruct(&mut d, &mut p, sub_block)?;
        Ok(d[lost].take().expect("reconstructed"))
    }

    /// Recovers the payload of a single lost parity node.
    ///
    /// # Errors
    ///
    /// See [`SrsCode::reconstruct`].
    pub fn recover_parity_node(
        &self,
        lost: usize,
        data: &[Option<Vec<u8>>],
        parity: &[Option<Vec<u8>>],
    ) -> Result<Vec<u8>, CodeError> {
        if lost >= self.params.m {
            return Err(CodeError::IndexOutOfRange {
                index: lost,
                bound: self.params.m,
            });
        }
        let sub_block = self.infer_sub_block(data, parity)?;
        let mut d: Vec<Option<Vec<u8>>> = data.to_vec();
        let mut p: Vec<Option<Vec<u8>>> = parity.to_vec();
        if lost < p.len() {
            p[lost] = None;
        }
        self.reconstruct(&mut d, &mut p, sub_block)?;
        Ok(p[lost].take().expect("reconstructed"))
    }

    fn infer_sub_block(
        &self,
        data: &[Option<Vec<u8>>],
        parity: &[Option<Vec<u8>>],
    ) -> Result<usize, CodeError> {
        if let Some(d) = data.iter().flatten().next() {
            return Ok(d.len() / self.data_blocks_per_node());
        }
        if let Some(p) = parity.iter().flatten().next() {
            return Ok(p.len() / self.lanes());
        }
        Err(CodeError::NotEnoughBlocks {
            needed: self.params.k,
            available: 0,
        })
    }

    /// Returns true if the code survives the given set of failed nodes.
    ///
    /// Node indices `0..s` are data nodes, `s..s+m` are parity nodes. The
    /// pattern is tolerable iff every lane retains at least `k` of its
    /// `k + m` sub-blocks. This is the `f_i` predicate of the paper's
    /// Appendix A.2 Markov model.
    pub fn tolerates(&self, failed: &[usize]) -> bool {
        let lanes = self.lanes();
        let is_failed = |n: usize| failed.contains(&n);
        for u in 0..lanes {
            let mut alive = 0;
            for j in 0..self.params.k {
                let (node, _) = self.node_of_sub_block(self.sub_block_of(j, u));
                if !is_failed(node) {
                    alive += 1;
                }
            }
            for p in 0..self.params.m {
                if !is_failed(self.params.s + p) {
                    alive += 1;
                }
            }
            if alive < self.params.k {
                return false;
            }
        }
        true
    }

    /// Fraction of `i`-node failure patterns (out of all subsets of the
    /// `s + m` nodes of size `i`) that the code survives — the `f_i`
    /// array of Appendix A.2, computed by total enumeration.
    pub fn survivable_fraction(&self, i: usize) -> f64 {
        let n = self.params.s + self.params.m;
        if i == 0 {
            return 1.0;
        }
        if i > n {
            return 0.0;
        }
        let mut total = 0u64;
        let mut ok = 0u64;
        let mut combo: Vec<usize> = (0..i).collect();
        loop {
            total += 1;
            if self.tolerates(&combo) {
                ok += 1;
            }
            // Next combination.
            let mut idx = i;
            loop {
                if idx == 0 {
                    return ok as f64 / total as f64;
                }
                idx -= 1;
                if combo[idx] != idx + n - i {
                    combo[idx] += 1;
                    for j in idx + 1..i {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SrsCode::new(3, 1, 2).is_err()); // s < k
        assert!(SrsCode::new(0, 1, 3).is_err());
        assert!(SrsCode::new(2, 1, 3).is_ok());
    }

    #[test]
    fn srs_kmk_is_rs() {
        // SRS(k, m, k) must produce exactly the RS(k, m) layout.
        let srs = SrsCode::new(3, 2, 3).unwrap();
        let rs = Rs::new(3, 2).unwrap();
        let obj = object(300, 1);
        let enc = srs.encode_object(&obj).unwrap();
        let stripe = rs.encode_object(&obj).unwrap();
        assert_eq!(enc.data_nodes, stripe.data);
        assert_eq!(enc.parity_nodes, stripe.parity);
    }

    #[test]
    fn paper_example_srs213() {
        // The worked example of Section 3.3: l = 6, 2 blocks per data
        // node, parity P~u = D~u ^ D~{u+3}.
        let code = SrsCode::new(2, 1, 3).unwrap();
        assert_eq!(code.l(), 6);
        assert_eq!(code.data_blocks_per_node(), 2);
        assert_eq!(code.lanes(), 3);

        let obj = object(60, 7); // 6 sub-blocks of 10 bytes.
        let enc = code.encode_object(&obj).unwrap();
        assert_eq!(enc.sub_block, 10);
        let sub = |i: usize| &obj[i * 10..(i + 1) * 10];
        // Node payloads per Figure 1(b).
        assert_eq!(&enc.data_nodes[0][..10], sub(0));
        assert_eq!(&enc.data_nodes[0][10..], sub(1));
        assert_eq!(&enc.data_nodes[1][..10], sub(2));
        assert_eq!(&enc.data_nodes[1][10..], sub(3));
        assert_eq!(&enc.data_nodes[2][..10], sub(4));
        assert_eq!(&enc.data_nodes[2][10..], sub(5));
        // Eqn. (4): P~1 = D~1 ^ D~4 etc. (1-based in the paper).
        for u in 0..3 {
            let expect: Vec<u8> = sub(u).iter().zip(sub(u + 3)).map(|(a, b)| a ^ b).collect();
            assert_eq!(
                &enc.parity_nodes[0][u * 10..(u + 1) * 10],
                &expect[..],
                "lane {u}"
            );
        }
    }

    #[test]
    fn expanded_matrix_matches_eqn5() {
        // Eqn. (5): Hexp for SRS(2,1,3) has an identity top 6x6 block and
        // parity rows with ones at columns (u, u+3).
        let code = SrsCode::new(2, 1, 3).unwrap();
        let hexp = code.expanded_matrix();
        assert_eq!(hexp.rows(), 9);
        assert_eq!(hexp.cols(), 6);
        for r in 0..6 {
            for c in 0..6 {
                let expect = if r == c { Gf256::ONE } else { Gf256::ZERO };
                assert_eq!(hexp[(r, c)], expect);
            }
        }
        for u in 0..3 {
            for c in 0..6 {
                let expect = if c == u || c == u + 3 {
                    code.rs().coefficient(0, c / 3)
                } else {
                    Gf256::ZERO
                };
                assert_eq!(hexp[(6 + u, c)], expect, "parity row {u}, col {c}");
            }
        }
    }

    #[test]
    fn encode_reassemble_round_trip() {
        for (k, m, s) in [
            (2, 1, 3),
            (3, 1, 3),
            (3, 2, 3),
            (2, 1, 4),
            (3, 2, 6),
            (4, 3, 6),
        ] {
            let code = SrsCode::new(k, m, s).unwrap();
            for len in [0usize, 1, 5, 64, 100, 1024, 4096] {
                let obj = object(len, (k * 7 + m) as u8);
                let enc = code.encode_object(&obj).unwrap();
                assert_eq!(
                    code.reassemble(&enc).unwrap(),
                    obj,
                    "SRS({k},{m},{s}) len {len}"
                );
            }
        }
    }

    #[test]
    fn recover_any_single_data_node() {
        for (k, m, s) in [(2, 1, 3), (3, 1, 3), (3, 2, 3), (2, 1, 4), (3, 2, 6)] {
            let code = SrsCode::new(k, m, s).unwrap();
            let obj = object(997, 3);
            let enc = code.encode_object(&obj).unwrap();
            let parity: Vec<Option<Vec<u8>>> = enc.parity_nodes.iter().cloned().map(Some).collect();
            for lost in 0..s {
                let mut data: Vec<Option<Vec<u8>>> =
                    enc.data_nodes.iter().cloned().map(Some).collect();
                data[lost] = None;
                let rec = code.recover_data_node(lost, &data, &parity).unwrap();
                assert_eq!(rec, enc.data_nodes[lost], "SRS({k},{m},{s}) lost {lost}");
            }
        }
    }

    #[test]
    fn recover_parity_node() {
        let code = SrsCode::new(3, 2, 6).unwrap();
        let obj = object(777, 4);
        let enc = code.encode_object(&obj).unwrap();
        let data: Vec<Option<Vec<u8>>> = enc.data_nodes.iter().cloned().map(Some).collect();
        for lost in 0..2 {
            let mut parity: Vec<Option<Vec<u8>>> =
                enc.parity_nodes.iter().cloned().map(Some).collect();
            parity[lost] = None;
            let rec = code.recover_parity_node(lost, &data, &parity).unwrap();
            assert_eq!(rec, enc.parity_nodes[lost]);
        }
    }

    #[test]
    fn recover_m_simultaneous_failures() {
        let code = SrsCode::new(3, 2, 6).unwrap();
        let obj = object(600, 5);
        let enc = code.encode_object(&obj).unwrap();
        // Lose one data node and one parity node at once.
        let mut data: Vec<Option<Vec<u8>>> = enc.data_nodes.iter().cloned().map(Some).collect();
        let mut parity: Vec<Option<Vec<u8>>> = enc.parity_nodes.iter().cloned().map(Some).collect();
        data[2] = None;
        parity[0] = None;
        code.reconstruct(&mut data, &mut parity, enc.sub_block)
            .unwrap();
        assert_eq!(data[2].as_ref().unwrap(), &enc.data_nodes[2]);
        assert_eq!(parity[0].as_ref().unwrap(), &enc.parity_nodes[0]);
    }

    #[test]
    fn srs214_tolerates_independent_double_failure() {
        // The paper: SRS(2,1,4) tolerates two simultaneous failures when
        // the two failed data nodes hold independent blocks.
        let code = SrsCode::new(2, 1, 4).unwrap();
        // l = 4, one sub-block per node, lanes = 2. Lane 0 spans nodes
        // {0, 2}, lane 1 spans nodes {1, 3}. A double failure is
        // tolerable iff the two failed nodes sit in different lanes
        // (independent blocks): 4 of the 6 data pairs, 2/5 of all pairs.
        assert!(code.tolerates(&[0, 1]));
        assert!(code.tolerates(&[0, 3]));
        assert!(code.tolerates(&[1, 2]));
        assert!(code.tolerates(&[2, 3]));
        assert!(!code.tolerates(&[0, 2])); // Both blocks of lane 0.
        assert!(!code.tolerates(&[1, 3])); // Both blocks of lane 1.
        assert!(!code.tolerates(&[0, 4])); // Data + the only parity.
                                           // Cross-check the predicate against actual reconstruction.
        let enc = code.encode_object(&object(400, 6)).unwrap();
        for a in 0..5 {
            for b in a + 1..5 {
                let mut data: Vec<Option<Vec<u8>>> =
                    enc.data_nodes.iter().cloned().map(Some).collect();
                let mut parity: Vec<Option<Vec<u8>>> =
                    enc.parity_nodes.iter().cloned().map(Some).collect();
                for &x in &[a, b] {
                    if x < 4 {
                        data[x] = None;
                    } else {
                        parity[x - 4] = None;
                    }
                }
                let outcome = code.reconstruct(&mut data, &mut parity, enc.sub_block);
                assert_eq!(
                    outcome.is_ok(),
                    code.tolerates(&[a, b]),
                    "pattern ({a},{b}) predicate/reconstruct disagree"
                );
                if outcome.is_ok() {
                    for (d, expect) in data.iter().zip(&enc.data_nodes) {
                        assert_eq!(d.as_ref().unwrap(), expect);
                    }
                }
            }
        }
    }

    #[test]
    fn survivable_fraction_boundaries() {
        let code = SrsCode::new(2, 1, 4).unwrap();
        assert_eq!(code.survivable_fraction(0), 1.0);
        assert_eq!(code.survivable_fraction(1), 1.0); // m = 1 always survives 1.
        let f2 = code.survivable_fraction(2);
        assert!(
            f2 > 0.0 && f2 < 1.0,
            "SRS(2,1,4) partially survives 2 failures: {f2}"
        );
        assert_eq!(code.survivable_fraction(5), 0.0);
        assert_eq!(code.survivable_fraction(9), 0.0);
    }

    #[test]
    fn survivable_fraction_matches_paper_214() {
        // SRS(2,1,4): tolerates a second failure with probability 2/5
        // (the paper's Appendix A.2 example transition 5λ·2/5).
        let code = SrsCode::new(2, 1, 4).unwrap();
        let f1 = code.survivable_fraction(1);
        let f2 = code.survivable_fraction(2);
        // p1 = f2/f1 must equal 2/5.
        let p1 = f2 / f1;
        assert!((p1 - 0.4).abs() < 1e-12, "p1 = {p1}");
    }

    #[test]
    fn storage_overhead_values() {
        assert_eq!(
            SrsCode::new(3, 2, 3).unwrap().storage_overhead(),
            1.0 + 2.0 / 3.0
        );
        assert_eq!(SrsCode::new(2, 1, 4).unwrap().storage_overhead(), 1.5);
    }

    #[test]
    fn empty_object_is_representable() {
        let code = SrsCode::new(3, 2, 6).unwrap();
        let enc = code.encode_object(&[]).unwrap();
        assert_eq!(enc.sub_block, 0);
        assert_eq!(code.reassemble(&enc).unwrap(), Vec::<u8>::new());
    }
}
