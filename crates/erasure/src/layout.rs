//! Byte-level address arithmetic for heap-backed SRS memgests.
//!
//! A memgest stores each object entirely on its coordinator node (that is
//! what makes gets single-hop and moves local), and erasure-codes the
//! coordinators' heaps *across* nodes: byte `a` of data node `i`'s heap
//! belongs to some RS source `j` and lane `u`, and is protected by byte
//! `parity_addr(a)` of every parity node's heap. A put therefore only
//! needs to ship `g_{pj} * (new ^ old)` deltas to the parity nodes — no
//! stripe re-encoding, no touching other data nodes.
//!
//! The heap is laid out in *periods*: one period on a data node holds
//! `l/s` sub-blocks of `block_size` bytes, and on a parity node `l/k`
//! sub-blocks. Addresses repeat the Eqn. (2) structure every period.

use crate::{CodeError, SrsCode};
use ring_gf::Gf256;

/// A contiguous byte range on one data node that maps to a single RS
/// source (it never crosses a sub-block boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Address of the segment start in the data node's heap.
    pub data_addr: usize,
    /// Address of the corresponding bytes in every parity node's heap.
    pub parity_addr: usize,
    /// The RS source index this range belongs to (determines the
    /// generator coefficient for each parity node).
    pub source: usize,
    /// The lane within the stripe.
    pub lane: usize,
    /// Length in bytes.
    pub len: usize,
}

/// Address arithmetic for an `SRS(k, m, s)` code over heaps divided into
/// sub-blocks of `block_size` bytes.
#[derive(Clone)]
pub struct SrsLayout {
    code: SrsCode,
    block_size: usize,
}

impl std::fmt::Debug for SrsLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SrsLayout({:?}, block_size={})",
            self.code, self.block_size
        )
    }
}

impl SrsLayout {
    /// Creates a layout for the given code and sub-block size.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `block_size == 0`.
    pub fn new(code: SrsCode, block_size: usize) -> Result<SrsLayout, CodeError> {
        if block_size == 0 {
            return Err(CodeError::InvalidParameters(
                "block_size must be positive".into(),
            ));
        }
        Ok(SrsLayout { code, block_size })
    }

    /// The underlying SRS code.
    pub fn code(&self) -> &SrsCode {
        &self.code
    }

    /// Sub-block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Bytes of one period in a data node's heap (`l/s * block_size`).
    pub fn data_period(&self) -> usize {
        self.code.data_blocks_per_node() * self.block_size
    }

    /// Bytes of one period in a parity node's heap (`l/k * block_size`).
    pub fn parity_period(&self) -> usize {
        self.code.lanes() * self.block_size
    }

    /// Parity heap size required to protect a data heap of `data_len`
    /// bytes per node.
    pub fn parity_len_for(&self, data_len: usize) -> usize {
        let periods = data_len.div_ceil(self.data_period());
        periods * self.parity_period()
    }

    /// Splits a byte range `[addr, addr + len)` of data node `node`'s
    /// heap into segments that each map to a single RS source, with the
    /// matching parity-heap addresses.
    ///
    /// # Panics
    ///
    /// Panics if `node >= s`.
    pub fn split_range(&self, node: usize, addr: usize, len: usize) -> Vec<Segment> {
        let params = self.code.params();
        assert!(node < params.s, "data node {node} out of range");
        let per_data = self.code.data_blocks_per_node();
        let mut segments = Vec::new();
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let period = cur / self.data_period();
            let within = cur % self.data_period();
            let local_block = within / self.block_size;
            let offset = within % self.block_size;
            let g = node * per_data + local_block;
            let (source, lane) = self.code.source_of_sub_block(g);
            let remaining_in_block = self.block_size - offset;
            let seg_len = remaining_in_block.min(end - cur);
            segments.push(Segment {
                data_addr: cur,
                parity_addr: period * self.parity_period() + lane * self.block_size + offset,
                source,
                lane,
                len: seg_len,
            });
            cur += seg_len;
        }
        segments
    }

    /// The generator coefficient applied to a segment's delta when
    /// updating parity node `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= m` or `segment.source >= k`.
    pub fn coefficient(&self, p: usize, segment: &Segment) -> Gf256 {
        self.code.rs().coefficient(p, segment.source)
    }

    /// Where the lane-peer of `segment` for RS source `peer_source` lives:
    /// `(data node, heap address)` of the same lane/offset bytes.
    ///
    /// Used during on-demand recovery to collect the `k - 1` surviving
    /// lane blocks.
    ///
    /// # Panics
    ///
    /// Panics if `peer_source >= k`.
    pub fn peer_addr(&self, segment: &Segment, peer_source: usize) -> (usize, usize) {
        let g = self.code.sub_block_of(peer_source, segment.lane);
        let (node, local) = self.code.node_of_sub_block(g);
        let period = segment.data_addr / self.data_period();
        let offset = segment.data_addr % self.block_size;
        (
            node,
            period * self.data_period() + local * self.block_size + offset,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SrsCode;

    fn layout(k: usize, m: usize, s: usize, block: usize) -> SrsLayout {
        SrsLayout::new(SrsCode::new(k, m, s).unwrap(), block).unwrap()
    }

    #[test]
    fn zero_block_size_rejected() {
        let code = SrsCode::new(2, 1, 3).unwrap();
        assert!(SrsLayout::new(code, 0).is_err());
    }

    #[test]
    fn periods_srs213() {
        let l = layout(2, 1, 3, 16);
        assert_eq!(l.data_period(), 2 * 16); // l/s = 2 blocks.
        assert_eq!(l.parity_period(), 3 * 16); // l/k = 3 lanes.
        assert_eq!(l.parity_len_for(0), 0);
        assert_eq!(l.parity_len_for(1), 48);
        assert_eq!(l.parity_len_for(32), 48);
        assert_eq!(l.parity_len_for(33), 96);
    }

    #[test]
    fn split_range_within_one_block() {
        let l = layout(2, 1, 3, 16);
        // Node 1 holds global sub-blocks 2 and 3; g=2 -> source 0 lane 2.
        let segs = l.split_range(1, 4, 8);
        assert_eq!(segs.len(), 1);
        let s = segs[0];
        assert_eq!(s.source, 0);
        assert_eq!(s.lane, 2);
        assert_eq!(s.data_addr, 4);
        assert_eq!(s.parity_addr, 2 * 16 + 4);
        assert_eq!(s.len, 8);
    }

    #[test]
    fn split_range_across_blocks_and_periods() {
        let l = layout(2, 1, 3, 16);
        // Node 0: blocks g=0 (source 0, lane 0) then g=1 (source 0, lane 1),
        // then the next period repeats.
        let segs = l.split_range(0, 8, 40); // spans block 0 tail, block 1, next period head.
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs[0],
            Segment {
                data_addr: 8,
                parity_addr: 8,
                source: 0,
                lane: 0,
                len: 8
            }
        );
        assert_eq!(
            segs[1],
            Segment {
                data_addr: 16,
                parity_addr: 16,
                source: 0,
                lane: 1,
                len: 16
            }
        );
        // Third segment: period 1, local block 0 -> lane 0; parity period = 48.
        assert_eq!(
            segs[2],
            Segment {
                data_addr: 32,
                parity_addr: 48,
                source: 0,
                lane: 0,
                len: 16
            }
        );
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn sources_differ_across_nodes_srs213() {
        let l = layout(2, 1, 3, 16);
        // Node 1's two blocks are g=2 (source 0) and g=3 (source 1).
        let segs = l.split_range(1, 0, 32);
        assert_eq!(segs[0].source, 0);
        assert_eq!(segs[1].source, 1);
        // Node 2's blocks g=4, g=5 are both source 1.
        let segs = l.split_range(2, 0, 32);
        assert_eq!(segs[0].source, 1);
        assert_eq!(segs[1].source, 1);
        assert_eq!(segs[0].lane, 1);
        assert_eq!(segs[1].lane, 2);
    }

    #[test]
    fn peer_addr_round_trip() {
        let l = layout(3, 2, 6, 8);
        // For every node and block, the peer of the peer comes back home.
        for node in 0..6 {
            for addr in [0usize, 3, 8, 15, 48, 50] {
                let segs = l.split_range(node, addr, 1);
                let seg = segs[0];
                let (pn, pa) = l.peer_addr(&seg, seg.source);
                assert_eq!((pn, pa), (node, addr), "node {node} addr {addr}");
            }
        }
    }

    #[test]
    fn peer_addrs_cover_all_sources() {
        let l = layout(2, 1, 4, 8);
        let seg = l.split_range(0, 0, 1)[0];
        let mut nodes = vec![];
        for j in 0..2 {
            let (n, _) = l.peer_addr(&seg, j);
            nodes.push(n);
        }
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 2, "lane peers live on distinct nodes");
    }

    #[test]
    fn parity_consistency_via_layout_deltas() {
        // Simulate heaps: write random data through the layout, applying
        // parity deltas, then verify with whole-heap SRS encoding.
        let code = SrsCode::new(2, 1, 3).unwrap();
        let l = SrsLayout::new(code.clone(), 16).unwrap();
        let heap_len = 2 * l.data_period(); // 2 periods.
        let mut data_heaps = vec![vec![0u8; heap_len]; 3];
        let mut parity_heap = vec![0u8; l.parity_len_for(heap_len)];

        let writes: Vec<(usize, usize, Vec<u8>)> = vec![
            (0, 0, (0..20).map(|i| i as u8 + 1).collect()),
            (1, 10, (0..30).map(|i| (i * 3) as u8).collect()),
            (2, 5, (0..40).map(|i| (i * 7 + 1) as u8).collect()),
            (0, 25, (0..30).map(|i| (i * 11) as u8).collect()),
            (1, 10, (0..30).map(|i| (i * 5 + 2) as u8).collect()), // overwrite
        ];
        for (node, addr, bytes) in writes {
            // Delta = new ^ old.
            let old = data_heaps[node][addr..addr + bytes.len()].to_vec();
            let delta: Vec<u8> = old.iter().zip(&bytes).map(|(a, b)| a ^ b).collect();
            data_heaps[node][addr..addr + bytes.len()].copy_from_slice(&bytes);
            for seg in l.split_range(node, addr, bytes.len()) {
                let c = l.coefficient(0, &seg);
                let d0 = seg.data_addr - addr;
                for i in 0..seg.len {
                    parity_heap[seg.parity_addr + i] ^= (c * ring_gf::Gf256(delta[d0 + i])).0;
                }
            }
        }

        // Ground truth: lane-wise encode of the full heaps.
        let lanes = code.lanes();
        let periods = heap_len / l.data_period();
        for period in 0..periods {
            for u in 0..lanes {
                for off in 0..16 {
                    let mut expect = ring_gf::Gf256::ZERO;
                    for j in 0..2 {
                        let g = code.sub_block_of(j, u);
                        let (node, local) = code.node_of_sub_block(g);
                        let a = period * l.data_period() + local * 16 + off;
                        expect += code.rs().coefficient(0, j) * ring_gf::Gf256(data_heaps[node][a]);
                    }
                    let pa = period * l.parity_period() + u * 16 + off;
                    assert_eq!(
                        ring_gf::Gf256(parity_heap[pa]),
                        expect,
                        "period {period} lane {u} offset {off}"
                    );
                }
            }
        }
    }
}
