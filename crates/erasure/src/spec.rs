//! Late-binding shard fan-in for speculative `k + Δ` reads.
//!
//! A speculative reader fans a GET out to `k + Δ` redundancy targets and
//! decodes from whichever `k` distinct shards answer first, ignoring the
//! stragglers (Hydra-style late binding). [`SpecStripe`] is the
//! transport-agnostic fan-in state machine: `offer` shard responses in
//! arrival order, [`SpecStripe::ready`] flips once any `k` distinct
//! shards have landed, and the decode methods bind to exactly the first
//! `k` arrivals — responses offered after readiness are dropped, which
//! is the cancellation semantics (a straggler can never change an
//! answer that was already decodable).

use crate::{CodeError, Rs};

/// Fan-in state for one speculative RS stripe read.
pub struct SpecStripe {
    rs: Rs,
    /// Arrival-ordered `(shard index, bytes)`; duplicate indices and
    /// post-readiness arrivals are ignored.
    have: Vec<(usize, Vec<u8>)>,
}

impl SpecStripe {
    /// Creates an empty fan-in for one stripe of `rs`.
    pub fn new(rs: Rs) -> SpecStripe {
        SpecStripe {
            rs,
            have: Vec::new(),
        }
    }

    /// Records a shard response and reports whether the stripe is now
    /// decodable. Out-of-range indices, duplicates, and arrivals after
    /// the first `k` are silently dropped (late binding: stragglers
    /// cannot perturb the chosen subset).
    pub fn offer(&mut self, idx: usize, bytes: Vec<u8>) -> bool {
        if !self.ready()
            && idx < self.rs.k() + self.rs.m()
            && !self.have.iter().any(|(i, _)| *i == idx)
        {
            self.have.push((idx, bytes));
        }
        self.ready()
    }

    /// True once `k` distinct shards have arrived.
    pub fn ready(&self) -> bool {
        self.have.len() >= self.rs.k()
    }

    /// Number of distinct shards recorded so far.
    pub fn arrived(&self) -> usize {
        self.have.len()
    }

    /// Decodes a single data block from the first `k` arrivals.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEnoughBlocks`] before readiness and
    /// length errors for malformed responses.
    pub fn decode_source(&self, source: usize) -> Result<Vec<u8>, CodeError> {
        let refs: Vec<(usize, &[u8])> = self.have.iter().map(|(i, b)| (*i, b.as_slice())).collect();
        self.rs.recover_source(source, &refs)
    }

    /// Decodes the whole object (all `k` data blocks concatenated,
    /// truncated to `object_len`) from the first `k` arrivals.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecStripe::decode_source`] errors.
    pub fn decode_object(&self, object_len: usize) -> Result<Vec<u8>, CodeError> {
        let mut out = Vec::new();
        for j in 0..self.rs.k() {
            out.extend_from_slice(&self.decode_source(j)?);
        }
        out.truncate(object_len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offers_become_ready_at_k_and_then_freeze() {
        let rs = Rs::new(2, 1).unwrap();
        let obj = b"speculative".to_vec();
        let stripe = rs.encode_object(&obj).unwrap();
        let mut spec = SpecStripe::new(rs);
        assert!(!spec.ready());
        assert!(!spec.offer(2, stripe.parity[0].clone()));
        assert!(spec.offer(0, stripe.data[0].clone()));
        assert!(spec.ready());
        assert_eq!(spec.arrived(), 2);
        // A straggler (even a corrupt one) after readiness is dropped.
        assert!(spec.offer(1, vec![0xFF; stripe.data[1].len()]));
        assert_eq!(spec.arrived(), 2);
        assert_eq!(spec.decode_object(obj.len()).unwrap(), obj);
    }

    #[test]
    fn duplicates_do_not_count_toward_readiness() {
        let rs = Rs::new(2, 1).unwrap();
        let stripe = rs.encode_object(b"dup").unwrap();
        let mut spec = SpecStripe::new(rs);
        assert!(!spec.offer(0, stripe.data[0].clone()));
        assert!(!spec.offer(0, stripe.data[0].clone()));
        assert_eq!(spec.arrived(), 1);
        assert!(matches!(
            spec.decode_source(1),
            Err(CodeError::NotEnoughBlocks { .. })
        ));
    }
}
