//! Classical systematic Reed-Solomon coding (Section 3.2 of the paper).

use ring_gf::{region, Gf256, Matrix};

use crate::CodeError;

/// A systematic `RS(k, m)` Reed-Solomon code.
///
/// The coding matrix is `H = [I; G]` (Eqn. (1)): the first `k` outputs
/// echo the data blocks, the last `m` are parity blocks computed from the
/// Vandermonde-derived generator `G`. Any `k` of the `k + m` blocks
/// suffice to reconstruct the rest (the MDS property).
#[derive(Clone)]
pub struct Rs {
    k: usize,
    m: usize,
    h: Matrix,
}

/// An encoded object split into `k` data blocks and `m` parity blocks,
/// with the original length remembered so it can be reassembled exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stripe {
    /// The `k` equal-size data blocks (zero-padded).
    pub data: Vec<Vec<u8>>,
    /// The `m` parity blocks.
    pub parity: Vec<Vec<u8>>,
    /// Length of the original object in bytes.
    pub object_len: usize,
}

impl Rs {
    /// Creates an `RS(k, m)` code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `k == 0` or
    /// `k + m > 256` (GF(2^8) limit).
    pub fn new(k: usize, m: usize) -> Result<Rs, CodeError> {
        if k == 0 {
            return Err(CodeError::InvalidParameters("k must be positive".into()));
        }
        if k + m > 256 {
            return Err(CodeError::InvalidParameters(format!(
                "k + m = {} exceeds the GF(2^8) limit of 256",
                k + m
            )));
        }
        Ok(Rs {
            k,
            m,
            h: Matrix::systematic(k, m),
        })
    }

    /// Number of data blocks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity blocks.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The full `(k + m) x k` coding matrix `H = [I; G]`.
    pub fn coding_matrix(&self) -> &Matrix {
        &self.h
    }

    /// The generator coefficient `g_{pi}` relating parity block `p`
    /// (0-based) to data block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= m` or `i >= k`.
    pub fn coefficient(&self, p: usize, i: usize) -> Gf256 {
        assert!(p < self.m, "parity index {p} out of range");
        assert!(i < self.k, "data index {i} out of range");
        self.h[(self.k + p, i)]
    }

    /// Encodes `k` equal-length data blocks into `m` parity blocks.
    ///
    /// # Errors
    ///
    /// Returns an error if the block count is not `k` or the lengths
    /// differ.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, CodeError> {
        if data.len() != self.k {
            return Err(CodeError::BlockCountMismatch {
                expected: self.k,
                actual: data.len(),
            });
        }
        let len = data[0].len();
        for block in data {
            if block.len() != len {
                return Err(CodeError::BlockLengthMismatch {
                    expected: len,
                    actual: block.len(),
                });
            }
        }
        let mut parity = vec![vec![0u8; len]; self.m];
        for (p, out) in parity.iter_mut().enumerate() {
            for (i, block) in data.iter().enumerate() {
                region::mul_acc(out, block, self.h[(self.k + p, i)]);
            }
        }
        Ok(parity)
    }

    /// Splits an object into `k` zero-padded blocks and encodes parity.
    ///
    /// An empty object produces `k + m` empty blocks.
    ///
    /// # Errors
    ///
    /// Propagates encode errors (which cannot occur for the blocks this
    /// method builds, but the signature stays fallible for uniformity).
    pub fn encode_object(&self, object: &[u8]) -> Result<Stripe, CodeError> {
        let block_len = object.len().div_ceil(self.k);
        let mut data = Vec::with_capacity(self.k);
        for i in 0..self.k {
            let start = (i * block_len).min(object.len());
            let end = ((i + 1) * block_len).min(object.len());
            let mut block = object[start..end].to_vec();
            block.resize(block_len, 0);
            data.push(block);
        }
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let parity = self.encode(&refs)?;
        Ok(Stripe {
            data,
            parity,
            object_len: object.len(),
        })
    }

    /// Reassembles the original object from a stripe's data blocks.
    pub fn reassemble(&self, stripe: &Stripe) -> Vec<u8> {
        let mut out = Vec::with_capacity(stripe.object_len);
        for block in &stripe.data {
            out.extend_from_slice(block);
        }
        out.truncate(stripe.object_len);
        out
    }

    /// Reconstructs all missing blocks in place.
    ///
    /// `shards` must have exactly `k + m` entries ordered as
    /// `[D_0..D_{k-1}, P_0..P_{m-1}]`; `None` marks a lost block.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEnoughBlocks`] if fewer than `k` survive,
    /// and length/count errors for malformed input.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError> {
        if shards.len() != self.k + self.m {
            return Err(CodeError::BlockCountMismatch {
                expected: self.k + self.m,
                actual: shards.len(),
            });
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                needed: self.k,
                available: present.len(),
            });
        }
        let len = shards[present[0]].as_ref().map(|b| b.len()).unwrap_or(0);
        for &i in &present {
            let bl = shards[i].as_ref().map(|b| b.len()).unwrap_or(0);
            if bl != len {
                return Err(CodeError::BlockLengthMismatch {
                    expected: len,
                    actual: bl,
                });
            }
        }
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }

        // Decode the k data blocks first (if any are missing), then
        // re-encode missing parity.
        let data_missing = missing.iter().any(|&i| i < self.k);
        if data_missing {
            let chosen: Vec<usize> = present.iter().copied().take(self.k).collect();
            let sub = self.h.select_rows(&chosen);
            let dec = sub.invert().map_err(|_| CodeError::Unrecoverable)?;
            // data_j = sum_i dec[j][i] * shard[chosen[i]].
            let mut data: Vec<Vec<u8>> = vec![vec![0u8; len]; self.k];
            for (j, out) in data.iter_mut().enumerate() {
                for (i, &src) in chosen.iter().enumerate() {
                    let block = shards[src].as_ref().expect("chosen blocks are present");
                    region::mul_acc(out, block, dec[(j, i)]);
                }
            }
            for (j, block) in data.into_iter().enumerate() {
                if shards[j].is_none() {
                    shards[j] = Some(block);
                }
            }
        }
        // All data blocks now present; rebuild missing parity.
        for &idx in &missing {
            if idx >= self.k {
                let p = idx - self.k;
                let mut out = vec![0u8; len];
                for (i, shard) in shards.iter().enumerate().take(self.k) {
                    let block = shard.as_ref().expect("data reconstructed above");
                    region::mul_acc(&mut out, block, self.h[(self.k + p, i)]);
                }
                shards[idx] = Some(out);
            }
        }
        Ok(())
    }

    /// Recovers a single data block from an arbitrary set of at least
    /// `k` distinct shards — the late-binding read primitive.
    ///
    /// `have` pairs a shard index with its bytes: indices `0..k` are
    /// data blocks, `k..k + m` parity blocks, in `H = [I; G]` row order.
    /// Entries are consumed in the order given and only the first `k`
    /// distinct indices are used, so a speculative reader can pass
    /// responses in arrival order and decode as soon as any `k` landed;
    /// stragglers past the first `k` never influence the result.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEnoughBlocks`] if fewer than `k` distinct
    /// shards are supplied, and parameter/length errors for malformed
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if `source >= k`.
    pub fn recover_source(
        &self,
        source: usize,
        have: &[(usize, &[u8])],
    ) -> Result<Vec<u8>, CodeError> {
        assert!(source < self.k, "source index {source} out of range");
        let mut chosen: Vec<usize> = Vec::with_capacity(self.k);
        let mut blocks: Vec<&[u8]> = Vec::with_capacity(self.k);
        for &(i, bytes) in have {
            if i >= self.k + self.m {
                return Err(CodeError::InvalidParameters(format!(
                    "shard index {i} out of range for RS({}, {})",
                    self.k, self.m
                )));
            }
            if chosen.contains(&i) {
                continue;
            }
            chosen.push(i);
            blocks.push(bytes);
            if chosen.len() == self.k {
                break;
            }
        }
        if chosen.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                needed: self.k,
                available: chosen.len(),
            });
        }
        let len = blocks[0].len();
        for b in &blocks {
            if b.len() != len {
                return Err(CodeError::BlockLengthMismatch {
                    expected: len,
                    actual: b.len(),
                });
            }
        }
        // Fast path: the systematic block itself is among the first k.
        if let Some(pos) = chosen.iter().position(|&i| i == source) {
            return Ok(blocks[pos].to_vec());
        }
        let sub = self.h.select_rows(&chosen);
        let dec = sub.invert().map_err(|_| CodeError::Unrecoverable)?;
        let mut out = vec![0u8; len];
        for (i, block) in blocks.iter().enumerate() {
            region::mul_acc(&mut out, block, dec[(source, i)]);
        }
        Ok(out)
    }

    /// Computes the parity delta for parity block `p` caused by data
    /// block `source` changing by `delta = new ^ old`:
    /// `parity_p ^= g_{p,source} * delta` (the paper's update rule).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn parity_delta(&self, p: usize, source: usize, delta: &[u8]) -> Vec<u8> {
        let c = self.coefficient(p, source);
        let mut out = vec![0u8; delta.len()];
        region::mul_into(&mut out, delta, c);
        out
    }

    /// Applies a precomputed parity delta in place: `parity ^= delta`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn apply_parity_delta(parity: &mut [u8], delta: &[u8]) {
        region::xor_into(parity, delta);
    }

    /// Verifies that the parity blocks are consistent with the data.
    ///
    /// # Errors
    ///
    /// Returns count/length errors for malformed input.
    pub fn verify(&self, data: &[&[u8]], parity: &[&[u8]]) -> Result<bool, CodeError> {
        if parity.len() != self.m {
            return Err(CodeError::BlockCountMismatch {
                expected: self.m,
                actual: parity.len(),
            });
        }
        let expect = self.encode(data)?;
        Ok(expect.iter().zip(parity).all(|(a, b)| a.as_slice() == *b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(k: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| (seed as usize + i * 31 + j * 7) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Rs::new(0, 2).is_err());
        assert!(Rs::new(200, 100).is_err());
        assert!(Rs::new(2, 0).is_ok()); // m = 0 is a degenerate but legal code.
        assert!(Rs::new(255, 1).is_ok());
    }

    #[test]
    fn encode_then_verify() {
        let rs = Rs::new(3, 2).unwrap();
        let data = blocks(3, 64, 1);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        assert_eq!(parity.len(), 2);
        let prefs: Vec<&[u8]> = parity.iter().map(|b| b.as_slice()).collect();
        assert!(rs.verify(&refs, &prefs).unwrap());
    }

    #[test]
    fn corrupted_parity_fails_verify() {
        let rs = Rs::new(3, 2).unwrap();
        let data = blocks(3, 16, 9);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let mut parity = rs.encode(&refs).unwrap();
        parity[1][3] ^= 0xFF;
        let prefs: Vec<&[u8]> = parity.iter().map(|b| b.as_slice()).collect();
        assert!(!rs.verify(&refs, &prefs).unwrap());
    }

    #[test]
    fn reconstruct_every_single_loss() {
        let rs = Rs::new(4, 2).unwrap();
        let data = blocks(4, 32, 3);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        for lost in 0..6 {
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            shards[lost] = None;
            rs.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &all[i], "loss {lost}, block {i}");
            }
        }
    }

    #[test]
    fn reconstruct_every_double_loss() {
        let rs = Rs::new(3, 2).unwrap();
        let data = blocks(3, 17, 5);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        for a in 0..5 {
            for b in a + 1..5 {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                rs.reconstruct(&mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &all[i], "loss ({a},{b}), block {i}");
                }
            }
        }
    }

    #[test]
    fn too_many_losses_rejected() {
        let rs = Rs::new(3, 2).unwrap();
        let data = blocks(3, 8, 2);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            rs.reconstruct(&mut shards),
            Err(CodeError::NotEnoughBlocks {
                needed: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn recover_source_from_every_k_subset() {
        let rs = Rs::new(3, 2).unwrap();
        let data = blocks(3, 20, 11);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let all: Vec<&[u8]> = refs
            .iter()
            .copied()
            .chain(parity.iter().map(|p| p.as_slice()))
            .collect();
        for a in 0..5 {
            for b in a + 1..5 {
                for c in b + 1..5 {
                    let have = [(a, all[a]), (b, all[b]), (c, all[c])];
                    for (source, expect) in data.iter().enumerate() {
                        assert_eq!(
                            &rs.recover_source(source, &have).unwrap(),
                            expect,
                            "subset ({a},{b},{c}), source {source}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn recover_source_uses_first_k_and_ignores_stragglers() {
        let rs = Rs::new(2, 2).unwrap();
        let data = blocks(2, 16, 4);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        // First two arrivals are D1 and P0; a later corrupt P1 straggler
        // must not affect the decode.
        let corrupt = vec![0xEEu8; 16];
        let have = [
            (1, refs[1]),
            (2, parity[0].as_slice()),
            (3, corrupt.as_slice()),
        ];
        assert_eq!(rs.recover_source(0, &have).unwrap(), data[0]);
        // Duplicate indices are skipped, not double-counted.
        let dup = [(1, refs[1]), (1, refs[1])];
        assert!(matches!(
            rs.recover_source(0, &dup),
            Err(CodeError::NotEnoughBlocks {
                needed: 2,
                available: 1
            })
        ));
    }

    #[test]
    fn parity_delta_equals_reencode() {
        let rs = Rs::new(3, 2).unwrap();
        let data = blocks(3, 24, 7);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let mut parity = rs.encode(&refs).unwrap();

        // Update data block 1.
        let mut new_data = data.clone();
        for b in new_data[1].iter_mut() {
            *b ^= 0x5A;
        }
        let delta = ring_gf::region::delta(&data[1], &new_data[1]);
        for (p, block) in parity.iter_mut().enumerate() {
            let pd = rs.parity_delta(p, 1, &delta);
            Rs::apply_parity_delta(block, &pd);
        }
        let new_refs: Vec<&[u8]> = new_data.iter().map(|b| b.as_slice()).collect();
        let expect = rs.encode(&new_refs).unwrap();
        assert_eq!(parity, expect);
    }

    #[test]
    fn encode_object_round_trip() {
        let rs = Rs::new(3, 2).unwrap();
        for len in [0usize, 1, 2, 3, 10, 100, 1024, 1000] {
            let obj: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
            let stripe = rs.encode_object(&obj).unwrap();
            assert_eq!(rs.reassemble(&stripe), obj, "len {len}");
        }
    }

    #[test]
    fn encode_object_then_lose_and_recover() {
        let rs = Rs::new(3, 1).unwrap();
        let obj: Vec<u8> = (0..100u32).map(|i| (i * 3 + 1) as u8).collect();
        let stripe = rs.encode_object(&obj).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe
            .data
            .iter()
            .chain(stripe.parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards[2] = None;
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[2].as_ref().unwrap(), &stripe.data[2]);
    }

    #[test]
    fn wrong_block_count_rejected() {
        let rs = Rs::new(3, 2).unwrap();
        let data = blocks(2, 8, 1);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        assert!(matches!(
            rs.encode(&refs),
            Err(CodeError::BlockCountMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let rs = Rs::new(2, 1).unwrap();
        let a = vec![1u8; 8];
        let b = vec![2u8; 9];
        assert!(matches!(
            rs.encode(&[&a, &b]),
            Err(CodeError::BlockLengthMismatch { .. })
        ));
    }

    #[test]
    fn zero_parity_code_encodes_nothing() {
        let rs = Rs::new(3, 0).unwrap();
        let data = blocks(3, 8, 1);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        assert!(rs.encode(&refs).unwrap().is_empty());
    }
}
