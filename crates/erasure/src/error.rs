//! Error type shared by the coding routines.

use std::fmt;

/// Errors produced by RS/SRS construction, encoding and reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// Invalid code parameters (e.g. `k == 0`, `s < k`, field overflow).
    InvalidParameters(String),
    /// Blocks passed to encode/reconstruct have inconsistent lengths.
    BlockLengthMismatch {
        /// Length of the first block seen.
        expected: usize,
        /// Length of the offending block.
        actual: usize,
    },
    /// The wrong number of blocks was supplied.
    BlockCountMismatch {
        /// Number of blocks required.
        expected: usize,
        /// Number of blocks supplied.
        actual: usize,
    },
    /// Fewer than `k` blocks survive: reconstruction is impossible.
    NotEnoughBlocks {
        /// Blocks needed for reconstruction.
        needed: usize,
        /// Blocks available.
        available: usize,
    },
    /// An index (node, block, source) is out of range for the code.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The exclusive upper bound.
        bound: usize,
    },
    /// The requested failure pattern is unrecoverable even though enough
    /// blocks survive (cannot happen for MDS codes; kept for safety).
    Unrecoverable,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters(msg) => write!(f, "invalid code parameters: {msg}"),
            CodeError::BlockLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "block length mismatch: expected {expected}, got {actual}"
                )
            }
            CodeError::BlockCountMismatch { expected, actual } => {
                write!(f, "block count mismatch: expected {expected}, got {actual}")
            }
            CodeError::NotEnoughBlocks { needed, available } => {
                write!(
                    f,
                    "not enough blocks to reconstruct: need {needed}, have {available}"
                )
            }
            CodeError::IndexOutOfRange { index, bound } => {
                write!(f, "index {index} out of range (bound {bound})")
            }
            CodeError::Unrecoverable => write!(f, "failure pattern is unrecoverable"),
        }
    }
}

impl std::error::Error for CodeError {}
