//! Reed-Solomon and Stretched Reed-Solomon erasure codes.
//!
//! This crate implements the coding layer of the Ring paper (Taranov et
//! al., EuroSys'18):
//!
//! - [`Rs`]: classical systematic `RS(k, m)` coding (Section 3.2 and
//!   Eqn. (1)): encode `k` data blocks into `m` parity blocks, reconstruct
//!   any combination of up to `m` lost blocks, and compute the
//!   delta-based parity updates used on the put path.
//! - [`SrsCode`]: the paper's novel **Stretched Reed-Solomon**
//!   `SRS(k, m, s)` codes (Section 3.3 and Eqn. (2)): the `l = lcm(k, s)`
//!   sub-block construction that spreads `RS(k, m)`-encoded data over
//!   `s >= k` data nodes so that every scheme in a deployment shares one
//!   key-to-node mapping.
//! - [`SrsLayout`]: byte-level address arithmetic for heap-backed
//!   memgests — maps `(data node, heap address)` ranges to RS sources,
//!   lanes and parity-node addresses, which is what lets a KVS apply a
//!   put's parity delta without re-encoding whole stripes.
//!
//! # Examples
//!
//! ```
//! use ring_erasure::SrsCode;
//!
//! // SRS(2, 1, 3): RS(2,1)-encoded data stretched over 3 data nodes.
//! let code = SrsCode::new(2, 1, 3).unwrap();
//! assert_eq!(code.l(), 6); // lcm(2, 3)
//!
//! let object = b"stretched reed-solomon".to_vec();
//! let enc = code.encode_object(&object).unwrap();
//! assert_eq!(enc.data_nodes.len(), 3);
//! assert_eq!(enc.parity_nodes.len(), 1);
//!
//! // Lose data node 1 and recover it from the survivors.
//! let mut data: Vec<Option<Vec<u8>>> = enc.data_nodes.iter().cloned().map(Some).collect();
//! data[1] = None;
//! let parity: Vec<Option<Vec<u8>>> = enc.parity_nodes.iter().cloned().map(Some).collect();
//! let recovered = code.recover_data_node(1, &data, &parity).unwrap();
//! assert_eq!(recovered, enc.data_nodes[1]);
//! ```

mod error;
mod layout;
mod rs;
mod spec;
mod srs;

pub use error::CodeError;
pub use layout::{Segment, SrsLayout};
pub use rs::{Rs, Stripe};
pub use spec::SpecStripe;
pub use srs::{SrsCode, SrsEncodedObject, SrsParams};

/// Computes the least common multiple of two positive integers.
///
/// # Panics
///
/// Panics if either argument is zero.
pub fn lcm(a: usize, b: usize) -> usize {
    assert!(a > 0 && b > 0, "lcm of zero is undefined");
    a / gcd(a, b) * b
}

/// Computes the greatest common divisor of two integers.
pub fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(2, 3), 6);
        assert_eq!(lcm(3, 3), 3);
        assert_eq!(lcm(4, 6), 12);
    }

    #[test]
    #[should_panic(expected = "lcm of zero")]
    fn lcm_zero_panics() {
        lcm(0, 3);
    }
}
