//! Property-based tests for RS and SRS codes.

use proptest::prelude::*;
use ring_erasure::{Rs, SpecStripe, SrsCode, SrsLayout};

/// Small, valid (k, m, s) triples.
fn srs_params() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=5, 1usize..=3, 0usize..=4).prop_map(|(k, m, extra)| (k, m, k + extra))
}

fn rs_params() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=6, 1usize..=4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rs_object_round_trip((k, m) in rs_params(), obj in proptest::collection::vec(any::<u8>(), 0..512)) {
        let rs = Rs::new(k, m).unwrap();
        let stripe = rs.encode_object(&obj).unwrap();
        prop_assert_eq!(rs.reassemble(&stripe), obj);
    }

    #[test]
    fn rs_recovers_any_m_losses(
        (k, m) in rs_params(),
        obj in proptest::collection::vec(any::<u8>(), 1..256),
        loss_seed in any::<u64>(),
    ) {
        let rs = Rs::new(k, m).unwrap();
        let stripe = rs.encode_object(&obj).unwrap();
        let all: Vec<Vec<u8>> = stripe.data.iter().chain(stripe.parity.iter()).cloned().collect();
        // Pick m distinct losses deterministically from the seed.
        let n = k + m;
        let mut lost = vec![];
        let mut state = loss_seed | 1;
        while lost.len() < m {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (state >> 33) as usize % n;
            if !lost.contains(&idx) {
                lost.push(idx);
            }
        }
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        for &i in &lost {
            shards[i] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.as_ref().unwrap(), &all[i]);
        }
    }

    #[test]
    fn rs_delta_update_consistency(
        (k, m) in rs_params(),
        len in 1usize..128,
        which in any::<usize>(),
        mask in 1u8..,
    ) {
        let rs = Rs::new(k, m).unwrap();
        let obj: Vec<u8> = (0..len * k).map(|i| i as u8).collect();
        let stripe = rs.encode_object(&obj).unwrap();
        let target = which % k;
        let mut new_data = stripe.data.clone();
        for b in new_data[target].iter_mut() {
            *b ^= mask;
        }
        let delta = ring_gf::region::delta(&stripe.data[target], &new_data[target]);
        let mut parity = stripe.parity.clone();
        for (p, block) in parity.iter_mut().enumerate() {
            let pd = rs.parity_delta(p, target, &delta);
            Rs::apply_parity_delta(block, &pd);
        }
        let refs: Vec<&[u8]> = new_data.iter().map(|b| b.as_slice()).collect();
        prop_assert_eq!(rs.encode(&refs).unwrap(), parity);
    }

    #[test]
    fn srs_round_trip((k, m, s) in srs_params(), obj in proptest::collection::vec(any::<u8>(), 0..512)) {
        let code = SrsCode::new(k, m, s).unwrap();
        let enc = code.encode_object(&obj).unwrap();
        prop_assert_eq!(code.reassemble(&enc).unwrap(), obj);
    }

    #[test]
    fn srs_single_data_node_recovery(
        (k, m, s) in srs_params(),
        obj in proptest::collection::vec(any::<u8>(), 1..512),
        which in any::<usize>(),
    ) {
        let code = SrsCode::new(k, m, s).unwrap();
        let enc = code.encode_object(&obj).unwrap();
        let lost = which % s;
        let mut data: Vec<Option<Vec<u8>>> = enc.data_nodes.iter().cloned().map(Some).collect();
        data[lost] = None;
        let parity: Vec<Option<Vec<u8>>> = enc.parity_nodes.iter().cloned().map(Some).collect();
        let rec = code.recover_data_node(lost, &data, &parity).unwrap();
        prop_assert_eq!(rec, enc.data_nodes[lost].clone());
    }

    #[test]
    fn srs_tolerates_matches_reconstruct(
        (k, m, s) in srs_params(),
        pattern in any::<u16>(),
    ) {
        // For every failure pattern, the tolerates() predicate must agree
        // with whether lane-wise reconstruction actually succeeds.
        let code = SrsCode::new(k, m, s).unwrap();
        let n = s + m;
        let failed: Vec<usize> = (0..n).filter(|i| pattern & (1 << i) != 0).collect();
        let obj: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let enc = code.encode_object(&obj).unwrap();
        let mut data: Vec<Option<Vec<u8>>> = enc.data_nodes.iter().cloned().map(Some).collect();
        let mut parity: Vec<Option<Vec<u8>>> = enc.parity_nodes.iter().cloned().map(Some).collect();
        for &f in &failed {
            if f < s {
                data[f] = None;
            } else {
                parity[f - s] = None;
            }
        }
        let outcome = code.reconstruct(&mut data, &mut parity, enc.sub_block);
        prop_assert_eq!(outcome.is_ok(), code.tolerates(&failed));
        if outcome.is_ok() {
            for (d, expect) in data.iter().zip(&enc.data_nodes) {
                prop_assert_eq!(d.as_ref().unwrap(), expect);
            }
            for (p, expect) in parity.iter().zip(&enc.parity_nodes) {
                prop_assert_eq!(p.as_ref().unwrap(), expect);
            }
        }
    }

    #[test]
    fn srs_expanded_matrix_encodes_like_encode_object(
        (k, m, s) in srs_params(),
        obj in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        // Multiplying the sub-block vector by Hexp (Eqn. 2) must produce
        // exactly the node payloads from encode_object.
        let code = SrsCode::new(k, m, s).unwrap();
        let enc = code.encode_object(&obj).unwrap();
        let l = code.l();
        let sub = enc.sub_block;
        let hexp = code.expanded_matrix();

        // Build the padded sub-block vector.
        let mut padded = obj.clone();
        padded.resize(l * sub, 0);

        // For each byte offset, multiply Hexp by the vector of bytes.
        for off in 0..sub {
            for row in 0..hexp.rows() {
                let mut acc = ring_gf::Gf256::ZERO;
                for col in 0..l {
                    acc += hexp[(row, col)] * ring_gf::Gf256(padded[col * sub + off]);
                }
                let actual = if row < l {
                    let (node, local) = code.node_of_sub_block(row);
                    enc.data_nodes[node][local * sub + off]
                } else {
                    let pr = row - l;
                    let p = pr / code.lanes();
                    let u = pr % code.lanes();
                    enc.parity_nodes[p][u * sub + off]
                };
                prop_assert_eq!(acc, ring_gf::Gf256(actual), "row {} off {}", row, off);
            }
        }
    }

    #[test]
    fn srs_single_node_recovery_under_random_erasure_patterns(
        (k, m, s) in srs_params(),
        obj in proptest::collection::vec(any::<u8>(), 1..256),
        pattern in any::<u16>(),
    ) {
        // Under ANY tolerable erasure pattern, each erased node — data
        // or parity — must be individually recoverable via the
        // single-node recovery entry points, byte-exact.
        let code = SrsCode::new(k, m, s).unwrap();
        let n = s + m;
        let mut failed: Vec<usize> = (0..n).filter(|i| pattern & (1 << i) != 0).collect();
        // Shrink the random pattern until it is tolerable (the empty
        // pattern always is), keeping whatever prefix survives.
        while !code.tolerates(&failed) {
            failed.pop();
        }
        let enc = code.encode_object(&obj).unwrap();
        let mut data: Vec<Option<Vec<u8>>> = enc.data_nodes.iter().cloned().map(Some).collect();
        let mut parity: Vec<Option<Vec<u8>>> = enc.parity_nodes.iter().cloned().map(Some).collect();
        for &f in &failed {
            if f < s {
                data[f] = None;
            } else {
                parity[f - s] = None;
            }
        }
        for &f in &failed {
            if f < s {
                let rec = code.recover_data_node(f, &data, &parity).unwrap();
                prop_assert_eq!(&rec, &enc.data_nodes[f], "data node {}", f);
            } else {
                let rec = code.recover_parity_node(f - s, &data, &parity).unwrap();
                prop_assert_eq!(&rec, &enc.parity_nodes[f - s], "parity node {}", f - s);
            }
        }
    }

    #[test]
    fn srs_heap_parity_deltas_support_recovery(
        (k, m, s) in srs_params(),
        block_size in 1usize..8,
        periods in 1usize..3,
        writes in proptest::collection::vec(
            (any::<usize>(), any::<usize>(), proptest::collection::vec(any::<u8>(), 1..24)),
            1..12,
        ),
        lost_seed in any::<usize>(),
    ) {
        // The KVS put path never re-encodes a stripe: it ships
        // `g_pj * (new ^ old)` deltas addressed by `SrsLayout`. After an
        // arbitrary write sequence, the delta-maintained parity heaps
        // must be exactly the code's parity — proven by erasing a random
        // data node's heap in a random period and reconstructing it.
        let code = SrsCode::new(k, m, s).unwrap();
        let layout = SrsLayout::new(code.clone(), block_size).unwrap();
        let data_len = periods * layout.data_period();
        let parity_len = periods * layout.parity_period();
        let mut heaps = vec![vec![0u8; data_len]; s];
        let mut parity_heaps = vec![vec![0u8; parity_len]; m];

        for (node, addr, bytes) in writes {
            let node = node % s;
            let addr = addr % data_len;
            let len = bytes.len().min(data_len - addr);
            if len == 0 {
                continue;
            }
            // Delta against the old heap contents, then write through.
            let mut delta = bytes[..len].to_vec();
            for (d, old) in delta.iter_mut().zip(&heaps[node][addr..addr + len]) {
                *d ^= old;
            }
            heaps[node][addr..addr + len].copy_from_slice(&bytes[..len]);
            for seg in layout.split_range(node, addr, len) {
                let off = seg.data_addr - addr;
                for (p, ph) in parity_heaps.iter_mut().enumerate() {
                    let c = layout.coefficient(p, &seg);
                    let mut d = vec![0u8; seg.len];
                    ring_gf::region::mul_into(&mut d, &delta[off..off + seg.len], c);
                    for (dst, b) in ph[seg.parity_addr..seg.parity_addr + seg.len]
                        .iter_mut()
                        .zip(&d)
                    {
                        *dst ^= b;
                    }
                }
            }
        }

        // Each period of the heaps is one encoded stripe with
        // `sub_block = block_size`: erase one data node there and
        // recover it from the surviving heaps plus delta-built parity.
        let lost = lost_seed % s;
        let period = (lost_seed / s.max(1)) % periods;
        let dp = layout.data_period();
        let pp = layout.parity_period();
        let data: Vec<Option<Vec<u8>>> = (0..s)
            .map(|i| (i != lost).then(|| heaps[i][period * dp..(period + 1) * dp].to_vec()))
            .collect();
        let parity: Vec<Option<Vec<u8>>> = parity_heaps
            .iter()
            .map(|p| Some(p[period * pp..(period + 1) * pp].to_vec()))
            .collect();
        let rec = code.recover_data_node(lost, &data, &parity).unwrap();
        prop_assert_eq!(&rec, &heaps[lost][period * dp..(period + 1) * dp]);
    }

    #[test]
    fn recover_source_from_every_k_subset_of_k_plus_delta(
        (k, m) in rs_params(),
        obj in proptest::collection::vec(any::<u8>(), 1..256),
        source_seed in any::<usize>(),
    ) {
        // Late-binding invariant: a speculative reader that fanned out to
        // k + Δ shards may see ANY k-subset answer first; every one of
        // them must decode every data block byte-exact.
        let rs = Rs::new(k, m).unwrap();
        let stripe = rs.encode_object(&obj).unwrap();
        let all: Vec<&[u8]> = stripe
            .data
            .iter()
            .map(|b| b.as_slice())
            .chain(stripe.parity.iter().map(|b| b.as_slice()))
            .collect();
        let n = k + m;
        let source = source_seed % k;
        // Enumerate every k-subset of the n shards via bitmasks (n <= 10
        // for the parameter strategy, so this stays small).
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let have: Vec<(usize, &[u8])> =
                (0..n).filter(|i| mask & (1 << i) != 0).map(|i| (i, all[i])).collect();
            prop_assert_eq!(
                &rs.recover_source(source, &have).unwrap(),
                &stripe.data[source],
                "mask {:#b}", mask
            );
        }
    }

    #[test]
    fn spec_stripe_first_k_decode_matches_committed_under_reordering(
        (k, m) in rs_params(),
        obj in proptest::collection::vec(any::<u8>(), 1..256),
        order_seed in any::<u64>(),
    ) {
        // Decode-from-first-k: shard responses arrive in an arbitrary
        // order; as soon as k distinct shards have landed the decode must
        // equal the committed value, and later stragglers must not
        // change readiness or the answer.
        let rs = Rs::new(k, m).unwrap();
        let stripe = rs.encode_object(&obj).unwrap();
        let all: Vec<Vec<u8>> =
            stripe.data.iter().chain(stripe.parity.iter()).cloned().collect();
        // Seeded Fisher-Yates over the k + m response order.
        let n = k + m;
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = order_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut spec = SpecStripe::new(rs);
        let mut became_ready_at = None;
        for (pos, &idx) in order.iter().enumerate() {
            let ready = spec.offer(idx, all[idx].clone());
            if ready && became_ready_at.is_none() {
                became_ready_at = Some(pos);
                prop_assert_eq!(&spec.decode_object(obj.len()).unwrap(), &obj);
            }
        }
        // Readiness at exactly the k-th distinct arrival.
        prop_assert_eq!(became_ready_at, Some(k - 1));
        prop_assert_eq!(spec.arrived(), k);
        prop_assert_eq!(&spec.decode_object(obj.len()).unwrap(), &obj);
    }

    #[test]
    fn survivable_fraction_is_monotone((k, m, s) in srs_params()) {
        let code = SrsCode::new(k, m, s).unwrap();
        let mut prev = 1.0f64;
        for i in 0..=(s + m) {
            let f = code.survivable_fraction(i);
            prop_assert!(f <= prev + 1e-12, "f_{i} = {} > f_{} = {}", f, i.saturating_sub(1), prev);
            prev = f;
        }
        // Always tolerates m failures (MDS), never more than s + m.
        prop_assert_eq!(code.survivable_fraction(m), 1.0);
    }
}
