//! Contract tests for the coding API surface: error display, parameter
//! accessors, layout arithmetic invariants.

use ring_erasure::{gcd, lcm, CodeError, Rs, SrsCode, SrsLayout, SrsParams};

#[test]
fn code_error_display() {
    assert!(CodeError::InvalidParameters("k".into())
        .to_string()
        .contains("invalid code parameters"));
    assert!(CodeError::BlockLengthMismatch {
        expected: 4,
        actual: 5
    }
    .to_string()
    .contains("expected 4"));
    assert!(CodeError::BlockCountMismatch {
        expected: 3,
        actual: 1
    }
    .to_string()
    .contains("count"));
    assert!(CodeError::NotEnoughBlocks {
        needed: 3,
        available: 2
    }
    .to_string()
    .contains("need 3"));
    assert!(CodeError::IndexOutOfRange { index: 9, bound: 3 }
        .to_string()
        .contains("9"));
    assert_eq!(
        CodeError::Unrecoverable.to_string(),
        "failure pattern is unrecoverable"
    );
}

#[test]
fn srs_params_display() {
    let p = SrsParams { k: 3, m: 2, s: 6 };
    assert_eq!(p.to_string(), "SRS(3,2,6)");
}

#[test]
fn accessors_are_consistent() {
    let code = SrsCode::new(3, 2, 6).unwrap();
    assert_eq!(code.params(), SrsParams { k: 3, m: 2, s: 6 });
    assert_eq!(code.l(), 6);
    assert_eq!(code.data_blocks_per_node(), 1);
    assert_eq!(code.lanes(), 2);
    assert_eq!(code.rs().k(), 3);
    assert_eq!(code.rs().m(), 2);
    // l = data_blocks_per_node * s = lanes * k always.
    for (k, m, s) in [(2usize, 1usize, 3usize), (3, 1, 5), (4, 3, 7)] {
        let c = SrsCode::new(k, m, s).unwrap();
        assert_eq!(c.data_blocks_per_node() * s, c.l());
        assert_eq!(c.lanes() * k, c.l());
    }
}

#[test]
fn sub_block_maps_are_inverse() {
    let code = SrsCode::new(3, 2, 6).unwrap();
    for g in 0..code.l() {
        let (j, u) = code.source_of_sub_block(g);
        assert_eq!(code.sub_block_of(j, u), g);
        let (node, local) = code.node_of_sub_block(g);
        assert_eq!(node * code.data_blocks_per_node() + local, g);
    }
}

#[test]
fn rs_coding_matrix_shape() {
    let rs = Rs::new(4, 2).unwrap();
    let h = rs.coding_matrix();
    assert_eq!(h.rows(), 6);
    assert_eq!(h.cols(), 4);
    // First parity row is all ones (the XOR normalisation).
    for j in 0..4 {
        assert_eq!(rs.coefficient(0, j), ring_gf::Gf256::ONE);
    }
    // First column of the generator is all ones too.
    assert_eq!(rs.coefficient(1, 0), ring_gf::Gf256::ONE);
}

#[test]
fn layout_accessors() {
    let code = SrsCode::new(2, 1, 3).unwrap();
    let layout = SrsLayout::new(code, 64).unwrap();
    assert_eq!(layout.block_size(), 64);
    assert_eq!(layout.data_period(), 128);
    assert_eq!(layout.parity_period(), 192);
    assert_eq!(layout.code().params().s, 3);
}

#[test]
fn layout_split_covers_range_without_gaps() {
    let code = SrsCode::new(3, 2, 6).unwrap();
    let layout = SrsLayout::new(code, 32).unwrap();
    for node in 0..6 {
        for (addr, len) in [(0usize, 200usize), (17, 99), (31, 1), (32, 64), (100, 300)] {
            let segs = layout.split_range(node, addr, len);
            let mut cursor = addr;
            for seg in &segs {
                assert_eq!(seg.data_addr, cursor, "gap at node {node} addr {addr}");
                assert!(seg.len > 0);
                // Never crosses a block boundary.
                let start_block = seg.data_addr / 32;
                let end_block = (seg.data_addr + seg.len - 1) / 32;
                assert_eq!(start_block, end_block, "segment crosses a block");
                cursor += seg.len;
            }
            assert_eq!(cursor, addr + len, "total length mismatch");
        }
    }
}

#[test]
fn layout_parity_addresses_stay_in_lane() {
    let code = SrsCode::new(2, 1, 4).unwrap();
    let layout = SrsLayout::new(code, 16).unwrap();
    for node in 0..4 {
        for seg in layout.split_range(node, 0, 64) {
            let lane_of_parity = (seg.parity_addr % layout.parity_period()) / 16;
            assert_eq!(lane_of_parity, seg.lane);
        }
    }
}

#[test]
fn gcd_lcm_identities() {
    for a in 1..=12usize {
        for b in 1..=12usize {
            assert_eq!(gcd(a, b) * lcm(a, b), a * b, "a={a} b={b}");
            assert_eq!(gcd(a, b), gcd(b, a));
        }
    }
}

#[test]
fn storage_overhead_ordering() {
    // More parity per data block = more overhead; stretching never
    // changes it.
    let base = SrsCode::new(3, 1, 3).unwrap().storage_overhead();
    let more_parity = SrsCode::new(3, 2, 3).unwrap().storage_overhead();
    let stretched = SrsCode::new(3, 1, 7).unwrap().storage_overhead();
    assert!(more_parity > base);
    assert_eq!(base, stretched);
}

#[test]
fn reassemble_rejects_wrong_payload_sizes() {
    let code = SrsCode::new(2, 1, 3).unwrap();
    let mut enc = code.encode_object(&[1, 2, 3, 4, 5, 6]).unwrap();
    enc.data_nodes[1].pop();
    assert!(matches!(
        code.reassemble(&enc),
        Err(CodeError::BlockLengthMismatch { .. })
    ));
}

#[test]
fn recover_rejects_out_of_range_indices() {
    let code = SrsCode::new(2, 1, 3).unwrap();
    let enc = code.encode_object(&[9u8; 60]).unwrap();
    let data: Vec<Option<Vec<u8>>> = enc.data_nodes.iter().cloned().map(Some).collect();
    let parity: Vec<Option<Vec<u8>>> = enc.parity_nodes.iter().cloned().map(Some).collect();
    assert!(matches!(
        code.recover_data_node(9, &data, &parity),
        Err(CodeError::IndexOutOfRange { index: 9, .. })
    ));
    assert!(matches!(
        code.recover_parity_node(5, &data, &parity),
        Err(CodeError::IndexOutOfRange { index: 5, .. })
    ));
}
