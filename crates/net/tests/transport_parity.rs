//! Counter-parity contract between network backends.
//!
//! `NetStats` records *logical* traffic — message counts and `WireSize`
//! bytes — never backend encodings (frame headers, handshakes, TCP
//! segmentation). This test runs one fixed protocol script on both the
//! simulated fabric and a real TCP loopback pair and asserts the final
//! snapshots are bit-identical. If a backend ever starts charging its
//! own overhead to the counters, the bench's sim-vs-TCP comparison
//! becomes meaningless; this is the tripwire.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

use ring_net::{
    Codec, Fabric, FrameBuf, LatencyModel, MemoryRegion, NetError, NetStatsSnapshot, NodeId,
    Payload, TcpOptions, TcpTransport, Transport, WireReader, WireSize,
};

/// Minimal protocol message: a tag plus an opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TestMsg {
    tag: u64,
    body: Vec<u8>,
}

impl WireSize for TestMsg {
    fn wire_size(&self) -> usize {
        8 + self.body.len()
    }
}

/// Frame codec for [`TestMsg`] (the TCP backend needs one; the fabric
/// moves messages in-process and never serialises).
struct TestCodec;

impl Codec<TestMsg> for TestCodec {
    fn encode(&self, msg: &TestMsg, out: &mut FrameBuf) {
        out.put_u64(msg.tag);
        out.put_u32(msg.body.len() as u32);
        out.put_payload(&Payload::from(msg.body.clone()));
    }

    fn decode(&self, body: &[u8]) -> Result<TestMsg, NetError> {
        let mut rd = WireReader::new(body);
        let tag = rd.u64()?;
        let len = rd.u32()? as usize;
        let bytes = rd.bytes(len)?.to_vec();
        rd.finish()?;
        Ok(TestMsg { tag, body: bytes })
    }
}

const NODE_A: NodeId = 0;
const NODE_B: NodeId = 1;
const REGION: u64 = 7;

/// The fixed script, written against the [`Transport`] trait only.
///
/// Returns the `(a, b)` snapshots after all traffic has settled.
fn run_script<T: Transport<TestMsg>>(a: &T, b: &T) -> (NetStatsSnapshot, NetStatsSnapshot) {
    // B exposes a 1 KiB region for one-sided access.
    b.register_region(REGION, MemoryRegion::from_vec(vec![0xA5; 1024]));

    // Two-sided traffic: five unicasts A -> B with distinct sizes, one
    // reply B -> A, one multicast A -> {B} (the client re-send shape).
    for i in 0..5u64 {
        a.send(
            NODE_B,
            TestMsg {
                tag: i,
                body: vec![i as u8; (i as usize) * 16],
            },
        )
        .expect("send");
    }
    for _ in 0..5 {
        let (from, msg) = b.recv_timeout(Duration::from_secs(5)).expect("b recv");
        assert_eq!(from, NODE_A);
        assert_eq!(msg.body.len(), (msg.tag as usize) * 16);
    }
    b.send(
        NODE_A,
        TestMsg {
            tag: 100,
            body: vec![1; 33],
        },
    )
    .expect("reply");
    let (from, _) = a.recv_timeout(Duration::from_secs(5)).expect("a recv");
    assert_eq!(from, NODE_B);
    a.multicast(
        &[NODE_B],
        TestMsg {
            tag: 101,
            body: vec![2; 9],
        },
    )
    .expect("multicast");
    let (_, m) = b.recv_timeout(Duration::from_secs(5)).expect("b recv mc");
    assert_eq!(m.tag, 101);

    // One-sided traffic: reads (exact and padded) and a write.
    let bytes = a.rdma_read(NODE_B, REGION, 16, 64).expect("rdma read");
    assert_eq!(bytes, vec![0xA5; 64]);
    let padded = a
        .rdma_read_padded(NODE_B, REGION, 1000, 48)
        .expect("padded read");
    assert_eq!(padded.len(), 48);
    a.rdma_write(NODE_B, REGION, 0, &[0x5A; 100])
        .expect("rdma write");
    assert_eq!(
        a.rdma_read(NODE_B, REGION, 0, 4).expect("verify"),
        vec![0x5A; 4]
    );

    // Protocol-level retransmits are reported by the caller, not
    // inferred by the backend; the recorder must exist on both.
    a.stats().record_retransmit();
    a.stats().record_retransmit();

    (a.stats().snapshot(), b.stats().snapshot())
}

fn run_on_fabric() -> (NetStatsSnapshot, NetStatsSnapshot) {
    let fabric = Fabric::<TestMsg>::new(LatencyModel::instant());
    let a = fabric.register(NODE_A).expect("register a");
    let b = fabric.register(NODE_B).expect("register b");
    run_script(&a, &b)
}

fn run_on_tcp() -> (NetStatsSnapshot, NetStatsSnapshot) {
    let addr_a = alloc_port();
    let addr_b = alloc_port();
    let peers: BTreeMap<NodeId, SocketAddr> =
        [(NODE_A, addr_a), (NODE_B, addr_b)].into_iter().collect();
    let codec: Arc<dyn Codec<TestMsg>> = Arc::new(TestCodec);
    let a = TcpTransport::bind(
        NODE_A,
        addr_a,
        peers.clone(),
        Arc::clone(&codec),
        TcpOptions::default(),
    )
    .expect("bind a");
    let b =
        TcpTransport::bind(NODE_B, addr_b, peers, codec, TcpOptions::default()).expect("bind b");
    run_script(&a, &b)
}

fn alloc_port() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("local addr")
}

#[test]
fn sim_and_tcp_backends_report_identical_counters() {
    let (sim_a, sim_b) = run_on_fabric();
    let (tcp_a, tcp_b) = run_on_tcp();
    assert_eq!(sim_a, tcp_a, "endpoint A counters diverge between backends");
    assert_eq!(sim_b, tcp_b, "endpoint B counters diverge between backends");
}

/// The script's counters, spelled out: the parity assertion above would
/// also pass if both backends were wrong the same way, so pin the
/// absolute values once.
#[test]
fn script_counters_match_hand_computation() {
    let (a, b) = run_on_fabric();

    // A sent 5 unicasts (8 + 16i bytes) + 1 multicast to one peer (17).
    let unicast_bytes: u64 = (0..5).map(|i| 8 + 16 * i).sum();
    assert_eq!(a.msgs_sent, 6);
    assert_eq!(a.bytes_sent, unicast_bytes + 17);
    // A received B's one reply (8 + 33).
    assert_eq!(a.msgs_received, 1);
    assert_eq!(a.bytes_received, 41);
    assert_eq!(a.retransmits, 2);
    // A issued 3 reads (64 + 48 + 4 bytes) and 1 write (100 bytes).
    assert_eq!(a.rdma_reads, 3);
    assert_eq!(a.rdma_read_bytes, 116);
    assert_eq!(a.rdma_writes, 1);
    assert_eq!(a.rdma_write_bytes, 100);

    // B's view mirrors it; one-sided ops never touch B's counters
    // (the target CPU is not involved — that is the point of RDMA).
    assert_eq!(b.msgs_sent, 1);
    assert_eq!(b.bytes_sent, 41);
    assert_eq!(b.msgs_received, 6);
    assert_eq!(b.bytes_received, unicast_bytes + 17);
    assert_eq!(b.retransmits, 0);
    assert_eq!(b.rdma_reads, 0);
    assert_eq!(b.rdma_writes, 0);
}
