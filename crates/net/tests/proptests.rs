//! Property-based tests for the simulated fabric.

use std::time::Duration;

use proptest::prelude::*;
use ring_net::{Fabric, LatencyModel, MemoryRegion, WireSize};

#[derive(Debug, Clone, PartialEq)]
struct Blob(Vec<u8>);
impl WireSize for Blob {
    fn wire_size(&self) -> usize {
        self.0.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn messages_arrive_in_order_per_link(payloads in proptest::collection::vec(any::<u8>(), 1..50)) {
        // With a uniform latency model, messages between one pair keep
        // their send order.
        let f: Fabric<Blob> = Fabric::new(LatencyModel::instant());
        let a = f.register(0).unwrap();
        let b = f.register(1).unwrap();
        for &p in &payloads {
            a.send(1, Blob(vec![p])).unwrap();
        }
        for &p in &payloads {
            let (_, msg) = b.recv_timeout(Duration::from_secs(1)).unwrap();
            prop_assert_eq!(msg, Blob(vec![p]));
        }
    }

    #[test]
    fn region_read_returns_what_was_written(
        len in 1usize..512,
        offset in 0usize..256,
        data in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let region = MemoryRegion::new(offset + len.max(data.len()) + data.len());
        region.write(offset, &data).unwrap();
        prop_assert_eq!(region.read(offset, data.len()).unwrap(), data);
    }

    #[test]
    fn region_never_reads_out_of_bounds(size in 0usize..256, offset in 0usize..512, len in 0usize..512) {
        let region = MemoryRegion::new(size);
        let r = region.read(offset, len);
        if offset + len <= size {
            prop_assert!(r.is_ok());
            prop_assert_eq!(r.unwrap().len(), len);
        } else {
            prop_assert!(r.is_err());
        }
    }

    #[test]
    fn rdma_write_read_round_trip(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        offset in 0usize..64,
    ) {
        let f: Fabric<Blob> = Fabric::new(LatencyModel::instant());
        let a = f.register(0).unwrap();
        let b = f.register(1).unwrap();
        b.register_region(1, MemoryRegion::new(offset + data.len()));
        a.rdma_write(1, 1, offset, &data).unwrap();
        prop_assert_eq!(a.rdma_read(1, 1, offset, data.len()).unwrap(), data);
    }

    #[test]
    fn wire_delay_orders_mixed_latency_deliveries(gap_us in 1u64..200) {
        // A message injected with a later timestamp is delivered after
        // an earlier one even if pushed first.
        let f: Fabric<Blob> = Fabric::new(LatencyModel {
            base: Duration::from_micros(gap_us),
            per_byte_ns: 0,
        });
        let a = f.register(0).unwrap();
        let b = f.register(1).unwrap();
        a.send(1, Blob(vec![1])).unwrap();
        // Bypass latency for the second message.
        f.inject(0, 1, Blob(vec![2])).unwrap();
        let first = b.recv_timeout(Duration::from_secs(1)).unwrap().1;
        let second = b.recv_timeout(Duration::from_secs(1)).unwrap().1;
        // Both arrive; the relative order follows the injected delays
        // (equal delays -> send order).
        prop_assert!(first == Blob(vec![1]) || first == Blob(vec![2]));
        prop_assert!(first != second);
    }
}
