//! Contract tests for the fabric API surface.

use std::time::Duration;

use ring_net::{Fabric, LatencyModel, MemoryRegion, NetError, WireSize};

#[derive(Debug, Clone, PartialEq)]
struct M(usize);
impl WireSize for M {
    fn wire_size(&self) -> usize {
        self.0
    }
}

#[test]
fn net_error_display() {
    assert_eq!(
        NetError::Unreachable(3).to_string(),
        "node 3 is unreachable"
    );
    assert_eq!(
        NetError::AlreadyRegistered(1).to_string(),
        "node 1 already registered"
    );
    assert_eq!(NetError::Timeout.to_string(), "receive timed out");
    assert_eq!(NetError::Closed.to_string(), "endpoint closed");
    assert!(NetError::UnknownRegion { node: 2, key: 9 }
        .to_string()
        .contains("region 9"));
    assert!(NetError::OutOfBounds {
        offset: 8,
        len: 4,
        region: 10
    }
    .to_string()
    .contains("out of bounds"));
}

#[test]
fn wiresize_builtin_impls() {
    assert_eq!(vec![1u8, 2, 3].wire_size(), 3);
    assert_eq!("hello".to_string().wire_size(), 5);
}

#[test]
fn queued_counts_pending_messages() {
    let f: Fabric<M> = Fabric::new(LatencyModel::instant());
    let a = f.register(0).unwrap();
    let b = f.register(1).unwrap();
    for i in 0..5 {
        a.send(1, M(i)).unwrap();
    }
    // Delivery is immediate with the instant model; all five queued.
    std::thread::sleep(Duration::from_millis(5));
    assert_eq!(b.queued(), 5);
    let _ = b.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(b.queued(), 4);
}

#[test]
fn try_recv_after_kill_reports_closed() {
    let f: Fabric<M> = Fabric::new(LatencyModel::instant());
    let a = f.register(0).unwrap();
    f.kill(0);
    assert_eq!(a.try_recv().unwrap_err(), NetError::Closed);
}

#[test]
fn multicast_to_empty_list_is_noop() {
    let f: Fabric<M> = Fabric::new(LatencyModel::instant());
    let a = f.register(0).unwrap();
    a.multicast(&[], M(1)).unwrap();
    assert_eq!(a.stats().snapshot().msgs_sent, 0);
}

#[test]
fn fabric_latency_accessor_round_trips() {
    let model = LatencyModel::hdd_commit();
    let f: Fabric<M> = Fabric::new(model);
    assert_eq!(f.latency(), model);
}

#[test]
fn local_region_lookup() {
    let f: Fabric<M> = Fabric::new(LatencyModel::instant());
    let a = f.register(0).unwrap();
    assert!(a.local_region(1).is_none());
    a.register_region(1, MemoryRegion::new(8));
    assert_eq!(a.local_region(1).unwrap().len(), 8);
    a.deregister_region(1);
    assert!(a.local_region(1).is_none());
}

#[test]
fn region_with_and_with_mut() {
    let r = MemoryRegion::from_vec(vec![1, 2, 3]);
    let sum: u32 = r.with(|bytes| bytes.iter().map(|&b| b as u32).sum());
    assert_eq!(sum, 6);
    r.with_mut(|bytes| bytes.push(4));
    assert_eq!(r.len(), 4);
    assert!(!r.is_empty());
}

#[test]
fn memory_region_debug_format() {
    let r = MemoryRegion::new(16);
    assert_eq!(format!("{r:?}"), "MemoryRegion(16 bytes)");
}

#[test]
fn send_records_bytes_even_when_dropped() {
    // A cut link drops the message but the sender still paid the send —
    // stats reflect the sender's view.
    let f: Fabric<M> = Fabric::new(LatencyModel::instant());
    let a = f.register(0).unwrap();
    let _b = f.register(1).unwrap();
    f.fail_link(0, 1);
    a.send(1, M(100)).unwrap();
    let snap = a.stats().snapshot();
    assert_eq!(snap.msgs_sent, 1);
    assert_eq!(snap.bytes_sent, 100);
}

#[test]
fn endpoint_debug_shows_id() {
    let f: Fabric<M> = Fabric::new(LatencyModel::instant());
    let a = f.register(7).unwrap();
    assert!(format!("{a:?}").contains('7'));
}
