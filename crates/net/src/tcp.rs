//! Threaded-TCP transport backend.
//!
//! [`TcpTransport`] implements [`Transport`](crate::Transport) over real
//! sockets so the protocol engines that normally run on the simulated
//! fabric can run as standalone OS processes (`ring-server`,
//! `ring-cli`). The design mirrors the sim's semantics exactly:
//!
//! - **Fire-and-forget sends.** A send to a dead, unreachable, or
//!   never-configured peer returns `Ok(())` and the message vanishes;
//!   only a shut-down local endpoint errors. Protocol code relies on
//!   timeouts, as on a real network.
//! - **Lazy bidirectional connections.** The first send to a peer dials
//!   its listen address and introduces itself with a `Hello` frame; the
//!   accepting side registers the same stream for its own sends back.
//!   Clients therefore need no listener of their own.
//! - **One-sided verbs as internal RPCs.** `rdma_read`/`rdma_write`
//!   travel as `RdmaReadReq`/`RdmaWriteReq` frames serviced directly by
//!   the remote *reader thread* — the remote protocol thread is never
//!   scheduled, preserving the one-sided property the recovery path
//!   assumes.
//! - **Logical stats.** Counters record message counts and `WireSize`
//!   bytes (not encoded frame sizes), so a fixed protocol script
//!   produces identical counters on sim and TCP.
//!
//! Incoming application messages land in the same timestamp-ordered
//! [`Mailbox`] the sim uses (with delivery due immediately), so recv
//! ordering and timeout behaviour are shared code.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use crate::frame::{read_frame, Codec, FrameBuf, FrameKind, WireReader};
use crate::mailbox::Mailbox;
use crate::{MemoryRegion, MrKey, NetError, NetStats, NodeId, WireSize};

/// Tuning knobs for the TCP backend.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Dial timeout for lazy connections.
    pub connect_timeout: Duration,
    /// How long a one-sided read/write waits for its response before
    /// reporting the peer unreachable.
    pub rpc_timeout: Duration,
}

impl Default for TcpOptions {
    fn default() -> TcpOptions {
        TcpOptions {
            connect_timeout: Duration::from_millis(500),
            rpc_timeout: Duration::from_secs(2),
        }
    }
}

/// A parsed one-sided response, mapped to `NetError` by the requester
/// (which knows the target node id).
enum RpcReply {
    ReadOk(Vec<u8>),
    WriteOk,
    UnknownRegion,
    OutOfBounds { region: usize },
    Malformed,
}

type Writer = Arc<Mutex<TcpStream>>;

struct Shared<M> {
    id: NodeId,
    codec: Arc<dyn Codec<M>>,
    mailbox: Arc<Mailbox<M>>,
    regions: RwLock<BTreeMap<MrKey, MemoryRegion>>,
    stats: NetStats,
    /// Live writer halves, keyed by peer node id. Entries appear on
    /// outbound dial or inbound `Hello` and vanish on I/O error.
    conns: Mutex<BTreeMap<NodeId, Writer>>,
    /// Every stream ever opened, kept so `close()` can unblock the
    /// blocking reader threads by shutting the sockets down.
    streams: Mutex<Vec<TcpStream>>,
    /// In-flight one-sided RPCs: `None` until the response arrives.
    rpcs: Mutex<BTreeMap<u64, Option<RpcReply>>>,
    rpc_cond: Condvar,
    next_rpc: AtomicU64,
    shutdown: AtomicBool,
}

/// A TCP-backed transport endpoint.
///
/// Created with [`TcpTransport::bind`] (servers: listens for peers) or
/// [`TcpTransport::client`] (clients: outbound connections only).
pub struct TcpTransport<M> {
    peers: BTreeMap<NodeId, SocketAddr>,
    opts: TcpOptions,
    inner: Arc<Shared<M>>,
}

impl<M> std::fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("id", &self.inner.id)
            .finish()
    }
}

impl<M: Send + WireSize + Clone + 'static> TcpTransport<M> {
    /// Binds `listen` and starts accepting peer connections.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(
        id: NodeId,
        listen: SocketAddr,
        peers: BTreeMap<NodeId, SocketAddr>,
        codec: Arc<dyn Codec<M>>,
        opts: TcpOptions,
    ) -> std::io::Result<TcpTransport<M>> {
        let t = TcpTransport::client(id, peers, codec, opts);
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::clone(&t.inner);
        std::thread::Builder::new()
            .name(format!("ring-net-accept-{id}"))
            .spawn(move || accept_loop(shared, listener))
            .expect("spawn accept thread");
        Ok(t)
    }

    /// An endpoint with no listener: it can dial peers and receive on
    /// the connections it opens (the `ring-cli` shape).
    pub fn client(
        id: NodeId,
        peers: BTreeMap<NodeId, SocketAddr>,
        codec: Arc<dyn Codec<M>>,
        opts: TcpOptions,
    ) -> TcpTransport<M> {
        TcpTransport {
            peers,
            opts,
            inner: Arc::new(Shared {
                id,
                codec,
                mailbox: Mailbox::new(),
                regions: RwLock::new(BTreeMap::new()),
                stats: NetStats::default(),
                conns: Mutex::new(BTreeMap::new()),
                streams: Mutex::new(Vec::new()),
                rpcs: Mutex::new(BTreeMap::new()),
                rpc_cond: Condvar::new(),
                next_rpc: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.inner.id
    }

    /// This endpoint's traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Shuts the endpoint down: wakes blocked receivers with
    /// [`NetError::Closed`], stops the accept loop, and closes every
    /// stream so reader threads exit.
    pub fn close(&self) {
        self.inner.shutdown.store(true, AtomicOrdering::Release);
        self.inner.mailbox.close();
        self.inner.conns.lock().clear();
        let streams = self.inner.streams.lock();
        for s in streams.iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        drop(streams);
        // Fail any RPC still waiting for a response.
        let mut rpcs = self.inner.rpcs.lock();
        for slot in rpcs.values_mut() {
            if slot.is_none() {
                *slot = Some(RpcReply::Malformed);
            }
        }
        drop(rpcs);
        self.inner.rpc_cond.notify_all();
    }

    /// The writer for `node`: an existing connection (inbound or
    /// outbound) or a fresh dial of its configured address.
    fn writer_for(&self, node: NodeId) -> Option<Writer> {
        if let Some(w) = self.inner.conns.lock().get(&node) {
            return Some(Arc::clone(w));
        }
        let addr = *self.peers.get(&node)?;
        let stream = TcpStream::connect_timeout(&addr, self.opts.connect_timeout).ok()?;
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone().ok()?;
        self.inner.streams.lock().push(reader.try_clone().ok()?);
        let writer: Writer = Arc::new(Mutex::new(stream));

        // Introduce ourselves so the peer can route replies (and its own
        // sends) back over this stream.
        let mut hello = FrameBuf::new();
        hello.put_u32(self.inner.id);
        {
            let mut w = writer.lock();
            if hello.write_to(FrameKind::Hello, &mut *w).is_err() {
                return None;
            }
            let _ = w.flush();
        }

        let entry = {
            let mut conns = self.inner.conns.lock();
            // A concurrent dial or inbound Hello may have won the race;
            // keep whichever writer is already registered.
            Arc::clone(conns.entry(node).or_insert_with(|| Arc::clone(&writer)))
        };
        let shared = Arc::clone(&self.inner);
        let w2 = Arc::clone(&writer);
        std::thread::Builder::new()
            .name(format!("ring-net-read-{}-{node}", self.inner.id))
            .spawn(move || reader_loop(shared, reader, w2, Some(node)))
            .expect("spawn reader thread");
        Some(entry)
    }

    fn write_frame(&self, node: NodeId, kind: FrameKind, body: &FrameBuf) -> bool {
        let Some(writer) = self.writer_for(node) else {
            return false;
        };
        let ok = {
            let mut w = writer.lock();
            body.write_to(kind, &mut *w)
                .and_then(|()| w.flush())
                .is_ok()
        };
        if !ok {
            drop_conn(&self.inner, node, &writer);
        }
        ok
    }

    /// Posts a message. Fire-and-forget: connection or write failures
    /// drop the message silently, exactly like the sim fabric.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] if this endpoint has been shut down.
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), NetError> {
        if self.inner.shutdown.load(AtomicOrdering::Acquire) {
            return Err(NetError::Closed);
        }
        self.inner.stats.record_send(msg.wire_size());
        let mut body = FrameBuf::new();
        self.inner.codec.encode(&msg, &mut body);
        self.write_frame(to, FrameKind::App, &body);
        Ok(())
    }

    /// One-sided RPC: send a request frame and block for its reply.
    fn rpc(
        &self,
        node: NodeId,
        kind: FrameKind,
        build: impl FnOnce(u64, &mut FrameBuf),
    ) -> Option<RpcReply> {
        let rpc = self.inner.next_rpc.fetch_add(1, AtomicOrdering::AcqRel);
        let mut body = FrameBuf::new();
        build(rpc, &mut body);
        self.inner.rpcs.lock().insert(rpc, None);
        if !self.write_frame(node, kind, &body) {
            self.inner.rpcs.lock().remove(&rpc);
            return None;
        }
        let deadline = crate::clock::now() + self.opts.rpc_timeout;
        let mut rpcs = self.inner.rpcs.lock();
        loop {
            match rpcs.get(&rpc) {
                Some(Some(_)) => {
                    return rpcs.remove(&rpc).flatten();
                }
                Some(None) => {}
                None => return None,
            }
            if self
                .inner
                .rpc_cond
                .wait_until(&mut rpcs, deadline)
                .timed_out()
            {
                rpcs.remove(&rpc);
                return None;
            }
        }
    }

    fn rdma_read_inner(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
        padded: bool,
    ) -> Result<Vec<u8>, NetError> {
        let reply = self
            .rpc(node, FrameKind::RdmaReadReq, |rpc, body| {
                body.put_u64(rpc);
                body.put_u64(key);
                body.put_u64(offset as u64);
                body.put_u64(len as u64);
                body.put_u8(padded as u8);
            })
            .ok_or(NetError::Unreachable(node))?;
        match reply {
            RpcReply::ReadOk(bytes) => {
                self.inner.stats.record_rdma_read(len);
                Ok(bytes)
            }
            RpcReply::UnknownRegion => Err(NetError::UnknownRegion { node, key }),
            RpcReply::OutOfBounds { region } => Err(NetError::OutOfBounds {
                offset,
                len,
                region,
            }),
            _ => Err(NetError::Unreachable(node)),
        }
    }

    /// One-sided read of `node`'s region `key` (see
    /// [`Endpoint::rdma_read`](crate::Endpoint::rdma_read)).
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] (including response timeout),
    /// [`NetError::UnknownRegion`] or [`NetError::OutOfBounds`].
    pub fn rdma_read(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError> {
        self.rdma_read_inner(node, key, offset, len, false)
    }

    /// One-sided read that zero-pads past the end of the region.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] or [`NetError::UnknownRegion`].
    pub fn rdma_read_padded(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError> {
        self.rdma_read_inner(node, key, offset, len, true)
    }

    /// One-sided write into `node`'s region `key`.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] (including response timeout),
    /// [`NetError::UnknownRegion`] or [`NetError::OutOfBounds`].
    pub fn rdma_write(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        bytes: &[u8],
    ) -> Result<(), NetError> {
        let reply = self
            .rpc(node, FrameKind::RdmaWriteReq, |rpc, body| {
                body.put_u64(rpc);
                body.put_u64(key);
                body.put_u64(offset as u64);
                body.put_bytes(bytes);
            })
            .ok_or(NetError::Unreachable(node))?;
        match reply {
            RpcReply::WriteOk => {
                self.inner.stats.record_rdma_write(bytes.len());
                Ok(())
            }
            RpcReply::UnknownRegion => Err(NetError::UnknownRegion { node, key }),
            RpcReply::OutOfBounds { region } => Err(NetError::OutOfBounds {
                offset,
                len: bytes.len(),
                region,
            }),
            _ => Err(NetError::Unreachable(node)),
        }
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, AtomicOrdering::Release);
        self.inner.mailbox.close();
        let streams = self.inner.streams.lock();
        for s in streams.iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl<M: Send + WireSize + Clone + 'static> crate::Transport<M> for TcpTransport<M> {
    fn id(&self) -> NodeId {
        TcpTransport::id(self)
    }

    fn stats(&self) -> &NetStats {
        TcpTransport::stats(self)
    }

    fn send(&self, to: NodeId, msg: M) -> Result<(), NetError> {
        TcpTransport::send(self, to, msg)
    }

    fn multicast(&self, to: &[NodeId], msg: M) -> Result<(), NetError> {
        for &t in to {
            TcpTransport::send(self, t, msg.clone())?;
        }
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, M), NetError> {
        let r = self.inner.mailbox.recv(Some(timeout));
        if let Ok((_, msg)) = &r {
            self.inner.stats.record_recv(msg.wire_size());
        }
        r
    }

    fn try_recv(&self) -> Result<Option<(NodeId, M)>, NetError> {
        let r = self.inner.mailbox.try_recv();
        if let Ok(Some((_, msg))) = &r {
            self.inner.stats.record_recv(msg.wire_size());
        }
        r
    }

    fn register_region(&self, key: MrKey, region: MemoryRegion) {
        self.inner.regions.write().insert(key, region);
    }

    fn deregister_region(&self, key: MrKey) {
        self.inner.regions.write().remove(&key);
    }

    fn local_region(&self, key: MrKey) -> Option<MemoryRegion> {
        self.inner.regions.read().get(&key).cloned()
    }

    fn rdma_read(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError> {
        TcpTransport::rdma_read(self, node, key, offset, len)
    }

    fn rdma_read_padded(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError> {
        TcpTransport::rdma_read_padded(self, node, key, offset, len)
    }

    fn rdma_write(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        bytes: &[u8],
    ) -> Result<(), NetError> {
        TcpTransport::rdma_write(self, node, key, offset, bytes)
    }
}

/// Accepts inbound connections until shutdown. Nonblocking accept with
/// a short sleep keeps the thread responsive to `close()` without read
/// timeouts that could desynchronise mid-frame.
fn accept_loop<M: Send + WireSize + Clone + 'static>(
    shared: Arc<Shared<M>>,
    listener: TcpListener,
) {
    loop {
        if shared.shutdown.load(AtomicOrdering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let Ok(reader) = stream.try_clone() else {
                    continue;
                };
                if let Ok(s) = stream.try_clone() {
                    shared.streams.lock().push(s);
                }
                let writer: Writer = Arc::new(Mutex::new(stream));
                let shared2 = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ring-net-read-{}-in", shared.id))
                    .spawn(move || reader_loop(shared2, reader, writer, None))
                    .expect("spawn reader thread");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// Removes the conns entry for `node` if it still points at `writer`.
fn drop_conn<M>(shared: &Shared<M>, node: NodeId, writer: &Writer) {
    let mut conns = shared.conns.lock();
    if conns.get(&node).is_some_and(|w| Arc::ptr_eq(w, writer)) {
        conns.remove(&node);
    }
}

/// Per-stream reader: dispatches frames until error, EOF, or shutdown.
/// `peer` is known for outbound streams and learned from `Hello` on
/// inbound ones.
fn reader_loop<M: Send + WireSize + Clone + 'static>(
    shared: Arc<Shared<M>>,
    mut stream: TcpStream,
    writer: Writer,
    mut peer: Option<NodeId>,
) {
    loop {
        if shared.shutdown.load(AtomicOrdering::Acquire) {
            return;
        }
        let (kind, body) = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => {
                if let Some(p) = peer {
                    drop_conn(&shared, p, &writer);
                }
                return;
            }
        };
        match kind {
            FrameKind::Hello => {
                let mut r = WireReader::new(&body);
                if let Ok(id) = r.u32() {
                    shared.conns.lock().insert(id, Arc::clone(&writer));
                    peer = Some(id);
                }
            }
            FrameKind::App => {
                if let Some(p) = peer {
                    if let Ok(msg) = shared.codec.decode(&body) {
                        shared.mailbox.push(p, msg, crate::clock::now());
                    }
                }
            }
            FrameKind::RdmaReadReq => serve_read(&shared, &body, &writer),
            FrameKind::RdmaWriteReq => serve_write(&shared, &body, &writer),
            FrameKind::RdmaReadResp => complete_rpc(&shared, true, &body),
            FrameKind::RdmaWriteResp => complete_rpc(&shared, false, &body),
        }
    }
}

const RPC_OK: u8 = 0;
const RPC_UNKNOWN_REGION: u8 = 1;
const RPC_OUT_OF_BOUNDS: u8 = 2;

/// Services a one-sided read directly on the reader thread; the
/// protocol thread is never involved (the "one-sided" property).
fn serve_read<M>(shared: &Shared<M>, body: &[u8], writer: &Writer) {
    let mut r = WireReader::new(body);
    let Ok((rpc, key, offset, len, padded)) = (|| -> Result<_, NetError> {
        let rpc = r.u64()?;
        let key = r.u64()?;
        let offset = r.u64()? as usize;
        let len = r.u64()? as usize;
        let padded = r.u8()? != 0;
        Ok((rpc, key, offset, len, padded))
    })() else {
        return; // Malformed request: nothing to correlate a reply to.
    };
    let region = shared.regions.read().get(&key).cloned();
    let mut resp = FrameBuf::new();
    resp.put_u64(rpc);
    match region {
        None => resp.put_u8(RPC_UNKNOWN_REGION),
        Some(region) if padded => {
            let available = region.len().saturating_sub(offset).min(len);
            let mut out = vec![0u8; len];
            if available > 0 {
                if let Ok(bytes) = region.read(offset, available) {
                    out[..available].copy_from_slice(&bytes);
                }
            }
            resp.put_u8(RPC_OK);
            resp.put_bytes(&out);
        }
        Some(region) => match region.read(offset, len) {
            Ok(bytes) => {
                resp.put_u8(RPC_OK);
                resp.put_bytes(&bytes);
            }
            Err(_) => {
                resp.put_u8(RPC_OUT_OF_BOUNDS);
                resp.put_u64(region.len() as u64);
            }
        },
    }
    let mut w = writer.lock();
    let _ = resp
        .write_to(FrameKind::RdmaReadResp, &mut *w)
        .and_then(|()| w.flush());
}

/// Services a one-sided write directly on the reader thread.
fn serve_write<M>(shared: &Shared<M>, body: &[u8], writer: &Writer) {
    let mut r = WireReader::new(body);
    let Ok((rpc, key, offset)) =
        (|| -> Result<_, NetError> { Ok((r.u64()?, r.u64()?, r.u64()? as usize)) })()
    else {
        return;
    };
    let bytes = r.rest();
    let region = shared.regions.read().get(&key).cloned();
    let mut resp = FrameBuf::new();
    resp.put_u64(rpc);
    match region {
        None => resp.put_u8(RPC_UNKNOWN_REGION),
        Some(region) => match region.write(offset, bytes) {
            Ok(()) => resp.put_u8(RPC_OK),
            Err(_) => {
                resp.put_u8(RPC_OUT_OF_BOUNDS);
                resp.put_u64(region.len() as u64);
            }
        },
    }
    let mut w = writer.lock();
    let _ = resp
        .write_to(FrameKind::RdmaWriteResp, &mut *w)
        .and_then(|()| w.flush());
}

/// Parses a one-sided response and wakes the waiting requester.
fn complete_rpc<M>(shared: &Shared<M>, is_read: bool, body: &[u8]) {
    let mut r = WireReader::new(body);
    let Ok(rpc) = r.u64() else { return };
    let reply = match r.u8() {
        Ok(RPC_OK) if is_read => RpcReply::ReadOk(r.rest().to_vec()),
        Ok(RPC_OK) => RpcReply::WriteOk,
        Ok(RPC_UNKNOWN_REGION) => RpcReply::UnknownRegion,
        Ok(RPC_OUT_OF_BOUNDS) => RpcReply::OutOfBounds {
            region: r.u64().unwrap_or(0) as usize,
        },
        _ => RpcReply::Malformed,
    };
    let mut rpcs = shared.rpcs.lock();
    if let Some(slot) = rpcs.get_mut(&rpc) {
        *slot = Some(reply);
        drop(rpcs);
        shared.rpc_cond.notify_all();
    }
}
