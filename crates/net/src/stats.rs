//! Per-endpoint traffic counters.
//!
//! Counters measure **logical** protocol traffic — message counts and
//! `WireSize` bytes — not backend-specific encodings. A fixed protocol
//! script therefore produces identical counters on the simulated fabric
//! and the TCP backend, which is what lets the bench harness compare
//! network load across transports (and what the `transport_parity`
//! integration test asserts).

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative traffic statistics for one endpoint.
///
/// All counters are monotonically increasing and lock-free; the bench
/// harness samples them to report network load per scheme.
#[derive(Debug, Default)]
pub struct NetStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_received: AtomicU64,
    bytes_received: AtomicU64,
    retransmits: AtomicU64,
    rdma_reads: AtomicU64,
    rdma_read_bytes: AtomicU64,
    rdma_writes: AtomicU64,
    rdma_write_bytes: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStatsSnapshot {
    /// Two-sided messages sent.
    pub msgs_sent: u64,
    /// Payload bytes sent via two-sided messages.
    pub bytes_sent: u64,
    /// Two-sided messages received.
    pub msgs_received: u64,
    /// Payload bytes received via two-sided messages.
    pub bytes_received: u64,
    /// Protocol-level retransmissions (client re-sends after timeout,
    /// node replication/parity retries). Counted by the protocol layer
    /// through [`NetStats::record_retransmit`], so the semantics are
    /// identical on every backend.
    pub retransmits: u64,
    /// One-sided reads issued.
    pub rdma_reads: u64,
    /// Bytes fetched by one-sided reads.
    pub rdma_read_bytes: u64,
    /// One-sided writes issued.
    pub rdma_writes: u64,
    /// Bytes pushed by one-sided writes.
    pub rdma_write_bytes: u64,
}

impl NetStats {
    pub(crate) fn record_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_recv(&self, bytes: usize) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Counts one protocol-level retransmission. Public (unlike the
    /// send/recv recorders) because retransmits are a *protocol* event:
    /// the transport cannot tell a retry from a fresh send, so the
    /// protocol layer reports them through its `Transport::stats()`
    /// handle.
    pub fn record_retransmit(&self) {
        self.retransmits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rdma_read(&self, bytes: usize) {
        self.rdma_reads.fetch_add(1, Ordering::Relaxed);
        self.rdma_read_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_rdma_write(&self, bytes: usize) {
        self.rdma_writes.fetch_add(1, Ordering::Relaxed);
        self.rdma_write_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            rdma_reads: self.rdma_reads.load(Ordering::Relaxed),
            rdma_read_bytes: self.rdma_read_bytes.load(Ordering::Relaxed),
            rdma_writes: self.rdma_writes.load(Ordering::Relaxed),
            rdma_write_bytes: self.rdma_write_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::default();
        s.record_send(10);
        s.record_send(20);
        s.record_recv(10);
        s.record_retransmit();
        s.record_rdma_read(100);
        s.record_rdma_write(200);
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 2);
        assert_eq!(snap.bytes_sent, 30);
        assert_eq!(snap.msgs_received, 1);
        assert_eq!(snap.bytes_received, 10);
        assert_eq!(snap.retransmits, 1);
        assert_eq!(snap.rdma_reads, 1);
        assert_eq!(snap.rdma_read_bytes, 100);
        assert_eq!(snap.rdma_writes, 1);
        assert_eq!(snap.rdma_write_bytes, 200);
    }
}
