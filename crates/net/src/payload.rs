//! Cheaply-clonable, immutable byte payloads.
//!
//! Value bytes travel a long way in Ring's write path: client request →
//! multicast attempts → coordinator store → r-way replication fan-out →
//! retransmit buffers → dedup response cache. With `Vec<u8>` every hop
//! deep-copies; [`Payload`] wraps the bytes in an `Arc<[u8]>` so each hop
//! is a reference-count bump. Payloads are immutable by construction,
//! which is exactly the contract a committed value needs.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::WireSize;

/// Immutable, reference-counted byte buffer.
///
/// Cloning a `Payload` is O(1) (an atomic increment); the underlying
/// bytes are shared and never mutated. Internally an `Arc<Vec<u8>>`
/// rather than `Arc<[u8]>` so that `Payload::from(Vec<u8>)` — the hot
/// constructor on the write and replication paths — moves the buffer
/// instead of re-copying it into a fresh allocation.
#[derive(Clone)]
pub struct Payload(Arc<Vec<u8>>);

impl Payload {
    /// An empty payload (shares no allocation of interest).
    pub fn empty() -> Self {
        Payload(Arc::new(Vec::new()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the payload has no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the bytes out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        // Zero-copy: the Vec moves into the Arc allocation's header;
        // the byte buffer itself is not touched.
        Payload(Arc::new(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload(Arc::new(v.to_vec()))
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Self {
        Payload(Arc::new(v.to_vec()))
    }
}

impl From<Box<[u8]>> for Payload {
    fn from(v: Box<[u8]>) -> Self {
        Payload(Arc::new(v.into_vec()))
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality short-circuits the common shared-Arc case.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.0.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.0.len())
    }
}

impl WireSize for Payload {
    fn wire_size(&self) -> usize {
        self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_bytes() {
        let p = Payload::from(vec![1u8, 2, 3]);
        let q = p.clone();
        assert!(std::ptr::eq(p.as_slice().as_ptr(), q.as_slice().as_ptr()));
        assert_eq!(p, q);
    }

    #[test]
    fn conversions_and_eq() {
        let p = Payload::from(&b"hello"[..]);
        assert_eq!(p, b"hello".to_vec());
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.to_vec(), b"hello");
        let e = Payload::empty();
        assert!(e.is_empty());
        assert_eq!(e.wire_size(), 0);
    }

    #[test]
    fn deref_gives_slice_ops() {
        let p = Payload::from(vec![9u8; 16]);
        assert_eq!(p[3], 9);
        assert_eq!(&p[..4], &[9u8; 4]);
    }
}
