//! Error type for fabric operations.

use std::fmt;

use crate::NodeId;

/// Errors produced by fabric registration, messaging and one-sided verbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The target node was never registered or has been killed.
    Unreachable(NodeId),
    /// A node id was registered twice.
    AlreadyRegistered(NodeId),
    /// A blocking receive timed out.
    Timeout,
    /// The local endpoint has been shut down.
    Closed,
    /// One-sided access referenced an unknown memory region key.
    UnknownRegion {
        /// The node the access targeted.
        node: NodeId,
        /// The unknown key.
        key: u64,
    },
    /// One-sided access fell outside the registered region bounds.
    OutOfBounds {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Size of the region.
        region: usize,
    },
    /// A received frame or frame body was malformed: bad magic, an
    /// unsupported wire version, an oversized length, or a body that a
    /// codec could not decode. Decoders return this instead of
    /// panicking on arbitrary input.
    BadFrame(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable(n) => write!(f, "node {n} is unreachable"),
            NetError::AlreadyRegistered(n) => write!(f, "node {n} already registered"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Closed => write!(f, "endpoint closed"),
            NetError::UnknownRegion { node, key } => {
                write!(f, "unknown memory region {key} on node {node}")
            }
            NetError::OutOfBounds {
                offset,
                len,
                region,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) out of bounds for region of {region} bytes"
            ),
            NetError::BadFrame(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for NetError {}
