//! A node's handle to the fabric.

use std::sync::Arc;
use std::time::Duration;

use crate::fabric::{FabricInner, NodeSlot};
use crate::fault::FaultAction;
use crate::latency::spin_wait;
use crate::{MemoryRegion, MrKey, NetError, NetStats, NodeId, WireSize};

/// A registered node's endpoint: two-sided messaging, one-sided verbs,
/// and memory-region registration.
pub struct Endpoint<M> {
    id: NodeId,
    slot: Arc<NodeSlot<M>>,
    fabric: Arc<FabricInner<M>>,
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("id", &self.id).finish()
    }
}

impl<M: Send + WireSize> Endpoint<M> {
    pub(crate) fn new(
        id: NodeId,
        slot: Arc<NodeSlot<M>>,
        fabric: Arc<FabricInner<M>>,
    ) -> Endpoint<M> {
        Endpoint { id, slot, fabric }
    }

    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This endpoint's traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.slot.stats
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] if the endpoint is killed while
    /// waiting.
    pub fn recv(&self) -> Result<(NodeId, M), NetError> {
        let r = self.slot.mailbox.recv(None);
        if let Ok((_, msg)) = &r {
            self.slot.stats.record_recv(msg.wire_size());
        }
        r
    }

    /// Blocks until a message arrives or the timeout elapses.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on expiry, [`NetError::Closed`] if killed.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, M), NetError> {
        let r = self.slot.mailbox.recv(Some(timeout));
        if let Ok((_, msg)) = &r {
            self.slot.stats.record_recv(msg.wire_size());
        }
        r
    }

    /// Returns a due message if one is queued, without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] if the endpoint was killed.
    pub fn try_recv(&self) -> Result<Option<(NodeId, M)>, NetError> {
        let r = self.slot.mailbox.try_recv();
        if let Ok(Some((_, msg))) = &r {
            self.slot.stats.record_recv(msg.wire_size());
        }
        r
    }

    /// Number of queued (possibly not yet due) messages.
    pub fn queued(&self) -> usize {
        self.slot.mailbox.len()
    }

    /// Registers a memory region under `key`, making it remotely
    /// accessible. Re-registering a key replaces the region.
    pub fn register_region(&self, key: MrKey, region: MemoryRegion) {
        self.slot.regions.write().insert(key, region);
    }

    /// Removes a region registration.
    pub fn deregister_region(&self, key: MrKey) {
        self.slot.regions.write().remove(&key);
    }

    /// Returns a handle to one of this node's own regions.
    pub fn local_region(&self, key: MrKey) -> Option<MemoryRegion> {
        self.slot.regions.read().get(&key).cloned()
    }

    fn remote_region(&self, node: NodeId, key: MrKey) -> Result<MemoryRegion, NetError> {
        if !self.fabric.link_up(self.id, node) {
            return Err(NetError::Unreachable(node));
        }
        let slot = self.fabric.slot(node).ok_or(NetError::Unreachable(node))?;
        if slot.mailbox.is_closed() {
            return Err(NetError::Unreachable(node));
        }
        let region = slot.regions.read().get(&key).cloned();
        region.ok_or(NetError::UnknownRegion { node, key })
    }

    /// One-sided read of `[offset, offset + len)` from `node`'s region
    /// `key`. The caller pays the round-trip latency; the remote CPU is
    /// not involved.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`], [`NetError::UnknownRegion`] or
    /// [`NetError::OutOfBounds`].
    pub fn rdma_read(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError> {
        let region = self.remote_region(node, key)?;
        spin_wait(self.fabric.latency.round_trip(len));
        let out = region.read(offset, len)?;
        self.slot.stats.record_rdma_read(len);
        Ok(out)
    }

    /// One-sided read like [`Endpoint::rdma_read`], but reads past the
    /// end of the region return zeros instead of failing — registered
    /// regions grow lazily and unwritten bytes are zero by definition.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] or [`NetError::UnknownRegion`].
    pub fn rdma_read_padded(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError> {
        let region = self.remote_region(node, key)?;
        spin_wait(self.fabric.latency.round_trip(len));
        let available = region.len().saturating_sub(offset).min(len);
        let mut out = vec![0u8; len];
        if available > 0 {
            let bytes = region.read(offset, available)?;
            out[..available].copy_from_slice(&bytes);
        }
        self.slot.stats.record_rdma_read(len);
        Ok(out)
    }

    /// One-sided write of `bytes` into `node`'s region `key` at `offset`.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`], [`NetError::UnknownRegion`] or
    /// [`NetError::OutOfBounds`].
    pub fn rdma_write(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        bytes: &[u8],
    ) -> Result<(), NetError> {
        let region = self.remote_region(node, key)?;
        spin_wait(self.fabric.latency.round_trip(bytes.len()));
        region.write(offset, bytes)?;
        self.slot.stats.record_rdma_write(bytes.len());
        Ok(())
    }
}

impl<M: Send + WireSize + Clone> Endpoint<M> {
    /// Posts a message to `to`. Fire-and-forget: like a real network,
    /// delivery to a dead node silently fails and the sender must use
    /// timeouts. Sending over a cut link also drops the message. An
    /// installed [`crate::FaultInjector`] may additionally drop, delay,
    /// or duplicate the message (duplication is why `M: Clone`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unreachable`] only if the target was *never*
    /// registered (a configuration error rather than a runtime failure),
    /// and [`NetError::Closed`] if this endpoint itself was killed.
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), NetError> {
        if self.slot.mailbox.is_closed() {
            return Err(NetError::Closed);
        }
        let bytes = msg.wire_size();
        self.slot.stats.record_send(bytes);
        if !self.fabric.link_up(self.id, to) {
            return Ok(()); // Dropped on the floor.
        }
        let Some(slot) = self.fabric.slot(to) else {
            return Ok(()); // Dead node: dropped.
        };
        let action = match self.fabric.injector.read().as_ref() {
            Some(injector) => injector.on_message(self.id, to, bytes),
            None => FaultAction::Deliver,
        };
        let wire = self.fabric.latency.delay(bytes);
        let now = crate::clock::now();
        match action {
            FaultAction::Deliver => slot.mailbox.push(self.id, msg, now + wire),
            FaultAction::Drop => {}
            FaultAction::Delay(extra) => slot.mailbox.push(self.id, msg, now + wire + extra),
            FaultAction::Duplicate(extra) => {
                slot.mailbox.push(self.id, msg.clone(), now + wire);
                slot.mailbox.push(self.id, msg, now + wire + extra);
            }
        }
        Ok(())
    }

    /// Sends the same message to several nodes (the paper's client-side
    /// multicast re-send path).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] if this endpoint was killed.
    pub fn multicast(&self, to: &[NodeId], msg: M) -> Result<(), NetError> {
        for &t in to {
            self.send(t, msg.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fabric, LatencyModel};
    use std::time::Instant;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg(Vec<u8>);
    impl WireSize for Msg {
        fn wire_size(&self) -> usize {
            self.0.len()
        }
    }

    fn pair() -> (Fabric<Msg>, Endpoint<Msg>, Endpoint<Msg>) {
        let f = Fabric::new(LatencyModel::instant());
        let a = f.register(0).unwrap();
        let b = f.register(1).unwrap();
        (f, a, b)
    }

    #[test]
    fn multicast_reaches_all() {
        let f: Fabric<Msg> = Fabric::new(LatencyModel::instant());
        let a = f.register(0).unwrap();
        let b = f.register(1).unwrap();
        let c = f.register(2).unwrap();
        a.multicast(&[1, 2], Msg(vec![9])).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().1,
            Msg(vec![9])
        );
        assert_eq!(
            c.recv_timeout(Duration::from_secs(1)).unwrap().1,
            Msg(vec![9])
        );
    }

    #[test]
    fn rdma_read_write_round_trip() {
        let (_f, a, b) = pair();
        b.register_region(7, MemoryRegion::new(64));
        a.rdma_write(1, 7, 8, &[1, 2, 3]).unwrap();
        assert_eq!(a.rdma_read(1, 7, 8, 3).unwrap(), vec![1, 2, 3]);
        // The owner sees the same bytes locally.
        assert_eq!(
            b.local_region(7).unwrap().read(8, 3).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn rdma_unknown_region_and_node() {
        let (_f, a, b) = pair();
        assert_eq!(
            a.rdma_read(1, 99, 0, 1).unwrap_err(),
            NetError::UnknownRegion { node: 1, key: 99 }
        );
        assert_eq!(
            a.rdma_read(55, 0, 0, 1).unwrap_err(),
            NetError::Unreachable(55)
        );
        drop(b);
    }

    #[test]
    fn rdma_to_killed_node_unreachable() {
        let (f, a, b) = pair();
        b.register_region(1, MemoryRegion::new(8));
        f.kill(1);
        assert_eq!(
            a.rdma_read(1, 1, 0, 1).unwrap_err(),
            NetError::Unreachable(1)
        );
    }

    #[test]
    fn rdma_over_cut_link_unreachable() {
        let (f, a, b) = pair();
        b.register_region(1, MemoryRegion::new(8));
        f.fail_link(0, 1);
        assert_eq!(
            a.rdma_write(1, 1, 0, &[1]).unwrap_err(),
            NetError::Unreachable(1)
        );
    }

    #[test]
    fn send_after_kill_is_closed() {
        let (f, a, _b) = pair();
        f.kill(0);
        assert_eq!(a.send(1, Msg(vec![])).unwrap_err(), NetError::Closed);
    }

    #[test]
    fn latency_is_applied_to_delivery() {
        let f: Fabric<Msg> = Fabric::new(LatencyModel {
            base: Duration::from_millis(5),
            per_byte_ns: 0,
        });
        let a = f.register(0).unwrap();
        let b = f.register(1).unwrap();
        let start = Instant::now();
        a.send(1, Msg(vec![1])).unwrap();
        // Sender is not blocked by the wire delay.
        assert!(start.elapsed() < Duration::from_millis(4));
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn stats_track_traffic() {
        let (_f, a, b) = pair();
        b.register_region(1, MemoryRegion::new(16));
        a.send(1, Msg(vec![0; 10])).unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        a.rdma_read(1, 1, 0, 4).unwrap();
        a.rdma_write(1, 1, 0, &[1, 2]).unwrap();
        let sa = a.stats().snapshot();
        assert_eq!(sa.msgs_sent, 1);
        assert_eq!(sa.bytes_sent, 10);
        assert_eq!(sa.rdma_reads, 1);
        assert_eq!(sa.rdma_read_bytes, 4);
        assert_eq!(sa.rdma_writes, 1);
        assert_eq!(sa.rdma_write_bytes, 2);
        assert_eq!(b.stats().snapshot().msgs_received, 1);
    }
}
