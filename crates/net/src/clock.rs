//! The fabric clock: the one sanctioned source of ambient time.
//!
//! Everything in the deterministic simulation paths (`ring-net`,
//! `ring-chaos`, `ring-core` node code) that needs to know "what time is
//! it" must ask this module instead of calling `std::time::Instant::now`
//! directly. Two things are bought by the indirection:
//!
//! 1. **Auditability.** `ring-lint` (crates/verify) bans ambient-time
//!    calls in those crates, so every time source is either this module
//!    or an explicitly documented `// ring-lint: allow(ambient-time)`
//!    site. A stray `Instant::now()` in protocol code — the classic way
//!    a "deterministic" simulation quietly stops being one — fails CI.
//! 2. **A seam.** The latency model injects *delays* relative to the
//!    clock; routing every read through one function is the prerequisite
//!    for swapping in a virtual (discrete-event) clock later without
//!    touching protocol code.
//!
//! The clock intentionally exposes only monotonic time. Wall-clock time
//! (`SystemTime`) has no legitimate consumer in the simulation: it can
//! jump, and nothing in the protocol may depend on it.

use std::time::{Duration, Instant};

/// The current instant on the fabric clock.
///
/// This is the single place in the deterministic-path crates where
/// ambient monotonic time enters the system.
#[inline]
pub fn now() -> Instant {
    Instant::now() // ring-lint: allow(ambient-time) -- the sanctioned source
}

/// `now() + d`, saturating like `Instant::checked_add` would allow.
///
/// Convenience for the overwhelmingly common "deadline = now + timeout"
/// pattern so call sites stay one expression.
#[inline]
pub fn deadline_in(d: Duration) -> Instant {
    now() + d
}
