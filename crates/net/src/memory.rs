//! Registered memory regions for one-sided verbs.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::NetError;

/// Key identifying a registered memory region on a node (the `rkey` of
/// RDMA verbs).
pub type MrKey = u64;

/// A registered memory region.
///
/// The owner keeps a handle for local access; remote endpoints reach the
/// same bytes through [`crate::Endpoint::rdma_read`] /
/// [`crate::Endpoint::rdma_write`] without involving the owner's thread.
#[derive(Clone)]
pub struct MemoryRegion {
    data: Arc<RwLock<Vec<u8>>>,
}

impl std::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemoryRegion({} bytes)", self.len())
    }
}

impl MemoryRegion {
    /// Allocates a zeroed region of `len` bytes.
    pub fn new(len: usize) -> MemoryRegion {
        MemoryRegion {
            data: Arc::new(RwLock::new(vec![0u8; len])),
        }
    }

    /// Wraps existing bytes.
    pub fn from_vec(data: Vec<u8>) -> MemoryRegion {
        MemoryRegion {
            data: Arc::new(RwLock::new(data)),
        }
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// Returns true if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grows the region to `new_len` bytes (no-op if already larger).
    pub fn grow(&self, new_len: usize) {
        let mut d = self.data.write();
        if d.len() < new_len {
            d.resize(new_len, 0);
        }
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::OutOfBounds`] if the range exceeds the region.
    pub fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>, NetError> {
        let d = self.data.read();
        let end = offset.checked_add(len).ok_or(NetError::OutOfBounds {
            offset,
            len,
            region: d.len(),
        })?;
        if end > d.len() {
            return Err(NetError::OutOfBounds {
                offset,
                len,
                region: d.len(),
            });
        }
        Ok(d[offset..end].to_vec())
    }

    /// Writes `bytes` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::OutOfBounds`] if the range exceeds the region.
    pub fn write(&self, offset: usize, bytes: &[u8]) -> Result<(), NetError> {
        let mut d = self.data.write();
        let end = offset
            .checked_add(bytes.len())
            .ok_or(NetError::OutOfBounds {
                offset,
                len: bytes.len(),
                region: d.len(),
            })?;
        if end > d.len() {
            return Err(NetError::OutOfBounds {
                offset,
                len: bytes.len(),
                region: d.len(),
            });
        }
        d[offset..end].copy_from_slice(bytes);
        Ok(())
    }

    /// XORs `bytes` into the region at `offset` (used by parity updates).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::OutOfBounds`] if the range exceeds the region.
    pub fn xor(&self, offset: usize, bytes: &[u8]) -> Result<(), NetError> {
        let mut d = self.data.write();
        let end = offset
            .checked_add(bytes.len())
            .ok_or(NetError::OutOfBounds {
                offset,
                len: bytes.len(),
                region: d.len(),
            })?;
        if end > d.len() {
            return Err(NetError::OutOfBounds {
                offset,
                len: bytes.len(),
                region: d.len(),
            });
        }
        // Word-wide XOR: this sits on the parity-update hot path.
        let dst = &mut d[offset..end];
        let mut cd = dst.chunks_exact_mut(8);
        let mut cs = bytes.chunks_exact(8);
        for (dw, sw) in cd.by_ref().zip(cs.by_ref()) {
            let v = u64::from_ne_bytes(dw.try_into().expect("chunk of 8"))
                ^ u64::from_ne_bytes(sw.try_into().expect("chunk of 8"));
            dw.copy_from_slice(&v.to_ne_bytes());
        }
        for (dst, src) in cd.into_remainder().iter_mut().zip(cs.remainder()) {
            *dst ^= src;
        }
        Ok(())
    }

    /// Runs `f` with read access to the whole region.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.data.read())
    }

    /// Runs `f` with write access to the whole region.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
        f(&mut self.data.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mr = MemoryRegion::new(16);
        mr.write(4, &[1, 2, 3]).unwrap();
        assert_eq!(mr.read(4, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(mr.read(3, 2).unwrap(), vec![0, 1]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mr = MemoryRegion::new(8);
        assert!(matches!(mr.read(7, 2), Err(NetError::OutOfBounds { .. })));
        assert!(matches!(
            mr.write(8, &[1]),
            Err(NetError::OutOfBounds { .. })
        ));
        assert!(mr.read(8, 0).is_ok());
    }

    #[test]
    fn overflowing_offset_rejected() {
        let mr = MemoryRegion::new(8);
        assert!(matches!(
            mr.read(usize::MAX, 2),
            Err(NetError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn xor_accumulates() {
        let mr = MemoryRegion::new(4);
        mr.xor(0, &[0b1010, 0b0001]).unwrap();
        mr.xor(0, &[0b0110, 0b0001]).unwrap();
        assert_eq!(mr.read(0, 2).unwrap(), vec![0b1100, 0]);
    }

    #[test]
    fn grow_preserves_contents() {
        let mr = MemoryRegion::from_vec(vec![9, 9]);
        mr.grow(4);
        assert_eq!(mr.read(0, 4).unwrap(), vec![9, 9, 0, 0]);
        mr.grow(2); // No shrink.
        assert_eq!(mr.len(), 4);
    }

    #[test]
    fn clones_share_storage() {
        let a = MemoryRegion::new(4);
        let b = a.clone();
        a.write(0, &[42]).unwrap();
        assert_eq!(b.read(0, 1).unwrap(), vec![42]);
    }
}
