//! Transport-level framing shared by every real (socket) backend.
//!
//! Every frame on a stream is an 8-byte header followed by `len` body
//! bytes:
//!
//! ```text
//! +----+----+----+----+----+----+----+----+----------------+
//! | 'R'| 'G'| ver|kind|       len (u32 LE)| body (len B)   |
//! +----+----+----+----+----+----+----+----+----------------+
//! ```
//!
//! The header carries the protocol version so incompatible peers fail
//! fast with a clean error instead of desynchronising the stream, and
//! `len` is bounded by [`MAX_FRAME_LEN`] so a corrupt or hostile peer
//! cannot make the receiver allocate unbounded memory.
//!
//! Message *bodies* are produced by a [`Codec`] — the simulated fabric
//! never serialises, so the codec for the Ring protocol lives in its own
//! crate (`ring-wire`) and is injected into the TCP backend. Encoding
//! goes through a [`FrameBuf`], which keeps [`Payload`] value bytes as
//! shared segments instead of copying them into the scratch buffer: the
//! encode path of a 1 MiB put clones an `Arc`, not a megabyte.

use std::io::{self, Read, Write};

use crate::{NetError, Payload};

/// First magic byte (`'R'`).
pub const FRAME_MAGIC0: u8 = b'R';
/// Second magic byte (`'G'`).
pub const FRAME_MAGIC1: u8 = b'G';
/// Wire-protocol version carried in every frame header.
pub const FRAME_VERSION: u8 = 1;
/// Header size in bytes.
pub const FRAME_HEADER_LEN: usize = 8;
/// Upper bound on a frame body. Large enough for any recovery transfer
/// the reproduction performs, small enough that a corrupt length field
/// cannot trigger a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// What a frame carries. Application messages are opaque codec bodies;
/// the remaining kinds implement the transport's internal handshake and
/// the one-sided read/write emulation used by recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A codec-encoded protocol message.
    App = 0,
    /// Connection handshake: the sender's node id.
    Hello = 1,
    /// One-sided read request.
    RdmaReadReq = 2,
    /// One-sided read response.
    RdmaReadResp = 3,
    /// One-sided write request.
    RdmaWriteReq = 4,
    /// One-sided write response.
    RdmaWriteResp = 5,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0 => FrameKind::App,
            1 => FrameKind::Hello,
            2 => FrameKind::RdmaReadReq,
            3 => FrameKind::RdmaReadResp,
            4 => FrameKind::RdmaWriteReq,
            5 => FrameKind::RdmaWriteResp,
            _ => return None,
        })
    }
}

/// Packs a frame header for a body of `len` bytes.
pub fn pack_header(kind: FrameKind, len: usize) -> [u8; FRAME_HEADER_LEN] {
    debug_assert!(len <= MAX_FRAME_LEN, "frame body exceeds MAX_FRAME_LEN");
    let l = len as u32;
    let lb = l.to_le_bytes();
    [
        FRAME_MAGIC0,
        FRAME_MAGIC1,
        FRAME_VERSION,
        kind as u8,
        lb[0],
        lb[1],
        lb[2],
        lb[3],
    ]
}

/// Validates a frame header, returning `(kind, body_len)`.
///
/// # Errors
///
/// [`NetError::BadFrame`] on wrong magic, unsupported version, unknown
/// kind, or a length above [`MAX_FRAME_LEN`].
pub fn parse_header(h: &[u8; FRAME_HEADER_LEN]) -> Result<(FrameKind, usize), NetError> {
    if h[0] != FRAME_MAGIC0 || h[1] != FRAME_MAGIC1 {
        return Err(NetError::BadFrame(format!(
            "bad magic {:#04x}{:02x}",
            h[0], h[1]
        )));
    }
    if h[2] != FRAME_VERSION {
        return Err(NetError::BadFrame(format!(
            "unsupported frame version {} (expected {FRAME_VERSION})",
            h[2]
        )));
    }
    let kind = FrameKind::from_u8(h[3])
        .ok_or_else(|| NetError::BadFrame(format!("unknown frame kind {}", h[3])))?;
    let len = u32::from_le_bytes([h[4], h[5], h[6], h[7]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(NetError::BadFrame(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    Ok((kind, len))
}

/// Reads one full frame from a stream.
///
/// # Errors
///
/// I/O errors propagate; a malformed header surfaces as
/// [`io::ErrorKind::InvalidData`] wrapping the [`NetError`] message.
pub fn read_frame(r: &mut impl Read) -> io::Result<(FrameKind, Vec<u8>)> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let (kind, len) = parse_header(&header)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((kind, body))
}

/// One encoded segment: either scratch bytes owned by the buffer or a
/// shared, immutable [`Payload`] (no copy).
#[derive(Debug)]
enum Segment {
    Owned(Vec<u8>),
    Shared(Payload),
}

/// An encode buffer that keeps [`Payload`] bytes zero-copy.
///
/// Fixed-width fields accumulate into owned scratch segments; payloads
/// are appended as `Arc`-shared segments. [`FrameBuf::write_to`] streams
/// header + segments to a writer without ever concatenating them.
#[derive(Debug, Default)]
pub struct FrameBuf {
    segments: Vec<Segment>,
    len: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Total body length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn scratch(&mut self) -> &mut Vec<u8> {
        let needs_new = !matches!(self.segments.last(), Some(Segment::Owned(_)));
        if needs_new {
            self.segments.push(Segment::Owned(Vec::new()));
        }
        match self.segments.last_mut() {
            Some(Segment::Owned(v)) => v,
            _ => unreachable!("just ensured an owned tail segment"),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.scratch().push(v);
        self.len += 1;
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.scratch().extend_from_slice(&v.to_le_bytes());
        self.len += 4;
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.scratch().extend_from_slice(&v.to_le_bytes());
        self.len += 8;
    }

    /// Appends raw bytes (copied into scratch — use
    /// [`FrameBuf::put_payload`] for value-sized data).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.scratch().extend_from_slice(bytes);
        self.len += bytes.len();
    }

    /// Appends a shared payload without copying its bytes.
    pub fn put_payload(&mut self, p: &Payload) {
        self.len += p.len();
        if p.is_empty() {
            return;
        }
        self.segments.push(Segment::Shared(p.clone()));
    }

    /// Streams `header + body` to `w`.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, kind: FrameKind, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&pack_header(kind, self.len))?;
        for seg in &self.segments {
            match seg {
                Segment::Owned(v) => w.write_all(v)?,
                Segment::Shared(p) => w.write_all(p.as_slice())?,
            }
        }
        Ok(())
    }

    /// Flattens the body into one `Vec` (tests, non-stream callers).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for seg in &self.segments {
            match seg {
                Segment::Owned(v) => out.extend_from_slice(v),
                Segment::Shared(p) => out.extend_from_slice(p.as_slice()),
            }
        }
        out
    }

    /// Flattens `header + body` into one `Vec` (tests, fuzzing).
    pub fn to_frame_bytes(&self, kind: FrameKind) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.len);
        out.extend_from_slice(&pack_header(kind, self.len));
        for seg in &self.segments {
            match seg {
                Segment::Owned(v) => out.extend_from_slice(v),
                Segment::Shared(p) => out.extend_from_slice(p.as_slice()),
            }
        }
        out
    }
}

/// A bounds-checked cursor over a frame body.
///
/// Every accessor returns [`NetError::BadFrame`] instead of panicking
/// when the body is shorter than the field being read — the foundation
/// for decoders that must survive arbitrary bytes off the network.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`NetError::BadFrame`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.len() < n {
            return Err(NetError::BadFrame(format!(
                "truncated body: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.len()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// [`NetError::BadFrame`] if the reader is exhausted.
    pub fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.bytes(1)?[0])
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`NetError::BadFrame`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`NetError::BadFrame`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consumes and returns everything left.
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    /// Asserts the body was fully consumed.
    ///
    /// # Errors
    ///
    /// [`NetError::BadFrame`] if trailing bytes remain.
    pub fn finish(&self) -> Result<(), NetError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(NetError::BadFrame(format!(
                "{} trailing bytes after message",
                self.len()
            )))
        }
    }
}

/// Serialises protocol messages to and from frame bodies.
///
/// The TCP backend is generic over the message type; a codec instance
/// supplies the encoding. The Ring protocol's codec lives in the
/// `ring-wire` crate (this crate cannot know the `Msg` enum).
pub trait Codec<M>: Send + Sync {
    /// Encodes `msg` into `out` (payload bytes stay zero-copy).
    fn encode(&self, msg: &M, out: &mut FrameBuf);

    /// Decodes a frame body back into a message.
    ///
    /// # Errors
    ///
    /// [`NetError::BadFrame`] on truncated or malformed bodies. Decoders
    /// must never panic on arbitrary input.
    fn decode(&self, body: &[u8]) -> Result<M, NetError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = pack_header(FrameKind::App, 1234);
        assert_eq!(parse_header(&h).unwrap(), (FrameKind::App, 1234));
        let h = pack_header(FrameKind::RdmaReadResp, 0);
        assert_eq!(parse_header(&h).unwrap(), (FrameKind::RdmaReadResp, 0));
    }

    #[test]
    fn bad_headers_rejected() {
        let mut h = pack_header(FrameKind::App, 4);
        h[0] = b'X';
        assert!(matches!(parse_header(&h), Err(NetError::BadFrame(_))));
        let mut h = pack_header(FrameKind::App, 4);
        h[2] = 99;
        assert!(matches!(parse_header(&h), Err(NetError::BadFrame(_))));
        let mut h = pack_header(FrameKind::App, 4);
        h[3] = 200;
        assert!(matches!(parse_header(&h), Err(NetError::BadFrame(_))));
        let mut h = pack_header(FrameKind::App, 4);
        h[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(parse_header(&h), Err(NetError::BadFrame(_))));
    }

    #[test]
    fn framebuf_accumulates_and_flattens() {
        let mut b = FrameBuf::new();
        b.put_u8(7);
        b.put_u32(0xAABBCCDD);
        b.put_u64(1);
        let p = Payload::from(vec![9u8; 16]);
        b.put_payload(&p);
        b.put_bytes(&[1, 2]);
        assert_eq!(b.len(), 1 + 4 + 8 + 16 + 2);
        let flat = b.to_bytes();
        assert_eq!(flat.len(), b.len());
        assert_eq!(flat[0], 7);
        assert_eq!(&flat[13..29], &[9u8; 16]);
    }

    #[test]
    fn payload_segments_share_bytes() {
        let p = Payload::from(vec![3u8; 64]);
        let mut b = FrameBuf::new();
        b.put_payload(&p);
        match &b.segments[0] {
            Segment::Shared(q) => {
                assert!(std::ptr::eq(p.as_slice().as_ptr(), q.as_slice().as_ptr()));
            }
            other => panic!("expected shared segment, got {other:?}"),
        }
    }

    #[test]
    fn write_to_emits_header_then_body() {
        let mut b = FrameBuf::new();
        b.put_u32(42);
        let mut out = Vec::new();
        b.write_to(FrameKind::Hello, &mut out).unwrap();
        assert_eq!(out.len(), FRAME_HEADER_LEN + 4);
        let mut cursor = std::io::Cursor::new(out);
        let (kind, body) = read_frame(&mut cursor).unwrap();
        assert_eq!(kind, FrameKind::Hello);
        assert_eq!(body, 42u32.to_le_bytes());
    }

    #[test]
    fn wire_reader_bounds_checked() {
        let mut r = WireReader::new(&[1, 2, 0, 0, 0, 9]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u32().unwrap(), 2);
        assert!(r.u64().is_err(), "only one byte left");
        assert_eq!(r.rest(), &[9]);
        assert!(r.finish().is_ok());
        let mut r = WireReader::new(&[1, 2]);
        r.u8().unwrap();
        assert!(r.finish().is_err(), "trailing byte rejected");
    }

    #[test]
    fn read_frame_rejects_truncation() {
        let mut b = FrameBuf::new();
        b.put_u64(5);
        let full = b.to_frame_bytes(FrameKind::App);
        for cut in 0..full.len() {
            let mut cursor = std::io::Cursor::new(&full[..cut]);
            assert!(read_frame(&mut cursor).is_err(), "prefix of {cut} bytes");
        }
        let mut cursor = std::io::Cursor::new(&full[..]);
        assert!(read_frame(&mut cursor).is_ok());
    }
}
