//! The backend-neutral transport seam.
//!
//! Protocol code (`ring-kvs`'s node, leader, and client engines) is
//! written against [`Transport`] and never names a concrete backend.
//! Two implementations exist:
//!
//! - [`Endpoint`](crate::Endpoint) — the simulated fabric: deterministic,
//!   latency-modelled, fault-injectable. The backend every test, chaos
//!   soak, and determinism regression runs on.
//! - [`TcpTransport`](crate::TcpTransport) — threaded TCP over real
//!   sockets, used by the standalone `ring-server` / `ring-cli`
//!   binaries and the loopback bench harness.
//!
//! The trait mirrors the verbs the paper's protocol actually uses: two-
//! sided fire-and-forget messaging, and the one-sided memory-region
//! reads/writes recovery relies on. Fire-and-forget semantics are part
//! of the contract — a send to a dead or unreachable peer returns
//! `Ok(())` and the message vanishes; callers must use timeouts, as on
//! a real network. `Err` from `send` means only that *this* endpoint is
//! shut down.

use std::time::Duration;

use crate::{MemoryRegion, MrKey, NetError, NetStats, NodeId};

/// Messaging + one-sided verbs, implemented by every network backend.
///
/// `M` is the protocol message type. Implementations must be usable
/// from the single protocol thread that owns them (`Send` so the owner
/// can be spawned onto a thread).
pub trait Transport<M>: Send {
    /// This endpoint's node id.
    fn id(&self) -> NodeId;

    /// This endpoint's traffic counters. Counters are *logical*
    /// (message counts and `WireSize` bytes), identical across
    /// backends for the same protocol script.
    fn stats(&self) -> &NetStats;

    /// Posts a message to `to`, fire-and-forget: delivery to a dead or
    /// unreachable peer silently fails with `Ok(())`.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] if this endpoint itself is shut down;
    /// [`NetError::Unreachable`] only for configuration errors (a peer
    /// id that never existed).
    fn send(&self, to: NodeId, msg: M) -> Result<(), NetError>;

    /// Sends the same message to several nodes (the client's multicast
    /// re-send path).
    ///
    /// # Errors
    ///
    /// As for [`Transport::send`].
    fn multicast(&self, to: &[NodeId], msg: M) -> Result<(), NetError>;

    /// Blocks until a message arrives or the timeout elapses.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on expiry, [`NetError::Closed`] if shut
    /// down while waiting.
    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, M), NetError>;

    /// Returns a pending message if one is queued, without blocking.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] if this endpoint is shut down.
    fn try_recv(&self) -> Result<Option<(NodeId, M)>, NetError>;

    /// Registers a memory region under `key`, making it remotely
    /// readable/writable. Re-registering a key replaces the region.
    fn register_region(&self, key: MrKey, region: MemoryRegion);

    /// Removes a region registration.
    fn deregister_region(&self, key: MrKey);

    /// A handle to one of this node's own registered regions.
    fn local_region(&self, key: MrKey) -> Option<MemoryRegion>;

    /// One-sided read of `[offset, offset + len)` from `node`'s region
    /// `key` — the recovery path's RDMA read.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`], [`NetError::UnknownRegion`] or
    /// [`NetError::OutOfBounds`].
    fn rdma_read(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError>;

    /// One-sided read that zero-pads past the end of the region
    /// (regions grow lazily; unwritten bytes are zero by definition).
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] or [`NetError::UnknownRegion`].
    fn rdma_read_padded(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError>;

    /// One-sided write of `bytes` into `node`'s region `key`.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`], [`NetError::UnknownRegion`] or
    /// [`NetError::OutOfBounds`].
    fn rdma_write(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        bytes: &[u8],
    ) -> Result<(), NetError>;
}

impl<M: Send + crate::WireSize + Clone> Transport<M> for crate::Endpoint<M> {
    fn id(&self) -> NodeId {
        crate::Endpoint::id(self)
    }

    fn stats(&self) -> &NetStats {
        crate::Endpoint::stats(self)
    }

    fn send(&self, to: NodeId, msg: M) -> Result<(), NetError> {
        crate::Endpoint::send(self, to, msg)
    }

    fn multicast(&self, to: &[NodeId], msg: M) -> Result<(), NetError> {
        crate::Endpoint::multicast(self, to, msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, M), NetError> {
        crate::Endpoint::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> Result<Option<(NodeId, M)>, NetError> {
        crate::Endpoint::try_recv(self)
    }

    fn register_region(&self, key: MrKey, region: MemoryRegion) {
        crate::Endpoint::register_region(self, key, region);
    }

    fn deregister_region(&self, key: MrKey) {
        crate::Endpoint::deregister_region(self, key);
    }

    fn local_region(&self, key: MrKey) -> Option<MemoryRegion> {
        crate::Endpoint::local_region(self, key)
    }

    fn rdma_read(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError> {
        crate::Endpoint::rdma_read(self, node, key, offset, len)
    }

    fn rdma_read_padded(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, NetError> {
        crate::Endpoint::rdma_read_padded(self, node, key, offset, len)
    }

    fn rdma_write(
        &self,
        node: NodeId,
        key: MrKey,
        offset: usize,
        bytes: &[u8],
    ) -> Result<(), NetError> {
        crate::Endpoint::rdma_write(self, node, key, offset, bytes)
    }
}
