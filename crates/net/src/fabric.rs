//! The fabric: node registry, delivery, failure injection.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::endpoint::Endpoint;
use crate::fault::FaultInjector;
use crate::mailbox::Mailbox;
use crate::{LatencyModel, MemoryRegion, MrKey, NetError, NetStats, NodeId, WireSize};

pub(crate) struct NodeSlot<M> {
    pub(crate) mailbox: Arc<Mailbox<M>>,
    pub(crate) regions: RwLock<HashMap<MrKey, MemoryRegion>>,
    pub(crate) stats: Arc<NetStats>,
}

pub(crate) struct FabricInner<M> {
    pub(crate) latency: LatencyModel,
    pub(crate) nodes: RwLock<BTreeMap<NodeId, Arc<NodeSlot<M>>>>,
    pub(crate) down_links: RwLock<HashSet<(NodeId, NodeId)>>,
    pub(crate) injector: RwLock<Option<Arc<dyn FaultInjector>>>,
}

impl<M> FabricInner<M> {
    pub(crate) fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        let key = (a.min(b), a.max(b));
        !self.down_links.read().contains(&key)
    }

    pub(crate) fn slot(&self, id: NodeId) -> Option<Arc<NodeSlot<M>>> {
        self.nodes.read().get(&id).cloned()
    }
}

/// A simulated network connecting in-process nodes.
///
/// Cloning is cheap; clones refer to the same network.
pub struct Fabric<M> {
    inner: Arc<FabricInner<M>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send + WireSize> Fabric<M> {
    /// Creates a fabric with the given per-hop latency model.
    pub fn new(latency: LatencyModel) -> Fabric<M> {
        Fabric {
            inner: Arc::new(FabricInner {
                latency,
                nodes: RwLock::new(BTreeMap::new()),
                down_links: RwLock::new(HashSet::new()),
                injector: RwLock::new(None),
            }),
        }
    }

    /// The fabric's latency model.
    pub fn latency(&self) -> LatencyModel {
        self.inner.latency
    }

    /// Registers a node and returns its endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AlreadyRegistered`] if the id is taken by a
    /// live node. Re-registering a killed node id is allowed — that is
    /// exactly what a spare does when it assumes a failed node's role.
    pub fn register(&self, id: NodeId) -> Result<Endpoint<M>, NetError> {
        let slot = Arc::new(NodeSlot {
            mailbox: Mailbox::new(),
            regions: RwLock::new(HashMap::new()),
            stats: Arc::new(NetStats::default()),
        });
        let mut nodes = self.inner.nodes.write();
        if let Some(existing) = nodes.get(&id) {
            if !existing.mailbox.is_closed() {
                return Err(NetError::AlreadyRegistered(id));
            }
        }
        nodes.insert(id, Arc::clone(&slot));
        drop(nodes);
        Ok(Endpoint::new(id, slot, Arc::clone(&self.inner)))
    }

    /// Kills a node: its mailbox closes (pending and future messages are
    /// dropped) and its memory regions become unreachable.
    ///
    /// Idempotent; killing an unknown node is a no-op.
    pub fn kill(&self, id: NodeId) {
        let slot = self.inner.nodes.write().remove(&id);
        if let Some(slot) = slot {
            slot.mailbox.close();
        }
    }

    /// Returns true if the node is registered and alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.inner
            .nodes
            .read()
            .get(&id)
            .map(|s| !s.mailbox.is_closed())
            .unwrap_or(false)
    }

    /// Installs a message-level [`FaultInjector`], replacing any
    /// previous one. It is consulted on every [`Endpoint::send`] /
    /// [`Endpoint::multicast`] over an up link to a live node; one-sided
    /// RDMA verbs and [`Fabric::inject`] bypass it.
    pub fn set_fault_injector(&self, injector: Arc<dyn FaultInjector>) {
        *self.inner.injector.write() = Some(injector);
    }

    /// Removes the installed [`FaultInjector`]; delivery returns to
    /// fault-free behaviour.
    pub fn clear_fault_injector(&self) {
        *self.inner.injector.write() = None;
    }

    /// Cuts the (bidirectional) link between two nodes: messages are
    /// dropped, one-sided ops fail with [`NetError::Unreachable`].
    pub fn fail_link(&self, a: NodeId, b: NodeId) {
        self.inner.down_links.write().insert((a.min(b), a.max(b)));
    }

    /// Restores a previously cut link.
    pub fn heal_link(&self, a: NodeId, b: NodeId) {
        self.inner.down_links.write().remove(&(a.min(b), a.max(b)));
    }

    /// Ids of all live nodes, unordered.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.inner
            .nodes
            .read()
            .iter()
            .filter(|(_, s)| !s.mailbox.is_closed())
            .map(|(&id, _)| id)
            .collect()
    }

    /// Traffic counters of a registered node (alive or killed), if any.
    pub fn stats_of(&self, id: NodeId) -> Option<crate::stats::NetStatsSnapshot> {
        self.inner.nodes.read().get(&id).map(|s| s.stats.snapshot())
    }

    /// Injects a message from a synthetic source (testing aid): delivers
    /// `msg` to `to` as if sent by `from` with normal latency.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unreachable`] if `to` is not alive.
    pub fn inject(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), NetError> {
        let slot = self.inner.slot(to).ok_or(NetError::Unreachable(to))?;
        let delay = self.inner.latency.delay(msg.wire_size());
        slot.mailbox.push(from, msg, crate::clock::now() + delay);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    impl WireSize for u32 {
        fn wire_size(&self) -> usize {
            4
        }
    }

    #[test]
    fn register_send_recv() {
        let f: Fabric<u32> = Fabric::new(LatencyModel::instant());
        let a = f.register(0).unwrap();
        let b = f.register(1).unwrap();
        a.send(1, 7).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), (0, 7));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let f: Fabric<u32> = Fabric::new(LatencyModel::instant());
        let _a = f.register(0).unwrap();
        assert_eq!(f.register(0).unwrap_err(), NetError::AlreadyRegistered(0));
    }

    #[test]
    fn killed_node_id_can_be_reused() {
        let f: Fabric<u32> = Fabric::new(LatencyModel::instant());
        let _a = f.register(0).unwrap();
        f.kill(0);
        assert!(!f.is_alive(0));
        let _a2 = f.register(0).unwrap();
        assert!(f.is_alive(0));
    }

    #[test]
    fn messages_to_dead_node_vanish() {
        let f: Fabric<u32> = Fabric::new(LatencyModel::instant());
        let a = f.register(0).unwrap();
        let _b = f.register(1).unwrap();
        f.kill(1);
        // Send succeeds (fire and forget), message is dropped.
        a.send(1, 42).unwrap();
    }

    #[test]
    fn link_failure_drops_messages() {
        let f: Fabric<u32> = Fabric::new(LatencyModel::instant());
        let a = f.register(0).unwrap();
        let b = f.register(1).unwrap();
        f.fail_link(0, 1);
        a.send(1, 1).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(20)).unwrap_err(),
            NetError::Timeout
        );
        f.heal_link(1, 0); // Order-insensitive.
        a.send(1, 2).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), (0, 2));
    }

    #[test]
    fn live_nodes_lists_survivors() {
        let f: Fabric<u32> = Fabric::new(LatencyModel::instant());
        let _a = f.register(0).unwrap();
        let _b = f.register(1).unwrap();
        let _c = f.register(2).unwrap();
        f.kill(1);
        let mut live = f.live_nodes();
        live.sort_unstable();
        assert_eq!(live, vec![0, 2]);
    }

    #[test]
    fn fault_injector_drop_delay_duplicate() {
        use crate::fault::{FaultAction, FaultInjector};
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Cycles Drop, Duplicate, Delay, Deliver per message.
        struct Script(AtomicUsize);
        impl FaultInjector for Script {
            fn on_message(&self, _f: NodeId, _t: NodeId, _b: usize) -> FaultAction {
                match self.0.fetch_add(1, Ordering::Relaxed) {
                    0 => FaultAction::Drop,
                    1 => FaultAction::Duplicate(Duration::from_micros(50)),
                    2 => FaultAction::Delay(Duration::from_micros(50)),
                    _ => FaultAction::Deliver,
                }
            }
        }

        let f: Fabric<u32> = Fabric::new(LatencyModel::instant());
        let a = f.register(0).unwrap();
        let b = f.register(1).unwrap();
        f.set_fault_injector(Arc::new(Script(AtomicUsize::new(0))));

        a.send(1, 10).unwrap(); // Dropped.
        a.send(1, 11).unwrap(); // Duplicated.
        a.send(1, 12).unwrap(); // Delayed 50µs: arrives after 11's dup.
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(b.recv_timeout(Duration::from_secs(1)).unwrap().1);
        }
        assert_eq!(got, vec![11, 11, 12]); // 11, its dup, then delayed 12.
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Timeout
        );

        f.clear_fault_injector();
        a.send(1, 13).unwrap(); // Back to normal delivery.
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), (0, 13));
    }

    #[test]
    fn inject_delivers() {
        let f: Fabric<u32> = Fabric::new(LatencyModel::instant());
        let b = f.register(1).unwrap();
        f.inject(99, 1, 5).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), (99, 5));
        assert!(f.inject(0, 77, 5).is_err());
    }
}
